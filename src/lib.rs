//! # `naive-eval` — umbrella crate for the PODS 2013 reproduction
//!
//! This workspace reproduces Gheerbrant, Libkin and Sirangelo's *"When is Naïve
//! Evaluation Possible?"* (PODS 2013). The umbrella crate re-exports every layer so
//! the whole system can be browsed from one documentation root, and it owns the
//! root-level integration tests (`tests/`) and worked examples (`examples/`).
//!
//! The layers, bottom to top:
//!
//! * [`obs`] — zero-dependency observability: log-bucketed latency histograms,
//!   RAII stage spans and per-request traces, the metrics registry behind the
//!   wire `METRICS`/`TRACE` commands (kill switch: `NEV_TRACE=0`);
//! * [`incomplete`] — incomplete databases with labelled nulls (naïve and Codd
//!   tables), orderings on tuples and instances;
//! * [`hom`] — homomorphisms, valuations, minimality, cores and isomorphism;
//! * [`logic`] — first-order queries, syntactic fragments, naïve evaluation;
//! * [`exec`] — the compiled relational-algebra execution engine behind the
//!   certified naïve path (interned codes, hash joins, `ExecStats`);
//! * [`core`] — the paper's semantics of incompleteness, certain answers,
//!   semantic orderings, update systems and the Figure 1 summary;
//! * [`gen`] — seeded random instance and formula generators;
//! * [`sql`] — SQL-style three-valued logic (the motivating paradox);
//! * [`serve`] — the concurrent certain-answer service: shared catalog, plan
//!   cache, work-stealing pool, parallel oracle, and the `nevd` line-protocol
//!   server with its `nevload` load generator;
//! * [`mod@bench`] — the experiment harness behind the `figure1` binary and the
//!   Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nev_bench as bench;
pub use nev_core as core;
pub use nev_exec as exec;
pub use nev_gen as gen;
pub use nev_hom as hom;
pub use nev_incomplete as incomplete;
pub use nev_logic as logic;
pub use nev_obs as obs;
pub use nev_serve as serve;
pub use nev_sql as sql;
