//! Integration tests reproducing the worked examples of the paper
//! (experiments E2–E6 of `DESIGN.md`).
//!
//! These tests span the whole stack: instances (`nev-incomplete`), homomorphisms and
//! cores (`nev-hom`), queries and naïve evaluation (`nev-logic`), semantics, certain
//! answers and orderings (`nev-core`).

use nev_core::engine::{CertainEngine, PreparedQuery};
use nev_core::ordering::{cwa_leq, owa_leq, powerset_cwa_leq, wcwa_leq};
use nev_core::Semantics;
use nev_hom::minimal::is_minimal_homomorphism;
use nev_hom::search::{find_homomorphism, has_db_homomorphism, HomConfig};
use nev_hom::{core_of, is_core};
use nev_incomplete::builder::{c, x};
use nev_incomplete::graph::{directed_cycle, disjoint_cycles, NodeKind};
use nev_incomplete::inst;
use nev_incomplete::{Instance, Tuple};
use nev_logic::eval::{naive_eval_boolean, naive_eval_query};
use nev_logic::fragment::{classify, Fragment};
use nev_logic::parse_query;

/// The instance of the introduction: R = {(1,⊥1),(⊥2,⊥3)}, S = {(⊥1,4),(⊥3,5)}.
fn intro_instance() -> Instance {
    inst! {
        "R" => [[c(1), x(1)], [x(2), x(3)]],
        "S" => [[x(1), c(4)], [x(3), c(5)]],
    }
}

/// D0 = {(⊥,⊥′),(⊥′,⊥)} from §2.3.
fn d0() -> Instance {
    inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] }
}

#[test]
fn e3_intro_conjunctive_query() {
    // §1: naive evaluation of ∃z (R(x,z) ∧ S(z,y)) returns (1,4) and (⊥2,5); dropping
    // the tuple with a null leaves (1,4), which is the certain answer under OWA (and CWA).
    let d = intro_instance();
    let q = parse_query("Q(x, y) :- exists z . R(x, z) & S(z, y)").unwrap();
    assert_eq!(classify(q.formula()), Fragment::ExistentialPositive);

    let naive = naive_eval_query(&d, &q);
    assert_eq!(naive.len(), 1);
    assert!(naive.contains(&Tuple::new(vec![c(1), c(4)])));

    // OWA, CWA and the minimal semantics on the full intro instance; WCWA and the
    // powerset semantics are exercised on the (smaller) D0 instance in the other
    // tests — their exact world enumerations grow quickly with three nulls.
    let engine = CertainEngine::new();
    let prepared = PreparedQuery::new(q.clone());
    for sem in [Semantics::Owa, Semantics::Cwa, Semantics::MinimalCwa] {
        let report = engine.compare(&d, sem, &prepared);
        assert!(
            report.agrees(),
            "{sem}: naive and certain answers must agree"
        );
        assert_eq!(report.certain, naive, "{sem}");
        // The engine's dispatch recognises the UCQ and certifies the fast path,
        // whose answers the oracle above just confirmed.
        let fast = engine.evaluate(&d, sem, &prepared);
        assert!(fast.plan.is_certified(), "{sem}");
        assert_eq!(fast.certain, report.certain, "{sem}");
    }
}

#[test]
fn e2_fact_1_boundary_on_d0() {
    let d0 = d0();
    // ∃x,y (D(x,y) ∧ D(y,x)) is a UCQ: certainly true under OWA and CWA, and naive
    // evaluation returns true.
    let sym = PreparedQuery::new(parse_query("exists u v . D(u, v) & D(v, u)").unwrap());
    let engine = CertainEngine::new();
    assert!(naive_eval_boolean(&d0, sym.query()));
    for sem in [Semantics::Owa, Semantics::Cwa] {
        let report = engine.compare(&d0, sem, &sym);
        assert!(report.is_certainly_true(), "{sem}");
        assert!(report.agrees(), "{sem}");
    }

    // ∀x∃y D(x,y) is Pos but not a UCQ: naive evaluation returns true; the certain
    // answer is true under CWA and WCWA but false under OWA — the boundary of Fact 1.
    let total = PreparedQuery::new(parse_query("forall u . exists v . D(u, v)").unwrap());
    assert_eq!(total.fragment(), Fragment::Positive);
    assert!(naive_eval_boolean(&d0, total.query()));
    let cwa = engine.compare(&d0, Semantics::Cwa, &total);
    let wcwa = engine.compare(&d0, Semantics::Wcwa, &total);
    let owa = engine.compare(&d0, Semantics::Owa, &total);
    assert!(cwa.is_certainly_true());
    assert!(wcwa.is_certainly_true());
    assert!(!owa.is_certainly_true());
    assert!(cwa.agrees());
    assert!(wcwa.agrees());
    assert!(!owa.agrees());
}

#[test]
fn e4_wcwa_strictly_between_cwa_and_owa() {
    // §4.3: for D = {(⊥,⊥′)}, {(1,2)} ∈ CWA ⊆ WCWA ⊆ OWA, and {(1,2),(2,1)} is in WCWA
    // but not CWA, while {(1,2),(3,3)} is in OWA but not WCWA.
    let d = inst! { "R" => [[x(1), x(2)]] };
    let w1 = inst! { "R" => [[c(1), c(2)]] };
    let w2 = inst! { "R" => [[c(1), c(2)], [c(2), c(1)]] };
    let w3 = inst! { "R" => [[c(1), c(2)], [c(3), c(3)]] };

    assert!(Semantics::Cwa.contains_world(&d, &w1));
    assert!(Semantics::Wcwa.contains_world(&d, &w1));
    assert!(Semantics::Owa.contains_world(&d, &w1));

    assert!(!Semantics::Cwa.contains_world(&d, &w2));
    assert!(Semantics::Wcwa.contains_world(&d, &w2));
    assert!(Semantics::Owa.contains_world(&d, &w2));

    assert!(!Semantics::Cwa.contains_world(&d, &w3));
    assert!(!Semantics::Wcwa.contains_world(&d, &w3));
    assert!(Semantics::Owa.contains_world(&d, &w3));
}

#[test]
fn theorem_5_2_positive_results_on_d0() {
    let d0 = d0();
    let engine = CertainEngine::new();
    // A Pos+∀G sentence: ∀x y (D(x,y) → ∃z D(y,z)) — works under CWA.
    let guarded =
        PreparedQuery::new(parse_query("forall a b . D(a, b) -> exists z . D(b, z)").unwrap());
    assert_eq!(guarded.fragment(), Fragment::PositiveGuarded);
    assert!(engine.compare(&d0, Semantics::Cwa, &guarded).agrees());
    // An ∃Pos+∀G_bool sentence: ∀a b (D(a,b) → ∃z (D(a,z) ∧ D(z,a))) — works under ⦅ ⦆_CWA.
    let gbool = PreparedQuery::new(
        parse_query("forall a b . D(a, b) -> exists z . D(a, z) & D(z, a)").unwrap(),
    );
    assert!(nev_logic::fragment::is_existential_positive_boolean_guarded(gbool.query().formula()));
    assert!(engine.compare(&d0, Semantics::PowersetCwa, &gbool).agrees());
    // And the same sentence also works under plain CWA (strong onto homomorphisms are
    // singleton unions).
    assert!(engine.compare(&d0, Semantics::Cwa, &gbool).agrees());
}

#[test]
fn negation_breaks_naive_evaluation_under_cwa() {
    // Beyond Pos+∀G: ∃x ¬D(x,x) on D0 is naively true but not certain under CWA.
    let d0 = d0();
    let q = PreparedQuery::new(parse_query("exists u . !D(u, u)").unwrap());
    assert_eq!(q.fragment(), Fragment::FullFirstOrder);
    assert!(naive_eval_boolean(&d0, q.query()));
    let report = CertainEngine::new().compare(&d0, Semantics::Cwa, &q);
    assert!(report.naive_overshoots());
}

#[test]
fn remark_after_proposition_5_1_repeated_guard_variables() {
    // ϕ = ∀x (R(x,x) → S(x)), D with R = {(1,2)}, S = ∅, and the homomorphism sending
    // both 1,2 to 3: D ⊨ ϕ but h(D) ⊭ ϕ — the reason repeated guard variables are
    // excluded from Pos+∀G.
    let phi = parse_query("forall u . R(u, u) -> S(u)").unwrap();
    assert_eq!(classify(phi.formula()), Fragment::FullFirstOrder);
    let d = inst! { "R" => [[c(1), c(2)]], "S" => [] };
    let d = {
        let mut d = d;
        d.ensure_relation("S", 1).unwrap();
        d
    };
    let mut h_image = inst! { "R" => [[c(3), c(3)]] };
    h_image.ensure_relation("S", 1).unwrap();
    assert!(naive_eval_boolean(&d, &phi));
    assert!(!naive_eval_boolean(&h_image, &phi));
}

#[test]
fn e6_proposition_10_1_counterexamples() {
    // The 4-ary relation example of Proposition 10.1.
    let d = inst! { "F" => [[x(1), x(1), x(2), x(3)], [x(4), x(5), x(2), x(2)]] };
    let h_image = inst! { "F" => [[x(6), x(6), x(7), x(7)], [x(6), x(7), x(7), x(7)]] };
    assert!(is_core(&d));
    assert!(is_core(&h_image));
    // The mapping of the paper: ⊥1,⊥4 ↦ ⊥6 and ⊥2,⊥3,⊥5 ↦ ⊥7.
    let h = nev_hom::ValueMap::from_pairs([
        (x(1), x(6)),
        (x(2), x(7)),
        (x(3), x(7)),
        (x(4), x(6)),
        (x(5), x(7)),
    ]);
    assert_eq!(h.apply_instance(&d), h_image);
    assert!(
        !is_minimal_homomorphism(&h, &d),
        "h is not D-minimal (Prop. 10.1)"
    );

    // The graph version: G = C4 + C6 and H = C3 + C2 are cores, a homomorphism G → H
    // exists, but it is not G-minimal because G → C2.
    let g = disjoint_cycles(4, 6, NodeKind::Nulls);
    let h_graph = directed_cycle(3, NodeKind::Constants, 200)
        .union(&directed_cycle(2, NodeKind::Constants, 300))
        .unwrap();
    assert!(is_core(&g));
    assert!(is_core(&h_graph));
    let hom = find_homomorphism(&g, &h_graph, &HomConfig::database()).expect("G → C3+C2 exists");
    assert!(!is_minimal_homomorphism(&hom, &g));
    // …and C3+C2 (over constants) is in ⟦G⟧_CWA but not in ⟦G⟧min_CWA.
    assert!(Semantics::Cwa.contains_world(&g, &h_graph));
    assert!(!Semantics::MinimalCwa.contains_world(&g, &h_graph));
    // The collapse onto C2 alone is not a CWA world of G (not strong onto the union),
    // but the core of G is G itself.
    assert_eq!(core_of(&g), g);
    assert!(has_db_homomorphism(
        &g,
        &directed_cycle(2, NodeKind::Constants, 300)
    ));
}

#[test]
fn ordering_examples_from_section_6() {
    // D = {(⊥,2)} is less informative than D' = {(1,2)} in every ordering, and the
    // reverse fails; D0 relates to its one-null collapse only via CWA-style orderings.
    let d = inst! { "R" => [[x(1), c(2)]] };
    let d_prime = inst! { "R" => [[c(1), c(2)]] };
    for (name, leq) in [
        ("owa", owa_leq as fn(&Instance, &Instance) -> bool),
        ("cwa", cwa_leq),
        ("wcwa", wcwa_leq),
        ("powerset", powerset_cwa_leq),
    ] {
        assert!(leq(&d, &d_prime), "{name}");
        assert!(!leq(&d_prime, &d), "{name}");
    }
    let d0 = d0();
    let collapse = inst! { "D" => [[c(7), c(7)]] };
    assert!(owa_leq(&d0, &collapse));
    assert!(cwa_leq(&d0, &collapse));
    assert!(wcwa_leq(&d0, &collapse));
    assert!(powerset_cwa_leq(&d0, &collapse));
}
