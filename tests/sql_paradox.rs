//! Experiment E9: the SQL three-valued-logic paradox from the paper's introduction,
//! contrasted with naïve evaluation over marked nulls and with certain answers.

use nev_core::engine::CertainEngine;
use nev_core::Semantics;
use nev_incomplete::builder::{c, x};
use nev_incomplete::inst;
use nev_incomplete::tuple::tuple_of;
use nev_incomplete::Relation;
use nev_logic::parse_query;
use nev_sql::{difference_not_in, in_list, not_in_list, TruthValue};

fn x_relation() -> Relation {
    let mut r = Relation::new("X", 1);
    for i in 1..=3 {
        r.insert(tuple_of([c(i)])).unwrap();
    }
    r
}

#[test]
fn e9_sql_not_in_paradox() {
    // SELECT A FROM X WHERE A NOT IN (SELECT A FROM Y), with Y = {NULL}:
    // SQL returns nothing although |X| > |Y|.
    let x_rel = x_relation();
    let mut y_rel = Relation::new("Y", 1);
    y_rel.insert(tuple_of([x(1)])).unwrap();

    assert!(x_rel.len() > y_rel.len());
    let result = difference_not_in(&x_rel, 0, &y_rel, 0);
    assert!(result.is_empty());

    // The root cause: every comparison with the null is unknown, and WHERE keeps only
    // definite truths.
    assert_eq!(in_list(&c(1), &[x(1)]), TruthValue::Unknown);
    assert_eq!(not_in_list(&c(1), &[x(1)]), TruthValue::Unknown);
    assert!(!TruthValue::Unknown.passes_where());
}

#[test]
fn certain_answers_agree_with_sql_caution_here() {
    // The paper's point is not that the empty answer is wrong — under certain-answer
    // semantics the difference query indeed has no certain answers (the null could be
    // any of 1, 2, 3) — but that SQL reaches it through an inconsistent 3VL mechanism.
    // Here: certain answers of Q(u) = X(u) ∧ ¬ Y(u) under CWA are empty as well.
    let d = inst! {
        "X" => [[c(1)], [c(2)], [c(3)]],
        "Y" => [[x(1)]],
    };
    let q = parse_query("Q(u) :- X(u) & !Y(u)").unwrap();
    let engine = CertainEngine::new();
    let prepared = nev_core::engine::PreparedQuery::new(q);
    let certain = engine.certain_answers(&d, Semantics::Cwa, &prepared);
    assert!(certain.is_empty());

    // But SQL is *not* computing certain answers in general: if Y additionally
    // contains the constant 9 (so the null is still unconstrained), certain answers
    // are still empty, which happens to coincide; the real divergence appears when the
    // null is forced: Y = {2} with no nulls gives certain answers {1, 3}, while the
    // same data with the 2 replaced by a null gives none.
    let forced = inst! {
        "X" => [[c(1)], [c(2)], [c(3)]],
        "Y" => [[c(2)]],
    };
    let certain_forced = engine.certain_answers(&forced, Semantics::Cwa, &prepared);
    assert_eq!(certain_forced.len(), 2);
    assert!(certain_forced.contains(&tuple_of([c(1)])));
    assert!(certain_forced.contains(&tuple_of([c(3)])));
}

#[test]
fn marked_nulls_do_not_suffer_the_identity_confusion() {
    // With marked nulls, ⊥1 = ⊥1 evaluates to true under naive evaluation, so a query
    // comparing a null with itself behaves consistently — unlike SQL where even
    // NULL = NULL is unknown.
    let d = inst! { "Y" => [[x(1)]] };
    let q = parse_query("exists u . Y(u) & u = u").unwrap();
    assert!(nev_logic::eval::naive_eval_boolean(&d, &q));
    assert_eq!(nev_sql::sql_compare_eq(&x(1), &x(1)), TruthValue::Unknown);
}

#[test]
fn classical_difference_without_nulls_matches_sql() {
    let x_rel = x_relation();
    let mut y_rel = Relation::new("Y", 1);
    y_rel.insert(tuple_of([c(2)])).unwrap();
    let result = difference_not_in(&x_rel, 0, &y_rel, 0);
    assert_eq!(result.len(), 2);
    assert!(result.contains(&tuple_of([c(1)])));
    assert!(result.contains(&tuple_of([c(3)])));
}
