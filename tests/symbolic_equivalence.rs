//! Differential suite for the `nev-symbolic` pipeline: on seeded workloads across
//! all 30 Figure 1 cells,
//!
//! * the Kleene 3-valued evaluation is a sound **under**-approximation — its
//!   answers are a subset of the bounded oracle's on every cell (the oracle itself
//!   over-approximates the true certain answers, so the inclusion is conservative);
//! * wherever the fresh-injective world exists (every non-minimal cell, and
//!   minimal cells on cores) the oracle's untruncated answers sit inside the naïve
//!   **over**-approximation, closing the sandwich `U ⊆ certain ⊆ N`;
//! * whenever dispatch upgrades to a symbolic plan — the sandwich closing or the
//!   CWA conditional-table evaluator going exact — the certified answers are
//!   byte-identical to the untruncated oracle's, with **zero** worlds enumerated
//!   and a certificate that re-checks.

use std::collections::BTreeSet;

use nev_bench::workloads::{
    cell_workload, null_density_workload, sandwich_certified_query, DEFAULT_SEED,
};
use nev_core::engine::{CertainEngine, PreparedQuery};
use nev_core::summary::FRAGMENTS;
use nev_core::{Semantics, WorldBounds};
use nev_hom::is_core;
use nev_incomplete::Instance;

fn bounds() -> WorldBounds {
    WorldBounds {
        owa_max_extra_tuples: 1,
        wcwa_max_extra_tuples: 2,
        ..WorldBounds::default()
    }
}

/// One seeded trial per Figure 1 cell (raw generated instances — the minimal-cell
/// side conditions are checked per instance, not normalised away).
fn cell_trials(seed: u64) -> Vec<(Semantics, PreparedQuery, Instance)> {
    Semantics::ALL
        .into_iter()
        .flat_map(|semantics| {
            FRAGMENTS.into_iter().map(move |fragment| {
                let cell_seed = seed
                    .wrapping_mul(131)
                    .wrapping_add(semantics as u64 * 31 + fragment as u64);
                let (instance, query) = cell_workload(fragment, cell_seed, 1)
                    .pop()
                    .expect("one trial");
                (semantics, PreparedQuery::new(query), instance)
            })
        })
        .collect()
}

fn is_subset(a: &BTreeSet<nev_incomplete::Tuple>, b: &BTreeSet<nev_incomplete::Tuple>) -> bool {
    a.iter().all(|t| b.contains(t))
}

/// The sandwich inclusions on every cell: `U ⊆ oracle` always, and
/// `oracle ⊆ naive` wherever the fresh-injective world exists and the oracle
/// completed its (bounded) stream.
#[test]
fn kleene_under_approximation_is_sound_on_every_cell() {
    let engine = CertainEngine::with_bounds(bounds());
    for seed in [DEFAULT_SEED, DEFAULT_SEED ^ 0x5a5a] {
        for (semantics, query, instance) in cell_trials(seed) {
            let oracle = engine.compare(&instance, semantics, &query);
            let under = engine.symbolic_under_approximation(&instance, semantics, &query);
            assert!(under.plan.is_symbolic());
            assert_eq!(under.worlds_enumerated, 0);
            assert!(
                is_subset(&under.certain, &oracle.certain),
                "{} × {}: U ⊄ oracle on\n{}",
                semantics,
                query.fragment(),
                instance
            );
            if !oracle.truncated && (!semantics.is_minimal() || is_core(&instance)) {
                assert!(
                    is_subset(&oracle.certain, &oracle.naive),
                    "{} × {}: oracle ⊄ naive on\n{}",
                    semantics,
                    query.fragment(),
                    instance
                );
            }
        }
    }
}

/// Wherever evaluation-time dispatch upgrades to a symbolic plan, the certified
/// answers are byte-identical to the forced oracle's and no world is enumerated.
#[test]
fn symbolic_certified_answers_match_the_oracle() {
    let engine = CertainEngine::with_bounds(bounds());
    let mut certified = 0usize;
    for seed in [DEFAULT_SEED, DEFAULT_SEED ^ 0x5a5a] {
        for (semantics, query, instance) in cell_trials(seed) {
            let Some(symbolic) = engine.evaluate_symbolic(&instance, semantics, &query) else {
                continue;
            };
            certified += 1;
            assert_eq!(symbolic.worlds_enumerated, 0);
            let certificate = symbolic
                .plan
                .symbolic_certificate()
                .expect("a symbolic plan carries its certificate");
            assert!(certificate.check(), "{} × {}", semantics, query.fragment());
            let oracle = engine.compare(&instance, semantics, &query);
            if !oracle.truncated {
                assert_eq!(
                    symbolic.certain,
                    oracle.certain,
                    "{} × {}: certified answers diverge on\n{}",
                    semantics,
                    query.fragment(),
                    instance
                );
            }
        }
    }
    assert!(
        certified > 0,
        "the seeded sweep should certify at least one non-guaranteed trial"
    );
}

/// The acceptance workload: a seeded null-density instance the sandwich certifies
/// under WCWA with zero worlds, byte-identical to the (cheap, early-exiting)
/// oracle; and a complete instance the CWA conditional-table evaluator answers
/// exactly on a full-FO query.
#[test]
fn seeded_workloads_sandwich_certify_with_zero_worlds() {
    let engine = CertainEngine::new();

    let d = null_density_workload(6);
    let query = PreparedQuery::new(sandwich_certified_query());
    let evaluation = engine.evaluate(&d, Semantics::Wcwa, &query);
    assert!(evaluation.plan.is_symbolic(), "the sandwich closes");
    assert_eq!(evaluation.worlds_enumerated, 0);
    assert!(!evaluation.truncated);
    let oracle = engine.compare(&d, Semantics::Wcwa, &query);
    assert!(!oracle.truncated, "a Boolean false early-exits the stream");
    assert_eq!(evaluation.certain, oracle.certain);

    let complete = nev_incomplete::inst! { "D" => [[nev_incomplete::builder::c(1), nev_incomplete::builder::c(2)]] };
    let fo = engine.prepare("exists u v . D(u, v) & !(u = v)").unwrap();
    let exact = engine.evaluate(&complete, Semantics::Cwa, &fo);
    assert!(exact.plan.is_symbolic(), "conditional tables go exact");
    assert_eq!(exact.worlds_enumerated, 0);
    assert_eq!(
        exact.certain,
        engine.compare(&complete, Semantics::Cwa, &fo).certain
    );
}
