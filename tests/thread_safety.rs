//! `static_assertions`-style thread-safety audit: compile-time proof that every
//! type shared across `nev-serve`'s worker pool and connection threads is
//! `Send + Sync`.
//!
//! These are *compile tests*: if this file builds, the properties hold. They pin
//! the workspace's concurrency contract — instances are plain immutable data once
//! built, prepared/compiled queries carry no interior mutability, and the engine
//! is pure configuration. The executor's per-execution index cache stays inside
//! `nev_exec`'s `ExecContext`, which is created per call and never shared, so
//! `CompiledQuery::execute` can run on any thread concurrently (that is also why
//! `InternedInstance` is safely shareable: executions only read it).

use naive_eval::core::engine::{CertainEngine, Certificate, EvalPlan, Evaluation, PreparedQuery};
use naive_eval::core::{Semantics, WorldBounds, Worlds};
use naive_eval::exec::{CompiledQuery, ExecOptions, ExecStats, InternedInstance};
use naive_eval::incomplete::{Instance, Relation, Schema, Tuple, Value};
use naive_eval::serve::state::{EvalRequest, EvalResponse, ServeConfig, ServeState};
use naive_eval::serve::{
    Catalog, LoadReport, OracleOutcome, PlanCache, ServeStats, StatsSnapshot, WorkerPool,
};

fn require_send_sync<T: Send + Sync>() {}
fn require_send<T: Send>() {}

#[test]
fn data_layer_is_send_and_sync() {
    require_send_sync::<Value>();
    require_send_sync::<Tuple>();
    require_send_sync::<Relation>();
    require_send_sync::<Schema>();
    require_send_sync::<Instance>();
}

#[test]
fn query_and_executor_layer_is_send_and_sync() {
    require_send_sync::<PreparedQuery>();
    require_send_sync::<CompiledQuery>();
    require_send_sync::<InternedInstance>();
    require_send_sync::<ExecStats>();
    // ExecOptions carries an Arc<WorkerPool>, so engines configured with a pool
    // remain shareable across the service's connection threads.
    require_send_sync::<ExecOptions>();
}

#[test]
fn engine_layer_is_send_and_sync() {
    require_send_sync::<CertainEngine>();
    require_send_sync::<Semantics>();
    require_send_sync::<WorldBounds>();
    require_send_sync::<EvalPlan>();
    require_send_sync::<Certificate>();
    require_send_sync::<Evaluation>();
    // The lazy world stream borrows the instance immutably; it can migrate to a
    // worker thread (the parallel oracle drives it from the submitting thread,
    // but nothing about the type forbids handing it off).
    require_send::<Worlds<'static>>();
}

#[test]
fn service_layer_is_send_and_sync() {
    require_send_sync::<Catalog>();
    require_send_sync::<PlanCache>();
    require_send_sync::<WorkerPool>();
    require_send_sync::<ServeState>();
    require_send_sync::<ServeConfig>();
    require_send_sync::<ServeStats>();
    require_send_sync::<StatsSnapshot>();
    require_send_sync::<EvalRequest>();
    require_send_sync::<EvalResponse>();
    require_send_sync::<OracleOutcome>();
    require_send_sync::<LoadReport>();
}

#[test]
fn shared_state_is_usable_from_spawned_threads() {
    // The runtime counterpart of the compile-time assertions: one ServeState
    // shared by threads that load, evaluate and read stats concurrently.
    use naive_eval::incomplete::builder::x;
    use naive_eval::incomplete::inst;
    use std::sync::Arc;

    let state = Arc::new(ServeState::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }));
    state.load("d0", inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] });
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                state
                    .eval("d0", Semantics::Cwa, "exists u v . D(u, v) & D(v, u)")
                    .expect("shared eval succeeds")
                    .certain
                    .len()
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().expect("no panics"), 1);
    }
    assert_eq!(state.snapshot().evals, 4);
}
