//! End-to-end acceptance for the static analyser (`nev-analyze`): on seeded
//! generated instances, an FO-classified query whose normal form is ∃Pos
//!
//! * is **widened** by the normalization pipeline (`FO → ∃Pos`, non-empty
//!   replayable trace),
//! * dispatches on the **certified naïve path over its normal form**
//!   (`EvalPlan::NormalizedNaive`, zero worlds enumerated),
//! * carries a certificate that **re-checks** — both the trace replay and the
//!   differential run on the concrete instance — and
//! * returns answers **byte-identical** to the *untruncated* bounded oracle's.

use nev_core::engine::{CertainEngine, PreparedQuery};
use nev_core::summary::{expectation, Expectation};
use nev_core::{Semantics, WorldBounds};
use nev_gen::{InstanceGenerator, InstanceGeneratorConfig};
use nev_incomplete::Instance;
use nev_logic::parser::parse_formula;
use nev_logic::{Fragment, Query};

/// A seeded incomplete instance over the default R/2, S/1 schema.
fn seeded_instance(seed: u64) -> Instance {
    InstanceGenerator::new(InstanceGeneratorConfig::default(), seed).generate()
}

/// An FO-classified sentence (double negation) whose normal form is the plain
/// ∃Pos sentence inside it.
fn widened_query() -> PreparedQuery {
    let formula = parse_formula("!(!(exists u v . R(u, v) & S(v)))").expect("fixture parses");
    PreparedQuery::new(Query::boolean(formula))
}

#[test]
fn fo_query_is_widened_certified_and_matches_the_untruncated_oracle() {
    let query = widened_query();

    // Static side: classification says FO, normalization lands in ∃Pos, and the
    // trace replays (machine-checkable certificate, no instance needed).
    assert_eq!(query.fragment(), Fragment::FullFirstOrder);
    assert_eq!(query.normalized_fragment(), Fragment::ExistentialPositive);
    assert!(query.normalization_changed());
    assert!(!query.analysis().trace().is_empty());
    query
        .check_normalization()
        .expect("normalization trace replays");

    // The raw cell carries no guarantee — the upgrade is the analyser's doing.
    for semantics in [Semantics::Cwa, Semantics::Owa] {
        assert_eq!(
            expectation(semantics, query.fragment()),
            Expectation::NotGuaranteed
        );
        assert_eq!(
            expectation(semantics, query.normalized_fragment()),
            Expectation::Works
        );
    }

    let bounds = WorldBounds {
        owa_max_extra_tuples: 1,
        ..WorldBounds::default()
    };
    let engine = CertainEngine::with_bounds(bounds);

    for seed in [7u64, 23, 4242] {
        let instance = seeded_instance(seed);
        // Differential certificate: the normal form agrees with the original's
        // naïve answers on this concrete instance.
        query
            .check_normalization_on(&instance)
            .expect("certificate re-checks on the instance");

        for semantics in [Semantics::Cwa, Semantics::Owa] {
            let plan = engine.plan(&instance, semantics, &query);
            assert!(
                plan.is_normalized(),
                "{semantics} seed {seed}: expected a normalized-naïve plan, got {plan:?}"
            );
            let cert = plan
                .certificate()
                .expect("normalized plans carry a certificate");
            assert!(
                cert.check(),
                "{semantics} seed {seed}: certificate re-check"
            );

            // Certified side: naïve pass over the normal form, zero worlds.
            let planned = engine.evaluate(&instance, semantics, &query);
            assert!(planned.plan.is_normalized());
            assert_eq!(planned.worlds_enumerated, 0, "{semantics} seed {seed}");
            assert!(!planned.truncated);
            assert!(
                planned.agrees(),
                "{semantics} seed {seed}: naive == certain"
            );

            // Oracle side: the forced bounded enumeration must not have been
            // truncated (its verdict is exact) and must agree byte-for-byte.
            let oracle = engine.compare(&instance, semantics, &query);
            assert!(
                !oracle.truncated,
                "{semantics} seed {seed}: oracle was truncated — bounds too tight \
                 for an exact reference"
            );
            assert!(oracle.worlds_enumerated > 0, "{semantics} seed {seed}");
            assert_eq!(
                planned.certain, oracle.certain,
                "{semantics} seed {seed}: normalized dispatch changed the answer"
            );
            assert_eq!(
                format!("{:?}", planned.certain),
                format!("{:?}", oracle.certain),
                "{semantics} seed {seed}: rendered answers differ"
            );
        }
    }
}

#[test]
fn statically_false_queries_prune_to_the_empty_answer() {
    let formula = parse_formula("exists u . R(u, u) & !R(u, u)").expect("fixture parses");
    let query = PreparedQuery::new(Query::boolean(formula));
    assert_eq!(query.analysis().static_truth(), Some(false));

    let engine = CertainEngine::new();
    for seed in [7u64, 23] {
        let instance = seeded_instance(seed);
        for semantics in Semantics::ALL {
            let result = engine.evaluate(&instance, semantics, &query);
            assert!(
                result.certain.is_empty(),
                "{semantics} seed {seed}: a statically-false query has no certain answers"
            );
            assert_eq!(
                result.worlds_enumerated, 0,
                "{semantics} seed {seed}: pruned queries never enumerate"
            );
        }
    }
}
