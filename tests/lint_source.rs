//! Source-level lint rules the compiler cannot enforce, pinned as a test so they
//! fail in CI with file:line diagnostics rather than bit-rotting in review lore:
//!
//! 1. **Clocks live in `nev-obs`.** `Instant::now` / `SystemTime::now` may appear
//!    only in the observability crate's timer paths (`Timer`, the metrics
//!    registry epoch, the span clock). Everywhere else must thread an
//!    [`nev_obs`] timer through, so the `NEV_OBS=off` kill-switch really does
//!    make timing inert.
//! 2. **No `.unwrap()` in serving-layer request handling.** `nev-serve`'s
//!    library code handles untrusted wire input; every panic site must carry an
//!    `.expect("why this cannot fail")` message (also enforced by the CI clippy
//!    lane with `-D clippy::unwrap_used`).
//! 3. **Every `Ordering::Relaxed` is justified.** Each relaxed atomic access
//!    must sit under a `// relaxed: <reason>` comment (inline, within the three
//!    preceding lines, or continuing a commented run) saying why the access
//!    needs no ordering. Relaxed atomics are correct exactly when the
//!    surrounding code does not rely on them for synchronisation — the comment
//!    records that argument next to the site.
//!
//! Test modules (everything after a `#[cfg(test)]` marker) and comment lines are
//! exempt from rules 1 and 2; the scan covers `crates/*/src/**/*.rs` only, so
//! the vendored stand-ins in `vendor/` are out of scope.

use std::fs;
use std::path::PathBuf;

/// Files allowed to read the wall clock directly: the `nev-obs` timer paths.
const CLOCK_ALLOWLIST: &[&str] = &[
    "crates/obs/src/lib.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/span.rs",
];

/// How many lines above a relaxed access a `// relaxed:` justification may sit
/// (accommodates a loop header or struct literal opener between the two).
const RELAXED_LOOKBACK: usize = 3;

/// Every `.rs` file under `crates/*/src`, relative paths normalised to `/`.
fn workspace_sources() -> Vec<(String, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)
        .expect("crates/ directory readable")
        .map(|e| e.expect("crates/ entry readable").path().join("src"))
        .filter(|p| p.is_dir())
        .collect();
    while let Some(dir) = dirs.pop() {
        for entry in fs::read_dir(&dir).expect("source directory readable") {
            let path = entry.expect("source entry readable").path();
            if path.is_dir() {
                dirs.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(&root)
                    .expect("source under workspace root")
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = fs::read_to_string(&path).expect("source file readable");
                files.push((rel, text));
            }
        }
    }
    assert!(
        files.len() >= 10,
        "suspiciously few sources found — did the layout move?"
    );
    files.sort();
    files
}

/// True for lines that are purely comments (docs or otherwise), which rules 1
/// and 2 must not fire on.
fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Lines of `text` up to (and excluding) the first `#[cfg(test)]` marker — the
/// convention throughout this workspace is that test modules close out a file.
fn non_test_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .take_while(|(_, line)| !line.trim_start().starts_with("#[cfg(test)]"))
        .map(|(i, line)| (i + 1, line))
}

#[test]
fn clock_reads_stay_inside_nev_obs() {
    let mut violations = Vec::new();
    for (path, text) in workspace_sources() {
        if CLOCK_ALLOWLIST.contains(&path.as_str()) {
            continue;
        }
        for (line_no, line) in non_test_lines(&text) {
            if is_comment_line(line) {
                continue;
            }
            if line.contains("Instant::now") || line.contains("SystemTime::now") {
                violations.push(format!("{path}:{line_no}: {}", line.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "direct clock reads outside the nev-obs timer paths (route them through \
         nev_obs::Timer so NEV_OBS=off disables them):\n{}",
        violations.join("\n")
    );
}

#[test]
fn serve_request_handling_never_unwraps() {
    let mut violations = Vec::new();
    for (path, text) in workspace_sources() {
        if !path.starts_with("crates/serve/src/") {
            continue;
        }
        for (line_no, line) in non_test_lines(&text) {
            if is_comment_line(line) {
                continue;
            }
            if line.contains(".unwrap()") {
                violations.push(format!("{path}:{line_no}: {}", line.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "bare .unwrap() in nev-serve library code (use .expect(\"why this cannot \
         fail\") so the panic message names the violated invariant):\n{}",
        violations.join("\n")
    );
}

#[test]
fn every_relaxed_ordering_is_justified() {
    let mut violations = Vec::new();
    let mut justified = 0usize;
    for (path, text) in workspace_sources() {
        // `ttl` counts lines of remaining coverage from a `// relaxed:` comment;
        // `prev_covered` lets a consecutive run of relaxed accesses share one.
        let mut ttl = 0usize;
        let mut prev_covered = false;
        for (line_no, line) in text.lines().enumerate().map(|(i, l)| (i + 1, l)) {
            if line.contains("// relaxed:") {
                ttl = RELAXED_LOOKBACK + 1;
            }
            if line.contains("Ordering::Relaxed") && !is_comment_line(line) {
                let covered = ttl > 0 || prev_covered;
                if covered {
                    justified += 1;
                } else {
                    violations.push(format!("{path}:{line_no}: {}", line.trim()));
                }
                prev_covered = covered;
            } else if !line.trim().is_empty() {
                prev_covered = false;
            }
            ttl = ttl.saturating_sub(1);
        }
    }
    assert!(
        violations.is_empty(),
        "Ordering::Relaxed without a `// relaxed: <reason>` justification \
         (state why the access needs no synchronisation):\n{}",
        violations.join("\n")
    );
    // The workspace genuinely uses relaxed atomics; if this ever hits zero the
    // scan itself has rotted (renamed import, moved sources), not the code.
    assert!(
        justified >= 20,
        "expected >= 20 justified relaxed accesses, found {justified} — \
         is the scan still finding the sources?"
    );
}

/// The lint algorithms themselves, pinned on synthetic inputs so a refactor of
/// the scanner cannot silently weaken a rule.
#[test]
fn relaxed_coverage_algorithm_behaves() {
    fn uncovered(text: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let mut ttl = 0usize;
        let mut prev_covered = false;
        for (line_no, line) in text.lines().enumerate().map(|(i, l)| (i + 1, l)) {
            if line.contains("// relaxed:") {
                ttl = RELAXED_LOOKBACK + 1;
            }
            if line.contains("Ordering::Relaxed") && !is_comment_line(line) {
                let covered = ttl > 0 || prev_covered;
                if !covered {
                    out.push(line_no);
                }
                prev_covered = covered;
            } else if !line.trim().is_empty() {
                prev_covered = false;
            }
            ttl = ttl.saturating_sub(1);
        }
        out
    }

    // Inline and immediately-above comments cover; a bare access does not.
    assert_eq!(
        uncovered("x.load(Ordering::Relaxed); // relaxed: test"),
        vec![] as Vec<usize>
    );
    assert_eq!(
        uncovered("// relaxed: test\nx.load(Ordering::Relaxed);"),
        vec![] as Vec<usize>
    );
    assert_eq!(uncovered("x.load(Ordering::Relaxed);"), vec![1]);

    // A comment covers through a loop header / struct opener within the lookback…
    assert_eq!(
        uncovered("// relaxed: test\nfor x in xs {\n    x.load(Ordering::Relaxed);\n}"),
        vec![] as Vec<usize>
    );
    // …but not arbitrarily far below.
    assert_eq!(
        uncovered("// relaxed: test\n\n\n\n\nx.load(Ordering::Relaxed);"),
        vec![6]
    );

    // A consecutive run shares one justification; interrupting code resets it.
    assert_eq!(
        uncovered("// relaxed: test\na.load(Ordering::Relaxed);\nb.load(Ordering::Relaxed);\nc.load(Ordering::Relaxed);"),
        vec![] as Vec<usize>
    );
    assert_eq!(
        uncovered(
            "// relaxed: test\na.load(Ordering::Relaxed);\nfn other() {}\nfn more() {}\nfn still_more() {}\nb.load(Ordering::Relaxed);"
        ),
        vec![6]
    );
}
