//! Differential property suite for **`nev-opt`**: the optimised plan, the
//! unoptimised (literal syntactic) plan and the tree-walking interpreter agree
//! on every answer — raw, naïve and certain — across seeded workloads of all
//! five fragments and three semantics.
//!
//! * `optimised ≡ unoptimised ≡ interpreter` on raw answers
//!   (`execute` vs `evaluate_query`) and naïve answers (`execute_naive` vs
//!   `naive_eval_query`), on the generated instance and on the empty instance;
//! * certain answers under OWA / CWA / WCWA: a `CertainEngine` dispatching on
//!   the optimised plan, one on the unoptimised plan, and an
//!   interpreter-only world-intersection oracle built from public primitives
//!   all coincide;
//! * plans where **zero rules fire** stay byte-identical to the logical
//!   lowering and still agree;
//! * plans where **join reordering changes the shape** (skewed cardinalities)
//!   report `joins_reordered > 0` and still agree.

use proptest::prelude::*;

use nev_bench::workloads::{
    cell_workload, join_chain_query, negation_query, negation_workload, skewed_join_workload,
    DEFAULT_SEED,
};
use nev_core::engine::{boolean_answers, CertainEngine, PreparedQuery};
use nev_core::{Semantics, WorldBounds};
use nev_exec::{CompiledQuery, CompilerConfig, ExecStats};
use nev_incomplete::{Instance, Tuple};
use nev_logic::eval::{evaluate_boolean, evaluate_query, naive_eval_query};
use nev_logic::{Fragment, Query};
use std::collections::BTreeSet;

fn unoptimized_config() -> CompilerConfig {
    CompilerConfig {
        optimize: false,
        ..CompilerConfig::default()
    }
}

/// The three semantics the suite sweeps (one per homomorphism family of the
/// paper's Figure 1 rows with distinct world streams).
const SEMANTICS: [Semantics; 3] = [Semantics::Owa, Semantics::Cwa, Semantics::Wcwa];

fn small_bounds() -> WorldBounds {
    WorldBounds {
        owa_max_extra_tuples: 1,
        wcwa_max_extra_tuples: 1,
        ..WorldBounds::default()
    }
}

/// Certain answers via the tree-walking interpreter only: intersect
/// `evaluate_query` (restricted to the allowed constants, complete tuples) over
/// the streamed worlds. This shares no executor code with the compiled paths.
fn interpreter_certain(
    engine: &CertainEngine,
    d: &Instance,
    semantics: Semantics,
    prepared: &PreparedQuery,
) -> BTreeSet<Tuple> {
    let bounds = prepared.bounds(engine.bounds());
    let allowed = prepared.allowed_constants(d);
    let mut certain: Option<BTreeSet<Tuple>> = None;
    for world in semantics.worlds(d, &bounds) {
        let answers: BTreeSet<Tuple> = if prepared.is_boolean() {
            boolean_answers(evaluate_boolean(&world, prepared.query().formula()))
        } else {
            evaluate_query(&world, prepared.query())
                .into_iter()
                .filter(|t| t.constants().all(|c| allowed.contains(c)) && t.is_complete())
                .collect()
        };
        let next = match certain.take() {
            None => answers,
            Some(prev) => prev.intersection(&answers).cloned().collect(),
        };
        let empty = next.is_empty();
        certain = Some(next);
        if empty {
            break;
        }
    }
    certain.unwrap_or_default()
}

/// Asserts optimised ≡ unoptimised ≡ interpreter on raw and naïve answers.
/// Returns the optimised plan when the query compiles.
fn assert_exec_equivalent(d: &Instance, q: &Query) -> Option<CompiledQuery> {
    let Ok(optimized) = CompiledQuery::compile(q) else {
        // Rejection is shape-based, so the unoptimised compile must agree.
        assert!(CompiledQuery::compile_with(q, &unoptimized_config()).is_err());
        return None;
    };
    let unoptimized =
        CompiledQuery::compile_with(q, &unoptimized_config()).expect("same shape gate");
    let raw = evaluate_query(d, q);
    assert_eq!(optimized.execute(d).answers, raw, "optimised raw on `{q}`");
    assert_eq!(
        unoptimized.execute(d).answers,
        raw,
        "unoptimised raw on `{q}`"
    );
    let naive = naive_eval_query(d, q);
    assert_eq!(
        optimized.execute_naive(d).answers,
        naive,
        "optimised naive on `{q}`"
    );
    assert_eq!(
        unoptimized.execute_naive(d).answers,
        naive,
        "unoptimised naive on `{q}`"
    );
    Some(optimized)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Raw + naïve equivalence across all five fragments, on the generated
    /// instance and the empty instance.
    #[test]
    fn optimised_plans_match_unoptimised_and_interpreter(seed in 0u64..10_000) {
        let mut fired = 0u64;
        for fragment in Fragment::ALL {
            for (instance, query) in cell_workload(fragment, seed, 3) {
                if let Some(plan) = assert_exec_equivalent(&instance, &query) {
                    fired += plan.rules_fired();
                }
                assert_exec_equivalent(&Instance::new(), &query);
            }
        }
        // The sweep should exercise the optimiser, not just trivial plans.
        prop_assert!(fired > 0, "no rule fired across the whole sweep");
    }

    /// Certain answers across 5 fragments × 3 semantics: optimised dispatch,
    /// unoptimised dispatch and the interpreter-only oracle coincide.
    #[test]
    fn certain_answers_survive_optimisation(seed in 0u64..1_000) {
        let engine = CertainEngine::with_bounds(small_bounds());
        for fragment in Fragment::ALL {
            for semantics in SEMANTICS {
                let cell_seed = seed
                    .wrapping_mul(131)
                    .wrapping_add(semantics as u64 * 17 + fragment as u64);
                for (instance, query) in cell_workload(fragment, cell_seed, 1) {
                    let optimized = PreparedQuery::new(query.clone());
                    let unoptimized =
                        PreparedQuery::with_compiler_config(query, &unoptimized_config());
                    let a = engine.evaluate(&instance, semantics, &optimized);
                    let b = engine.evaluate(&instance, semantics, &unoptimized);
                    prop_assert_eq!(&a.certain, &b.certain, "{} × {}", semantics, fragment);
                    prop_assert_eq!(&a.naive, &b.naive, "{} × {}", semantics, fragment);
                    let oracle = interpreter_certain(&engine, &instance, semantics, &optimized);
                    prop_assert_eq!(
                        &a.certain,
                        &oracle,
                        "{} × {} vs interpreter oracle on\n{}",
                        semantics,
                        fragment,
                        &instance
                    );
                }
            }
        }
    }
}

#[test]
fn zero_rule_plans_stay_byte_identical_to_the_logical_lowering() {
    // A plain join pipeline: nothing to flatten, absorb, dedup or push — the
    // optimiser must leave it alone and say so.
    let q = nev_logic::parse_query("Q(x, y) :- exists z . R(x, z) & S(z, y)").expect("valid");
    let plan = CompiledQuery::compile(&q).expect("compiles");
    assert_eq!(plan.rules_fired(), 0);
    assert_eq!(plan.plan(), plan.logical_plan());
    assert!(plan.explain().contains("0 rules fired"));
    let d = nev_bench::workloads::intro_instance();
    assert_exec_equivalent(&d, &q);
}

#[test]
fn rules_fire_on_the_negation_workload_and_answers_agree() {
    let d = negation_workload(DEFAULT_SEED, 40);
    let q = negation_query();
    let plan = assert_exec_equivalent(&d, &q).expect("compiles");
    assert!(plan.rules_fired() > 0, "{}", plan.explain());
    let report = plan.rules();
    assert!(report.complements_rewritten > 0, "{report:?}");
    assert!(report.pads_absorbed > 0, "{report:?}");
    assert!(report.joins_distributed > 0, "{report:?}");
    // The optimised shape replaced the complement with an anti-join.
    assert!(
        plan.explain_compact().contains("AntiJoin"),
        "{}",
        plan.explain_compact()
    );
    assert!(plan.logical_plan().compact().contains("Complement"));
}

#[test]
fn join_reordering_changes_the_shape_and_answers_agree() {
    let d = skewed_join_workload(DEFAULT_SEED, 90, 2);
    let q = join_chain_query();
    let plan = assert_exec_equivalent(&d, &q).expect("compiles");
    let mut stats = ExecStats::new();
    let interned = nev_exec::InternedInstance::new(&d);
    let answers = plan.execute_interned(&interned, true, &mut stats);
    assert_eq!(answers, naive_eval_query(&d, &q));
    assert!(
        stats.joins_reordered > 0,
        "the skewed cardinalities must trigger a reorder: {stats}"
    );
    assert!(stats.estimated_rows > 0);
    // The unoptimised baseline executes in written order.
    let baseline = CompiledQuery::compile_with(&q, &unoptimized_config()).expect("compiles");
    let mut base_stats = ExecStats::new();
    let base_answers = baseline.execute_interned(&interned, true, &mut base_stats);
    assert_eq!(base_answers, answers);
    assert_eq!(base_stats.joins_reordered, 0);
    assert!(
        base_stats.intermediate_rows > stats.intermediate_rows,
        "reordering must shrink intermediates: {base_stats} vs {stats}"
    );
}

#[test]
fn batch_and_oracle_paths_agree_under_optimisation() {
    // The bounded oracle's per-world executions and the batch's shared pass run
    // the optimised plan too — spot-check both against the interpreter oracle.
    let engine = CertainEngine::with_bounds(small_bounds());
    let d = nev_bench::workloads::d0();
    let queries = [
        engine.prepare("exists u . !D(u, u)").expect("valid"),
        engine
            .prepare("forall u . exists v . D(u, v)")
            .expect("valid"),
        engine
            .prepare("Q(u) :- exists v . D(u, v) & !D(v, u)")
            .expect("valid"),
    ];
    for semantics in SEMANTICS {
        let batch = engine.evaluate_all(&d, semantics, &queries);
        for (i, q) in queries.iter().enumerate() {
            let solo = engine.evaluate(&d, semantics, q);
            assert_eq!(batch.results[i].certain, solo.certain, "query {i}");
            let oracle = interpreter_certain(&engine, &d, semantics, q);
            assert_eq!(solo.certain, oracle, "query {i} under {semantics}");
        }
    }
}
