//! Property tests for the `CertainEngine`: on seeded generated workloads across all
//! 6 semantics × 5 fragments,
//!
//! * the engine's planned dispatch returns **identical answers** to its forced
//!   bounded oracle and to the raw interpreter's naïve pass — the certified naïve
//!   fast path never changes a result, it only skips work;
//! * `CertifiedNaive` plans are chosen **only** for cells Figure 1 guarantees
//!   (`Works` unconditionally, `WorksOverCores` after verifying the instance is a
//!   core), and every issued certificate passes its own `check()`;
//! * `evaluate_all` enumerates an instance's worlds at most once and reproduces the
//!   per-query oracle answers under the shared (merged-constants) bounds.

use proptest::prelude::*;

use nev_bench::workloads::cell_workload;
use nev_core::engine::{CertainEngine, PreparedQuery};
use nev_core::summary::{expectation, Expectation, FRAGMENTS};
use nev_core::{Semantics, WorldBounds};
use nev_hom::{core_of, is_core};

fn bounds() -> WorldBounds {
    WorldBounds {
        owa_max_extra_tuples: 1,
        wcwa_max_extra_tuples: 2,
        ..WorldBounds::default()
    }
}

/// One seeded trial per Figure 1 cell; `WorksOverCores` cells are exercised on the
/// core of the generated instance, mirroring the Figure 1 harness.
fn cell_trials(
    seed: u64,
) -> impl Iterator<Item = (Semantics, PreparedQuery, nev_incomplete::Instance)> {
    Semantics::ALL.into_iter().flat_map(move |semantics| {
        FRAGMENTS.into_iter().map(move |fragment| {
            let cell_seed = seed
                .wrapping_mul(131)
                .wrapping_add(semantics as u64 * 31 + fragment as u64);
            let (instance, query) = cell_workload(fragment, cell_seed, 1)
                .pop()
                .expect("one trial");
            let instance = if expectation(semantics, fragment) == Expectation::WorksOverCores {
                core_of(&instance)
            } else {
                instance
            };
            (semantics, PreparedQuery::new(query), instance)
        })
    })
}

proptest! {
    // Plans never enumerate worlds, so this property can afford many seeds.
    #![proptest_config(ProptestConfig { cases: 25, .. ProptestConfig::default() })]

    /// `CertifiedNaive` is chosen exactly where Figure 1 guarantees it, and every
    /// certificate re-checks against the machine-readable table.
    #[test]
    fn certified_plans_only_on_guaranteed_cells(seed in 0u64..10_000) {
        let engine = CertainEngine::with_bounds(bounds());
        for (semantics, query, instance) in cell_trials(seed) {
            let plan = engine.plan(&instance, semantics, &query);
            // The generator targets a fragment but classification picks the smallest
            // one, so consult the table for the query's *actual* fragment.
            let cell = expectation(semantics, query.fragment());
            let should_certify = match cell {
                Expectation::Works => true,
                Expectation::WorksOverCores => is_core(&instance),
                Expectation::NotGuaranteed => false,
            };
            if plan.is_normalized() {
                // A normalized upgrade is only legal where the raw cell carries
                // no guarantee but the normal form's cell does.
                prop_assert!(!should_certify, "{} × {}", semantics, query.fragment());
                let upgraded = expectation(semantics, query.normalized_fragment());
                let upgrade_ok = match upgraded {
                    Expectation::Works => true,
                    Expectation::WorksOverCores => is_core(&instance),
                    Expectation::NotGuaranteed => false,
                };
                prop_assert!(
                    upgrade_ok,
                    "{} × {} normalized to {}",
                    semantics,
                    query.fragment(),
                    query.normalized_fragment()
                );
            } else {
                prop_assert_eq!(
                    plan.is_certified(),
                    should_certify,
                    "{} × {} on core={}",
                    semantics,
                    query.fragment(),
                    is_core(&instance)
                );
            }
            if let Some(cert) = plan.certificate() {
                prop_assert!(cert.check(), "{} × {}", semantics, query.fragment());
            }
        }
    }
}

proptest! {
    // Each case sweeps all 30 cells through the bounded oracle — keep the count low.
    #![proptest_config(ProptestConfig { cases: 3, .. ProptestConfig::default() })]

    /// The planned dispatch (certified fast path included) returns exactly the same
    /// answers as the forced bounded oracle, and its naïve side matches the raw
    /// tree-walking interpreter, on every cell of Figure 1.
    #[test]
    fn engine_answers_match_the_oracle_path(seed in 0u64..1_000) {
        let engine = CertainEngine::with_bounds(bounds());
        for (semantics, query, instance) in cell_trials(seed) {
            let planned = engine.evaluate(&instance, semantics, &query);
            let oracle = engine.compare(&instance, semantics, &query);
            let interpreter = nev_logic::naive_eval_query(&instance, query.query());
            prop_assert_eq!(
                &planned.certain,
                &oracle.certain,
                "{} × {}: dispatch changed the answer on\n{}",
                semantics,
                query.fragment(),
                instance
            );
            prop_assert_eq!(&planned.naive, &interpreter, "{}", semantics);
            prop_assert_eq!(&oracle.naive, &interpreter, "{}", semantics);
            if planned.plan.is_certified() {
                prop_assert_eq!(planned.worlds_enumerated, 0);
                prop_assert!(oracle.agrees(), "{} × {}", semantics, query.fragment());
            }
        }
    }

    /// Batched evaluation performs at most one world pass per instance and
    /// reproduces the per-query answers under the same merged bounds.
    #[test]
    fn evaluate_all_is_single_pass_and_answer_preserving(seed in 0u64..1_000) {
        for semantics in [Semantics::Owa, Semantics::Cwa, Semantics::PowersetCwa] {
            // One shared instance, one query per fragment.
            let (instance, _) = cell_workload(nev_logic::Fragment::Positive, seed ^ 0xabcd, 1)
                .pop()
                .expect("one instance");
            let queries: Vec<PreparedQuery> = FRAGMENTS
                .into_iter()
                .map(|fragment| {
                    let (_, query) = cell_workload(fragment, seed.wrapping_add(fragment as u64), 1)
                        .pop()
                        .expect("one query");
                    PreparedQuery::new(query)
                })
                .collect();

            let engine = CertainEngine::with_bounds(bounds());
            let batch = engine.evaluate_all(&instance, semantics, &queries);
            prop_assert!(batch.enumeration_passes <= 1, "{semantics}");
            prop_assert_eq!(batch.results.len(), queries.len());

            // Reference: per-query evaluation under the merged constant budget the
            // batch used for its shared pass — the constants of the queries that
            // actually needed enumeration (certified queries never contribute).
            let mut merged = bounds();
            for query in queries
                .iter()
                .filter(|q| !engine.plan(&instance, semantics, q).is_certified())
            {
                merged.extra_constants.extend(query.constants().iter().cloned());
            }
            let reference = CertainEngine::with_bounds(merged);
            let mut reference_worlds = 0usize;
            for (query, result) in queries.iter().zip(&batch.results) {
                let solo = if result.plan.is_certified() {
                    reference.evaluate(&instance, semantics, query)
                } else {
                    reference.compare(&instance, semantics, query)
                };
                reference_worlds += solo.worlds_enumerated;
                prop_assert_eq!(
                    &result.certain,
                    &solo.certain,
                    "{} × {} on\n{}",
                    semantics,
                    query.fragment(),
                    instance
                );
            }
            // The single shared pass never visits more worlds than the sequential
            // per-query passes it replaces.
            prop_assert!(batch.worlds_enumerated <= reference_worlds, "{semantics}");
            if batch.enumeration_passes == 0 {
                prop_assert_eq!(batch.worlds_enumerated, 0);
            }
        }
    }
}
