//! Cross-crate property-based tests: invariants tying together the substrate crates
//! (`nev-incomplete`, `nev-hom`), the query layer (`nev-logic`) and the semantics
//! layer (`nev-core`).

use std::collections::BTreeSet;

use proptest::prelude::*;

use nev_core::engine::{CertainEngine, PreparedQuery};
use nev_core::monotone::weakly_monotone_at;
use nev_core::{Semantics, WorldBounds};
use nev_gen::{FormulaGenerator, FormulaGeneratorConfig};
use nev_hom::iso::isomorphic_fixing_constants;
use nev_hom::search::{has_db_homomorphism, has_strong_onto_db_homomorphism};
use nev_hom::{core_of, is_core, ValueMap};
use nev_incomplete::{Instance, Schema, Tuple, Value};
use nev_logic::ast::Term;
use nev_logic::cq::ConjunctiveQuery;
use nev_logic::eval::evaluate_query;
use nev_logic::fragment::{is_in_fragment, Fragment};
use nev_logic::parser::parse_formula;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (1i64..=3).prop_map(Value::int),
        (1u32..=3).prop_map(Value::null)
    ]
}

/// Small instances over R/2 and S/1.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    let binary = proptest::collection::vec((value_strategy(), value_strategy()), 0..=3);
    let unary = proptest::collection::vec(value_strategy(), 0..=2);
    (binary, unary).prop_map(|(r_tuples, s_tuples)| {
        let mut inst = Instance::empty_of_schema(&Schema::from_relations([("R", 2), ("S", 1)]));
        for (a, b) in r_tuples {
            inst.add_tuple("R", Tuple::new(vec![a, b])).unwrap();
        }
        for a in s_tuples {
            inst.add_tuple("S", Tuple::new(vec![a])).unwrap();
        }
        inst
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    /// The core is a subinstance, hom-equivalent to the original, itself a core, and
    /// computing it twice is idempotent.
    #[test]
    fn core_invariants(d in instance_strategy()) {
        let core = core_of(&d);
        prop_assert!(core.is_subinstance_of(&d));
        prop_assert!(is_core(&core));
        prop_assert!(has_db_homomorphism(&d, &core));
        prop_assert!(has_db_homomorphism(&core, &d));
        prop_assert_eq!(core_of(&core), core);
    }

    /// Freezing nulls yields a complete instance isomorphic to the original (the
    /// saturation witness), and it is a CWA world of the original.
    #[test]
    fn freeze_nulls_saturation(d in instance_strategy()) {
        let frozen = d.freeze_nulls(&BTreeSet::new());
        prop_assert!(frozen.is_complete());
        prop_assert!(isomorphic_fixing_constants(&d, &frozen));
        prop_assert!(has_strong_onto_db_homomorphism(&d, &frozen));
        prop_assert!(Semantics::Cwa.contains_world(&d, &frozen));
    }

    /// Applying a valuation-like collapse produces a homomorphic image comparable in
    /// every ordering, and the canonical form is invariant under null renaming.
    #[test]
    fn canonical_form_is_renaming_invariant(d in instance_strategy(), offset in 10u32..50) {
        let renamed = d.map_values(|v| match v {
            Value::Null(n) => Value::null(n.0 + offset),
            c => c.clone(),
        });
        prop_assert_eq!(d.canonical_form(), renamed.canonical_form());
        prop_assert!(isomorphic_fixing_constants(&d, &renamed));
    }

    /// CQ evaluation by homomorphism coincides with active-domain FO evaluation.
    #[test]
    fn cq_hom_evaluation_matches_fo(d in instance_strategy()) {
        let cq = ConjunctiveQuery::new(
            ["a", "b"],
            vec![
                ("R".into(), vec![Term::var("a"), Term::var("c")]),
                ("R".into(), vec![Term::var("c"), Term::var("b")]),
            ],
        ).unwrap();
        let by_hom = cq.evaluate_via_homomorphisms(&d);
        let by_fo = evaluate_query(&d, &cq.to_query().unwrap());
        prop_assert_eq!(by_hom, by_fo);
    }

    /// Collapsing all nulls to a constant is a homomorphic image: every UCQ true in
    /// the original stays true (hand-rolled preservation check).
    #[test]
    fn homomorphic_images_preserve_ucqs(d in instance_strategy()) {
        let collapse = ValueMap::from_pairs(
            d.nulls().into_iter().map(|n| (Value::Null(n), Value::int(1))),
        );
        let image = collapse.apply_instance(&d);
        let q = nev_logic::Query::boolean(
            parse_formula("exists u v . R(u, v) & S(v)").unwrap(),
        );
        let before = nev_logic::eval::naive_eval_boolean(&d, &q);
        let after = nev_logic::eval::naive_eval_boolean(&image, &q);
        prop_assert!(!before || after);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 30, .. ProptestConfig::default() })]

    /// Rendered formulas re-parse to the same AST, for random formulas of every
    /// fragment — the parser/printer pair is a faithful round-trip on the whole
    /// generator codomain, not just hand-picked exemplars.
    #[test]
    fn generated_formulas_round_trip_through_the_parser(seed in 0u64..10_000) {
        for fragment in [
            Fragment::ExistentialPositive,
            Fragment::Positive,
            Fragment::PositiveGuarded,
            Fragment::ExistentialPositiveBooleanGuarded,
            Fragment::FullFirstOrder,
        ] {
            let mut formulas = FormulaGenerator::new(
                FormulaGeneratorConfig {
                    fragment,
                    schema: Schema::from_relations([("R", 2), ("S", 1)]),
                    max_depth: 3,
                    ..FormulaGeneratorConfig::default()
                },
                seed,
            );
            let q = formulas.generate_sentence();
            let rendered = q.formula().to_string();
            let reparsed = parse_formula(&rendered).unwrap_or_else(|e| {
                panic!("{fragment}: rendered formula `{rendered}` failed to parse: {e}")
            });
            prop_assert_eq!(
                q.formula(),
                &reparsed,
                "{}: round-trip changed `{}`",
                fragment,
                rendered
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 25, .. ProptestConfig::default() })]

    /// Normalization preserves active-domain semantics: for generated formulas of
    /// every fragment — constants in atoms included — the normal form's naïve
    /// answers equal the original's, on generated instances and on the empty
    /// instance alike, and the analyser's own certificate checks concur.
    #[test]
    fn normalization_preserves_naive_semantics(d in instance_strategy(), seed in 0u64..10_000) {
        let schema = Schema::from_relations([("R", 2), ("S", 1)]);
        let empty = Instance::empty_of_schema(&schema);
        for fragment in [
            Fragment::ExistentialPositive,
            Fragment::Positive,
            Fragment::PositiveGuarded,
            Fragment::ExistentialPositiveBooleanGuarded,
            Fragment::FullFirstOrder,
        ] {
            let mut formulas = FormulaGenerator::new(
                FormulaGeneratorConfig {
                    fragment,
                    schema: schema.clone(),
                    max_depth: 3,
                    constant_probability: 0.3,
                    ..FormulaGeneratorConfig::default()
                },
                seed,
            );
            let q = formulas.generate_sentence();
            let analysis = nev_analyze::analyze(&q);
            prop_assert!(
                analysis.check().is_ok(),
                "{}: trace replay failed on `{}`",
                fragment,
                q.formula()
            );
            for instance in [&d, &empty] {
                prop_assert_eq!(
                    nev_logic::naive_eval_query(instance, &q),
                    nev_logic::naive_eval_query(instance, analysis.normalized()),
                    "{}: normalization changed `{}` into `{}`",
                    fragment,
                    q.formula(),
                    analysis.normalized().formula()
                );
                prop_assert!(analysis.check_on(instance).is_ok(), "{}", fragment);
            }
        }
    }
}

proptest! {
    // These properties run the certain-answer oracle, so keep the case count lower.
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Random ∃Pos sentences are weakly monotone and naïve-evaluable under CWA and
    /// OWA (Fact 1 / Theorem 5.2), on random instances.
    #[test]
    fn random_ucqs_naive_evaluate_correctly(d in instance_strategy(), seed in 0u64..1000) {
        let mut formulas = FormulaGenerator::new(
            FormulaGeneratorConfig {
                fragment: Fragment::ExistentialPositive,
                schema: Schema::from_relations([("R", 2), ("S", 1)]),
                max_depth: 2,
                ..FormulaGeneratorConfig::default()
            },
            seed,
        );
        let q = formulas.generate_sentence();
        prop_assert!(is_in_fragment(q.formula(), Fragment::ExistentialPositive));
        let bounds = WorldBounds { owa_max_extra_tuples: 1, ..WorldBounds::default() };
        let engine = CertainEngine::with_bounds(bounds.clone());
        let prepared = PreparedQuery::new(q.clone());
        for sem in [Semantics::Cwa, Semantics::Owa] {
            prop_assert!(weakly_monotone_at(&d, &q, sem, &bounds));
            let report = engine.compare(&d, sem, &prepared);
            prop_assert!(report.agrees(), "{}: {:?}", sem, report);
        }
    }

    /// Whatever the query, naïve evaluation never *undershoots* under CWA on
    /// instances without nulls (on complete instances every semantics has exactly the
    /// instance itself as world, so naïve evaluation is trivially exact).
    #[test]
    fn complete_instances_are_exact(d in instance_strategy(), seed in 0u64..1000) {
        let complete = d.freeze_nulls(&BTreeSet::new());
        let mut formulas = FormulaGenerator::new(
            FormulaGeneratorConfig {
                fragment: Fragment::FullFirstOrder,
                schema: Schema::from_relations([("R", 2), ("S", 1)]),
                max_depth: 2,
                ..FormulaGeneratorConfig::default()
            },
            seed,
        );
        let q = PreparedQuery::new(formulas.generate_sentence());
        let engine = CertainEngine::new();
        for sem in [Semantics::Cwa, Semantics::MinimalCwa, Semantics::PowersetCwa] {
            let report = engine.compare(&complete, sem, &q);
            prop_assert!(report.agrees(), "{}", sem);
        }
    }
}
