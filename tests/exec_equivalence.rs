//! Differential property suite: the compiled `nev-exec` executor is
//! answer-identical to the tree-walking interpreter.
//!
//! * On seeded generated workloads across **all five fragments**, every query the
//!   compiler accepts satisfies `execute ≡ evaluate_query` (raw answers, nulls
//!   included) and `execute_naive ≡ naive_eval_query` (naïve answers) — on the
//!   generated instance, on its empty-schema variant, and on the empty instance.
//! * Handcrafted edge cases: empty instances, constants in atoms (present and
//!   absent from the instance), answer variables absent from the formula, repeated
//!   variables, equality atoms, shadowed quantifiers.
//! * Fallback behaviour: queries the compiler rejects (wide active-domain
//!   complements) route to the interpreter — `PreparedQuery::compiles()` is false,
//!   the engine's plan is `CertifiedNaive` (not `CompiledNaive`) on guaranteed
//!   cells, `ExecStats::fallbacks > 0`, and the answers are identical to the
//!   oracle's.
//! * Morsel-driven parallelism: execution under a shared worker pool — at worker
//!   counts 0, 1, 2 and 8, with a morsel size small enough that real workloads
//!   fan out — returns exactly the sequential (and hence interpreter) answers,
//!   and the morsel telemetry is identical at every worker count.

use std::sync::Arc;

use proptest::prelude::*;

use nev_bench::workloads::cell_workload;
use nev_core::engine::{CertainEngine, EvalPlan, PreparedQuery};
use nev_core::{Semantics, WorldBounds};
use nev_exec::{CompileError, CompiledQuery, ExecOptions};
use nev_incomplete::Instance;
use nev_logic::eval::{evaluate_query, naive_eval_query};
use nev_logic::{parse_query, Fragment, Query};
use nev_serve::WorkerPool;

/// Asserts compiled ≡ interpreter on one (instance, query) pair; returns whether
/// the query compiled.
fn assert_equivalent(d: &Instance, q: &Query) -> bool {
    let Ok(compiled) = CompiledQuery::compile(q) else {
        return false;
    };
    assert_eq!(
        compiled.execute(d).answers,
        evaluate_query(d, q),
        "raw answers differ for `{q}` on\n{d}"
    );
    assert_eq!(
        compiled.execute_naive(d).answers,
        naive_eval_query(d, q),
        "naive answers differ for `{q}` on\n{d}"
    );
    true
}

/// Asserts that execution under every one of `options` matches the plain
/// sequential executor (raw and naïve answers) on one (instance, query) pair,
/// and that the morsel telemetry does not depend on the worker count.
fn assert_parallel_equivalent(d: &Instance, q: &Query, options: &[ExecOptions]) {
    let Ok(compiled) = CompiledQuery::compile(q) else {
        return;
    };
    let raw = compiled.execute(d);
    let naive = compiled.execute_naive(d);
    let mut telemetry: Option<(u64, u64, u64)> = None;
    for opt in options {
        let praw = compiled.execute_with(d, opt);
        assert_eq!(
            praw.answers,
            raw.answers,
            "raw answers differ at workers={} for `{q}` on\n{d}",
            opt.workers()
        );
        let pnaive = compiled.execute_naive_with(d, opt);
        assert_eq!(
            pnaive.answers,
            naive.answers,
            "naive answers differ at workers={} for `{q}` on\n{d}",
            opt.workers()
        );
        // Core counters are unchanged by the morsel path; morsel counters are a
        // function of the data, identical at every parallel-capable worker
        // count, and zero when the pool cannot add capacity (< 2 workers —
        // those runs take the sequential kernels unchanged).
        assert_eq!(pnaive.stats.rows_scanned, naive.stats.rows_scanned);
        assert_eq!(pnaive.stats.hash_probes, naive.stats.hash_probes);
        assert_eq!(
            pnaive.stats.intermediate_rows,
            naive.stats.intermediate_rows
        );
        let morsel_counts = (
            pnaive.stats.morsels_dispatched,
            pnaive.stats.batches_processed,
            pnaive.stats.parallel_joins,
        );
        if opt.workers() < 2 {
            assert_eq!(
                morsel_counts,
                (0, 0, 0),
                "a capacity-less pool must not fan out for `{q}`"
            );
            continue;
        }
        match telemetry {
            None => telemetry = Some(morsel_counts),
            Some(first) => assert_eq!(
                morsel_counts, first,
                "morsel telemetry depends on the worker count for `{q}`"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, .. ProptestConfig::default() })]

    /// Compiled execution matches the interpreter on seeded workloads of every
    /// fragment, including on the empty instance.
    #[test]
    fn compiled_executor_matches_the_interpreter(seed in 0u64..10_000) {
        let mut compiled_count = 0usize;
        let mut total = 0usize;
        for fragment in Fragment::ALL {
            for (instance, query) in cell_workload(fragment, seed, 4) {
                total += 1;
                if assert_equivalent(&instance, &query) {
                    compiled_count += 1;
                }
                // The same query on an empty instance: quantifiers over an empty
                // active domain are the classic off-by-one in both engines.
                assert_equivalent(&Instance::new(), &query);
            }
        }
        // The guard only rejects wide complements, so the generated workloads
        // should compile overwhelmingly; an empty sample would make this suite
        // vacuous.
        prop_assert!(compiled_count * 2 >= total, "{compiled_count}/{total} compiled");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Morsel-parallel execution is answer- and telemetry-identical to the
    /// sequential executor at worker counts 0, 1, 2 and 8, across all five
    /// fragments — with a morsel size of one so even the small generated
    /// instances exercise the parallel scan and partitioned-join paths, and on
    /// the empty instance (which must dispatch no morsels at all).
    #[test]
    fn parallel_execution_matches_sequential_on_every_fragment(seed in 0u64..10_000) {
        let options: Vec<ExecOptions> = [0usize, 1, 2, 8]
            .iter()
            .map(|&workers| ExecOptions {
                pool: Some(Arc::new(WorkerPool::new(workers))),
                morsel_rows: 1,
            })
            .collect();
        for fragment in Fragment::ALL {
            for (instance, query) in cell_workload(fragment, seed, 2) {
                assert_parallel_equivalent(&instance, &query, &options);
                assert_parallel_equivalent(&Instance::new(), &query, &options);
            }
        }
    }
}

#[test]
fn empty_and_tiny_instances_dispatch_no_morsels_at_default_granularity() {
    // At the default morsel size, instances below 2 × morsel_rows rows must
    // never cross a thread boundary — the parallel path is an opt-in for bulk.
    let options = ExecOptions::with_pool(Arc::new(WorkerPool::new(4)));
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    let tiny = inst! { "R" => [[c(1), x(1)], [x(2), x(3)]], "S" => [[x(1), c(4)]] };
    for d in [&Instance::new(), &tiny] {
        let q = parse_query("Q(u, w) :- exists v . R(u, v) & S(v, w)").expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let out = compiled.execute_naive_with(d, &options);
        assert_eq!(out.stats.morsels_dispatched, 0);
        assert_eq!(out.stats.batches_processed, 0);
        assert_eq!(out.stats.parallel_joins, 0);
        assert_eq!(out.answers, compiled.execute_naive(d).answers);
    }
}

#[test]
fn edge_cases_match_the_interpreter() {
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    let instances = [
        Instance::new(),
        inst! { "R" => [[c(1), c(2)]] },
        inst! { "R" => [[c(1), x(1)], [x(2), x(3)]], "S" => [[x(1), c(4)], [x(3), c(5)]] },
        inst! { "R" => [[x(1), x(1)], [x(1), x(2)]] },
        inst! { "R" => [[c(1), c(1)]], "S" => [[c(2), c(2)]] },
    ];
    let queries = [
        // Constants in atoms, present and absent from the instance.
        "exists u . R(1, u)",
        "exists u . R(9, u)",
        "Q(u) :- R(u, 2)",
        // Answer variables absent from the formula range over adom.
        "Q(u, v) :- R(u, u)",
        "Q(v) :- exists u . R(u, u)",
        // Repeated variables and equality atoms.
        "Q(u) :- R(u, u)",
        "exists u v . R(u, v) & u = v",
        "exists u . R(u, u) & u = 1",
        "exists u . u = u",
        // Shadowed quantifier: the inner u is independent of the outer one.
        "Q(u) :- R(u, u) & (exists u . S(u, u))",
        // Negation, guarded universals, plain universals.
        "exists u . !R(u, u)",
        "forall u v . R(u, v) -> R(v, u)",
        "forall u . exists v . R(u, v)",
        "Q(u) :- exists v . R(u, v) & !S(v, u)",
        // Disjunction with differing free-variable sets per disjunct.
        "Q(u, v) :- R(u, v) | S(v, u)",
        "Q(u, v) :- R(u, u) | S(v, v)",
    ];
    for d in &instances {
        for text in queries {
            let q = parse_query(text).expect("valid query");
            assert!(assert_equivalent(d, &q), "`{text}` should compile");
        }
    }
}

/// Queries whose lowering needs an active-domain complement wider than the
/// default limit: the compiler must reject them with `ComplementTooWide`.
fn rejected_queries() -> Vec<Query> {
    [
        "forall u v w t . R(u, v) & R(w, t)",
        "forall u v w t . R(u, v) | R(w, t)",
        "Q(a, b, e, f) :- !(R(a, b) & R(e, f))",
    ]
    .into_iter()
    .map(|text| parse_query(text).expect("valid query"))
    .collect()
}

#[test]
fn wide_complements_are_rejected_with_a_typed_error() {
    for q in rejected_queries() {
        let err = CompiledQuery::compile(&q).expect_err("must reject");
        assert!(
            matches!(
                err,
                CompileError::ComplementTooWide {
                    columns: 4,
                    limit: 3
                }
            ),
            "`{q}`: {err:?}"
        );
    }
}

#[test]
fn rejected_queries_fall_back_to_the_interpreter_with_identical_answers() {
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    let engine = CertainEngine::with_bounds(WorldBounds {
        owa_max_extra_tuples: 1,
        wcwa_max_extra_tuples: 1,
        ..WorldBounds::default()
    });
    let instances = [
        inst! { "R" => [[c(1), c(1)]] },
        inst! { "R" => [[c(1), x(1)], [x(1), c(1)]] },
    ];
    for query in rejected_queries() {
        let prepared = PreparedQuery::new(query.clone());
        assert!(!prepared.compiles(), "`{query}` must not compile");
        for d in &instances {
            for semantics in Semantics::ALL {
                let eval = engine.evaluate(d, semantics, &prepared);
                // The fallback is visible in the telemetry...
                assert!(
                    eval.exec.fallbacks > 0,
                    "`{query}` under {semantics}: {}",
                    eval.exec
                );
                assert!(!eval.plan.is_compiled());
                if let EvalPlan::CertifiedNaive(cert) = eval.plan {
                    assert_eq!(
                        cert.executor,
                        nev_core::engine::Executor::Interpreter,
                        "`{query}` under {semantics}"
                    );
                }
                // ...and the answers are exactly the interpreter's.
                assert_eq!(
                    eval.naive,
                    naive_eval_query(d, &query),
                    "`{query}` under {semantics}"
                );
                let oracle = engine.compare(d, semantics, &prepared);
                assert_eq!(
                    eval.certain, oracle.certain,
                    "`{query}` under {semantics}: dispatch changed the answer"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, .. ProptestConfig::default() })]

    /// The engine's planned dispatch (compiled fast path included) never changes an
    /// answer relative to its own forced oracle, on any Figure 1 cell — the
    /// compiled-executor extension of the PR 2 equivalence property.
    #[test]
    fn engine_dispatch_with_compiled_plans_is_answer_preserving(seed in 0u64..1_000) {
        let engine = CertainEngine::with_bounds(WorldBounds {
            owa_max_extra_tuples: 1,
            wcwa_max_extra_tuples: 2,
            ..WorldBounds::default()
        });
        for semantics in Semantics::ALL {
            for fragment in Fragment::ALL {
                let cell_seed = seed
                    .wrapping_mul(97)
                    .wrapping_add(semantics as u64 * 13 + fragment as u64);
                for (instance, query) in cell_workload(fragment, cell_seed, 1) {
                    let prepared = PreparedQuery::new(query);
                    let planned = engine.evaluate(&instance, semantics, &prepared);
                    let oracle = engine.compare(&instance, semantics, &prepared);
                    prop_assert_eq!(&planned.naive, &oracle.naive, "{} × {}", semantics, fragment);
                    if planned.plan.is_certified() {
                        prop_assert_eq!(planned.worlds_enumerated, 0);
                        prop_assert_eq!(
                            &planned.certain,
                            &oracle.certain,
                            "{} × {} on\n{}",
                            semantics,
                            fragment,
                            &instance
                        );
                    }
                    if planned.plan.is_compiled() {
                        prop_assert_eq!(planned.exec.fallbacks, 0);
                    } else if prepared.compiles() {
                        // Bounded cells with a compiled plan still use it per world.
                        prop_assert_eq!(planned.exec.fallbacks, 0);
                    } else {
                        prop_assert!(planned.exec.fallbacks > 0);
                    }
                }
            }
        }
    }
}
