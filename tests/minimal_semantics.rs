//! Integration tests for the minimal-valuation semantics and the role of cores
//! (experiments E7 and E8 of `DESIGN.md`, paper §9–§11).

use std::collections::BTreeSet;

use nev_core::cores::{
    agrees_with_core, naive_evaluation_works_on_core, naive_is_sound_approximation,
    representative_core_semantics_match,
};
use nev_core::domain::RelationalDomain;
use nev_core::engine::{CertainEngine, PreparedQuery};
use nev_core::{Semantics, WorldBounds};
use nev_gen::{
    FormulaGenerator, FormulaGeneratorConfig, InstanceGenerator, InstanceGeneratorConfig,
};
use nev_hom::minimal::{enumerate_minimal_cwa_worlds, enumerate_minimal_valuations};
use nev_hom::{core_of, is_core};
use nev_incomplete::builder::x;
use nev_incomplete::inst;
use nev_incomplete::{Instance, Schema};
use nev_logic::fragment::Fragment;
use nev_logic::parse_query;

/// The §10 running example: D = {(⊥,⊥),(⊥,⊥′)}.
fn paper_d() -> Instance {
    inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] }
}

#[test]
fn minimal_valuations_collapse_the_second_null() {
    // §10: v(⊥)=1, v(⊥′)=2 is not D-minimal; every minimal valuation identifies the
    // two nulls, so every ⟦D⟧min_CWA world is a single self-loop.
    let d = paper_d();
    let minimal = enumerate_minimal_valuations(&d, &BTreeSet::new());
    assert!(!minimal.is_empty());
    for v in &minimal {
        assert_eq!(v.apply(&x(1)), v.apply(&x(2)));
    }
    for world in enumerate_minimal_cwa_worlds(&d, &BTreeSet::new()) {
        assert_eq!(world.fact_count(), 1);
    }
}

#[test]
fn e7_naive_evaluation_fails_off_cores_but_works_on_them() {
    let d = paper_d();
    let q = parse_query("forall u . D(u, u)").unwrap();
    let bounds = WorldBounds::default();

    // The certain answer under ⟦ ⟧min_CWA is true, naive evaluation says false.
    let engine = CertainEngine::with_bounds(bounds.clone());
    let report = engine.compare(&d, Semantics::MinimalCwa, &PreparedQuery::new(q.clone()));
    assert!(!report.agrees());
    assert!(report.naive_undershoots());

    // The culprit is the precondition of Corollary 10.6: Q distinguishes D from core(D).
    assert!(!agrees_with_core(&d, &q));

    // Restricting to the core restores the equivalence (Corollary 10.12).
    assert!(naive_evaluation_works_on_core(
        &d,
        &q,
        Semantics::MinimalCwa,
        &bounds
    ));
    assert!(naive_evaluation_works_on_core(
        &d,
        &q,
        Semantics::MinimalPowersetCwa,
        &bounds
    ));
}

#[test]
fn cores_are_a_representative_set() {
    // Theorem 10.2 / Proposition 10.4 on a batch of random instances: the minimal
    // semantics cannot distinguish an instance from its core.
    let config = InstanceGeneratorConfig {
        schema: Schema::from_relations([("R", 2)]),
        tuples_per_relation: (1, 3),
        constant_pool: 2,
        null_pool: 3,
        null_probability: 0.6,
        codd: false,
    };
    let mut generator = InstanceGenerator::new(config, 2013);
    let bounds = WorldBounds::default();
    for _ in 0..10 {
        let d = generator.generate();
        for sem in [Semantics::MinimalCwa, Semantics::MinimalPowersetCwa] {
            assert!(
                representative_core_semantics_match(&d, sem, &bounds),
                "{sem} distinguishes an instance from its core:\n{d}"
            );
        }
    }
}

#[test]
fn saturation_holds_exactly_on_cores_for_minimal_semantics() {
    // §9: the minimal semantics are not saturated; the saturated subdomain is the set
    // of cores.
    let domain = RelationalDomain::new(Semantics::MinimalCwa);
    let non_core = paper_d();
    assert!(!is_core(&non_core));
    assert!(!domain.is_saturated_at(&non_core));
    let core = core_of(&non_core);
    assert!(is_core(&core));
    assert!(domain.is_saturated_at(&core));

    // A saturated semantics is saturated everywhere.
    let cwa_domain = RelationalDomain::new(Semantics::Cwa);
    assert!(cwa_domain.is_saturated_at(&non_core));
    assert!(cwa_domain.is_saturated_at(&core));
}

#[test]
fn e8_soundness_of_naive_evaluation_for_guarded_fragments() {
    // Proposition 10.13 on random Pos+∀G and ∃Pos+∀G_bool queries: naive answers are
    // always contained in the certain answers under the minimal semantics — even on
    // non-core instances.
    let schema = Schema::from_relations([("R", 2), ("S", 1)]);
    let instance_config = InstanceGeneratorConfig {
        schema: schema.clone(),
        tuples_per_relation: (1, 2),
        constant_pool: 2,
        null_pool: 2,
        null_probability: 0.5,
        codd: false,
    };
    let bounds = WorldBounds::default();
    for fragment in [
        Fragment::PositiveGuarded,
        Fragment::ExistentialPositiveBooleanGuarded,
    ] {
        let mut instances = InstanceGenerator::new(instance_config.clone(), 7 + fragment as u64);
        let mut formulas = FormulaGenerator::new(
            FormulaGeneratorConfig {
                fragment,
                schema: schema.clone(),
                max_depth: 2,
                ..FormulaGeneratorConfig::default()
            },
            99 + fragment as u64,
        );
        for _ in 0..8 {
            let d = instances.generate();
            let q = formulas.generate_sentence();
            for sem in [Semantics::MinimalCwa, Semantics::MinimalPowersetCwa] {
                assert!(
                    naive_is_sound_approximation(&d, &q, sem, &bounds),
                    "{sem}: naive answers escaped the certain answers for `{q}` on\n{d}"
                );
            }
        }
    }
}

#[test]
fn ucqs_work_even_off_cores_under_minimal_semantics() {
    // ∃Pos queries never distinguish an instance from its core, so naive evaluation
    // computes certain answers under the minimal semantics on arbitrary instances.
    let schema = Schema::from_relations([("R", 2), ("S", 1)]);
    let instance_config = InstanceGeneratorConfig {
        schema: schema.clone(),
        tuples_per_relation: (1, 2),
        constant_pool: 2,
        null_pool: 2,
        null_probability: 0.5,
        codd: false,
    };
    let mut instances = InstanceGenerator::new(instance_config, 31);
    let mut formulas = FormulaGenerator::new(
        FormulaGeneratorConfig {
            fragment: Fragment::ExistentialPositive,
            schema,
            max_depth: 2,
            ..FormulaGeneratorConfig::default()
        },
        32,
    );
    let bounds = WorldBounds::default();
    for _ in 0..8 {
        let d = instances.generate();
        let q = formulas.generate_sentence();
        assert!(
            agrees_with_core(&d, &q),
            "UCQ `{q}` distinguished an instance from its core"
        );
        let prepared = PreparedQuery::new(q.clone());
        for sem in [Semantics::MinimalCwa, Semantics::MinimalPowersetCwa] {
            let report = CertainEngine::with_bounds(bounds.clone()).compare(&d, sem, &prepared);
            assert!(report.agrees(), "{sem}: `{q}` on\n{d}");
        }
    }
}

#[test]
fn minimal_powerset_worlds_are_unions_of_minimal_images() {
    let d = paper_d();
    let bounds = WorldBounds::default();
    let worlds = Semantics::MinimalPowersetCwa.enumerate_worlds(&d, &bounds);
    assert!(!worlds.is_empty());
    for w in &worlds {
        assert!(Semantics::MinimalPowersetCwa.contains_world(&d, w));
        // Each world is a union of self-loops.
        for (_, t) in w.facts() {
            assert_eq!(t.get(0), t.get(1));
        }
    }
    // Unions of two distinct loops do occur (width ≥ 2 by default).
    assert!(worlds.iter().any(|w| w.fact_count() == 2));
}
