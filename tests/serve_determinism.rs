//! The determinism and parallel-equivalence suite for `nev-serve`.
//!
//! Concurrency must never change an answer. Three layers of proof:
//!
//! 1. **Figure 1 determinism** — routing cell validation through the worker pool
//!    (the `figure1 --threads` path) renders a byte-identical Markdown table at
//!    0, 1, 2 and 8 workers for the same seed;
//! 2. **service determinism** — the seeded load-generator workload produces
//!    byte-identical response lines (certain-answer sets included) at 0, 1, 2
//!    and 8 workers, including with morsels small enough that the certified
//!    exec path fans scans and joins out across the shared pool;
//! 3. **parallel ≡ sequential** — a proptest over seeded workloads of all five
//!    fragments: the chunked parallel oracle's verdict equals the engine's
//!    sequential oracle on every trial, for every chunk size tried.

use std::sync::Arc;

use proptest::prelude::*;

use naive_eval::bench::figure1::{cell_pairs, render_markdown, run_cell, Figure1Config};
use naive_eval::bench::workloads::cell_workload;
use naive_eval::core::engine::CertainEngine;
use naive_eval::core::{Semantics, WorldBounds};
use naive_eval::logic::Fragment;
use naive_eval::serve::oracle::parallel_certain_answers;
use naive_eval::serve::state::{ServeConfig, ServeState};
use naive_eval::serve::{workload, WorkerPool};

// Zero workers is the caller-helps degenerate pool: genuinely sequential, so
// every parallel rendering is checked against a no-thread baseline too.
const WORKER_COUNTS: [usize; 4] = [0, 1, 2, 8];

/// Every transcript must match the first (the workers=0 sequential baseline).
fn assert_all_identical<T: PartialEq + std::fmt::Debug>(outputs: &[T]) {
    for (i, output) in outputs.iter().enumerate().skip(1) {
        assert_eq!(
            &outputs[0], output,
            "workers={} diverged from workers={}",
            WORKER_COUNTS[i], WORKER_COUNTS[0]
        );
    }
}

fn bounds() -> WorldBounds {
    WorldBounds {
        owa_max_extra_tuples: 1,
        wcwa_max_extra_tuples: 2,
        ..WorldBounds::default()
    }
}

/// Figure 1 through the pool: the rendered table must not depend on the worker
/// count — scheduling decides who validates a cell, never what the cell reports.
#[test]
fn figure1_tables_are_byte_identical_across_worker_counts() {
    let config = Figure1Config {
        trials: 2,
        ..Figure1Config::quick()
    };
    let mut tables = Vec::new();
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        let config = Arc::new(config.clone());
        let outcomes = pool.run(cell_pairs(None, None), move |_, (semantics, fragment)| {
            run_cell(semantics, fragment, &config)
        });
        tables.push(render_markdown(&outcomes));
    }
    assert_all_identical(&tables);
    assert!(tables[0].contains("OWA"), "the table rendered");
}

/// The served workload end to end: identical request streams must yield identical
/// response bytes at every worker count (certified and oracle paths both).
#[test]
fn served_responses_are_byte_identical_across_worker_counts() {
    let generated = workload(20130622, 2, 18);
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for workers in WORKER_COUNTS {
        let state = ServeState::new(ServeConfig {
            workers,
            bounds: bounds(),
            ..ServeConfig::default()
        });
        for (name, instance) in &generated.instances {
            state.load(name.clone(), instance.clone());
        }
        let responses: Vec<String> = generated
            .requests
            .iter()
            .map(|request| {
                state
                    .eval(&request.instance, request.semantics, &request.query)
                    .map(|r| r.render())
                    .unwrap_or_else(|e| format!("ERR {e}"))
            })
            .collect();
        transcripts.push(responses);
    }
    assert_all_identical(&transcripts);
    assert!(
        transcripts[0].iter().any(|r| r.contains("plan=oracle")),
        "the workload exercised the parallel oracle: {transcripts:?}"
    );
}

/// The certified exec path through the shared pool: with single-row morsels the
/// compiled executor fans scans and joins out across workers, and the rendered
/// certain-answer sets must still be byte-identical at every worker count.
#[test]
fn morsel_driven_exec_responses_are_byte_identical_across_worker_counts() {
    let generated = workload(20130701, 2, 18);
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for workers in WORKER_COUNTS {
        let state = ServeState::new(ServeConfig {
            workers,
            bounds: bounds(),
            // Absurdly fine granularity so even the small seeded instances
            // cross the 2×morsel fan-out threshold inside nev-exec.
            morsel_rows: 1,
            ..ServeConfig::default()
        });
        for (name, instance) in &generated.instances {
            state.load(name.clone(), instance.clone());
        }
        let responses: Vec<String> = generated
            .requests
            .iter()
            .map(|request| {
                state
                    .eval(&request.instance, request.semantics, &request.query)
                    .map(|r| r.render())
                    .unwrap_or_else(|e| format!("ERR {e}"))
            })
            .collect();
        let snapshot = state.stats().snapshot();
        if workers >= 2 {
            assert!(
                snapshot.morsels > 0,
                "workers={workers}: single-row morsels engaged the exec fan-out"
            );
        }
        transcripts.push(responses);
    }
    assert_all_identical(&transcripts);
    assert!(
        transcripts[0].iter().any(|r| r.contains("plan=compiled")),
        "the workload exercised the certified exec path: {transcripts:?}"
    );
}

/// Batched evaluation is deterministic too: the same batch at different worker
/// counts scatter-gathers into identical per-request responses.
#[test]
fn batched_responses_are_byte_identical_across_worker_counts() {
    let generated = workload(7, 2, 18);
    let requests: Vec<_> = generated
        .requests
        .iter()
        .map(|r| naive_eval::serve::EvalRequest {
            instance: r.instance.clone(),
            semantics: r.semantics,
            query: r.query.clone(),
        })
        .collect();
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for workers in WORKER_COUNTS {
        let state = ServeState::new(ServeConfig {
            workers,
            bounds: bounds(),
            ..ServeConfig::default()
        });
        for (name, instance) in &generated.instances {
            state.load(name.clone(), instance.clone());
        }
        transcripts.push(
            state
                .eval_batch(&requests)
                .into_iter()
                .map(|r| {
                    r.map(|ok| ok.render())
                        .unwrap_or_else(|e| format!("ERR {e}"))
                })
                .collect(),
        );
    }
    assert_all_identical(&transcripts);
}

const FRAGMENTS: [Fragment; 5] = [
    Fragment::ExistentialPositive,
    Fragment::Positive,
    Fragment::PositiveGuarded,
    Fragment::ExistentialPositiveBooleanGuarded,
    Fragment::FullFirstOrder,
];

proptest! {
    // Each case sweeps 5 fragments × 3 semantics through both oracles.
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// The chunked parallel oracle's verdict equals the sequential oracle's on
    /// seeded workloads of every fragment, across chunk sizes and worker counts.
    #[test]
    fn parallel_oracle_verdicts_equal_sequential_verdicts(seed in 0u64..10_000) {
        let engine = CertainEngine::with_bounds(bounds());
        let pool = WorkerPool::new(3);
        for fragment in FRAGMENTS {
            let trial_seed = seed.wrapping_mul(97).wrapping_add(fragment as u64);
            let (instance, query) = cell_workload(fragment, trial_seed, 1)
                .pop()
                .expect("one trial");
            let prepared = Arc::new(naive_eval::core::PreparedQuery::new(query));
            for semantics in [Semantics::Owa, Semantics::Cwa, Semantics::PowersetCwa] {
                let sequential = engine.certain_answers(&instance, semantics, &prepared);
                for chunk in [1, 4, 32] {
                    let parallel = parallel_certain_answers(
                        &pool, &engine, &instance, semantics, &prepared, chunk,
                    );
                    prop_assert_eq!(
                        &parallel.certain,
                        &sequential,
                        "{} × {} chunk={} on\n{}",
                        semantics,
                        fragment,
                        chunk,
                        instance
                    );
                }
            }
        }
    }
}
