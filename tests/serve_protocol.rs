//! End-to-end protocol test: a real `nevd` server on a loopback ephemeral port,
//! driven over TCP, with every `EVAL` answer checked byte-for-byte against an
//! in-process `CertainEngine` evaluation of the same instance — the acceptance
//! property "server round-trip answers are byte-identical to
//! `CertainEngine::evaluate`".

use std::sync::Arc;

use naive_eval::core::engine::CertainEngine;
use naive_eval::core::Semantics;
use naive_eval::incomplete::builder::{c, x};
use naive_eval::incomplete::{inst, Instance};
use naive_eval::serve::state::{PlanKind, ServeConfig, ServeState};
use naive_eval::serve::wire::render_answers;
use naive_eval::serve::{self_check, Client, Server};

fn spawn_server(workers: usize) -> naive_eval::serve::ServerHandle {
    let state = Arc::new(ServeState::new(ServeConfig {
        workers,
        ..ServeConfig::default()
    }));
    Server::bind("127.0.0.1:0", state)
        .expect("bind loopback ephemeral port")
        .spawn()
        .expect("spawn accept loop")
}

fn intro() -> Instance {
    inst! {
        "R" => [[c(1), x(1)], [x(2), x(3)]],
        "S" => [[x(1), c(4)], [x(3), c(5)]],
    }
}

#[test]
fn tcp_round_trip_matches_the_in_process_engine_byte_for_byte() {
    let handle = spawn_server(2);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    // LOAD the paper's intro instance and D0 over the wire.
    assert_eq!(
        client
            .send("LOAD intro R(1,?1);R(?2,?3);S(?1,4);S(?3,5)")
            .unwrap(),
        "OK loaded intro facts=4"
    );
    assert_eq!(
        client.send("LOAD d0 D(?1,?2);D(?2,?1)").unwrap(),
        "OK loaded d0 facts=2"
    );

    // Every EVAL answer must equal the in-process engine's answer, rendered
    // canonically — plan kind included.
    let engine = CertainEngine::new();
    let cases: [(&str, &Instance, Semantics, &str); 5] = [
        (
            "intro",
            &intro(),
            Semantics::Owa,
            "Q(x, y) :- exists z . R(x, z) & S(z, y)",
        ),
        ("d0", &d0(), Semantics::Cwa, "forall u . exists v . D(u, v)"),
        ("d0", &d0(), Semantics::Owa, "forall u . exists v . D(u, v)"),
        ("d0", &d0(), Semantics::Cwa, "exists u . !D(u, u)"),
        (
            "d0",
            &d0(),
            Semantics::Owa,
            "exists u v . D(u, v) & D(v, u)",
        ),
    ];
    fn d0() -> Instance {
        inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] }
    }
    for (name, instance, semantics, query) in cases {
        let spelling = naive_eval::serve::client::semantics_spelling(semantics);
        let served = client
            .send(&format!("EVAL {name} {spelling} {query}"))
            .unwrap();
        let reference = engine.evaluate(instance, semantics, &engine.prepare(query).unwrap());
        let plan = match reference.plan {
            p if p.is_compiled() => PlanKind::Compiled,
            p if p.is_certified() => PlanKind::Certified,
            _ => PlanKind::Oracle,
        };
        let expected = format!(
            "OK plan={plan} certain={}",
            render_answers(&reference.certain)
        );
        assert_eq!(served, expected, "{name} × {semantics} × {query}");
    }

    // STATS reflects the session; errors are ERR lines, not disconnects.
    let stats = client.send("STATS").unwrap();
    assert!(stats.starts_with("OK requests="), "{stats}");
    assert!(stats.contains("evals=5"), "{stats}");
    assert!(stats.contains("instances=2"), "{stats}");
    assert!(client
        .send("EVAL missing owa exists u . D(u, u)")
        .unwrap()
        .starts_with("ERR unknown instance"));
    assert!(client
        .send("NONSENSE")
        .unwrap()
        .starts_with("ERR unknown command"));
    assert_eq!(client.send("QUIT").unwrap(), "OK bye");
}

#[test]
fn replacement_loads_are_snapshot_isolated() {
    let handle = spawn_server(1);
    let addr = handle.addr().to_string();
    let mut a = Client::connect(&addr).expect("connect a");
    let mut b = Client::connect(&addr).expect("connect b");
    assert_eq!(a.send("LOAD g D(?1,?1)").unwrap(), "OK loaded g facts=1");
    // Client b replaces g; client a's next EVAL sees the replacement (each EVAL
    // resolves a fresh snapshot), and both clients agree from then on.
    assert_eq!(
        b.send("LOAD g D(?1,?2);D(?2,?1)").unwrap(),
        "OK replaced g facts=2"
    );
    // ∃Pos × CWA is a certified (compiled) cell; on the replaced instance the two
    // distinct nulls no longer force a self-loop, so the answer flips to false.
    let from_a = a.send("EVAL g cwa exists u . D(u, u)").unwrap();
    let from_b = b.send("EVAL g cwa exists u . D(u, u)").unwrap();
    assert_eq!(from_a, from_b);
    assert_eq!(from_a, "OK plan=compiled certain={}");
}

#[test]
fn self_check_passes_at_several_worker_counts() {
    for workers in [0, 4] {
        let report = self_check(99, 2, 12, workers).expect("self-check runs");
        assert!(report.all_match(), "workers={workers}: {report}");
        assert_eq!(report.answered, 12, "workers={workers}");
    }
}
