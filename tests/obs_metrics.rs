//! Observability acceptance suite: the wire `METRICS`/`TRACE`/`STATS` surface
//! under real concurrency.
//!
//! The properties pinned here are the ones PR 8 promises:
//!
//! * **exact reconciliation** — the per-plan request-latency histogram counts
//!   sum to the `evals` counter, even while many clients hammer the server at
//!   once (every eval is observed exactly once, where `evals` is bumped);
//! * **grammar-valid exposition** — `METRICS` always shape-validates against
//!   [`naive_eval::obs::validate_exposition`], terminated by `# EOF`;
//! * **trace sanity** — a `TRACE` stage timeline's depth-0 durations can never
//!   exceed the request total;
//! * **tracing never changes answers** — served bytes are identical with the
//!   recorder enabled and disabled (`NEV_TRACE=0` is exercised as a separate
//!   CI run of the determinism suite; here the in-process recorder flag is
//!   flipped directly).
//!
//! PR 9 adds the windowed/profiled surface:
//!
//! * **window/lifetime reconciliation** — after a `METRICS RESET` baseline,
//!   the 60s trailing-window deltas equal the lifetime-counter deltas
//!   *exactly*, even under concurrent clients (every tracked quantity is a
//!   monotone counter, so the subtraction cannot drift);
//! * **profile accuracy** — a compiled `PROFILE` reports every operator with
//!   per-op self times telescoping to the plan root, the root bounded by the
//!   surrounding exec span, and flagged row counts reconciling exactly with
//!   `ExecStats::intermediate_rows`.

use std::sync::Arc;
use std::thread;

use naive_eval::core::engine::CertainEngine;
use naive_eval::core::Semantics;
use naive_eval::obs::{validate_exposition, Timer, TraceRecorder};
use naive_eval::serve::state::{ServeConfig, ServeState};
use naive_eval::serve::{Client, Server, ServerHandle};

fn spawn_server(workers: usize) -> (Arc<ServeState>, ServerHandle) {
    let state = Arc::new(ServeState::new(ServeConfig {
        workers,
        ..ServeConfig::default()
    }));
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&state))
        .expect("bind loopback ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    (state, handle)
}

const QUERIES: [(&str, &str); 4] = [
    ("cwa", "exists u v . D(u, v) & D(v, u)"),
    ("owa", "forall u . exists v . D(u, v)"),
    ("owa", "exists u . !D(u, u)"),
    ("cwa", "forall u . exists v . D(u, v)"),
];

#[test]
fn concurrent_clients_reconcile_histograms_with_counters() {
    let (state, mut handle) = spawn_server(4);
    let addr = handle.addr().to_string();

    {
        let mut seed = Client::connect(&addr).expect("connect");
        assert_eq!(
            seed.send("LOAD d0 D(?1,?2);D(?2,?1)").unwrap(),
            "OK loaded d0 facts=2"
        );
    }

    const CLIENTS: usize = 6;
    const ROUNDS: usize = 5;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for round in 0..ROUNDS {
                    let (semantics, query) = QUERIES[(id + round) % QUERIES.len()];
                    let line = format!("EVAL d0 {semantics} {query}");
                    let response = client.send(&line).expect("eval");
                    assert!(response.starts_with("OK plan="), "{response}");
                    if round % 2 == 0 {
                        client.send(&format!("PREPARE {query}")).expect("prepare");
                    }
                    // METRICS mid-flight must still validate: the exposition is
                    // assembled from live atomics, never torn.
                    let exposition = client.metrics().expect("metrics");
                    validate_exposition(&exposition).expect("mid-flight exposition");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    let evals = state.snapshot().evals;
    assert_eq!(evals, (CLIENTS * ROUNDS) as u64);
    // Exact reconciliation: every eval landed in exactly one per-plan histogram.
    assert_eq!(state.metrics().request_totals().count, evals);
    let per_plan: u64 = state
        .metrics()
        .plan_snapshots()
        .iter()
        .map(|(_, snap)| snap.count)
        .sum();
    assert_eq!(per_plan, evals);

    // The final exposition validates and carries the reconciled counter.
    let mut client = Client::connect(&addr).expect("connect");
    let exposition = client.metrics().expect("metrics");
    validate_exposition(&exposition).expect("final exposition");
    assert!(exposition
        .iter()
        .any(|line| line == &format!("nev_evals_total {evals}")));
    assert_eq!(exposition.last().map(String::as_str), Some("# EOF"));

    // STATS carries the latency digest derived from the same histograms.
    let stats = client.send("STATS").expect("stats");
    assert!(stats.contains(" uptime_us="), "{stats}");
    assert!(stats.contains(" p50_us="), "{stats}");
    assert!(stats.contains(" p99_us="), "{stats}");

    handle.shutdown();
}

#[test]
fn windowed_deltas_reconcile_exactly_with_lifetime_counters() {
    let (state, mut handle) = spawn_server(4);
    let addr = handle.addr().to_string();
    {
        let mut seed = Client::connect(&addr).expect("connect");
        seed.send("LOAD d0 D(?1,?2);D(?2,?1)").expect("load");
        // Some pre-baseline traffic the windows must NOT count after reset.
        for (semantics, query) in QUERIES.iter().take(2) {
            seed.send(&format!("EVAL d0 {semantics} {query}"))
                .expect("warmup");
        }
        assert_eq!(seed.send("METRICS RESET").unwrap(), "OK metrics reset");
    }
    let baseline = state.snapshot();
    let baseline_latency = state.metrics().request_totals().count;

    const CLIENTS: usize = 5;
    const ROUNDS: usize = 4;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for round in 0..ROUNDS {
                    let (semantics, query) = QUERIES[(id + round) % QUERIES.len()];
                    let response = client
                        .send(&format!("EVAL d0 {semantics} {query}"))
                        .expect("eval");
                    assert!(response.starts_with("OK plan="), "{response}");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    // The 60s trailing window baselines at the reset sample (nothing in the
    // ring is 60s old), so its deltas must equal the lifetime deltas exactly.
    let now = state.snapshot();
    let delta = state.series().window(&state.window_sample(), 60_000_000);
    assert_eq!(delta.evals, now.evals - baseline.evals);
    assert_eq!(delta.evals, (CLIENTS * ROUNDS) as u64);
    assert_eq!(delta.requests, now.requests - baseline.requests);
    assert_eq!(delta.errors, now.errors - baseline.errors);
    assert_eq!(
        delta.latency.count,
        state.metrics().request_totals().count - baseline_latency
    );
    let per_plan: u64 = delta.plans.iter().map(|(_, snap)| snap.count).sum();
    assert_eq!(
        per_plan, delta.evals,
        "every windowed eval has a plan label"
    );

    // TOP condenses the same arithmetic into one line.
    let mut client = Client::connect(&addr).expect("connect");
    let top = client.send("TOP").expect("top");
    assert!(top.starts_with("OK top uptime_us="), "{top}");
    for token in [
        "qps_1s=",
        "err_10s=",
        "p50_us_60s=",
        "p95_us_60s=",
        "p99_us_60s=",
    ] {
        assert!(top.contains(token), "{top}");
    }

    // The reset emptied the slow log; the post-reset traffic refilled it.
    assert!(!state.metrics().slow_queries().is_empty());
    // Lifetime counters survived the reset: histogram counts still reconcile
    // with `evals` over the whole process lifetime.
    assert_eq!(state.metrics().request_totals().count, now.evals);
    handle.shutdown();
}

#[test]
fn profile_reconciles_with_the_exec_accounting() {
    // In-process: the profile's row accounting must match the executor's own
    // ExecStats counter, and its times must telescope and stay inside the
    // surrounding span.
    let d = naive_eval::incomplete::inst! {
        "R" => [
            [naive_eval::incomplete::builder::x(1), naive_eval::incomplete::builder::x(2)],
            [naive_eval::incomplete::builder::x(2), naive_eval::incomplete::builder::x(3)],
            [naive_eval::incomplete::builder::x(3), naive_eval::incomplete::builder::x(4)],
        ]
    };
    let engine = CertainEngine::new();
    let prepared = engine
        .prepare("Q(x) :- exists y z . R(x, y) & R(y, z)")
        .expect("a join chain compiles");
    let span = Timer::start_always();
    let (answers, stats, profile) = engine.naive_answers_profiled(&d, &prepared);
    let span_us = span.elapsed_us();
    let profile = profile.expect("compiled dispatch yields a profile");
    // Rows: the flagged samples sum to exactly the executor's counter.
    assert_eq!(profile.intermediate_rows(), stats.intermediate_rows);
    // Times: per-op self times telescope to the root, which the span bounds.
    assert_eq!(profile.total_self_us(), profile.root_wall_us());
    assert!(
        profile.root_wall_us() <= span_us,
        "root {} exceeds the surrounding span {span_us}",
        profile.root_wall_us()
    );
    // Every operator carries a cost-model estimate and the fold is visible.
    assert!(profile.ops.iter().all(|op| op.estimated_rows >= 0.0));
    assert!(profile
        .ops
        .iter()
        .any(|op| op.label.starts_with("HashJoin[")));
    // The profiled run computed the same answers as the plain engine path.
    let reference = engine.evaluate(&d, Semantics::Cwa, &prepared);
    assert_eq!(answers, reference.certain);

    // Over the wire: every per-op inclusive time is bounded by the reported
    // exec span, and the annotated plan covers the whole operator tree.
    let (state, mut handle) = spawn_server(2);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client
        .send("LOAD chain R(?1,?2);R(?2,?3);R(?3,?4)")
        .expect("load");
    let line = client
        .send("PROFILE chain cwa Q(x) :- exists y z . R(x, y) & R(y, z)")
        .expect("profile");
    assert!(line.starts_with("OK profile plan=compiled"), "{line}");
    let exec_us: u64 = line
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("exec_us="))
        .expect("exec_us token")
        .parse()
        .unwrap();
    let ops = line
        .split_once("ops=[")
        .expect("ops list")
        .1
        .strip_suffix(']')
        .expect("ops list closes");
    for op_us in ops
        .split_whitespace()
        .filter_map(|tok| tok.strip_prefix("us="))
    {
        let op_us: u64 = op_us.trim_end_matches(']').parse().unwrap();
        assert!(
            op_us <= exec_us,
            "op time {op_us} exceeds exec span {exec_us}"
        );
    }
    for label in ["Scan R(", "HashJoin[", "est="] {
        assert!(ops.contains(label), "{ops}");
    }
    // PROFILE counted as a real evaluation.
    assert_eq!(state.snapshot().evals, 1);
    assert_eq!(state.metrics().request_totals().count, 1);
    handle.shutdown();
}

#[test]
fn trace_stage_durations_never_exceed_the_total() {
    let (state, mut handle) = spawn_server(2);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client.send("LOAD d0 D(?1,?2);D(?2,?1)").unwrap();

    for (semantics, query) in QUERIES {
        let line = client
            .send(&format!("TRACE d0 {semantics} {query}"))
            .expect("trace");
        assert!(line.starts_with("OK trace plan="), "{line}");
        assert!(!line.contains('\n'), "TRACE is one line: {line}");
    }
    // TRACE runs real evals: it counts, and it feeds the same histograms.
    assert_eq!(state.snapshot().evals, QUERIES.len() as u64);
    assert_eq!(state.metrics().request_totals().count, QUERIES.len() as u64);

    // The depth-0 invariant, checked on the trace object itself (the wire line
    // reports the rendered spans; the object carries the structure).
    for (semantics, query) in QUERIES {
        let semantics: Semantics = semantics.parse().unwrap();
        let (_, trace) = state.eval_with_trace("d0", semantics, query).expect("eval");
        assert!(
            trace.top_level_us() <= trace.total_us(),
            "stage sum {} exceeds total {}",
            trace.top_level_us(),
            trace.total_us()
        );
    }
    handle.shutdown();
}

#[test]
fn tracing_never_perturbs_served_answers() {
    // Flip the recorder directly (the NEV_TRACE=0 process-level run is a
    // separate CI job): evaluate the same requests with tracing forced on and
    // forced off, and demand byte-identical renderings.
    let (state, mut handle) = spawn_server(2);
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    client.send("LOAD d0 D(?1,?2);D(?2,?1)").unwrap();

    for (semantics, query) in QUERIES {
        let line = format!("EVAL d0 {semantics} {query}");
        let first = client.send(&line).expect("eval");
        let second = client.send(&line).expect("eval again");
        assert_eq!(first, second, "repeat evals are byte-identical");
    }

    // The recorder itself, enabled vs disabled, over the engine: same results.
    let engine = state.engine();
    let prepared = engine.prepare(QUERIES[0].1).expect("prepare");
    let d0 = naive_eval::incomplete::inst! {
        "D" => [
            [naive_eval::incomplete::builder::x(1), naive_eval::incomplete::builder::x(2)],
            [naive_eval::incomplete::builder::x(2), naive_eval::incomplete::builder::x(1)],
        ]
    };
    let on = TraceRecorder::with_enabled(true);
    let off = TraceRecorder::with_enabled(false);
    let (answers_on, _) = engine.naive_answers_traced(&d0, &prepared, &on);
    let (answers_off, _) = engine.naive_answers_traced(&d0, &prepared, &off);
    assert_eq!(answers_on, answers_off);
    assert!(off.finish().is_empty(), "disabled recorder records nothing");
    handle.shutdown();
}
