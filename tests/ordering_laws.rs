//! Experiment E5: laws of the semantic orderings, their Codd-database restrictions and
//! their update justification (paper §6–§7), checked on randomized instances with
//! property-based tests.

use proptest::prelude::*;

use nev_core::ordering::{cwa_leq, owa_leq, powerset_cwa_leq, wcwa_leq};
use nev_core::updates::{
    copying_cwa_update, cwa_update, owa_update, reachable_by_updates, ReachabilityBounds,
    UpdateKind,
};
use nev_core::{Semantics, WorldBounds};
use nev_incomplete::codd::{cwa_matching_leq, hoare_leq, is_codd, plotkin_leq};
use nev_incomplete::{Instance, Tuple, Value};

/// A strategy generating small instances over a single binary relation `R`.
///
/// `codd` restricts to Codd databases (each null occurrence fresh).
fn instance_strategy(codd: bool) -> impl Strategy<Value = Instance> {
    // Each tuple position: constant 1..=2 or null 1..=3 (fresh ids in Codd mode are
    // assigned after generation).
    let value = prop_oneof![
        (1i64..=2).prop_map(Value::int),
        (1u32..=3).prop_map(Value::null),
    ];
    let tuple = (value.clone(), value);
    proptest::collection::vec(tuple, 1..=3).prop_map(move |tuples| {
        let mut inst = Instance::new();
        let mut next_fresh = 100u32;
        for (a, b) in tuples {
            let fix = |v: Value, next_fresh: &mut u32| -> Value {
                if codd && v.is_null() {
                    let fresh = Value::null(*next_fresh);
                    *next_fresh += 1;
                    fresh
                } else {
                    v
                }
            };
            let a = fix(a, &mut next_fresh);
            let b = fix(b, &mut next_fresh);
            inst.add_tuple("R", Tuple::new(vec![a, b])).unwrap();
        }
        inst
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, .. ProptestConfig::default() })]

    /// All four orderings are reflexive.
    #[test]
    fn orderings_are_reflexive(d in instance_strategy(false)) {
        prop_assert!(owa_leq(&d, &d));
        prop_assert!(cwa_leq(&d, &d));
        prop_assert!(wcwa_leq(&d, &d));
        prop_assert!(powerset_cwa_leq(&d, &d));
    }

    /// ≼_CWA ⊆ ≼_WCWA ⊆ ≼_OWA and ≼_CWA ⊆ ⋐_CWA ⊆ ≼_OWA.
    #[test]
    fn ordering_inclusions(d in instance_strategy(false), e in instance_strategy(false)) {
        if cwa_leq(&d, &e) {
            prop_assert!(wcwa_leq(&d, &e));
            prop_assert!(powerset_cwa_leq(&d, &e));
        }
        if wcwa_leq(&d, &e) {
            prop_assert!(owa_leq(&d, &e));
        }
        if powerset_cwa_leq(&d, &e) {
            prop_assert!(owa_leq(&d, &e));
        }
    }

    /// The orderings are transitive (they are characterised by composable
    /// homomorphism conditions).
    #[test]
    fn orderings_are_transitive(
        a in instance_strategy(false),
        b in instance_strategy(false),
        c_inst in instance_strategy(false),
    ) {
        for leq in [owa_leq, cwa_leq, wcwa_leq, powerset_cwa_leq] {
            if leq(&a, &b) && leq(&b, &c_inst) {
                prop_assert!(leq(&a, &c_inst));
            }
        }
    }

    /// Over Codd databases: ≼_OWA coincides with the Hoare ordering ⊑ᴴ and ⋐_CWA with
    /// the Plotkin ordering ⊑ᴾ; ≼_CWA coincides with ⊑ᴾ plus a perfect matching
    /// (Libkin 2011, §6–§7).
    #[test]
    fn codd_restrictions(d in instance_strategy(true), e in instance_strategy(true)) {
        prop_assert!(is_codd(&d) && is_codd(&e));
        prop_assert_eq!(owa_leq(&d, &e), hoare_leq(&d, &e));
        prop_assert_eq!(powerset_cwa_leq(&d, &e), plotkin_leq(&d, &e));
        prop_assert_eq!(cwa_leq(&d, &e), cwa_matching_leq(&d, &e));
    }

    /// Elementary updates increase information: a CWA update, an OWA tuple addition
    /// and a copying CWA update all move up in the corresponding orderings.
    #[test]
    fn updates_increase_information(d in instance_strategy(false)) {
        if let Some(null) = d.nulls().into_iter().next() {
            let updated = cwa_update(&d, null, &Value::int(1));
            prop_assert!(cwa_leq(&d, &updated));
            prop_assert!(owa_leq(&d, &updated));
            let copied = copying_cwa_update(&d, null, &Value::int(1));
            prop_assert!(powerset_cwa_leq(&d, &copied));
        }
        let grown = owa_update(&d, "R", Tuple::new(vec![Value::int(9), Value::int(9)]));
        prop_assert!(owa_leq(&d, &grown));
    }

    /// Membership in a semantics implies the corresponding ordering relation
    /// (fairness direction: D' ∈ ⟦D⟧ ⇒ D ≼ D').
    #[test]
    fn worlds_are_above_their_instance(d in instance_strategy(false)) {
        let bounds = WorldBounds { union_width: 2, ..WorldBounds::default() };
        for (sem, leq) in [
            (Semantics::Cwa, cwa_leq as fn(&Instance, &Instance) -> bool),
            (Semantics::PowersetCwa, powerset_cwa_leq),
        ] {
            // The lazy iterator means only the five sampled worlds are ever built.
            for world in sem.worlds(&d, &bounds).take(5) {
                prop_assert!(leq(&d, &world), "{sem}: world should dominate the instance");
            }
        }
    }
}

#[test]
fn theorem_6_2_and_7_1_update_reachability_on_fixed_examples() {
    // Reachability checks are too expensive for the random property above, so the
    // update ⇔ ordering correspondence is validated on the paper's style of examples.
    let d = nev_incomplete::inst! { "R" => [[Value::null(1), Value::null(2)]] };
    let refined = nev_incomplete::inst! { "R" => [[Value::int(1), Value::int(2)]] };
    let grown = nev_incomplete::inst! { "R" => [[Value::int(1), Value::int(2)], [Value::int(2), Value::int(1)]] };
    let copies = nev_incomplete::inst! { "R" => [[Value::int(1), Value::int(2)], [Value::int(3), Value::int(4)]] };
    let bounds = ReachabilityBounds::default();

    assert_eq!(
        cwa_leq(&d, &refined),
        reachable_by_updates(&d, &refined, &[UpdateKind::Cwa], &bounds)
    );
    assert_eq!(
        owa_leq(&d, &grown),
        reachable_by_updates(&d, &grown, &[UpdateKind::Cwa, UpdateKind::Owa], &bounds)
    );
    assert_eq!(
        powerset_cwa_leq(&d, &copies),
        reachable_by_updates(
            &d,
            &copies,
            &[UpdateKind::Cwa, UpdateKind::CopyingCwa],
            &bounds
        )
    );
    // Negative case: an instance with different constants is unreachable and unrelated.
    let unrelated = nev_incomplete::inst! { "R" => [[Value::int(7), Value::int(8)], [Value::int(8), Value::int(7)]] };
    assert!(owa_leq(&d, &unrelated));
    assert!(!cwa_leq(&refined, &unrelated));
    assert!(!reachable_by_updates(
        &refined,
        &unrelated,
        &[UpdateKind::Cwa],
        &bounds
    ));
}
