//! Experiment E1: Figure 1, cell by cell, on fixed-seed randomized workloads.
//!
//! For every cell the paper marks as guaranteed ("naïve evaluation works for …"), the
//! corresponding fragment generator is run against random incomplete instances and the
//! naïve answers must equal the (bounded) certain answers on every trial. For cells
//! beyond the guarantee, the tests pin down the specific counterexamples the paper
//! gives (the `D₀` examples of §2.4 and the negation examples), so that the "beyond
//! this class it may fail" part of Figure 1 is also witnessed.
//!
//! The full 30-cell sweep with larger trial counts lives in the `figure1` binary of
//! `nev-bench`; these tests keep the per-cell workload small enough for `cargo test`.

use nev_core::engine::{CertainEngine, PreparedQuery};
use nev_core::summary::{expectation, figure1, guaranteed_fragment, Expectation};
use nev_core::{Semantics, WorldBounds};
use nev_gen::{
    FormulaGenerator, FormulaGeneratorConfig, InstanceGenerator, InstanceGeneratorConfig,
};
use nev_hom::core_of;
use nev_incomplete::builder::x;
use nev_incomplete::{inst, Schema};
use nev_logic::fragment::{is_in_fragment, Fragment};
use nev_logic::parse_query;

fn schema() -> Schema {
    Schema::from_relations([("R", 2), ("S", 1)])
}

fn bounds() -> WorldBounds {
    WorldBounds {
        owa_max_extra_tuples: 1,
        wcwa_max_extra_tuples: 2,
        ..WorldBounds::default()
    }
}

fn instance_generator(seed: u64) -> InstanceGenerator {
    InstanceGenerator::new(
        InstanceGeneratorConfig {
            schema: schema(),
            tuples_per_relation: (1, 2),
            constant_pool: 2,
            null_pool: 2,
            null_probability: 0.5,
            codd: false,
        },
        seed,
    )
}

fn formula_generator(fragment: Fragment, seed: u64) -> FormulaGenerator {
    FormulaGenerator::new(
        FormulaGeneratorConfig {
            fragment,
            schema: schema(),
            constant_pool: 2,
            constant_probability: 0.2,
            max_depth: 2,
        },
        seed,
    )
}

/// Runs `trials` random (sentence, instance) pairs for a cell and asserts agreement;
/// `over_cores` replaces each instance by its core first.
fn assert_cell_agrees(semantics: Semantics, fragment: Fragment, trials: usize, over_cores: bool) {
    let seed = 4000 + semantics as u64 * 17 + fragment as u64;
    let mut instances = instance_generator(seed);
    let mut formulas = formula_generator(fragment, seed ^ 0xbeef);
    let engine = CertainEngine::with_bounds(bounds());
    for trial in 0..trials {
        let mut d = instances.generate();
        if over_cores {
            d = core_of(&d);
        }
        let q = if trial % 2 == 0 {
            formulas.generate_sentence()
        } else {
            formulas.generate_query(1)
        };
        assert!(is_in_fragment(q.formula(), fragment));
        // `compare` forces the bounded oracle: these tests *validate* the guarantee
        // the engine's certified path would otherwise assume.
        let report = engine.compare(&d, semantics, &PreparedQuery::new(q.clone()));
        assert!(
            report.agrees(),
            "{semantics} × {fragment}: naive != certain for `{q}` on\n{d}\nnaive: {:?}\ncertain: {:?}",
            report.naive,
            report.certain
        );
    }
}

#[test]
fn guaranteed_cells_agree_owa() {
    assert_cell_agrees(Semantics::Owa, Fragment::ExistentialPositive, 10, false);
}

#[test]
fn guaranteed_cells_agree_wcwa() {
    assert_cell_agrees(Semantics::Wcwa, Fragment::ExistentialPositive, 8, false);
    assert_cell_agrees(Semantics::Wcwa, Fragment::Positive, 8, false);
}

#[test]
fn guaranteed_cells_agree_cwa() {
    assert_cell_agrees(Semantics::Cwa, Fragment::ExistentialPositive, 8, false);
    assert_cell_agrees(Semantics::Cwa, Fragment::Positive, 8, false);
    assert_cell_agrees(Semantics::Cwa, Fragment::PositiveGuarded, 8, false);
    assert_cell_agrees(
        Semantics::Cwa,
        Fragment::ExistentialPositiveBooleanGuarded,
        8,
        false,
    );
}

#[test]
fn guaranteed_cells_agree_powerset_cwa() {
    assert_cell_agrees(
        Semantics::PowersetCwa,
        Fragment::ExistentialPositive,
        8,
        false,
    );
    assert_cell_agrees(
        Semantics::PowersetCwa,
        Fragment::ExistentialPositiveBooleanGuarded,
        8,
        false,
    );
}

#[test]
fn guaranteed_cells_agree_minimal_cwa_over_cores() {
    assert_cell_agrees(
        Semantics::MinimalCwa,
        Fragment::ExistentialPositive,
        6,
        false,
    );
    assert_cell_agrees(Semantics::MinimalCwa, Fragment::Positive, 6, true);
    assert_cell_agrees(Semantics::MinimalCwa, Fragment::PositiveGuarded, 6, true);
}

#[test]
fn guaranteed_cells_agree_minimal_powerset_cwa_over_cores() {
    assert_cell_agrees(
        Semantics::MinimalPowersetCwa,
        Fragment::ExistentialPositive,
        6,
        false,
    );
    assert_cell_agrees(
        Semantics::MinimalPowersetCwa,
        Fragment::ExistentialPositiveBooleanGuarded,
        6,
        true,
    );
}

#[test]
fn beyond_the_guarantee_counterexamples_exist() {
    let engine = CertainEngine::with_bounds(bounds());
    let d0 = inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] };

    // OWA × Pos: the §2.4 counterexample ∀x∃y D(x,y).
    let pos = PreparedQuery::new(parse_query("forall u . exists v . D(u, v)").unwrap());
    assert!(!engine.compare(&d0, Semantics::Owa, &pos).agrees());
    assert_eq!(
        expectation(Semantics::Owa, Fragment::Positive),
        Expectation::NotGuaranteed
    );

    // CWA × FO: ∃x ¬D(x,x).
    let neg = PreparedQuery::new(parse_query("exists u . !D(u, u)").unwrap());
    assert!(!engine.compare(&d0, Semantics::Cwa, &neg).agrees());
    assert_eq!(
        expectation(Semantics::Cwa, Fragment::FullFirstOrder),
        Expectation::NotGuaranteed
    );

    // WCWA × FO: the same sentence also fails under WCWA (a tuple within the active
    // domain can complete the loop).
    let d_single = inst! { "D" => [[x(1), x(2)]] };
    assert!(!engine.compare(&d_single, Semantics::Wcwa, &neg).agrees());

    // MinimalCwa × Pos off cores: ∀x D(x,x) on the §10 instance.
    let d_min = inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] };
    let forall_loop = PreparedQuery::new(parse_query("forall u . D(u, u)").unwrap());
    assert!(!engine
        .compare(&d_min, Semantics::MinimalCwa, &forall_loop)
        .agrees());
    assert_eq!(
        expectation(Semantics::MinimalCwa, Fragment::Positive),
        Expectation::WorksOverCores
    );
}

#[test]
fn figure1_cells_are_reproducible_for_a_fixed_seed() {
    // The harness derives every per-cell RNG stream from the explicit config seed, so
    // a cell run twice — or run on another machine — produces identical outcomes.
    use nev_bench::figure1::{run_cell, Figure1Config};
    let config = Figure1Config {
        trials: 6,
        ..Figure1Config::quick()
    };
    let first = run_cell(Semantics::Cwa, Fragment::ExistentialPositive, &config);
    let second = run_cell(Semantics::Cwa, Fragment::ExistentialPositive, &config);
    assert_eq!(first.agreements, second.agreements);
    assert_eq!(first.sound, second.sound);
    assert_eq!(first.counterexamples, second.counterexamples);

    // The generators themselves are seed-deterministic streams.
    let mut a = instance_generator(123);
    let mut b = instance_generator(123);
    for _ in 0..5 {
        assert_eq!(a.generate(), b.generate());
    }
}

#[test]
fn figure1_table_is_consistent_with_the_guaranteed_fragments() {
    // Structural sanity of the machine-readable Figure 1: the guaranteed fragment of
    // each semantics is marked Works (or WorksOverCores for the minimal semantics),
    // and fragments syntactically included in the guaranteed one inherit the
    // guarantee.
    let cells = figure1();
    assert_eq!(cells.len(), 30);
    for semantics in Semantics::ALL {
        let guaranteed = guaranteed_fragment(semantics);
        let exp = expectation(semantics, guaranteed);
        assert_ne!(exp, Expectation::NotGuaranteed, "{semantics}");
        // ∃Pos is included in every guaranteed fragment, so it is never unguaranteed.
        assert_ne!(
            expectation(semantics, Fragment::ExistentialPositive),
            Expectation::NotGuaranteed,
            "{semantics}"
        );
        // Full FO is never guaranteed.
        assert_eq!(
            expectation(semantics, Fragment::FullFirstOrder),
            Expectation::NotGuaranteed,
            "{semantics}"
        );
    }
}
