//! The shared service state: catalog + plan cache + worker pool + engine, and the
//! request handlers (`LOAD` / `PREPARE` / `EVAL` / `EXPLAIN` / `ANALYZE` /
//! `PROFILE` / `STATS` / `TOP` / `METRICS`) built on them.
//!
//! One [`ServeState`] is shared (behind an `Arc`) by every connection thread of a
//! [`crate::server::Server`] and by in-process callers (benchmarks, tests, the
//! load generator's reference run). It is `Send + Sync` by construction: the
//! catalog hands out immutable snapshots, the cache hands out `Arc`s, the pool is
//! its own synchronisation, and the engine is immutable configuration.
//!
//! Two evaluation paths exist:
//!
//! * [`ServeState::eval`] — one request: Figure 1 dispatch via the cached plan; a
//!   certified cell is answered by one naïve pass on the snapshot, everything else
//!   goes to the **parallel oracle** (the world stream chunked across the pool with
//!   early-exit cancellation);
//! * [`ServeState::eval_batch`] — many requests: requests are grouped by (instance,
//!   semantics), each group's distinct queries are folded into **one shared world
//!   pass** (`CertainEngine::evaluate_all`), and the groups run in parallel across
//!   the pool. Repeated queries hit the plan cache and duplicate (query, instance,
//!   semantics) triples are answered by a single evaluation.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use nev_core::engine::{CertainEngine, EngineError, EvalPlan, PreparedQuery, SymbolicTechnique};
use nev_core::{Semantics, WorldBounds};
use nev_exec::{ExecOptions, DEFAULT_MORSEL_ROWS};
use nev_incomplete::{Instance, Tuple};
use nev_obs::timeseries::render_window_gauges;
use nev_obs::{
    MetricsRegistry, SlowQuery, Stage, TimeSeries, Timer, Trace, TraceRecorder, WindowSample,
};
use nev_runtime::env_workers;

use crate::cache::PlanCache;
use crate::catalog::Catalog;
use crate::oracle::{parallel_certain_answers, DEFAULT_CHUNK};
use crate::pool::WorkerPool;
use crate::stats::{ServeStats, StatsSnapshot};
use crate::wire::{self, Command};

/// Configuration of a service instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Background worker threads (callers help, so `0` is sequential).
    pub workers: usize,
    /// Plan-cache capacity in (query, semantics) entries.
    pub cache_capacity: usize,
    /// World-enumeration bounds used by every evaluation.
    pub bounds: WorldBounds,
    /// Worlds per parallel-oracle chunk.
    pub oracle_chunk: usize,
    /// Rows per exec-layer morsel on the shared pool (certified naïve passes).
    pub morsel_rows: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // Thread counts are configured in exactly one place: NEV_WORKERS
            // (when set) sizes the shared pool for the request path, the
            // parallel oracle, and the exec morsel path alike.
            workers: env_workers().unwrap_or(4),
            cache_capacity: 256,
            bounds: WorldBounds::default(),
            oracle_chunk: DEFAULT_CHUNK,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

/// A service-level error (rendered as an `ERR` line by the server).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// The request line failed to parse.
    Wire(wire::WireError),
    /// `EVAL`/`LOAD` referenced a name the catalog does not hold.
    UnknownInstance(String),
    /// The semantics spelling was not recognised.
    UnknownSemantics(String),
    /// The query failed to parse or classify.
    Engine(EngineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Wire(e) => write!(f, "{e}"),
            ServeError::UnknownInstance(name) => {
                write!(f, "unknown instance `{name}` (LOAD it first)")
            }
            ServeError::UnknownSemantics(s) => write!(f, "unknown semantics `{s}`"),
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<wire::WireError> for ServeError {
    fn from(e: wire::WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// How an `EVAL` was answered (the wire `plan=` token).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanKind {
    /// Certified naïve pass on the compiled `nev-exec` pipeline.
    Compiled,
    /// Certified naïve pass on the tree-walking interpreter.
    Certified,
    /// Certified naïve pass on the **normal form**: the raw query had no
    /// Figure 1 guarantee, but static normalization landed it in a guaranteed
    /// fragment (the certificate carries the replayable rewrite trace).
    Normalized,
    /// PTIME symbolic certificate (conditional tables or the sandwich) on a
    /// non-guaranteed cell — exact, zero worlds enumerated.
    Symbolic,
    /// Bounded possible-world oracle (parallel in [`ServeState::eval`]).
    Oracle,
}

/// The fixed dispatch-kind label set of the metrics registry — one
/// request-latency histogram per [`PlanKind`].
pub const PLAN_LABELS: &[&str] = &["compiled", "certified", "normalized", "symbolic", "oracle"];

/// How many top-latency requests the slow-query log retains.
pub const SLOW_LOG_CAPACITY: usize = 8;

impl PlanKind {
    fn of(plan: &EvalPlan) -> Self {
        match plan {
            EvalPlan::CompiledNaive(_) => PlanKind::Compiled,
            EvalPlan::CertifiedNaive(_) => PlanKind::Certified,
            EvalPlan::NormalizedNaive(_) => PlanKind::Normalized,
            EvalPlan::Symbolic(_) => PlanKind::Symbolic,
            EvalPlan::BoundedEnumeration => PlanKind::Oracle,
        }
    }

    /// The wire token, as a `'static` label for the metrics registry (always
    /// one of [`PLAN_LABELS`]).
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::Compiled => "compiled",
            PlanKind::Certified => "certified",
            PlanKind::Normalized => "normalized",
            PlanKind::Symbolic => "symbolic",
            PlanKind::Oracle => "oracle",
        }
    }
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The ` reason=<code>` suffix for `compiled=false` responses: the compiler's
/// own rejection when the query failed to compile, empty when there simply is
/// no pipeline to show (symbolic/oracle dispatch of a compilable query).
fn render_compile_reason(prepared: &PreparedQuery) -> String {
    match prepared.compile_error() {
        Some(e) => format!(" reason={}", e.reason_code()),
        None => String::new(),
    }
}

/// One `EVAL` request, as consumed by [`ServeState::eval_batch`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvalRequest {
    /// Catalog name of the instance.
    pub instance: String,
    /// Semantics to evaluate under.
    pub semantics: Semantics,
    /// Query text.
    pub query: String,
}

/// One `EVAL` answer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvalResponse {
    /// How the request was answered.
    pub plan: PlanKind,
    /// The certain answers (Boolean queries use the `{()} / ∅` encoding).
    pub certain: BTreeSet<Tuple>,
    /// Whether an oracle answer drew on a world stream cut off by the world
    /// cap (see [`nev_core::Evaluation::truncated`]); such an answer is an
    /// over-approximation from a world sample, and the wire says so.
    pub truncated: bool,
}

impl EvalResponse {
    /// The canonical wire payload: `plan=<plan> certain=<answers>`, extended
    /// with ` truncated=true` exactly when the oracle verdict was cut short —
    /// untruncated responses render byte-identically to before the flag
    /// existed.
    pub fn render(&self) -> String {
        format!(
            "plan={} certain={}{}",
            self.plan,
            wire::render_answers(&self.certain),
            if self.truncated {
                " truncated=true"
            } else {
                ""
            }
        )
    }
}

/// The shared state of one `nevd` service.
#[derive(Debug)]
pub struct ServeState {
    engine: CertainEngine,
    catalog: Catalog,
    cache: PlanCache,
    pool: Arc<WorkerPool>,
    stats: ServeStats,
    metrics: MetricsRegistry,
    series: TimeSeries,
    oracle_chunk: usize,
}

impl ServeState {
    /// Builds a service from its configuration. The worker pool is **shared**:
    /// the same threads serve batched requests, parallel-oracle world chunks,
    /// and the exec layer's scan/join morsels (the engine is handed an `Arc` of
    /// the pool through its [`ExecOptions`]).
    pub fn new(config: ServeConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.workers));
        let engine = CertainEngine::with_bounds(config.bounds).with_exec_options(ExecOptions {
            pool: Some(Arc::clone(&pool)),
            morsel_rows: config.morsel_rows.max(1),
        });
        ServeState {
            engine,
            catalog: Catalog::new(),
            cache: PlanCache::new(config.cache_capacity),
            pool,
            stats: ServeStats::new(),
            metrics: MetricsRegistry::new(PLAN_LABELS, SLOW_LOG_CAPACITY),
            series: TimeSeries::new(),
            oracle_chunk: config.oracle_chunk.max(1),
        }
    }

    /// The instance catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The underlying engine (bounds included).
    pub fn engine(&self) -> &CertainEngine {
        &self.engine
    }

    /// The service counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The latency/trace metrics registry behind `METRICS` and the `STATS`
    /// percentile tokens.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The windowed time-series ring behind `TOP` and the `nev_window_*`
    /// gauges of `METRICS`.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// The current monotone telemetry as a [`WindowSample`] — the "now" end
    /// of every trailing-window subtraction, timestamped on the metrics
    /// registry's uptime clock.
    pub fn window_sample(&self) -> WindowSample {
        let snap = self.stats.snapshot();
        WindowSample {
            at_us: self.metrics.uptime_us(),
            requests: snap.requests,
            evals: snap.evals,
            errors: snap.errors,
            plans: self.metrics.plan_snapshots(),
        }
    }

    /// Lazy sampling on the request path: offers the current counters to the
    /// time-series ring when the previous sample is old enough. Cheap when
    /// not due (one lock, one clock read).
    fn maybe_sample(&self) {
        if self.series.due(self.metrics.uptime_us()) {
            self.series.record(self.window_sample());
        }
    }

    /// Registers (or replaces) a named instance; returns `true` on replacement.
    pub fn load(&self, name: impl Into<String>, instance: Instance) -> bool {
        ServeStats::bump(&self.stats.loads);
        self.catalog.register(name, instance).is_some()
    }

    /// Parses, classifies and compiles a query into the plan cache (all semantics).
    pub fn prepare(&self, text: &str) -> Result<Arc<PreparedQuery>, ServeError> {
        ServeStats::bump(&self.stats.prepares);
        Ok(self.cache.prepare_all(text)?)
    }

    /// Answers one `EXPLAIN` request: the Figure 1 dispatch decision for the
    /// query on the named instance (the core check needs real data) plus the
    /// `nev-opt` plan pair — `rules=<fired> logical=(…) optimized=(…)` — without
    /// executing anything. Compiler-rejected shapes report
    /// `compiled=false reason=<code>` instead of plans, where the reason is the
    /// compiler's own rejection (e.g. `complement_too_wide(columns=4,limit=3)`).
    pub fn explain(
        &self,
        name: &str,
        semantics: Semantics,
        query_text: &str,
    ) -> Result<String, ServeError> {
        let instance = self
            .catalog
            .get(name)
            .ok_or_else(|| ServeError::UnknownInstance(name.to_string()))?;
        let plan = self.cache.get_or_prepare(query_text, semantics)?;
        // `plan_with_symbolic` runs the PTIME probe on non-guaranteed cells, so
        // EXPLAIN reports `dispatch=symbolic` exactly when EVAL would answer
        // symbolically — still without enumerating a single world.
        let dispatch = PlanKind::of(&self.engine.plan_with_symbolic(
            &instance,
            semantics,
            &plan.prepared,
        ));
        ServeStats::bump(&self.stats.explains);
        let exec = self.engine.exec_options();
        let runtime = format!(
            "exec_workers={} morsel_rows={}",
            exec.workers(),
            exec.morsel_rows
        );
        Ok(match plan.prepared.compiled() {
            Some(compiled) => format!(
                "dispatch={dispatch} {} {runtime}",
                compiled.explain_compact()
            ),
            None => format!(
                "dispatch={dispatch} compiled=false{} {runtime}",
                render_compile_reason(&plan.prepared)
            ),
        })
    }

    /// Answers one `ANALYZE` request: the static analyser's verdict for the
    /// query on the named instance — raw vs normalized Figure 1 fragment, the
    /// rewrite-trace length, the dispatch the engine would pick (so upgrades
    /// are visible), the re-checked certificate status, per-answer-column
    /// null-safety, and the analyser's diagnostics. Executes nothing.
    pub fn analyze(
        &self,
        name: &str,
        semantics: Semantics,
        query_text: &str,
    ) -> Result<String, ServeError> {
        let instance = self
            .catalog
            .get(name)
            .ok_or_else(|| ServeError::UnknownInstance(name.to_string()))?;
        let plan = self.cache.get_or_prepare(query_text, semantics)?;
        let analysis = plan.prepared.analysis();
        let dispatch = PlanKind::of(&self.engine.plan_with_symbolic(
            &instance,
            semantics,
            &plan.prepared,
        ));
        // The wire never trusts the analyzer blindly: the trace is replayed
        // and both fragments re-classified before the verdict is reported.
        let certificate = match plan.prepared.check_normalization() {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("invalid({e})"),
        };
        let nullability = if analysis.nullability().columns.is_empty() {
            "-".to_string()
        } else {
            analysis
                .nullability()
                .columns
                .iter()
                .map(|c| format!("{}={}", c.column, c.nullability))
                .collect::<Vec<_>>()
                .join(",")
        };
        let diagnostics = analysis
            .diagnostics()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        ServeStats::bump(&self.stats.analyzed);
        if analysis.static_truth().is_some() {
            ServeStats::bump(&self.stats.static_prunes);
        }
        Ok(format!(
            "analysis fragment={} normalized_fragment={} steps={} widened={} dispatch={dispatch} \
             certificate={certificate} nullability={nullability} diagnostics=[{diagnostics}]",
            analysis.original_fragment().short_name(),
            analysis.normalized_fragment().short_name(),
            analysis.trace().len(),
            analysis.widened(),
        ))
    }

    /// Answers one `EVAL` request: certified naïve pass when Figure 1 guarantees
    /// it, the chunked **parallel oracle** otherwise. The certain answers are
    /// identical to `CertainEngine::evaluate` on the same inputs — dispatch is the
    /// engine's, only the oracle's schedule differs.
    pub fn eval(
        &self,
        name: &str,
        semantics: Semantics,
        query_text: &str,
    ) -> Result<EvalResponse, ServeError> {
        self.eval_with_trace(name, semantics, query_text)
            .map(|(response, _trace)| response)
    }

    /// [`ServeState::eval`] returning the request's stage timeline alongside the
    /// answer (the `TRACE` command). The trace covers the whole request — the
    /// plan-cache probe (with parse/classify/compile replayed as children on a
    /// miss), the engine's exec pass, the symbolic probe, and the parallel
    /// oracle — and is also what feeds the metrics registry: the per-plan
    /// latency histogram records exactly once per successful request, so
    /// histogram counts reconcile with the `evals` counter; the per-stage
    /// histograms and the slow-query log absorb the finished trace.
    pub fn eval_with_trace(
        &self,
        name: &str,
        semantics: Semantics,
        query_text: &str,
    ) -> Result<(EvalResponse, Trace), ServeError> {
        let total = Timer::start_always();
        let recorder = TraceRecorder::new();
        let instance = self
            .catalog
            .get(name)
            .ok_or_else(|| ServeError::UnknownInstance(name.to_string()))?;
        let probe = recorder.span(Stage::CacheProbe);
        let lookup = self.cache.get_or_prepare_with_status(query_text, semantics);
        let (plan, hit) = match lookup {
            Ok(found) => found,
            Err(e) => {
                drop(probe);
                return Err(e.into());
            }
        };
        if !hit && recorder.is_enabled() {
            // A miss paid the full preparation inside the probe span; replay
            // its phases as children. Hits skip this — their preparation
            // happened on some earlier request.
            let prep = plan.prepared.prep_timings();
            if prep.parse_us > 0 {
                recorder.leaf(Stage::Parse, prep.parse_us);
            }
            if prep.classify_us > 0 {
                recorder.leaf(Stage::Classify, prep.classify_us);
            }
            if prep.compile_us > 0 {
                recorder.leaf(Stage::Optimize, prep.compile_us);
            }
        }
        drop(probe);
        let response = self.eval_prepared(&instance, semantics, &plan.prepared, &recorder);
        ServeStats::bump(&self.stats.evals);
        let latency = total.elapsed_us();
        self.metrics.observe_plan(response.plan.label(), latency);
        let trace = recorder.finish();
        self.metrics.observe_trace(&trace);
        self.metrics.record_slow(SlowQuery {
            latency_us: latency,
            query: plan.prepared.query().to_string(),
            semantics: semantics.to_string(),
            cell: format!("{:?}", plan.cell),
            plan: response.plan.label().to_string(),
            stages: trace
                .spans()
                .iter()
                .filter(|s| s.depth == 0)
                .map(|s| (s.stage, s.dur_us))
                .collect(),
        });
        Ok((response, trace))
    }

    /// Answers one `PROFILE` request: a **real** evaluation (it counts in
    /// `evals` and feeds the latency histograms, exactly like `TRACE`) that
    /// additionally returns the per-operator annotated plan on compiled
    /// dispatches — inclusive wall time, output rows, and the `nev-opt` cost
    /// model's estimate for every executed operator, including each pairwise
    /// join fold in the greedy order. Non-compiled dispatches (interpreter
    /// fallback, symbolic, oracle) run normally and report `compiled=false`:
    /// there is no operator pipeline to annotate.
    pub fn profile(
        &self,
        name: &str,
        semantics: Semantics,
        query_text: &str,
    ) -> Result<String, ServeError> {
        let total = Timer::start_always();
        let instance = self
            .catalog
            .get(name)
            .ok_or_else(|| ServeError::UnknownInstance(name.to_string()))?;
        let plan = self.cache.get_or_prepare(query_text, semantics)?;
        let (kind, line) = match self.engine.plan(&instance, semantics, &plan.prepared) {
            dispatch @ (EvalPlan::CompiledNaive(_) | EvalPlan::CertifiedNaive(_)) => {
                ServeStats::bump(&self.stats.certified);
                if dispatch.is_compiled() {
                    ServeStats::bump(&self.stats.compiled);
                }
                let kind = PlanKind::of(&dispatch);
                // The exec span the profile must reconcile with: it strictly
                // contains the plan root's inclusive time.
                let exec_timer = Timer::start_always();
                let (certain, exec, profile) = self
                    .engine
                    .naive_answers_profiled(&instance, &plan.prepared);
                let exec_us = exec_timer.elapsed_us();
                ServeStats::add(&self.stats.morsels, exec.morsels_dispatched);
                ServeStats::add(&self.stats.parallel_joins, exec.parallel_joins);
                let line = match profile {
                    Some(profile) => format!(
                        "profile plan={kind} certain={} exec_us={exec_us} ops=[{}]",
                        wire::render_answers(&certain),
                        profile.render()
                    ),
                    None => format!(
                        "profile plan={kind} certain={} compiled=false{}",
                        wire::render_answers(&certain),
                        render_compile_reason(&plan.prepared)
                    ),
                };
                (kind, line)
            }
            EvalPlan::NormalizedNaive(_) | EvalPlan::Symbolic(_) | EvalPlan::BoundedEnumeration => {
                // The regular dispatch (normalized naïve pass, symbolic
                // ladder, then the parallel oracle) — profiled only at the
                // whole-request grain: only the raw query's compiled pipeline
                // carries per-operator annotations.
                let recorder = TraceRecorder::new();
                let response = self.eval_prepared(&instance, semantics, &plan.prepared, &recorder);
                let line = format!(
                    "profile plan={} certain={}{} compiled=false{}",
                    response.plan,
                    wire::render_answers(&response.certain),
                    if response.truncated {
                        " truncated=true"
                    } else {
                        ""
                    },
                    render_compile_reason(&plan.prepared)
                );
                (response.plan, line)
            }
        };
        ServeStats::bump(&self.stats.evals);
        self.metrics.observe_plan(kind.label(), total.elapsed_us());
        Ok(line)
    }

    /// The dispatch core behind [`ServeState::eval_with_trace`]: certified
    /// cells run one naïve pass, the rest run the symbolic probe and then the
    /// parallel oracle on this state's pool — each stage recorded on the
    /// caller's trace.
    fn eval_prepared(
        &self,
        instance: &Instance,
        semantics: Semantics,
        prepared: &Arc<PreparedQuery>,
        recorder: &TraceRecorder,
    ) -> EvalResponse {
        if prepared.analysis().static_truth().is_some() {
            // The normal form is ⊤/⊥: whatever the dispatch below, the exec
            // layer's empty-annihilation rules answer without scanning data.
            ServeStats::bump(&self.stats.static_prunes);
        }
        match self.engine.plan(instance, semantics, prepared) {
            plan @ (EvalPlan::CompiledNaive(_)
            | EvalPlan::CertifiedNaive(_)
            | EvalPlan::NormalizedNaive(_)) => {
                if plan.is_normalized() {
                    // No guarantee for the raw query; the normal form earned
                    // one, so the naïve pass runs on *it* (the rewrites
                    // preserve naïve evaluation, so answers are identical).
                    ServeStats::bump(&self.stats.normalized_upgrades);
                } else {
                    ServeStats::bump(&self.stats.certified);
                }
                if plan.is_compiled() {
                    ServeStats::bump(&self.stats.compiled);
                }
                // Through the engine, so the pass runs under the shared pool's
                // ExecOptions (morsel-parallel scans and joins on large data).
                let (naive, exec) = if plan.is_normalized() {
                    self.engine
                        .normalized_naive_answers_traced(instance, prepared, recorder)
                } else {
                    self.engine
                        .naive_answers_traced(instance, prepared, recorder)
                };
                ServeStats::add(&self.stats.morsels, exec.morsels_dispatched);
                ServeStats::add(&self.stats.parallel_joins, exec.parallel_joins);
                EvalResponse {
                    plan: PlanKind::of(&plan),
                    certain: naive,
                    truncated: false,
                }
            }
            EvalPlan::Symbolic(_) | EvalPlan::BoundedEnumeration => {
                // The PTIME symbolic ladder first: when conditional tables or
                // the sandwich certify, the exponential oracle is retired for
                // this request — zero worlds, nothing to truncate. (The span
                // includes the ladder's own naïve pass.)
                let symbolic_span = recorder.span(Stage::Symbolic);
                let symbolic = self.engine.evaluate_symbolic(instance, semantics, prepared);
                drop(symbolic_span);
                if let Some(evaluation) = symbolic {
                    ServeStats::bump(&self.stats.symbolic);
                    if evaluation
                        .plan
                        .symbolic_certificate()
                        .is_some_and(|c| c.technique == SymbolicTechnique::Sandwich)
                    {
                        ServeStats::bump(&self.stats.sandwich_exact);
                    }
                    return EvalResponse {
                        plan: PlanKind::Symbolic,
                        certain: evaluation.certain,
                        truncated: false,
                    };
                }
                ServeStats::bump(&self.stats.oracle);
                let oracle_span = recorder.span(Stage::OracleWorlds);
                let outcome = parallel_certain_answers(
                    &self.pool,
                    &self.engine,
                    instance,
                    semantics,
                    prepared,
                    self.oracle_chunk,
                );
                drop(oracle_span);
                ServeStats::add(&self.stats.worlds, outcome.worlds_considered as u64);
                if outcome.cancelled {
                    ServeStats::bump(&self.stats.oracle_cancelled);
                }
                if outcome.truncated {
                    ServeStats::bump(&self.stats.truncated);
                }
                EvalResponse {
                    plan: PlanKind::Oracle,
                    certain: outcome.certain,
                    truncated: outcome.truncated,
                }
            }
        }
    }

    /// Answers a batch of `EVAL` requests, amortising across them:
    ///
    /// * the plan cache prepares each distinct query text once;
    /// * requests are grouped by (instance, semantics) and each group's distinct
    ///   queries share **one** bounded world pass (`CertainEngine::evaluate_all`);
    /// * groups execute in parallel on the worker pool.
    ///
    /// Responses come back in request order. Note the engine's documented batching
    /// caveat: the shared pass runs under the union of the group's query constants,
    /// so a request's answer coincides with its solo [`ServeState::eval`] answer
    /// whenever the grouped queries mention the same constants (in particular, no
    /// constants at all) or the world cap does not truncate.
    pub fn eval_batch(&self, requests: &[EvalRequest]) -> Vec<Result<EvalResponse, ServeError>> {
        // Resolve instances + plans up front, building (group key → unique queries).
        struct Slot {
            group: usize,
            query_in_group: usize,
        }
        struct Group {
            instance: Arc<Instance>,
            semantics: Semantics,
            queries: Vec<Arc<PreparedQuery>>,
            seen: HashMap<String, usize>,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut group_index: HashMap<(String, Semantics), usize> = HashMap::new();
        let mut slots: Vec<Result<Slot, ServeError>> = Vec::with_capacity(requests.len());
        for request in requests {
            let resolved = self
                .catalog
                .get(&request.instance)
                .ok_or_else(|| ServeError::UnknownInstance(request.instance.clone()))
                .and_then(|instance| {
                    let plan = self
                        .cache
                        .get_or_prepare(&request.query, request.semantics)?;
                    Ok((instance, plan))
                });
            match resolved {
                Err(e) => slots.push(Err(e)),
                Ok((instance, plan)) => {
                    let key = (request.instance.clone(), request.semantics);
                    let gi = *group_index.entry(key).or_insert_with(|| {
                        groups.push(Group {
                            instance,
                            semantics: request.semantics,
                            queries: Vec::new(),
                            seen: HashMap::new(),
                        });
                        groups.len() - 1
                    });
                    let group = &mut groups[gi];
                    // Dedup on the same canonical rendering the cache keys on,
                    // so spelling variants collapse to one evaluation too.
                    let canonical_text = plan.prepared.query().to_string();
                    let qi = match group.seen.get(&canonical_text) {
                        Some(&qi) => qi,
                        None => {
                            // The Arc from the cache is batched as-is: evaluate_all
                            // takes queries by Borrow, so no plan is deep-cloned.
                            group.queries.push(Arc::clone(&plan.prepared));
                            group.seen.insert(canonical_text, group.queries.len() - 1);
                            group.queries.len() - 1
                        }
                    };
                    slots.push(Ok(Slot {
                        group: gi,
                        query_in_group: qi,
                    }));
                }
            }
        }

        // One pool task per group: a single shared world pass for its queries.
        let engine = self.engine.clone();
        let items: Vec<(Arc<Instance>, Semantics, Vec<Arc<PreparedQuery>>)> = groups
            .into_iter()
            .map(|g| (g.instance, g.semantics, g.queries))
            .collect();
        let batch_results = self
            .pool
            .run(items, move |_, (instance, semantics, queries)| {
                let group_timer = Timer::start_always();
                let batch = engine.evaluate_all(&instance, semantics, &queries);
                let sandwiches = batch
                    .results
                    .iter()
                    .filter(|e| {
                        e.plan
                            .symbolic_certificate()
                            .is_some_and(|c| c.technique == SymbolicTechnique::Sandwich)
                    })
                    .count() as u64;
                let responses: Vec<EvalResponse> = batch
                    .results
                    .into_iter()
                    .map(|evaluation| EvalResponse {
                        plan: PlanKind::of(&evaluation.plan),
                        certain: evaluation.certain,
                        truncated: evaluation.truncated,
                    })
                    .collect();
                (
                    responses,
                    batch.worlds_enumerated,
                    sandwiches,
                    group_timer.elapsed_us(),
                )
            });

        // Telemetry parity with the solo path: per evaluation actually performed
        // (one per unique query of each group), plus the shared-pass world counts.
        for (responses, worlds, sandwiches, _group_us) in &batch_results {
            ServeStats::add(&self.stats.worlds, *worlds as u64);
            ServeStats::add(&self.stats.sandwich_exact, *sandwiches);
            for response in responses {
                match response.plan {
                    PlanKind::Compiled => {
                        ServeStats::bump(&self.stats.certified);
                        ServeStats::bump(&self.stats.compiled);
                    }
                    PlanKind::Certified => ServeStats::bump(&self.stats.certified),
                    PlanKind::Normalized => ServeStats::bump(&self.stats.normalized_upgrades),
                    PlanKind::Symbolic => ServeStats::bump(&self.stats.symbolic),
                    PlanKind::Oracle => ServeStats::bump(&self.stats.oracle),
                }
                if response.truncated {
                    ServeStats::bump(&self.stats.truncated);
                }
            }
        }

        slots
            .into_iter()
            .map(|slot| match slot {
                Ok(s) => {
                    ServeStats::bump(&self.stats.evals);
                    let response = batch_results[s.group].0[s.query_in_group].clone();
                    // One histogram sample per answered request, so histogram
                    // counts stay reconcilable with `evals`. Batched requests
                    // are attributed their group's shared-pass wall time (the
                    // latency the slowest request of the group experienced).
                    self.metrics
                        .observe_plan(response.plan.label(), batch_results[s.group].3);
                    Ok(response)
                }
                Err(e) => {
                    ServeStats::bump(&self.stats.errors);
                    Err(e)
                }
            })
            .collect()
    }

    /// The `STATS` counters (the cache/catalog gauges are appended by
    /// [`ServeState::render_stats`]).
    pub fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The canonical `STATS` payload: the counter block, the cache/catalog/pool
    /// gauges, and the request-latency digest (`uptime_us=` / `p50_us=` /
    /// `p95_us=` / `p99_us=` over all dispatch kinds; zeros before the first
    /// `EVAL`).
    pub fn render_stats(&self) -> String {
        let latency = self.metrics.request_totals();
        format!(
            "{} cache_hits={} cache_misses={} cache_evictions={} cache_entries={} \
             instances={} pool_workers={} uptime_us={} p50_us={} p95_us={} p99_us={}",
            self.stats.snapshot(),
            self.cache.hits(),
            self.cache.misses(),
            self.cache.evictions(),
            self.cache.len(),
            self.catalog.len(),
            self.pool.workers(),
            self.metrics.uptime_us(),
            latency.p50(),
            latency.p95(),
            latency.p99()
        )
    }

    /// The `TOP` one-liner: lifetime totals plus, per trailing window
    /// ([`nev_obs::WINDOWS`]), eval throughput, error rate and interpolated
    /// latency percentiles — everything `nevtop` needs for its header in one
    /// cheap request. Rates are computed against the window's **actual**
    /// elapsed span, so a young server reports honest since-boot rates.
    pub fn render_top(&self) -> String {
        use std::fmt::Write;
        let current = self.window_sample();
        let windows = self.series.windows(&current);
        let mut out = format!(
            "top uptime_us={} requests={} evals={} errors={}",
            current.at_us, current.requests, current.evals, current.errors
        );
        for (label, delta) in &windows {
            let _ = write!(
                out,
                " qps_{label}={:.2} err_{label}={:.4} p50_us_{label}={} p95_us_{label}={} p99_us_{label}={}",
                delta.qps(),
                delta.error_rate(),
                delta.latency.p50(),
                delta.latency.p95(),
                delta.latency.p99()
            );
        }
        out
    }

    /// The `METRICS RESET` action: empties the slow-query log and re-baselines
    /// the time-series ring at the current counters, so trailing windows
    /// restart from zero. Lifetime counters and histograms are deliberately
    /// untouched — every reconciliation invariant (per-plan histogram counts
    /// summing to `evals`) survives a reset.
    pub fn metrics_reset(&self) {
        self.metrics.reset_slow();
        self.series.reset(self.window_sample());
    }

    /// The full `METRICS` exposition: every `STATS` counter and gauge, the
    /// per-plan request-latency and per-stage histograms, the worker pool's
    /// queue-wait/run split, the trailing-window `nev_window_*` gauges, and
    /// the slow-query log — Prometheus-style text ending with a `# EOF` line
    /// (see [`nev_obs::validate_exposition`]).
    pub fn render_metrics(&self) -> String {
        let snap = self.snapshot();
        let counters = [
            ("requests", snap.requests),
            ("loads", snap.loads),
            ("prepares", snap.prepares),
            ("evals", snap.evals),
            ("explains", snap.explains),
            ("errors", snap.errors),
            ("certified", snap.certified),
            ("compiled", snap.compiled),
            ("oracle", snap.oracle),
            ("worlds", snap.worlds),
            ("oracle_cancelled", snap.oracle_cancelled),
            ("morsels", snap.morsels),
            ("parallel_joins", snap.parallel_joins),
            ("symbolic", snap.symbolic),
            ("sandwich_exact", snap.sandwich_exact),
            ("truncated", snap.truncated),
            ("analyzed", snap.analyzed),
            ("normalized_upgrades", snap.normalized_upgrades),
            ("static_prunes", snap.static_prunes),
            ("cache_hits", self.cache.hits()),
            ("cache_misses", self.cache.misses()),
            ("cache_evictions", self.cache.evictions()),
        ];
        let gauges = [
            ("cache_entries", self.cache.len() as u64),
            ("instances", self.catalog.len() as u64),
            ("pool_workers", self.pool.workers() as u64),
        ];
        let pool = self.pool.metrics();
        let extra = [
            ("pool_queue_wait_us", pool.queue_wait.snapshot()),
            ("pool_task_run_us", pool.task_run.snapshot()),
        ];
        let mut appendix = String::new();
        render_window_gauges(&self.series.windows(&self.window_sample()), &mut appendix);
        self.metrics
            .expose_with(&counters, &gauges, &extra, &appendix)
    }

    /// Handles one protocol line, returning the response line (always exactly one
    /// line, `OK …` or `ERR …`). `QUIT` returns `OK bye`; closing the connection is
    /// the server loop's business.
    pub fn handle_line(&self, line: &str) -> String {
        ServeStats::bump(&self.stats.requests);
        let response = match self.handle_command(line) {
            Ok(payload) => format!("OK {payload}"),
            Err(e) => {
                ServeStats::bump(&self.stats.errors);
                format!("ERR {e}")
            }
        };
        // Lazy time-series sampling rides the request path (no ticker
        // thread): after the command so the sample sees its effects.
        self.maybe_sample();
        response
    }

    fn handle_command(&self, line: &str) -> Result<String, ServeError> {
        match wire::parse_command(line)? {
            Command::Load { name, instance } => {
                let facts = instance.fact_count();
                let replaced = self.load(&name, instance);
                Ok(format!(
                    "{} {name} facts={facts}",
                    if replaced { "replaced" } else { "loaded" }
                ))
            }
            Command::Prepare { query } => {
                let prepared = self.prepare(&query)?;
                Ok(format!(
                    "prepared fragment={} arity={} compiles={}",
                    prepared.fragment().short_name(),
                    prepared.arity(),
                    prepared.compiles()
                ))
            }
            Command::Eval {
                name,
                semantics,
                query,
            } => {
                let semantics: Semantics = semantics
                    .parse()
                    .map_err(|_| ServeError::UnknownSemantics(semantics))?;
                let response = self.eval(&name, semantics, &query)?;
                Ok(response.render())
            }
            Command::Explain {
                name,
                semantics,
                query,
            } => {
                let semantics: Semantics = semantics
                    .parse()
                    .map_err(|_| ServeError::UnknownSemantics(semantics))?;
                self.explain(&name, semantics, &query)
            }
            Command::Analyze {
                name,
                semantics,
                query,
            } => {
                let semantics: Semantics = semantics
                    .parse()
                    .map_err(|_| ServeError::UnknownSemantics(semantics))?;
                self.analyze(&name, semantics, &query)
            }
            Command::Trace {
                name,
                semantics,
                query,
            } => {
                let semantics: Semantics = semantics
                    .parse()
                    .map_err(|_| ServeError::UnknownSemantics(semantics))?;
                let (response, trace) = self.eval_with_trace(&name, semantics, &query)?;
                Ok(format!(
                    "trace plan={} total_us={} dropped={} spans={}",
                    response.plan,
                    trace.total_us(),
                    trace.dropped(),
                    trace.render()
                ))
            }
            Command::Profile {
                name,
                semantics,
                query,
            } => {
                let semantics: Semantics = semantics
                    .parse()
                    .map_err(|_| ServeError::UnknownSemantics(semantics))?;
                self.profile(&name, semantics, &query)
            }
            Command::Stats => Ok(self.render_stats()),
            Command::Metrics => {
                // The sole multi-line payload: `OK metrics`, then the
                // exposition, whose final line is the `# EOF` terminator.
                Ok(format!("metrics\n{}", self.render_metrics().trim_end()))
            }
            Command::MetricsReset => {
                self.metrics_reset();
                Ok("metrics reset".to_string())
            }
            Command::Top => Ok(self.render_top()),
            Command::Quit => Ok("bye".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    fn state(workers: usize) -> ServeState {
        ServeState::new(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
    }

    fn d0() -> Instance {
        inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] }
    }

    #[test]
    fn eval_matches_the_in_process_engine_on_both_paths() {
        let state = state(2);
        state.load("d0", d0());
        let engine = CertainEngine::new();
        for (text, semantics) in [
            // Certified cell (∃Pos × CWA) and oracle cells (Pos/FO × OWA).
            ("exists u v . D(u, v) & D(v, u)", Semantics::Cwa),
            ("forall u . exists v . D(u, v)", Semantics::Owa),
            ("exists u . !D(u, u)", Semantics::Owa),
        ] {
            let served = state.eval("d0", semantics, text).expect("served");
            let reference = engine.evaluate(&d0(), semantics, &engine.prepare(text).unwrap());
            assert_eq!(served.certain, reference.certain, "{text}");
            assert_eq!(served.plan, PlanKind::of(&reference.plan), "{text}");
        }
        let snap = state.snapshot();
        assert_eq!(snap.evals, 3);
        assert_eq!(snap.certified, 1);
        assert_eq!(snap.oracle, 2);
        assert!(snap.worlds > 0);
    }

    #[test]
    fn unknown_names_and_semantics_are_typed_errors() {
        let state = state(0);
        assert_eq!(
            state.eval("nope", Semantics::Owa, "exists u . D(u, u)"),
            Err(ServeError::UnknownInstance("nope".into()))
        );
        state.load("d0", d0());
        assert!(matches!(
            state.handle_line("EVAL d0 nonsense exists u . D(u, u)").as_str(),
            s if s.starts_with("ERR unknown semantics")
        ));
        assert!(state
            .handle_line("EVAL d0 owa exists u . D(u")
            .starts_with("ERR"));
        assert_eq!(state.snapshot().errors, 2);
    }

    #[test]
    fn protocol_round_trip_session() {
        let state = state(1);
        assert_eq!(
            state.handle_line("LOAD d0 D(?1,?2);D(?2,?1)"),
            "OK loaded d0 facts=2"
        );
        assert_eq!(
            state.handle_line("LOAD d0 D(?1,?2);D(?2,?1)"),
            "OK replaced d0 facts=2"
        );
        let prepared = state.handle_line("PREPARE forall u . exists v . D(u, v)");
        assert_eq!(prepared, "OK prepared fragment=Pos arity=0 compiles=true");
        let eval = state.handle_line("EVAL d0 cwa forall u . exists v . D(u, v)");
        assert_eq!(eval, "OK plan=compiled certain={()}");
        let owa = state.handle_line("EVAL d0 owa forall u . exists v . D(u, v)");
        assert_eq!(owa, "OK plan=oracle certain={}");
        let stats = state.handle_line("STATS");
        assert!(stats.starts_with("OK requests="), "{stats}");
        assert!(stats.contains("pool_workers=1"), "{stats}");
        assert_eq!(state.handle_line("QUIT"), "OK bye");
    }

    #[test]
    fn explain_exposes_the_optimised_plan_over_the_protocol() {
        let state = state(0);
        state.load("d0", d0());
        // A compiled certified cell: dispatch decision plus both plans.
        let line = state.handle_line("EXPLAIN d0 cwa exists u v . D(u, v)");
        assert!(line.starts_with("OK dispatch=compiled rules="), "{line}");
        assert!(line.contains("logical=("), "{line}");
        assert!(line.contains("optimized=("), "{line}");
        assert!(!line.contains('\n'), "one line per response: {line}");
        // A compiler-rejected shape reports the interpreter fallback, with the
        // compiler's own rejection as the reason.
        let fallback = state.handle_line("EXPLAIN d0 wcwa forall u v w t . D(u, v) & D(w, t)");
        assert!(
            fallback.contains("compiled=false reason=complement_too_wide(columns=4,limit=3)"),
            "{fallback}"
        );
        assert!(fallback.starts_with("OK dispatch=certified"), "{fallback}");
        // Unknown instances are typed errors, exactly like EVAL.
        assert!(state
            .handle_line("EXPLAIN nope owa exists u . D(u, u)")
            .starts_with("ERR unknown instance"));
        assert_eq!(state.snapshot().explains, 2);
        assert_eq!(state.snapshot().evals, 0, "EXPLAIN executes nothing");
        // EXPLAIN warms the same plan cache EVAL uses.
        state.handle_line("EVAL d0 cwa exists u v . D(u, v)");
        assert!(state.cache().hits() >= 1);
    }

    #[test]
    fn eval_batch_amortises_and_preserves_request_order() {
        let state = state(3);
        state.load("d0", d0());
        state.load("loops", inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] });
        let texts = [
            "exists u v . D(u, v) & D(v, u)",
            "forall u . exists v . D(u, v)",
            "exists u . !D(u, u)",
        ];
        // 18 requests: 3 queries × 2 instances × OWA/CWA, plus 6 duplicates.
        let mut requests = Vec::new();
        for name in ["d0", "loops"] {
            for semantics in [Semantics::Owa, Semantics::Cwa] {
                for text in texts {
                    requests.push(EvalRequest {
                        instance: name.into(),
                        semantics,
                        query: text.into(),
                    });
                }
            }
        }
        requests.extend(requests.clone().into_iter().take(6));
        let responses = state.eval_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        // Every response matches the solo path (no constants ⇒ batching is exact),
        // and duplicates are byte-identical to their originals.
        for (request, response) in requests.iter().zip(&responses) {
            let response = response.as_ref().expect("batch request served");
            let solo = state
                .eval(&request.instance, request.semantics, &request.query)
                .expect("solo request served");
            assert_eq!(response.certain, solo.certain, "{request:?}");
            assert_eq!(response.plan, solo.plan, "{request:?}");
        }
        for (dup, original) in responses[18..].iter().zip(&responses[..6]) {
            assert_eq!(dup.as_ref().unwrap(), original.as_ref().unwrap());
        }
        // The distinct texts were prepared once each (per semantics row they hit).
        assert!(state.cache().misses() <= (texts.len() * 2) as u64);
    }

    #[test]
    fn symbolic_dispatch_retires_the_oracle_and_shows_on_the_wire() {
        let state = state(2);
        // A broken chain: Pos × OWA carries no Figure 1 guarantee, but the
        // Kleene/naïve sandwich closes on "certainly false" — zero worlds.
        state.load("chain", inst! { "R" => [[c(1), x(1)]] });
        let eval = state.handle_line("EVAL chain owa forall u . exists v . R(u, v)");
        assert_eq!(eval, "OK plan=symbolic certain={}");
        let explain = state.handle_line("EXPLAIN chain owa forall u . exists v . R(u, v)");
        assert!(explain.starts_with("OK dispatch=symbolic"), "{explain}");
        let snap = state.snapshot();
        assert_eq!(snap.symbolic, 1, "EXPLAIN probes but does not evaluate");
        assert_eq!(snap.sandwich_exact, 1);
        assert_eq!(snap.oracle, 0);
        assert_eq!(snap.worlds, 0, "the oracle was retired for this request");
        let stats = state.handle_line("STATS");
        assert!(stats.contains("symbolic=1"), "{stats}");
        assert!(stats.contains("sandwich_exact=1"), "{stats}");
        assert!(stats.contains("truncated=0"), "{stats}");
    }

    #[test]
    fn analyze_round_trips_and_normalized_dispatch_shows_on_the_wire() {
        let state = state(1);
        state.load("d0", d0());
        // `¬¬∃uv D(u,v)` classifies FO (no CWA guarantee), but its normal form
        // is ∃Pos — ANALYZE reports the widening and the upgraded dispatch.
        let line = state.handle_line("ANALYZE d0 cwa !(!(exists u v . D(u, v)))");
        assert!(line.starts_with("OK analysis fragment=FO"), "{line}");
        assert!(line.contains("normalized_fragment=∃Pos"), "{line}");
        assert!(line.contains("widened=true"), "{line}");
        assert!(line.contains("dispatch=normalized"), "{line}");
        assert!(line.contains("certificate=ok"), "{line}");
        assert!(line.contains("nullability=-"), "{line}");
        assert!(line.contains("diagnostics=[widened(FO→∃Pos)]"), "{line}");
        assert!(!line.contains('\n'), "ANALYZE is a one-liner: {line}");
        // ANALYZE executed nothing, but it counted.
        let snap = state.snapshot();
        assert_eq!(snap.analyzed, 1);
        assert_eq!(snap.evals, 0);
        // EVAL on the same query answers by the certified normalized pass —
        // byte-identical to the raw ∃Pos query's answer, zero worlds.
        let eval = state.handle_line("EVAL d0 cwa !(!(exists u v . D(u, v)))");
        assert_eq!(eval, "OK plan=normalized certain={()}");
        let plain = state.handle_line("EVAL d0 cwa exists u v . D(u, v)");
        assert_eq!(plain, "OK plan=compiled certain={()}");
        let snap = state.snapshot();
        assert_eq!(snap.normalized_upgrades, 1);
        assert_eq!(snap.worlds, 0, "no worlds were enumerated");
        // An unchanged query reports an empty trace and no widening.
        let noop = state.handle_line("ANALYZE d0 cwa exists u v . D(u, v)");
        assert!(noop.contains("steps=0"), "{noop}");
        assert!(noop.contains("widened=false"), "{noop}");
        assert!(noop.contains("diagnostics=[]"), "{noop}");
        // A statically-false query is diagnosed and counted as a prune.
        let pruned = state.handle_line("ANALYZE d0 cwa exists u . D(u, u) & !D(u, u)");
        assert!(pruned.contains("statically-false"), "{pruned}");
        assert!(state.snapshot().static_prunes >= 1, "{pruned}");
        // The STATS line carries all three analyzer counters.
        let stats = state.handle_line("STATS");
        assert!(stats.contains("analyzed=3"), "{stats}");
        assert!(stats.contains("normalized_upgrades=1"), "{stats}");
        assert!(stats.contains("static_prunes="), "{stats}");
        // Unknown instances are typed errors, exactly like EVAL.
        assert!(state
            .handle_line("ANALYZE nope owa exists u . D(u, u)")
            .starts_with("ERR unknown instance"));
    }

    #[test]
    fn truncated_oracle_verdicts_are_flagged_on_the_wire() {
        let state = ServeState::new(ServeConfig {
            workers: 1,
            bounds: WorldBounds {
                max_worlds: 4,
                ..WorldBounds::default()
            },
            ..ServeConfig::default()
        });
        state.load("nulls", inst! { "R" => [[x(1)], [x(2)], [x(3)]] });
        // FO × WCWA, sandwich open (naïvely true, Kleene unknown on the absent
        // S), and every sampled world satisfies the sentence: the capped
        // stream is exhausted and the verdict must carry the flag.
        let line = state.handle_line("EVAL nulls wcwa exists u . R(u) & !S(u)");
        assert_eq!(line, "OK plan=oracle certain={()} truncated=true");
        assert_eq!(state.snapshot().truncated, 1);
        // The same verdict through the batch path carries the same flag.
        let responses = state.eval_batch(&[EvalRequest {
            instance: "nulls".into(),
            semantics: Semantics::Wcwa,
            query: "exists u . R(u) & !S(u)".into(),
        }]);
        let response = responses[0].as_ref().expect("served");
        assert!(response.truncated);
        assert_eq!(response.render(), "plan=oracle certain={()} truncated=true");
        assert_eq!(state.snapshot().truncated, 2);
    }

    #[test]
    fn eval_batch_reports_per_request_errors_in_place() {
        let state = state(1);
        state.load("d0", d0());
        let requests = [
            EvalRequest {
                instance: "missing".into(),
                semantics: Semantics::Owa,
                query: "exists u . D(u, u)".into(),
            },
            EvalRequest {
                instance: "d0".into(),
                semantics: Semantics::Owa,
                query: "exists u . D(u, u)".into(),
            },
        ];
        let responses = state.eval_batch(&requests);
        assert!(matches!(responses[0], Err(ServeError::UnknownInstance(_))));
        assert!(responses[1].is_ok());
    }

    #[test]
    fn stats_carries_the_request_latency_digest() {
        let state = state(0);
        state.load("d0", d0());
        let before = state.render_stats();
        assert!(before.contains(" uptime_us="), "{before}");
        assert!(before.contains(" p50_us=0"), "{before}");
        assert!(before.contains(" p95_us=0"), "{before}");
        assert!(before.contains(" p99_us=0"), "{before}");
        state
            .eval("d0", Semantics::Cwa, "exists u v . D(u, v)")
            .unwrap();
        let after = state.render_stats();
        let digit = |prefix: &str| -> u64 {
            after
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix(prefix))
                .unwrap_or_else(|| panic!("{prefix} token in {after}"))
                .parse()
                .unwrap()
        };
        assert!(digit("p50_us=") > 0, "one eval recorded: {after}");
        // One sample: every percentile reads the same bucket.
        assert!(digit("p95_us=") >= digit("p50_us="), "{after}");
        assert!(digit("p99_us=") >= digit("p95_us="), "{after}");
    }

    #[test]
    fn profile_annotates_every_operator_of_a_compiled_plan() {
        let state = state(0);
        state.load("d0", d0());
        // A certified compiled cell with a join: the profile must carry the
        // join group, its scans, and the pairwise fold with estimates.
        let line = state.handle_line("PROFILE d0 cwa exists u v . D(u, v) & D(v, u)");
        assert!(
            line.starts_with("OK profile plan=compiled certain={()} exec_us="),
            "{line}"
        );
        assert!(line.contains(" ops=["), "{line}");
        assert!(line.contains("Scan D("), "{line}");
        assert!(line.contains("HashJoin["), "{line}");
        assert!(line.contains("est="), "{line}");
        assert!(!line.contains('\n'), "PROFILE is a one-liner: {line}");
        // PROFILE is a real evaluation: it counts and feeds the histograms.
        let snap = state.snapshot();
        assert_eq!(snap.evals, 1);
        assert_eq!(snap.compiled, 1);
        assert_eq!(state.metrics().request_totals().count, 1);
        // The answer is byte-identical to EVAL's.
        let eval = state.handle_line("EVAL d0 cwa exists u v . D(u, v) & D(v, u)");
        assert_eq!(eval, "OK plan=compiled certain={()}");
    }

    #[test]
    fn profile_reports_compiled_false_on_uncompiled_dispatches() {
        let state = state(1);
        state.load("d0", d0());
        // An oracle cell: PROFILE still answers (real dispatch), but there is
        // no operator pipeline to annotate.
        let oracle = state.handle_line("PROFILE d0 owa exists u . !D(u, u)");
        assert!(
            oracle.starts_with("OK profile plan=oracle certain="),
            "{oracle}"
        );
        assert!(oracle.ends_with("compiled=false"), "{oracle}");
        assert!(!oracle.contains("ops=["), "{oracle}");
        // An interpreter-fallback certified cell reports the same flag, plus
        // the compiler's rejection so the operator can see *why* there is no
        // pipeline (the bare `compiled=false` used to be indistinguishable
        // from the symbolic/oracle case).
        let fallback = state.handle_line("PROFILE d0 wcwa forall u v w t . D(u, v) & D(w, t)");
        assert!(
            fallback.starts_with("OK profile plan=certified certain="),
            "{fallback}"
        );
        assert!(
            fallback.ends_with("compiled=false reason=complement_too_wide(columns=4,limit=3)"),
            "{fallback}"
        );
        assert_eq!(state.snapshot().evals, 2);
        // Unknown instances stay typed errors.
        assert!(state
            .handle_line("PROFILE nope owa exists u . D(u, u)")
            .starts_with("ERR unknown instance"));
    }

    #[test]
    fn top_renders_trailing_window_rates() {
        let state = state(1);
        state.load("d0", d0());
        state.handle_line("EVAL d0 cwa exists u v . D(u, v)");
        let top = state.handle_line("TOP");
        assert!(top.starts_with("OK top uptime_us="), "{top}");
        for window in ["1s", "10s", "60s"] {
            assert!(top.contains(&format!(" qps_{window}=")), "{top}");
            assert!(top.contains(&format!(" err_{window}=")), "{top}");
            assert!(top.contains(&format!(" p95_us_{window}=")), "{top}");
        }
        assert!(top.contains(" evals=1 "), "{top}");
        assert!(!top.contains('\n'), "TOP is a one-liner: {top}");
    }

    #[test]
    fn metrics_reset_zeroes_windows_but_never_lifetime_counters() {
        let state = state(0);
        state.load("d0", d0());
        state.handle_line("EVAL d0 cwa exists u v . D(u, v)");
        assert_eq!(state.metrics().slow_queries().len(), 1);
        let evals_before = state.snapshot().evals;
        let totals_before = state.metrics().request_totals().count;
        assert_eq!(state.handle_line("METRICS RESET"), "OK metrics reset");
        // The slow log and the window baselines are gone...
        assert!(state.metrics().slow_queries().is_empty());
        let delta = state.series().window(&state.window_sample(), 60_000_000);
        assert_eq!(delta.evals, 0, "windows restart at the reset baseline");
        // ...while every lifetime quantity survives.
        assert_eq!(state.snapshot().evals, evals_before);
        assert_eq!(state.metrics().request_totals().count, totals_before);
    }

    #[test]
    fn metrics_exposition_validates_and_reconciles_with_evals() {
        let state = state(2);
        state.load("d0", d0());
        for (text, semantics) in [
            ("exists u v . D(u, v) & D(v, u)", Semantics::Cwa),
            ("forall u . exists v . D(u, v)", Semantics::Owa),
            ("exists u . !D(u, u)", Semantics::Owa),
            ("exists u v . D(u, v) & D(v, u)", Semantics::Cwa),
        ] {
            state.eval("d0", semantics, text).expect("served");
        }
        let exposition = state.render_metrics();
        let lines: Vec<String> = exposition.lines().map(str::to_string).collect();
        nev_obs::validate_exposition(&lines).expect("grammar-valid exposition");
        assert_eq!(lines.last().map(String::as_str), Some("# EOF"));
        // Every request lands in exactly one per-plan histogram: the totals
        // must reconcile exactly with the `evals` counter.
        let totals = state.metrics().request_totals();
        assert_eq!(totals.count, state.snapshot().evals);
        let per_plan: u64 = state
            .metrics()
            .plan_snapshots()
            .iter()
            .map(|(_, snap)| snap.count)
            .sum();
        assert_eq!(per_plan, state.snapshot().evals);
        assert!(
            exposition.contains("nev_evals_total 4"),
            "counter block present:\n{exposition}"
        );
        // The trailing-window gauges ride the same exposition.
        assert!(
            exposition.contains("nev_window_evals{window=\"1s\"}"),
            "window gauges present:\n{exposition}"
        );
        assert!(
            exposition.contains("nev_window_plan_p95_us{window=\"60s\",plan=\"compiled\"}"),
            "per-plan window gauges present:\n{exposition}"
        );
    }

    #[test]
    fn trace_command_runs_a_real_eval_and_renders_a_stage_timeline() {
        let state = state(1);
        state.load("d0", d0());
        let line = state.handle_line("TRACE d0 cwa exists u v . D(u, v) & D(v, u)");
        assert!(
            line.starts_with("OK trace plan=compiled total_us="),
            "{line}"
        );
        assert!(line.contains(" dropped=0 "), "{line}");
        assert!(!line.contains('\n'), "TRACE is a one-liner: {line}");
        if nev_obs::enabled() {
            assert!(line.contains("exec:"), "{line}");
            // Depth-0 stage durations can never exceed the request total.
            let total: u64 = line
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("total_us="))
                .unwrap()
                .parse()
                .unwrap();
            let trace = state
                .eval_with_trace("d0", Semantics::Cwa, "exists u v . D(u, v) & D(v, u)")
                .unwrap()
                .1;
            assert!(trace.top_level_us() <= trace.total_us().max(total));
        } else {
            assert!(line.ends_with("spans=-"), "{line}");
        }
        // TRACE is an eval: it counts, and it feeds the same histograms.
        assert!(state.snapshot().evals >= 1);
        assert!(state.metrics().request_totals().count >= 1);
    }

    #[test]
    fn slow_query_log_captures_the_worst_requests() {
        let state = state(0);
        state.load("d0", d0());
        state
            .eval("d0", Semantics::Owa, "exists u . !D(u, u)")
            .unwrap();
        let slow = state.metrics().slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].plan, "oracle");
        assert_eq!(slow[0].semantics, "OWA");
        assert!(slow[0].query.contains('D'), "{:?}", slow[0]);
        let exposition = state.render_metrics();
        assert!(exposition.contains("# slow_query "), "{exposition}");
    }

    #[test]
    fn metrics_over_the_wire_is_the_sole_multiline_response() {
        let state = state(1);
        state.load("d0", d0());
        state.handle_line("EVAL d0 cwa exists u v . D(u, v)");
        let response = state.handle_line("METRICS");
        assert!(response.starts_with("OK metrics\n"), "{response}");
        assert!(response.ends_with("# EOF"), "{response}");
        let body: Vec<String> = response.lines().skip(1).map(str::to_string).collect();
        nev_obs::validate_exposition(&body).expect("wire body validates");
        assert!(state.handle_line("METRICS please").starts_with("ERR"));
    }
}
