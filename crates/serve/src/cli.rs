//! Tiny shared helpers for the workspace's hand-rolled binary flag parsers
//! (`nevd`, `nevload`, `figure1`): one place for the "flag needs a value /
//! invalid value" handling so exit codes and message formats cannot drift.

/// Parses the value of `flag`, exiting with code 2 and a readable message when
/// the value is missing or fails to parse.
pub fn parse_flag_value<T>(flag: &str, value: Option<String>) -> T
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    match value.parse() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("invalid {flag} value: {e}");
            std::process::exit(2);
        }
    }
}
