//! The `nevd` TCP server: a loopback line-protocol front end over
//! [`crate::state::ServeState`].
//!
//! One thread accepts connections; each connection gets its own thread reading
//! request lines and writing one response line per request (see [`crate::wire`]
//! for the grammar). All connection threads share the same `Arc<ServeState>` —
//! the catalog, plan cache and worker pool amortise across clients exactly as
//! they do across requests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::state::ServeState;

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
}

/// A handle to a server running on a background thread (used by tests, the
/// `nevload --self-check` mode and the worked examples).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (`127.0.0.1:0` picks an ephemeral port).
    pub fn bind(addr: &str, state: Arc<ServeState>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, state })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state this server fronts.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Runs the accept loop on the current thread, forever (the `nevd` binary).
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => spawn_connection(stream, Arc::clone(&self.state)),
                Err(e) => eprintln!("nevd: accept failed: {e}"),
            }
        }
        Ok(())
    }

    /// Runs the accept loop on a background thread and returns a handle that stops
    /// it on [`ServerHandle::shutdown`] (or drop).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        // Poll with a non-blocking listener so the loop can observe shutdown.
        self.listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let accept_state = Arc::clone(&self.state);
        let accept_shutdown = Arc::clone(&shutdown);
        let listener = self.listener;
        let accept_thread = std::thread::Builder::new()
            .name("nevd-accept".to_string())
            .spawn(move || {
                while !accept_shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Hand the connection a blocking stream again.
                            if stream.set_nonblocking(false).is_ok() {
                                spawn_connection(stream, Arc::clone(&accept_state));
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(ServerHandle {
            addr,
            state,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state behind the running server.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops accepting new connections (established connections run to `QUIT`/EOF).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_connection(stream: TcpStream, state: Arc<ServeState>) {
    let _ = std::thread::Builder::new()
        .name("nevd-conn".to_string())
        .spawn(move || {
            let _ = serve_connection(stream, &state);
        });
}

/// Reads request lines until `QUIT` or EOF, answering each with one line.
fn serve_connection(stream: TcpStream, state: &ServeState) -> io::Result<()> {
    use crate::wire::{parse_command, Command};

    // A response is one small write answering a small request: without
    // TCP_NODELAY, Nagle holds it back waiting for the request's delayed ACK
    // and every round trip inflates to ~40 ms of kernel timers. (Found by the
    // request-latency histograms this layer now keeps.)
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        // Decide the close from the same parse the handler uses, so any spelling
        // the protocol accepts as QUIT also actually closes the connection.
        let quitting = matches!(parse_command(&line), Ok(Command::Quit));
        let mut response = state.handle_line(&line);
        response.push('\n');
        writer.write_all(response.as_bytes())?;
        writer.flush()?;
        if quitting {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::state::ServeConfig;

    #[test]
    fn spawned_server_answers_and_shuts_down() {
        let state = Arc::new(ServeState::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        }));
        let server = Server::bind("127.0.0.1:0", state).expect("bind ephemeral");
        let mut handle = server.spawn().expect("spawn accept loop");
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        assert_eq!(
            client.send("LOAD d D(?1,?2)").unwrap(),
            "OK loaded d facts=1"
        );
        assert_eq!(
            client.send("EVAL d cwa exists u v . D(u, v)").unwrap(),
            "OK plan=compiled certain={()}"
        );
        assert_eq!(client.send("QUIT").unwrap(), "OK bye");
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients_share_catalog_and_cache() {
        let state = Arc::new(ServeState::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        }));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let handle = server.spawn().expect("spawn");
        let addr = handle.addr().to_string();
        let mut loader = Client::connect(&addr).expect("connect loader");
        loader.send("LOAD shared D(?1,?2);D(?2,?1)").unwrap();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    client
                        .send("EVAL shared owa forall u . exists v . D(u, v)")
                        .unwrap()
                })
            })
            .collect();
        for c in clients {
            assert_eq!(c.join().unwrap(), "OK plan=oracle certain={}");
        }
        // Four EVALs of one text under one semantics: at most one cache miss.
        assert!(state.cache().hits() >= 3, "hits={}", state.cache().hits());
    }
}
