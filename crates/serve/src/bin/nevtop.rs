//! `nevtop` — a live terminal dashboard over a running `nevd`.
//!
//! ```text
//! nevtop [--addr HOST:PORT] [--interval-ms N] [--once]
//! ```
//!
//! Polls the server's `TOP`, `STATS` and `METRICS` commands and renders one
//! frame per interval: trailing-window throughput and latency percentiles
//! (1s / 10s / 60s), a per-dispatch-kind window table read off the
//! `nev_window_plan_*` gauges, the slow-query log, and a digest of the
//! lifetime `STATS` line. Frames are hash-diffed — an idle server redraws
//! nothing — and `--once` prints a single frame and exits (the scripting/CI
//! mode). Connection failures exit non-zero.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::io;

use nev_serve::cli::parse_flag_value;
use nev_serve::client::Client;
use nev_serve::PLAN_LABELS;

/// The trailing windows the server reports (mirrors `nev_obs::WINDOWS`).
const WINDOW_LABELS: [&str; 3] = ["1s", "10s", "60s"];

fn usage_and_exit(code: i32) -> ! {
    println!("usage: nevtop [--addr HOST:PORT] [--interval-ms N] [--once]");
    std::process::exit(code);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut interval_ms: u64 = 1000;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_flag_value("--addr", args.next()),
            "--interval-ms" => interval_ms = parse_flag_value("--interval-ms", args.next()),
            "--once" => once = true,
            "--help" | "-h" => usage_and_exit(0),
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("nevtop: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let mut last_hash: Option<u64> = None;
    loop {
        let frame = match render_frame(&mut client, &addr) {
            Ok(frame) => frame,
            Err(e) => {
                eprintln!("nevtop: {addr}: {e}");
                std::process::exit(1);
            }
        };
        if once {
            print!("{frame}");
            return;
        }
        // Hash-diffed refresh: an idle server costs three requests and zero
        // terminal writes per tick.
        let mut hasher = DefaultHasher::new();
        frame.hash(&mut hasher);
        let hash = hasher.finish();
        if last_hash != Some(hash) {
            // Clear screen + home, then the frame.
            print!("\x1b[2J\x1b[H{frame}");
            use io::Write;
            let _ = io::stdout().flush();
            last_hash = Some(hash);
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

/// One full dashboard frame, assembled from a `TOP` + `STATS` + `METRICS`
/// round trip.
fn render_frame(client: &mut Client, addr: &str) -> io::Result<String> {
    use std::fmt::Write;

    let top = expect_ok(client.send("TOP")?, "top")?;
    let stats = expect_ok(client.send("STATS")?, "")?;
    let metrics = client.metrics()?;

    let top_kv = key_values(&top);
    let stats_kv = key_values(&stats);
    let read = |kv: &BTreeMap<String, String>, key: &str| -> String {
        kv.get(key).cloned().unwrap_or_else(|| "-".to_string())
    };

    let mut out = String::with_capacity(2048);
    let uptime_s = read(&top_kv, "uptime_us").parse::<u64>().unwrap_or(0) as f64 / 1_000_000.0;
    let _ = writeln!(
        out,
        "nevd {addr} — uptime {uptime_s:.1}s  requests {}  evals {}  errors {}",
        read(&top_kv, "requests"),
        read(&top_kv, "evals"),
        read(&top_kv, "errors"),
    );

    // Trailing-window header table, straight off the TOP tokens.
    let _ = writeln!(
        out,
        "\n{:<8}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "window", "qps", "err", "p50_us", "p95_us", "p99_us"
    );
    for window in WINDOW_LABELS {
        let _ = writeln!(
            out,
            "{window:<8}{:>10}{:>10}{:>10}{:>10}{:>10}",
            read(&top_kv, &format!("qps_{window}")),
            read(&top_kv, &format!("err_{window}")),
            read(&top_kv, &format!("p50_us_{window}")),
            read(&top_kv, &format!("p95_us_{window}")),
            read(&top_kv, &format!("p99_us_{window}")),
        );
    }

    // Per-dispatch-kind window table from the nev_window_plan_* gauges.
    let gauges = window_plan_gauges(&metrics);
    let cell = |metric: &str, window: &str, plan: &str| -> String {
        gauges
            .get(&(metric.to_string(), window.to_string(), plan.to_string()))
            .map_or_else(|| "-".to_string(), u64::to_string)
    };
    let _ = writeln!(
        out,
        "\n{:<12}{:>10}{:>11}{:>11}{:>12}{:>12}{:>12}",
        "plan", "evals/1s", "evals/10s", "evals/60s", "p50_us/60s", "p95_us/60s", "p99_us/60s"
    );
    for plan in PLAN_LABELS {
        let _ = writeln!(
            out,
            "{plan:<12}{:>10}{:>11}{:>11}{:>12}{:>12}{:>12}",
            cell("nev_window_plan_evals", "1s", plan),
            cell("nev_window_plan_evals", "10s", plan),
            cell("nev_window_plan_evals", "60s", plan),
            cell("nev_window_plan_p50_us", "60s", plan),
            cell("nev_window_plan_p95_us", "60s", plan),
            cell("nev_window_plan_p99_us", "60s", plan),
        );
    }

    // The slow-query log rides the exposition as comment lines.
    let slow: Vec<&str> = metrics
        .iter()
        .filter_map(|line| line.strip_prefix("# slow_query "))
        .collect();
    let _ = writeln!(out, "\nslow queries ({}):", slow.len());
    for entry in slow {
        let _ = writeln!(out, "  {entry}");
    }

    // A digest of the lifetime STATS counters.
    let _ = writeln!(
        out,
        "\nlifetime: p50_us={} p95_us={} p99_us={} cache_hits={} cache_misses={} \
         cache_entries={} pool_workers={}",
        read(&stats_kv, "p50_us"),
        read(&stats_kv, "p95_us"),
        read(&stats_kv, "p99_us"),
        read(&stats_kv, "cache_hits"),
        read(&stats_kv, "cache_misses"),
        read(&stats_kv, "cache_entries"),
        read(&stats_kv, "pool_workers"),
    );
    Ok(out)
}

/// Strips the `OK <head>` prefix from a one-line response, failing loudly on
/// `ERR` (a protocol error means the dashboard's assumptions are stale).
fn expect_ok(response: String, head: &str) -> io::Result<String> {
    let Some(rest) = response.strip_prefix("OK ") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected response: {response}"),
        ));
    };
    let rest = rest.strip_prefix(head).unwrap_or(rest);
    Ok(rest.trim_start().to_string())
}

/// Parses the space-separated `key=value` tokens of a one-line payload.
fn key_values(payload: &str) -> BTreeMap<String, String> {
    payload
        .split_whitespace()
        .filter_map(|token| token.split_once('='))
        .map(|(key, value)| (key.to_string(), value.to_string()))
        .collect()
}

/// Collects the `nev_window_plan_*{window="…",plan="…"} value` gauge samples
/// of a `METRICS` exposition, keyed by (metric, window, plan).
fn window_plan_gauges(lines: &[String]) -> BTreeMap<(String, String, String), u64> {
    let mut gauges = BTreeMap::new();
    for line in lines {
        if !line.starts_with("nev_window_plan_") {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        let Some((name, labels)) = series.split_once('{') else {
            continue;
        };
        let Some(labels) = labels.strip_suffix('}') else {
            continue;
        };
        let mut window = None;
        let mut plan = None;
        for pair in labels.split(',') {
            if let Some((key, quoted)) = pair.split_once('=') {
                let bare = quoted.trim_matches('"').to_string();
                match key {
                    "window" => window = Some(bare),
                    "plan" => plan = Some(bare),
                    _ => {}
                }
            }
        }
        if let (Some(window), Some(plan)) = (window, plan) {
            gauges.insert((name.to_string(), window, plan), value);
        }
    }
    gauges
}
