//! `nevd` — the certain-answer service daemon.
//!
//! ```text
//! nevd [--port P] [--workers N] [--cache-capacity C] [--oracle-chunk K]
//! ```
//!
//! Binds a loopback TCP listener (`--port 0`, the default, picks an ephemeral
//! port and prints it) and serves the line protocol documented in
//! `nev_serve::wire`: `LOAD`, `PREPARE`, `EVAL`, `STATS`, `QUIT`.

use std::sync::Arc;

use nev_serve::cli::parse_flag_value;
use nev_serve::server::Server;
use nev_serve::state::{ServeConfig, ServeState};

fn usage_and_exit(code: i32) -> ! {
    println!("usage: nevd [--port P] [--workers N] [--cache-capacity C] [--oracle-chunk K]");
    std::process::exit(code);
}

fn main() {
    let mut port: u16 = 0;
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = parse_flag_value("--port", args.next()),
            "--workers" => config.workers = parse_flag_value("--workers", args.next()),
            "--cache-capacity" => {
                config.cache_capacity = parse_flag_value("--cache-capacity", args.next());
            }
            "--oracle-chunk" => {
                config.oracle_chunk = parse_flag_value("--oracle-chunk", args.next());
            }
            "--help" | "-h" => usage_and_exit(0),
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }

    let workers = config.workers;
    let state = Arc::new(ServeState::new(config));
    let server = match Server::bind(&format!("127.0.0.1:{port}"), state) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("nevd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("nevd listening on {addr} ({workers} workers)"),
        Err(e) => eprintln!("nevd: local_addr failed: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("nevd: accept loop failed: {e}");
        std::process::exit(1);
    }
}
