//! `nevload` — the load-generator client and round-trip checker.
//!
//! ```text
//! nevload --self-check [--seed S] [--instances I] [--requests N] [--workers W]
//! nevload --addr HOST:PORT [--seed S] [--instances I] [--requests N]
//! ```
//!
//! Drives the seeded workload of `nev_serve::client::workload` through a server —
//! either one it spawns in-process on an ephemeral port (`--self-check`, the CI
//! smoke mode; `--workers` sizes that server's pool) or an already-running `nevd`
//! (`--addr`) — and checks **every** `EVAL` response byte-for-byte against a bare
//! in-process `CertainEngine` evaluation of the same snapshot. Exits non-zero on
//! any mismatch.

use nev_serve::cli::parse_flag_value;
use nev_serve::client::{run_load, self_check};

fn usage_and_exit(code: i32) -> ! {
    println!(
        "usage: nevload --self-check [--seed S] [--instances I] [--requests N] [--workers W]\n\
         \x20      nevload --addr HOST:PORT [--seed S] [--instances I] [--requests N]"
    );
    std::process::exit(code);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut do_self_check = false;
    let mut seed: u64 = 20130622;
    let mut instances: usize = 2;
    let mut requests: usize = 24;
    let mut workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse_flag_value("--addr", args.next())),
            "--self-check" => do_self_check = true,
            "--seed" => seed = parse_flag_value("--seed", args.next()),
            "--instances" => instances = parse_flag_value("--instances", args.next()),
            "--requests" => requests = parse_flag_value("--requests", args.next()),
            "--workers" => workers = Some(parse_flag_value("--workers", args.next())),
            "--help" | "-h" => usage_and_exit(0),
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }

    let report = match (do_self_check, addr) {
        (true, None) => self_check(seed, instances, requests, workers.unwrap_or(4)),
        (false, Some(addr)) => {
            if workers.is_some() {
                // The pool size of a remote server is the server's business.
                eprintln!("--workers only applies to --self-check (the spawned server's pool)");
                std::process::exit(2);
            }
            run_load(&addr, seed, instances, requests)
        }
        _ => usage_and_exit(2),
    };
    match report {
        Ok(report) => {
            println!("{report}");
            if report.all_match() {
                println!(
                    "nevload: all {} answers byte-identical to the in-process engine",
                    report.answered
                );
            } else {
                eprintln!("nevload: {} mismatch(es)", report.mismatches.len());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("nevload: {e}");
            std::process::exit(1);
        }
    }
}
