//! The `nevd` line protocol: request parsing and canonical rendering.
//!
//! Every request and every response is **one line** of UTF-8 text. The grammar:
//!
//! ```text
//! request   = "LOAD" name facts
//!           | "PREPARE" query-text
//!           | "EVAL" name semantics query-text
//!           | "STATS"
//!           | "QUIT"
//! facts     = "-"                      (the empty instance)
//!           | fact (";" fact)*
//! fact      = relname "(" values ")"   (values may be empty: a 0-ary fact)
//! values    = value ("," value)*
//! value     = integer                  (a constant, e.g. 42 or -7)
//!           | "?" positive-integer     (a labelled null, e.g. ?1)
//!           | symbol                   (a string constant, e.g. paris)
//! semantics = "owa" | "cwa" | "wcwa" | "powerset-cwa" | "minimal-cwa" | …
//!             (every spelling `Semantics::from_str` accepts)
//! response  = "OK" payload | "ERR" message
//! ```
//!
//! Rendering is **canonical**: instances and answer sets serialise from `BTreeMap`/
//! `BTreeSet` iteration order, so equal values always render to identical bytes.
//! That is what makes "server round-trip answers are byte-identical to an
//! in-process [`nev_core::engine::CertainEngine::evaluate`]" a checkable property —
//! the load-generator client asserts it on every response.

use std::collections::BTreeSet;
use std::fmt;

use nev_incomplete::{Instance, Tuple, Value};

/// A parsed protocol request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Command {
    /// `LOAD name facts` — register (or replace) a named instance.
    Load {
        /// Catalog name to bind.
        name: String,
        /// The parsed instance.
        instance: Instance,
    },
    /// `PREPARE query` — parse, classify and compile a query into the plan cache.
    Prepare {
        /// The raw query text.
        query: String,
    },
    /// `EVAL name semantics query` — certain answers of `query` on the named
    /// instance under the given semantics.
    Eval {
        /// Catalog name to evaluate on.
        name: String,
        /// The semantics spelling (validated by the state layer).
        semantics: String,
        /// The raw query text.
        query: String,
    },
    /// `STATS` — service counters.
    Stats,
    /// `QUIT` — close the connection.
    Quit,
}

/// A protocol-level parse failure (rendered as an `ERR` response).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// Parses one request line.
pub fn parse_command(line: &str) -> Result<Command, WireError> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "LOAD" => {
            let (name, facts) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err("usage: LOAD <name> <facts>"))?;
            Ok(Command::Load {
                name: valid_name(name)?,
                instance: parse_instance(facts.trim())?,
            })
        }
        "PREPARE" => {
            if rest.is_empty() {
                return Err(err("usage: PREPARE <query>"));
            }
            Ok(Command::Prepare {
                query: rest.to_string(),
            })
        }
        "EVAL" => {
            let (name, tail) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err("usage: EVAL <name> <semantics> <query>"))?;
            let (semantics, query) = tail
                .trim()
                .split_once(char::is_whitespace)
                .ok_or_else(|| err("usage: EVAL <name> <semantics> <query>"))?;
            Ok(Command::Eval {
                name: valid_name(name)?,
                semantics: semantics.to_string(),
                query: query.trim().to_string(),
            })
        }
        "STATS" => {
            if rest.is_empty() {
                Ok(Command::Stats)
            } else {
                Err(err("STATS takes no arguments"))
            }
        }
        "QUIT" => Ok(Command::Quit),
        other => Err(err(format!(
            "unknown command `{other}` (expected LOAD, PREPARE, EVAL, STATS or QUIT)"
        ))),
    }
}

fn valid_name(name: &str) -> Result<String, WireError> {
    if !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(name.to_string())
    } else {
        Err(err(format!(
            "invalid instance name `{name}` (alphanumeric, `_` and `-` only)"
        )))
    }
}

/// Parses the `facts` payload of a `LOAD` command.
pub fn parse_instance(text: &str) -> Result<Instance, WireError> {
    let mut instance = Instance::new();
    if text == "-" || text.is_empty() {
        return Ok(instance);
    }
    for fact in text.split(';') {
        let fact = fact.trim();
        if fact.is_empty() {
            continue;
        }
        let open = fact
            .find('(')
            .ok_or_else(|| err(format!("fact `{fact}` is missing `(`")))?;
        let close = fact
            .rfind(')')
            .filter(|&i| i == fact.len() - 1 && i > open)
            .ok_or_else(|| err(format!("fact `{fact}` must end with `)`")))?;
        let relation = fact[..open].trim();
        if relation.is_empty()
            || !relation
                .chars()
                .all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
        {
            return Err(err(format!(
                "fact `{fact}` needs an alphanumeric relation name"
            )));
        }
        let body = fact[open + 1..close].trim();
        let values = if body.is_empty() {
            Vec::new()
        } else {
            body.split(',')
                .map(|v| parse_value(v.trim()))
                .collect::<Result<Vec<_>, _>>()?
        };
        instance
            .add_tuple(relation, Tuple::new(values))
            .map_err(|e| err(format!("fact `{fact}`: {e}")))?;
    }
    Ok(instance)
}

/// Parses one wire value: `?N` is a null, an integer literal is an `Int`
/// constant, a bare symbol is a `Str` constant, and a single-quoted string
/// (`'…'`, no embedded quotes) is a `Str` constant verbatim — the quoted form
/// covers strings that would otherwise be ambiguous (`'7'` is the *string* 7)
/// or unparseable as bare symbols (`'a b'`).
pub fn parse_value(text: &str) -> Result<Value, WireError> {
    if let Some(null) = text.strip_prefix('?') {
        let id: u32 = null
            .parse()
            .map_err(|_| err(format!("invalid null `{text}` (expected ?N)")))?;
        return Ok(Value::null(id));
    }
    if let Some(quoted) = text.strip_prefix('\'') {
        let inner = quoted
            .strip_suffix('\'')
            .ok_or_else(|| err(format!("unterminated quoted value `{text}`")))?;
        if inner.contains('\'') {
            return Err(err(format!(
                "quoted value `{text}` may not contain embedded quotes"
            )));
        }
        return Ok(Value::str(inner));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::int(i));
    }
    if is_bare_symbol(text) {
        return Ok(Value::str(text));
    }
    Err(err(format!(
        "invalid value `{text}` (integer, ?N null, bare symbol, or 'quoted string')"
    )))
}

/// A string that parses back as the same `Str` constant when rendered bare: made
/// of symbol characters and not mistakable for an integer or a null.
fn is_bare_symbol(text: &str) -> bool {
    !text.is_empty()
        && text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && text.parse::<i64>().is_err()
        && !text.starts_with('?')
}

/// Renders an instance in the `facts` wire syntax; canonical (sorted relations,
/// sorted tuples) and round-trips through [`parse_instance`].
pub fn render_instance(instance: &Instance) -> String {
    let mut facts = Vec::new();
    for relation in instance.relations() {
        for tuple in relation.tuples() {
            facts.push(format!("{}({})", relation.name(), render_values(tuple)));
        }
    }
    if facts.is_empty() {
        "-".to_string()
    } else {
        facts.join(";")
    }
}

fn render_values(tuple: &Tuple) -> String {
    tuple
        .values()
        .iter()
        .map(render_value)
        .collect::<Vec<_>>()
        .join(",")
}

fn render_value(value: &Value) -> String {
    match value {
        Value::Null(n) => format!("?{}", n.index()),
        Value::Const(c) => {
            let rendered = c.to_string();
            // Quote any Str constant the bare syntax would misread — one that
            // looks like an integer (`"7"`), a null, or contains non-symbol
            // characters — so rendering always round-trips through
            // `parse_value`. Int constants always render bare.
            if c.as_str().is_some() && !is_bare_symbol(&rendered) {
                format!("'{rendered}'")
            } else {
                rendered
            }
        }
    }
}

/// Renders an answer set canonically: `{}`, `{()}`, or `{(1,4),(2,paris)}` — the
/// `BTreeSet` order makes equal sets byte-identical.
pub fn render_answers(answers: &BTreeSet<Tuple>) -> String {
    let tuples: Vec<String> = answers
        .iter()
        .map(|t| format!("({})", render_values(t)))
        .collect();
    format!("{{{}}}", tuples.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    #[test]
    fn commands_parse() {
        assert_eq!(
            parse_command("LOAD d0 D(?1,?2);D(?2,?1)"),
            Ok(Command::Load {
                name: "d0".into(),
                instance: inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] },
            })
        );
        assert_eq!(
            parse_command("EVAL d0 owa forall u . exists v . D(u, v)"),
            Ok(Command::Eval {
                name: "d0".into(),
                semantics: "owa".into(),
                query: "forall u . exists v . D(u, v)".into(),
            })
        );
        assert_eq!(
            parse_command("  prepare exists u . R(u)"),
            Ok(Command::Prepare {
                query: "exists u . R(u)".into(),
            })
        );
        assert_eq!(parse_command("STATS"), Ok(Command::Stats));
        assert_eq!(parse_command("quit"), Ok(Command::Quit));
    }

    #[test]
    fn malformed_commands_are_rejected_with_usage_hints() {
        for (line, needle) in [
            ("LOAD onlyname", "usage: LOAD"),
            ("EVAL d0 owa", "usage: EVAL"),
            ("PREPARE", "usage: PREPARE"),
            ("STATS now", "no arguments"),
            ("FROBNICATE", "unknown command"),
            ("LOAD bad!name R(1)", "invalid instance name"),
        ] {
            let e = parse_command(line).unwrap_err();
            assert!(e.to_string().contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn instances_round_trip() {
        let d = inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        };
        let wire = render_instance(&d);
        assert_eq!(parse_instance(&wire), Ok(d));
        // The empty instance renders as `-`.
        assert_eq!(render_instance(&Instance::new()), "-");
        assert_eq!(parse_instance("-"), Ok(Instance::new()));
    }

    #[test]
    fn string_constants_and_negative_integers_parse() {
        assert_eq!(parse_value("paris"), Ok(Value::str("paris")));
        assert_eq!(parse_value("-7"), Ok(Value::int(-7)));
        assert_eq!(parse_value("?12"), Ok(Value::null(12)));
        assert!(parse_value("a b").is_err());
        assert!(parse_value("?x").is_err());
        assert!(parse_value("").is_err());
        // The quoted form keeps string-typed values distinct from their lookalikes.
        assert_eq!(parse_value("'7'"), Ok(Value::str("7")));
        assert_eq!(parse_value("'a b'"), Ok(Value::str("a b")));
        assert_eq!(parse_value("'?1'"), Ok(Value::str("?1")));
        assert!(parse_value("'oops").is_err());
        assert!(parse_value("'a'b'").is_err());
    }

    #[test]
    fn ambiguous_string_constants_round_trip_quoted() {
        use nev_incomplete::Tuple;
        // Str("7") ≠ Int(7); the wire form must preserve the distinction, and
        // whitespace-bearing strings must render to something parseable.
        let mut d = Instance::new();
        d.add_tuple(
            "R",
            Tuple::new(vec![Value::str("7"), Value::int(7), Value::str("a b")]),
        )
        .unwrap();
        let wire = render_instance(&d);
        assert_eq!(wire, "R('7',7,'a b')");
        assert_eq!(parse_instance(&wire), Ok(d));
    }

    #[test]
    fn arity_mismatches_are_wire_errors() {
        let e = parse_instance("R(1,2);R(3)").unwrap_err();
        assert!(e.to_string().contains("R(3)"), "{e}");
    }

    #[test]
    fn answers_render_canonically() {
        let mut answers = BTreeSet::new();
        assert_eq!(render_answers(&answers), "{}");
        answers.insert(Tuple::new(vec![]));
        assert_eq!(render_answers(&answers), "{()}");
        let mut kary = BTreeSet::new();
        kary.insert(Tuple::new(vec![c(2), Value::str("paris")]));
        kary.insert(Tuple::new(vec![c(1), c(4)]));
        assert_eq!(render_answers(&kary), "{(1,4),(2,paris)}");
    }
}
