//! The `nevd` line protocol: request parsing and canonical rendering.
//!
//! Every request and every response is **one line** of UTF-8 text. The grammar:
//!
//! ```text
//! request   = "LOAD" name facts
//!           | "PREPARE" query-text
//!           | "EVAL" name semantics query-text
//!           | "EXPLAIN" name semantics query-text
//!           | "ANALYZE" name semantics query-text
//!           | "TRACE" name semantics query-text
//!           | "PROFILE" name semantics query-text
//!           | "STATS"
//!           | "METRICS"
//!           | "METRICS RESET"
//!           | "TOP"
//!           | "QUIT"
//! facts     = "-"                      (the empty instance)
//!           | fact (";" fact)*
//! fact      = relname "(" values ")"   (values may be empty: a 0-ary fact)
//! values    = value ("," value)*
//! value     = integer                  (a constant, e.g. 42 or -7)
//!           | "?" positive-integer     (a labelled null, e.g. ?1)
//!           | symbol                   (a string constant, e.g. paris)
//!           | "'" chars "'"            (a quoted string constant; a literal
//!                                       quote is written doubled: '')
//! semantics = "owa" | "cwa" | "wcwa" | "powerset-cwa" | "minimal-cwa" | …
//!             (every spelling `Semantics::from_str` accepts)
//! response  = "OK" payload | "ERR" message
//! ```
//!
//! Every response is one line — with a single exception: `METRICS` answers
//! `OK metrics` followed by a Prometheus-style exposition whose last line is
//! `# EOF` (see [`nev_obs::validate_exposition`] for the exposition grammar),
//! so line-oriented clients know exactly where the multi-line payload stops.
//! `TRACE` evaluates like `EVAL` but answers with the request's stage
//! timeline (`trace plan=… total_us=… spans=…`) instead of the answer set.
//! `ANALYZE` runs the static analyser without executing anything: it answers
//! with the raw and normalized fragments, the rewrite-trace length, the
//! dispatch the engine would pick, the replay-checked certificate status,
//! per-answer-column null-safety, and the analyser's diagnostics.
//! `PROFILE` evaluates like `EVAL` but answers with the per-operator annotated
//! plan (wall time, output rows, estimated rows per node); `TOP` is the
//! one-line windowed throughput/latency summary behind the `nevtop` dashboard,
//! and `METRICS RESET` zeroes the slow-query log and the windowed series
//! while leaving every lifetime counter intact.
//!
//! The `;` and `,` separators of the facts grammar are recognised **outside
//! quotes only**, so quoted strings may contain any character (newlines aside —
//! the transport is line-based).
//!
//! Rendering is **canonical**: instances and answer sets serialise from `BTreeMap`/
//! `BTreeSet` iteration order, so equal values always render to identical bytes.
//! That is what makes "server round-trip answers are byte-identical to an
//! in-process [`nev_core::engine::CertainEngine::evaluate`]" a checkable property —
//! the load-generator client asserts it on every response.

use std::collections::BTreeSet;
use std::fmt;

use nev_incomplete::{Instance, Tuple, Value};

/// A parsed protocol request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Command {
    /// `LOAD name facts` — register (or replace) a named instance.
    Load {
        /// Catalog name to bind.
        name: String,
        /// The parsed instance.
        instance: Instance,
    },
    /// `PREPARE query` — parse, classify and compile a query into the plan cache.
    Prepare {
        /// The raw query text.
        query: String,
    },
    /// `EVAL name semantics query` — certain answers of `query` on the named
    /// instance under the given semantics.
    Eval {
        /// Catalog name to evaluate on.
        name: String,
        /// The semantics spelling (validated by the state layer).
        semantics: String,
        /// The raw query text.
        query: String,
    },
    /// `EXPLAIN name semantics query` — the dispatch decision and the `nev-opt`
    /// optimised plan for `query` on the named instance, without executing it.
    Explain {
        /// Catalog name the dispatch would run on (core checks need it).
        name: String,
        /// The semantics spelling (validated by the state layer).
        semantics: String,
        /// The raw query text.
        query: String,
    },
    /// `ANALYZE name semantics query` — the static analyser's verdict for
    /// `query` on the named instance, without executing it: raw vs normalized
    /// fragment, rewrite-trace length, the dispatch the engine would pick,
    /// certificate status, per-column null-safety, and diagnostics.
    Analyze {
        /// Catalog name the dispatch would run on (core checks need it).
        name: String,
        /// The semantics spelling (validated by the state layer).
        semantics: String,
        /// The raw query text.
        query: String,
    },
    /// `TRACE name semantics query` — evaluate like `EVAL`, but answer with the
    /// request's stage timeline instead of the answer set.
    Trace {
        /// Catalog name to evaluate on.
        name: String,
        /// The semantics spelling (validated by the state layer).
        semantics: String,
        /// The raw query text.
        query: String,
    },
    /// `PROFILE name semantics query` — evaluate like `EVAL`, but answer with
    /// the per-operator annotated plan (inclusive wall time, output rows and
    /// the cost model's estimated rows per executed operator).
    Profile {
        /// Catalog name to evaluate on.
        name: String,
        /// The semantics spelling (validated by the state layer).
        semantics: String,
        /// The raw query text.
        query: String,
    },
    /// `STATS` — service counters.
    Stats,
    /// `METRICS` — the full telemetry exposition (the sole multi-line response,
    /// terminated by a `# EOF` line).
    Metrics,
    /// `METRICS RESET` — zero the slow-query log and the windowed time series,
    /// leaving every lifetime counter (and histogram) untouched so the
    /// windowed-vs-lifetime reconciliation invariants survive.
    MetricsReset,
    /// `TOP` — the one-line windowed throughput/latency summary (QPS, error
    /// rate and latency quantiles over the trailing 1 s / 10 s / 60 s windows).
    Top,
    /// `QUIT` — close the connection.
    Quit,
}

/// A protocol-level parse failure (rendered as an `ERR` response).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// Parses one request line.
pub fn parse_command(line: &str) -> Result<Command, WireError> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "LOAD" => {
            let (name, facts) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err("usage: LOAD <name> <facts>"))?;
            Ok(Command::Load {
                name: valid_name(name)?,
                instance: parse_instance(facts.trim())?,
            })
        }
        "PREPARE" => {
            if rest.is_empty() {
                return Err(err("usage: PREPARE <query>"));
            }
            Ok(Command::Prepare {
                query: rest.to_string(),
            })
        }
        "EVAL" => {
            let (name, semantics, query) = parse_eval_shape(rest, "EVAL")?;
            Ok(Command::Eval {
                name,
                semantics,
                query,
            })
        }
        "EXPLAIN" => {
            let (name, semantics, query) = parse_eval_shape(rest, "EXPLAIN")?;
            Ok(Command::Explain {
                name,
                semantics,
                query,
            })
        }
        "ANALYZE" => {
            let (name, semantics, query) = parse_eval_shape(rest, "ANALYZE")?;
            Ok(Command::Analyze {
                name,
                semantics,
                query,
            })
        }
        "TRACE" => {
            let (name, semantics, query) = parse_eval_shape(rest, "TRACE")?;
            Ok(Command::Trace {
                name,
                semantics,
                query,
            })
        }
        "PROFILE" => {
            let (name, semantics, query) = parse_eval_shape(rest, "PROFILE")?;
            Ok(Command::Profile {
                name,
                semantics,
                query,
            })
        }
        "STATS" => {
            if rest.is_empty() {
                Ok(Command::Stats)
            } else {
                Err(err("STATS takes no arguments"))
            }
        }
        "METRICS" => {
            if rest.is_empty() {
                Ok(Command::Metrics)
            } else if rest.eq_ignore_ascii_case("RESET") {
                Ok(Command::MetricsReset)
            } else {
                Err(err(
                    "METRICS takes no arguments (except the RESET subcommand)",
                ))
            }
        }
        "TOP" => {
            if rest.is_empty() {
                Ok(Command::Top)
            } else {
                Err(err("TOP takes no arguments"))
            }
        }
        "QUIT" => Ok(Command::Quit),
        other => Err(err(format!(
            "unknown command `{other}` (expected LOAD, PREPARE, EVAL, EXPLAIN, ANALYZE, TRACE, \
             PROFILE, STATS, METRICS, TOP or QUIT)"
        ))),
    }
}

/// Parses the shared `<name> <semantics> <query>` tail of `EVAL`/`EXPLAIN`.
fn parse_eval_shape(rest: &str, verb: &str) -> Result<(String, String, String), WireError> {
    let usage = || err(format!("usage: {verb} <name> <semantics> <query>"));
    let (name, tail) = rest.split_once(char::is_whitespace).ok_or_else(usage)?;
    let (semantics, query) = tail
        .trim()
        .split_once(char::is_whitespace)
        .ok_or_else(usage)?;
    Ok((
        valid_name(name)?,
        semantics.to_string(),
        query.trim().to_string(),
    ))
}

fn valid_name(name: &str) -> Result<String, WireError> {
    if !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(name.to_string())
    } else {
        Err(err(format!(
            "invalid instance name `{name}` (alphanumeric, `_` and `-` only)"
        )))
    }
}

/// Splits `text` at every `sep` occurring **outside** single-quoted runs, so
/// quoted string constants may contain the grammar's own separators. Quote
/// doubling (`''`) toggles out and straight back in, which is exactly what a
/// literal quote needs.
fn split_outside_quotes(text: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    for (i, ch) in text.char_indices() {
        if ch == '\'' {
            in_quotes = !in_quotes;
        } else if ch == sep && !in_quotes {
            parts.push(&text[start..i]);
            start = i + sep.len_utf8();
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Parses the `facts` payload of a `LOAD` command.
pub fn parse_instance(text: &str) -> Result<Instance, WireError> {
    let mut instance = Instance::new();
    if text == "-" || text.is_empty() {
        return Ok(instance);
    }
    for fact in split_outside_quotes(text, ';') {
        let fact = fact.trim();
        if fact.is_empty() {
            continue;
        }
        let open = fact
            .find('(')
            .ok_or_else(|| err(format!("fact `{fact}` is missing `(`")))?;
        let close = fact
            .rfind(')')
            .filter(|&i| i == fact.len() - 1 && i > open)
            .ok_or_else(|| err(format!("fact `{fact}` must end with `)`")))?;
        let relation = fact[..open].trim();
        if relation.is_empty()
            || !relation
                .chars()
                .all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
        {
            return Err(err(format!(
                "fact `{fact}` needs an alphanumeric relation name"
            )));
        }
        let body = fact[open + 1..close].trim();
        let values = if body.is_empty() {
            Vec::new()
        } else {
            split_outside_quotes(body, ',')
                .into_iter()
                .map(|v| parse_value(v.trim()))
                .collect::<Result<Vec<_>, _>>()?
        };
        instance
            .add_tuple(relation, Tuple::new(values))
            .map_err(|e| err(format!("fact `{fact}`: {e}")))?;
    }
    Ok(instance)
}

/// Parses one wire value: `?N` is a null, an integer literal is an `Int`
/// constant, a bare symbol is a `Str` constant, and a single-quoted string
/// (`'…'`, a literal quote written doubled as `''`) is a `Str` constant
/// verbatim — the quoted form covers strings that would otherwise be ambiguous
/// (`'7'` is the *string* 7) or unparseable as bare symbols (`'a b'`, `'a;b'`).
pub fn parse_value(text: &str) -> Result<Value, WireError> {
    if let Some(null) = text.strip_prefix('?') {
        let id: u32 = null
            .parse()
            .map_err(|_| err(format!("invalid null `{text}` (expected ?N)")))?;
        return Ok(Value::null(id));
    }
    if let Some(quoted) = text.strip_prefix('\'') {
        let mut inner = String::with_capacity(quoted.len());
        let mut chars = quoted.chars().peekable();
        let mut closed = false;
        while let Some(c) = chars.next() {
            if c != '\'' {
                inner.push(c);
            } else if chars.peek() == Some(&'\'') {
                chars.next();
                inner.push('\'');
            } else {
                closed = true;
                break;
            }
        }
        if !closed {
            return Err(err(format!("unterminated quoted value `{text}`")));
        }
        if chars.next().is_some() {
            return Err(err(format!(
                "quoted value `{text}` has trailing characters after the closing quote"
            )));
        }
        return Ok(Value::str(inner));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::int(i));
    }
    if is_bare_symbol(text) {
        return Ok(Value::str(text));
    }
    Err(err(format!(
        "invalid value `{text}` (integer, ?N null, bare symbol, or 'quoted string')"
    )))
}

/// A string that parses back as the same `Str` constant when rendered bare: made
/// of symbol characters and not mistakable for an integer or a null.
fn is_bare_symbol(text: &str) -> bool {
    !text.is_empty()
        && text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && text.parse::<i64>().is_err()
        && !text.starts_with('?')
}

/// Renders an instance in the `facts` wire syntax; canonical (sorted relations,
/// sorted tuples) and round-trips through [`parse_instance`].
pub fn render_instance(instance: &Instance) -> String {
    let mut facts = Vec::new();
    for relation in instance.relations() {
        for tuple in relation.tuples() {
            facts.push(format!("{}({})", relation.name(), render_values(tuple)));
        }
    }
    if facts.is_empty() {
        "-".to_string()
    } else {
        facts.join(";")
    }
}

fn render_values(tuple: &Tuple) -> String {
    tuple
        .values()
        .iter()
        .map(render_value)
        .collect::<Vec<_>>()
        .join(",")
}

fn render_value(value: &Value) -> String {
    match value {
        Value::Null(n) => format!("?{}", n.index()),
        Value::Const(c) => {
            let rendered = c.to_string();
            // Quote any Str constant the bare syntax would misread — one that
            // looks like an integer (`"7"`), a null, or contains non-symbol
            // characters (separators and quotes included) — doubling embedded
            // quotes, so rendering always round-trips through `parse_value`
            // and the quote-aware fact splitting. Int constants render bare.
            if c.as_str().is_some() && !is_bare_symbol(&rendered) {
                format!("'{}'", rendered.replace('\'', "''"))
            } else {
                rendered
            }
        }
    }
}

/// Renders an answer set canonically: `{}`, `{()}`, or `{(1,4),(2,paris)}` — the
/// `BTreeSet` order makes equal sets byte-identical.
pub fn render_answers(answers: &BTreeSet<Tuple>) -> String {
    let tuples: Vec<String> = answers
        .iter()
        .map(|t| format!("({})", render_values(t)))
        .collect();
    format!("{{{}}}", tuples.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    use proptest::prelude::*;

    #[test]
    fn commands_parse() {
        assert_eq!(
            parse_command("LOAD d0 D(?1,?2);D(?2,?1)"),
            Ok(Command::Load {
                name: "d0".into(),
                instance: inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] },
            })
        );
        assert_eq!(
            parse_command("EVAL d0 owa forall u . exists v . D(u, v)"),
            Ok(Command::Eval {
                name: "d0".into(),
                semantics: "owa".into(),
                query: "forall u . exists v . D(u, v)".into(),
            })
        );
        assert_eq!(
            parse_command("  prepare exists u . R(u)"),
            Ok(Command::Prepare {
                query: "exists u . R(u)".into(),
            })
        );
        assert_eq!(parse_command("STATS"), Ok(Command::Stats));
        assert_eq!(parse_command("METRICS"), Ok(Command::Metrics));
        assert_eq!(parse_command("METRICS RESET"), Ok(Command::MetricsReset));
        assert_eq!(parse_command("metrics reset"), Ok(Command::MetricsReset));
        assert_eq!(parse_command("TOP"), Ok(Command::Top));
        assert_eq!(parse_command("quit"), Ok(Command::Quit));
        assert_eq!(
            parse_command("PROFILE d0 owa exists u . R(u)"),
            Ok(Command::Profile {
                name: "d0".into(),
                semantics: "owa".into(),
                query: "exists u . R(u)".into(),
            })
        );
        assert_eq!(
            parse_command("TRACE d0 owa exists u . R(u)"),
            Ok(Command::Trace {
                name: "d0".into(),
                semantics: "owa".into(),
                query: "exists u . R(u)".into(),
            })
        );
        assert_eq!(
            parse_command("EXPLAIN d0 cwa exists u . R(u)"),
            Ok(Command::Explain {
                name: "d0".into(),
                semantics: "cwa".into(),
                query: "exists u . R(u)".into(),
            })
        );
        assert_eq!(
            parse_command("ANALYZE d0 cwa !(!(exists u . R(u)))"),
            Ok(Command::Analyze {
                name: "d0".into(),
                semantics: "cwa".into(),
                query: "!(!(exists u . R(u)))".into(),
            })
        );
    }

    #[test]
    fn malformed_commands_are_rejected_with_usage_hints() {
        for (line, needle) in [
            ("LOAD onlyname", "usage: LOAD"),
            ("EVAL d0 owa", "usage: EVAL"),
            ("EXPLAIN d0 owa", "usage: EXPLAIN"),
            ("ANALYZE d0 owa", "usage: ANALYZE"),
            ("PREPARE", "usage: PREPARE"),
            ("TRACE d0 owa", "usage: TRACE"),
            ("PROFILE d0 owa", "usage: PROFILE"),
            ("STATS now", "no arguments"),
            ("METRICS please", "no arguments"),
            ("METRICS RESET now", "no arguments"),
            ("TOP of the morning", "no arguments"),
            ("FROBNICATE", "unknown command"),
            ("LOAD bad!name R(1)", "invalid instance name"),
        ] {
            let e = parse_command(line).unwrap_err();
            assert!(e.to_string().contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn instances_round_trip() {
        let d = inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        };
        let wire = render_instance(&d);
        assert_eq!(parse_instance(&wire), Ok(d));
        // The empty instance renders as `-`.
        assert_eq!(render_instance(&Instance::new()), "-");
        assert_eq!(parse_instance("-"), Ok(Instance::new()));
    }

    #[test]
    fn string_constants_and_negative_integers_parse() {
        assert_eq!(parse_value("paris"), Ok(Value::str("paris")));
        assert_eq!(parse_value("-7"), Ok(Value::int(-7)));
        assert_eq!(parse_value("?12"), Ok(Value::null(12)));
        assert!(parse_value("a b").is_err());
        assert!(parse_value("?x").is_err());
        assert!(parse_value("").is_err());
        // The quoted form keeps string-typed values distinct from their lookalikes.
        assert_eq!(parse_value("'7'"), Ok(Value::str("7")));
        assert_eq!(parse_value("'a b'"), Ok(Value::str("a b")));
        assert_eq!(parse_value("'?1'"), Ok(Value::str("?1")));
        assert!(parse_value("'oops").is_err());
        assert!(parse_value("'a'b'").is_err());
        // Doubled quotes decode to literal quotes; stray ones stay errors.
        assert_eq!(parse_value("''"), Ok(Value::str("")));
        assert_eq!(parse_value("''''"), Ok(Value::str("'")));
        assert_eq!(parse_value("'it''s'"), Ok(Value::str("it's")));
        assert!(parse_value("'''").is_err());
    }

    #[test]
    fn separators_and_quotes_inside_strings_round_trip() {
        // `;` and `,` are the facts grammar's own separators, `)` closes facts,
        // and `'` is the quote itself: all of them previously broke the
        // byte-identical round trip when they appeared inside a string constant.
        let mut d = Instance::new();
        for (i, s) in ["a;b", "a,b", "it's", "a)b", "(", "';'", "R(1)", ""]
            .into_iter()
            .enumerate()
        {
            d.add_tuple("R", Tuple::new(vec![Value::int(i as i64), Value::str(s)]))
                .unwrap();
        }
        let wire = render_instance(&d);
        assert_eq!(parse_instance(&wire), Ok(d));
    }

    #[test]
    fn ambiguous_string_constants_round_trip_quoted() {
        use nev_incomplete::Tuple;
        // Str("7") ≠ Int(7); the wire form must preserve the distinction, and
        // whitespace-bearing strings must render to something parseable.
        let mut d = Instance::new();
        d.add_tuple(
            "R",
            Tuple::new(vec![Value::str("7"), Value::int(7), Value::str("a b")]),
        )
        .unwrap();
        let wire = render_instance(&d);
        assert_eq!(wire, "R('7',7,'a b')");
        assert_eq!(parse_instance(&wire), Ok(d));
    }

    /// A deterministic splitmix64 step (no dev-dependency on `rand` here).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A seeded instance over adversarial values: string constants drawn from
    /// the grammar's own separator/quote/lookalike characters, integer
    /// constants (negative and zero included) and labelled nulls.
    fn adversarial_instance(seed: u64) -> Instance {
        const ALPHABET: &[char] = &[
            '\'', ';', ',', '(', ')', '?', '-', '0', '7', 'a', 'B', '_', ' ', '.', '!', '=',
        ];
        let mut state = seed;
        let mut d = Instance::new();
        let relations = [("R", 1usize), ("S", 2), ("T_0", 3)];
        let facts = 1 + (splitmix(&mut state) % 6) as usize;
        for _ in 0..facts {
            let (name, arity) = relations[(splitmix(&mut state) % 3) as usize];
            let values: Vec<Value> = (0..arity)
                .map(|_| match splitmix(&mut state) % 4 {
                    0 => Value::null((splitmix(&mut state) % 5) as u32 + 1),
                    1 => Value::int(splitmix(&mut state) as i64 % 100),
                    _ => {
                        let len = (splitmix(&mut state) % 6) as usize;
                        let s: String = (0..len)
                            .map(|_| ALPHABET[(splitmix(&mut state) % 16) as usize])
                            .collect();
                        Value::str(s)
                    }
                })
                .collect();
            d.add_tuple(name, Tuple::new(values)).unwrap();
        }
        d
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        /// The canonical-rendering round trip the self-check relies on:
        /// `parse_instance(render_instance(d)) == d`, byte-exactly in value
        /// structure, over adversarial symbols (separators, quotes, integer
        /// and null lookalikes, whitespace, empty strings).
        #[test]
        fn rendering_round_trips_adversarial_instances(seed in 0u64..1_000_000) {
            let d = adversarial_instance(seed);
            let wire = render_instance(&d);
            prop_assert_eq!(parse_instance(&wire), Ok(d));
        }
    }

    #[test]
    fn arity_mismatches_are_wire_errors() {
        let e = parse_instance("R(1,2);R(3)").unwrap_err();
        assert!(e.to_string().contains("R(3)"), "{e}");
    }

    #[test]
    fn answers_render_canonically() {
        let mut answers = BTreeSet::new();
        assert_eq!(render_answers(&answers), "{}");
        answers.insert(Tuple::new(vec![]));
        assert_eq!(render_answers(&answers), "{()}");
        let mut kary = BTreeSet::new();
        kary.insert(Tuple::new(vec![c(2), Value::str("paris")]));
        kary.insert(Tuple::new(vec![c(1), c(4)]));
        assert_eq!(render_answers(&kary), "{(1,4),(2,paris)}");
    }
}
