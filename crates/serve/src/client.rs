//! The blocking line-protocol client and the seeded load generator.
//!
//! [`Client`] is the minimal building block: send one request line, read one
//! response line. [`run_load`] drives a whole seeded [`workload`] through a
//! server and checks every answer **against a bare in-process
//! `CertainEngine` evaluation** of the same snapshot — deliberately bypassing
//! the serve layer's cache/pool/oracle so a serve-layer bug cannot cancel out —
//! the round-trip correctness check behind `nevload` and the CI smoke run.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use nev_core::Semantics;
use nev_gen::{
    FormulaGenerator, FormulaGeneratorConfig, InstanceGenerator, InstanceGeneratorConfig,
};
use nev_incomplete::{Instance, Schema};
use nev_logic::Fragment;
use nev_obs::{validate_exposition, Histogram, HistogramSnapshot, Timer};

use crate::state::{ServeConfig, ServeState};
use crate::wire::render_instance;

/// A blocking client for the `nevd` line protocol.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // A request is one small write followed by a read: Nagle would hold
        // the line back waiting for the previous response's delayed ACK,
        // turning µs-scale server work into ~40 ms round trips. (Found by the
        // nevload latency histograms.)
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and reads the one response line.
    pub fn send(&mut self, line: &str) -> io::Result<String> {
        // One write per request (terminator included), so the kernel never
        // sees a torn line to coalesce or delay.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Sends `METRICS` and reads the protocol's sole multi-line response: the
    /// `OK metrics` status line, then exposition lines up to and including the
    /// `# EOF` terminator. Returns the exposition lines (terminator included),
    /// ready for [`nev_obs::validate_exposition`].
    pub fn metrics(&mut self) -> io::Result<Vec<String>> {
        let status = self.send("METRICS")?;
        if status != "OK metrics" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected METRICS status line: {status}"),
            ));
        }
        let mut lines = Vec::new();
        loop {
            let line = self.read_line()?;
            let done = line == "# EOF";
            lines.push(line);
            if done {
                return Ok(lines);
            }
        }
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}

/// One request of a generated workload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkloadRequest {
    /// Catalog name of the target instance.
    pub instance: String,
    /// Semantics to evaluate under.
    pub semantics: Semantics,
    /// Query text (rendered from a generated formula).
    pub query: String,
}

/// A seeded service workload: named instances plus a request stream over them.
///
/// Queries are generated **without constants** so batched evaluation provably
/// coincides with solo evaluation (the engine's merged-bounds caveat) and mix the
/// guaranteed fragments (certified, cheap) with Pos/FO under OWA and CWA (oracle
/// bound — the traffic the worker pool exists for).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Workload {
    /// Named instances to `LOAD`.
    pub instances: Vec<(String, Instance)>,
    /// `EVAL` requests over them.
    pub requests: Vec<WorkloadRequest>,
}

/// Generates the seeded workload: `instances` named instances over the `R/2, S/1`
/// schema and `requests` EVAL requests cycling over them. Deterministic in
/// `(seed, instances, requests)`.
pub fn workload(seed: u64, instances: usize, requests: usize) -> Workload {
    let schema = Schema::from_relations([("R", 2), ("S", 1)]);
    let mut instance_gen = InstanceGenerator::new(
        InstanceGeneratorConfig {
            schema: schema.clone(),
            tuples_per_relation: (1, 3),
            constant_pool: 2,
            null_pool: 2,
            null_probability: 0.5,
            codd: false,
        },
        seed,
    );
    let named: Vec<(String, Instance)> = (0..instances.max(1))
        .map(|i| (format!("inst{i}"), instance_gen.generate()))
        .collect();

    // A rotating mix of fragments; each gets its own deterministic generator.
    let fragments = [
        Fragment::ExistentialPositive,
        Fragment::Positive,
        Fragment::PositiveGuarded,
        Fragment::ExistentialPositiveBooleanGuarded,
        Fragment::FullFirstOrder,
    ];
    let mut generators: Vec<FormulaGenerator> = fragments
        .iter()
        .map(|&fragment| {
            FormulaGenerator::new(
                FormulaGeneratorConfig {
                    fragment,
                    schema: schema.clone(),
                    constant_pool: 2,
                    constant_probability: 0.0,
                    max_depth: 2,
                },
                seed ^ (0x5e17e + fragment as u64),
            )
        })
        .collect();
    let semantics = [Semantics::Owa, Semantics::Cwa, Semantics::Wcwa];
    let n_generators = generators.len();
    let requests = (0..requests)
        .map(|i| {
            let query = generators[i % n_generators].generate_sentence();
            WorkloadRequest {
                instance: named[i % named.len()].0.clone(),
                semantics: semantics[(i / n_generators) % semantics.len()],
                query: query.to_string(),
            }
        })
        .collect();
    Workload {
        instances: named,
        requests,
    }
}

/// The outcome of one load-generator run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LoadReport {
    /// Instances loaded.
    pub loaded: usize,
    /// Requests answered.
    pub answered: usize,
    /// `EXPLAIN` cross-checks that matched the in-process reference.
    pub explained: usize,
    /// Server responses that differed from the in-process reference (each entry is
    /// `(request line, server response, expected response)`).
    pub mismatches: Vec<(String, String, String)>,
    /// The server's final `STATS` line.
    pub server_stats: String,
    /// Client-side round-trip latency per command kind (`LOAD` / `EVAL` /
    /// `EXPLAIN`), measured at the socket — network and queueing included —
    /// into `nev-obs` histograms.
    pub latencies: Vec<(&'static str, HistogramSnapshot)>,
}

impl LoadReport {
    /// Did every server answer match the in-process reference?
    pub fn all_match(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// The latency digest lines (`<kind>: n=… p50_us=… p95_us=… p99_us=…
    /// max_us=…`), one per command kind that saw traffic.
    pub fn latency_digest(&self) -> Vec<String> {
        self.latencies
            .iter()
            .filter(|(_, snap)| snap.count > 0)
            .map(|(kind, snap)| {
                format!(
                    "{kind}: n={} p50_us={} p95_us={} p99_us={} max_us={}",
                    snap.count,
                    snap.p50(),
                    snap.p95(),
                    snap.p99(),
                    snap.max
                )
            })
            .collect()
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loaded {} instance(s), answered {} request(s), explained {}, {} mismatch(es)",
            self.loaded,
            self.answered,
            self.explained,
            self.mismatches.len()
        )?;
        for (request, got, expected) in &self.mismatches {
            writeln!(
                f,
                "  MISMATCH {request}\n    server:   {got}\n    expected: {expected}"
            )?;
        }
        for line in self.latency_digest() {
            writeln!(f, "  {line}")?;
        }
        write!(f, "server {}", self.server_stats)
    }
}

/// Drives the seeded workload against the server at `addr`, checking every `EVAL`
/// response against a **bare** in-process [`nev_core::engine::CertainEngine`]
/// evaluation of the same
/// snapshot — deliberately *not* a second `ServeState`, so a bug common to the
/// whole serve layer (cache, pool, parallel oracle) cannot cancel out: the
/// reference path shares only the engine itself with the code under test.
/// Assumes the server runs the default [`ServeConfig`] world bounds. Returns the
/// report; `all_match()` is the pass/fail signal.
pub fn run_load(
    addr: &str,
    seed: u64,
    instances: usize,
    requests: usize,
) -> io::Result<LoadReport> {
    use std::collections::HashMap;

    use nev_core::engine::{CertainEngine, EvalPlan, PreparedQuery};

    let workload = workload(seed, instances, requests);
    let engine = CertainEngine::with_bounds(ServeConfig::default().bounds);
    let mut loaded: HashMap<&str, &Instance> = HashMap::new();
    let mut client = Client::connect(addr)?;
    let mut report = LoadReport::default();
    // Client-side latency per command kind: wall-clock around each round trip.
    let load_hist = Histogram::new();
    let eval_hist = Histogram::new();
    let explain_hist = Histogram::new();
    let timed_send = |client: &mut Client, hist: &Histogram, line: &str| {
        let timer = Timer::start_always();
        let response = client.send(line);
        hist.record(timer.elapsed_us());
        response
    };

    for (name, instance) in &workload.instances {
        let line = format!("LOAD {name} {}", render_instance(instance));
        let response = timed_send(&mut client, &load_hist, &line)?;
        if !response.starts_with("OK") {
            report
                .mismatches
                .push((line, response, "OK loaded/replaced …".to_string()));
            continue;
        }
        loaded.insert(name, instance);
        report.loaded += 1;
    }

    for request in &workload.requests {
        let line = format!(
            "EVAL {} {} {}",
            request.instance,
            semantics_spelling(request.semantics),
            request.query
        );
        let response = timed_send(&mut client, &eval_hist, &line)?;
        // Prepare afresh per request (no plan cache) and evaluate sequentially:
        // the reference must exercise none of the serve-layer machinery.
        let expected = match loaded.get(request.instance.as_str()) {
            None => format!(
                "ERR unknown instance `{}` (LOAD it first)",
                request.instance
            ),
            Some(instance) => match PreparedQuery::parse(&request.query) {
                Err(e) => format!("ERR {e}"),
                Ok(prepared) => {
                    let evaluation = engine.evaluate(instance, request.semantics, &prepared);
                    let plan = match evaluation.plan {
                        EvalPlan::CompiledNaive(_) => "compiled",
                        EvalPlan::CertifiedNaive(_) => "certified",
                        EvalPlan::NormalizedNaive(_) => "normalized",
                        EvalPlan::Symbolic(_) => "symbolic",
                        EvalPlan::BoundedEnumeration => "oracle",
                    };
                    format!(
                        "OK plan={plan} certain={}{}",
                        crate::wire::render_answers(&evaluation.certain),
                        if evaluation.truncated {
                            " truncated=true"
                        } else {
                            ""
                        }
                    )
                }
            },
        };
        if response == expected {
            report.answered += 1;
        } else {
            report.mismatches.push((line, response, expected));
        }
    }

    // Cross-check EXPLAIN on a sample of the workload: the served dispatch
    // decision and `nev-opt` plan rendering must be byte-identical to the bare
    // in-process engine's (same philosophy as the EVAL check above). The server
    // additionally appends its runtime configuration (`exec_workers=…
    // morsel_rows=…`), which a remote client cannot predict — those trailing
    // tokens are shape-checked, not value-checked.
    for request in workload.requests.iter().take(EXPLAIN_SAMPLE) {
        let line = format!(
            "EXPLAIN {} {} {}",
            request.instance,
            semantics_spelling(request.semantics),
            request.query
        );
        let response = timed_send(&mut client, &explain_hist, &line)?;
        let expected = match loaded.get(request.instance.as_str()) {
            None => format!(
                "ERR unknown instance `{}` (LOAD it first)",
                request.instance
            ),
            Some(instance) => match PreparedQuery::parse(&request.query) {
                Err(e) => format!("ERR {e}"),
                Ok(prepared) => {
                    let dispatch =
                        match engine.plan_with_symbolic(instance, request.semantics, &prepared) {
                            EvalPlan::CompiledNaive(_) => "compiled",
                            EvalPlan::CertifiedNaive(_) => "certified",
                            EvalPlan::NormalizedNaive(_) => "normalized",
                            EvalPlan::Symbolic(_) => "symbolic",
                            EvalPlan::BoundedEnumeration => "oracle",
                        };
                    match prepared.compiled() {
                        Some(compiled) => {
                            format!("OK dispatch={dispatch} {}", compiled.explain_compact())
                        }
                        None => {
                            let reason = prepared
                                .compile_error()
                                .map(|e| format!(" reason={}", e.reason_code()))
                                .unwrap_or_default();
                            format!("OK dispatch={dispatch} compiled=false{reason}")
                        }
                    }
                }
            },
        };
        if explain_matches(&response, &expected) {
            report.explained += 1;
        } else {
            report.mismatches.push((line, response, expected));
        }
    }

    // Shape-check the telemetry exposition: the METRICS payload must satisfy
    // its own fixed grammar (header, sample syntax, cumulative histogram
    // buckets, `# EOF` terminator) on every run.
    let metrics = client.metrics()?;
    if let Err(violation) = validate_exposition(&metrics) {
        report.mismatches.push((
            "METRICS".to_string(),
            violation,
            "a grammar-valid exposition".to_string(),
        ));
    }

    report.latencies = vec![
        ("LOAD", load_hist.snapshot()),
        ("EVAL", eval_hist.snapshot()),
        ("EXPLAIN", explain_hist.snapshot()),
    ];
    report.server_stats = client.send("STATS")?;
    let _ = client.send("QUIT");
    Ok(report)
}

/// How many workload requests [`run_load`] re-issues as `EXPLAIN` cross-checks.
const EXPLAIN_SAMPLE: usize = 4;

/// `EXPLAIN` responses match when the plan part equals the locally computed
/// expectation and any remainder is exactly the server's runtime suffix
/// (`exec_workers=<n> morsel_rows=<n>`), whose values depend on server
/// configuration the client cannot see.
fn explain_matches(response: &str, expected: &str) -> bool {
    if response == expected {
        return true;
    }
    let Some(rest) = response.strip_prefix(expected) else {
        return false;
    };
    let mut tokens = rest.split_whitespace();
    let workers_ok = tokens
        .next()
        .and_then(|t| t.strip_prefix("exec_workers="))
        .is_some_and(|v| v.parse::<usize>().is_ok());
    let morsel_ok = tokens
        .next()
        .and_then(|t| t.strip_prefix("morsel_rows="))
        .is_some_and(|v| v.parse::<usize>().is_ok());
    workers_ok && morsel_ok && tokens.next().is_none()
}

/// Runs the load generator against a freshly spawned in-process server (the
/// `nevload --self-check` mode): returns the report and tears the server down.
pub fn self_check(
    seed: u64,
    instances: usize,
    requests: usize,
    workers: usize,
) -> io::Result<LoadReport> {
    let state = Arc::new(ServeState::new(ServeConfig {
        workers,
        ..ServeConfig::default()
    }));
    let server = crate::server::Server::bind("127.0.0.1:0", state)?;
    let mut handle = server.spawn()?;
    let report = run_load(&handle.addr().to_string(), seed, instances, requests);
    handle.shutdown();
    report
}

/// The ASCII spelling of a semantics accepted by `Semantics::from_str` (the wire
/// form used in `EVAL` lines).
pub fn semantics_spelling(semantics: Semantics) -> &'static str {
    match semantics {
        Semantics::Owa => "owa",
        Semantics::Cwa => "cwa",
        Semantics::Wcwa => "wcwa",
        Semantics::PowersetCwa => "powerset-cwa",
        Semantics::MinimalCwa => "minimal-cwa",
        Semantics::MinimalPowersetCwa => "minimal-powerset-cwa",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_seed_deterministic() {
        let a = workload(42, 2, 12);
        let b = workload(42, 2, 12);
        assert_eq!(a, b);
        assert_eq!(a.instances.len(), 2);
        assert_eq!(a.requests.len(), 12);
        let c = workload(43, 2, 12);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn self_check_round_trips_byte_identically() {
        let report = self_check(7, 2, 10, 2).expect("self-check runs");
        assert_eq!(report.loaded, 2);
        assert!(report.all_match(), "{report}");
        assert_eq!(report.answered, 10);
        assert_eq!(report.explained, 4, "EXPLAIN sample cross-checked");
        assert!(
            report.server_stats.contains("evals=10"),
            "{}",
            report.server_stats
        );
        assert!(
            report.server_stats.contains("explains=4"),
            "{}",
            report.server_stats
        );
    }

    #[test]
    fn spellings_round_trip_through_from_str() {
        for semantics in Semantics::ALL {
            assert_eq!(
                semantics_spelling(semantics).parse::<Semantics>(),
                Ok(semantics)
            );
        }
    }
}
