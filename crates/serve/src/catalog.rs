//! The shared instance catalog: named incomplete databases as immutable
//! [`Arc<Instance>`] snapshots.
//!
//! The catalog is the service's only mutable shared state besides the plan cache,
//! and it is mutated **copy-on-write**: the whole name → instance map lives behind
//! one `Arc`, readers clone that `Arc` under a momentary read lock (no allocation,
//! no contention with evaluation work), and writers build a *new* map and swap it
//! in. An `EVAL` that raced a concurrent `LOAD` simply keeps evaluating against the
//! snapshot it took — exactly the isolation a certain-answer computation needs,
//! since an instance must not change mid-enumeration.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use nev_incomplete::Instance;

/// A snapshot of the whole catalog: an immutable name → instance map.
pub type CatalogSnapshot = Arc<BTreeMap<String, Arc<Instance>>>;

/// A concurrent registry of named incomplete instances.
///
/// ```
/// use nev_serve::catalog::Catalog;
/// use nev_incomplete::inst;
/// use nev_incomplete::builder::{c, x};
///
/// let catalog = Catalog::new();
/// assert!(catalog.register("intro", inst! { "R" => [[c(1), x(1)]] }).is_none());
/// let snap = catalog.snapshot();
/// // A later replacement does not disturb the snapshot already taken.
/// catalog.register("intro", inst! { "R" => [[c(2), x(1)]] });
/// assert_eq!(snap["intro"].fact_count(), 1);
/// assert_ne!(catalog.get("intro").unwrap(), snap["intro"]);
/// ```
#[derive(Debug, Default)]
pub struct Catalog {
    map: RwLock<CatalogSnapshot>,
    /// Serialises writers so the copy-on-write clone can happen *outside* the map
    /// lock without lost updates.
    writer: std::sync::Mutex<()>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The current snapshot. Readers hold the lock only long enough to clone one
    /// `Arc`; every lookup made through the snapshot afterwards is lock-free.
    pub fn snapshot(&self) -> CatalogSnapshot {
        self.map.read().expect("catalog lock poisoned").clone()
    }

    /// Looks up one named instance in the current snapshot.
    pub fn get(&self, name: &str) -> Option<Arc<Instance>> {
        self.snapshot().get(name).cloned()
    }

    /// Registers (or replaces) a named instance, returning the previous snapshot
    /// entry if the name was already bound. The replacement is copy-on-write: the
    /// new map is built outside the write lock, so readers are blocked only for
    /// the pointer swap.
    pub fn register(&self, name: impl Into<String>, instance: Instance) -> Option<Arc<Instance>> {
        self.update(|map| map.insert(name.into(), Arc::new(instance)))
    }

    /// Removes a named instance, returning it if it was present.
    pub fn remove(&self, name: &str) -> Option<Arc<Instance>> {
        self.update(|map| map.remove(name))
    }

    /// The registered names, in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.snapshot().keys().cloned().collect()
    }

    /// Number of registered instances.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Returns `true` iff no instance is registered.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// The copy-on-write primitive: clone the current map, let `f` edit the clone,
    /// swap it in. Writers serialise on the dedicated writer mutex — under it the
    /// snapshot cannot change, so the O(n) clone and `f` run with **no** map lock
    /// held, and the map's write lock is taken only for the pointer swap. Readers
    /// are therefore never blocked behind a clone, no matter how large the catalog.
    fn update<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Arc<Instance>>) -> T) -> T {
        let _writing = self.writer.lock().expect("catalog writer lock poisoned");
        let mut next = (*self.snapshot()).clone();
        let out = f(&mut next);
        *self.map.write().expect("catalog lock poisoned") = Arc::new(next);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    #[test]
    fn register_get_replace_remove() {
        let catalog = Catalog::new();
        assert!(catalog.is_empty());
        let d = inst! { "R" => [[c(1), x(1)]] };
        assert!(catalog.register("d", d.clone()).is_none());
        assert_eq!(catalog.len(), 1);
        assert_eq!(*catalog.get("d").unwrap(), d);
        assert!(catalog.get("missing").is_none());

        let replacement = inst! { "R" => [[c(2), c(3)]] };
        let old = catalog.register("d", replacement.clone()).unwrap();
        assert_eq!(*old, d);
        assert_eq!(*catalog.get("d").unwrap(), replacement);

        assert_eq!(catalog.names(), vec!["d".to_string()]);
        assert!(catalog.remove("d").is_some());
        assert!(catalog.remove("d").is_none());
        assert!(catalog.is_empty());
    }

    #[test]
    fn snapshots_are_immutable_under_concurrent_writes() {
        let catalog = Arc::new(Catalog::new());
        catalog.register("a", inst! { "R" => [[c(1)]] });
        let before = catalog.snapshot();
        let writers: Vec<_> = (0..4)
            .map(|i| {
                let catalog = Arc::clone(&catalog);
                std::thread::spawn(move || {
                    for j in 0..50i64 {
                        catalog.register(format!("w{i}"), inst! { "R" => [[c(j)]] });
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // The old snapshot still sees exactly the pre-write world.
        assert_eq!(before.len(), 1);
        assert_eq!(before["a"].fact_count(), 1);
        // The new snapshot sees every writer's last value.
        assert_eq!(catalog.len(), 5);
    }
}
