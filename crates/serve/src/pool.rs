//! Compatibility shim: the work-stealing [`WorkerPool`] moved to the
//! `nev-runtime` crate so `nev-exec` can dispatch morsels on the same pool
//! without a `serve → exec` dependency cycle. Existing
//! `nev_serve::pool::WorkerPool` (and `nev_serve::WorkerPool`) imports keep
//! working through this re-export.

pub use nev_runtime::pool::WorkerPool;
