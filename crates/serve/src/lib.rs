//! # `nev-serve` — the concurrent certain-answer service
//!
//! The paper's headline is that on the guaranteed Figure 1 cells certain answers
//! cost exactly one naïve evaluation pass — cheap enough to *serve*. This crate is
//! the serving layer the rest of the workspace plugs into: a shared catalog of
//! incomplete instances, a plan cache that amortises preparation across requests,
//! a work-stealing worker pool, a parallel bounded oracle for the cells that still
//! need possible-world enumeration, and a loopback TCP line-protocol server
//! (`nevd`) with a load-generator client (`nevload`) and a live terminal
//! dashboard (`nevtop`).
//!
//! The module DAG, bottom to top:
//!
//! ```text
//! server (nevd accept loop, one thread per connection)
//!   └──► state    (ServeState: LOAD/PREPARE/EVAL/EXPLAIN/TRACE/PROFILE/
//!         │        STATS/TOP/METRICS handlers, grouped batch evaluation
//!         │        over evaluate_all)
//!         ├──► catalog  (named Arc<Instance> snapshots, copy-on-write swaps)
//!         ├──► cache    (LRU of Arc<PreparedQuery> holding the nev-opt
//!         │              optimised plan, keyed canonical rendering × semantics)
//!         ├──► oracle   (possible-world stream chunked across the pool,
//!         │              early-exit cancellation; verdicts ≡ sequential)
//!         ├──► pool     (re-export of nev_runtime::WorkerPool: work-stealing
//!         │              deques, caller-helps, deterministic maps — shared by
//!         │              request batches, oracle chunks and exec morsels)
//!         ├──► stats    (relaxed atomic counters behind STATS)
//!         └──► wire     (line-protocol grammar, canonical rendering)
//! client (blocking protocol client, seeded load generator, self-check)
//! ```
//!
//! Observability rides on the **`nev-obs`** crate at the bottom of the
//! workspace DAG: every `EVAL` runs under a [`nev_obs::TraceRecorder`] whose
//! per-stage spans feed a [`nev_obs::MetricsRegistry`] on the state — per-plan
//! request-latency histograms (reconciling exactly with the `evals` counter),
//! per-stage latency histograms, the pool's queue-wait/run split, and a
//! bounded top-K slow-query log. `TRACE` answers one request's stage timeline
//! as a one-liner; `PROFILE` runs one real evaluation and annotates every
//! executed operator of a compiled plan with wall time, output rows and the
//! `nev-opt` cost model's estimate; `METRICS` emits the whole registry — plus
//! trailing-window `nev_window_*` gauges off a lazily-sampled
//! [`nev_obs::TimeSeries`] — as a Prometheus-style exposition (the protocol's
//! sole multi-line response, terminated by `# EOF`); `TOP` condenses the
//! windowed rates into one line for `nevtop`; `METRICS RESET` re-baselines
//! the windows and empties the slow log without touching lifetime counters;
//! and `STATS` carries an `uptime_us=`/`p50_us=`/`p95_us=`/`p99_us=` digest.
//! Setting `NEV_TRACE=0` disables span collection; request latencies, served
//! bytes and all results are identical either way (`PROFILE` times on its own
//! explicit-request clock, exempt from the kill switch).
//!
//! The pool itself lives in the **`nev-runtime`** crate, below `nev-exec` in
//! the dependency order, so the execution engine can dispatch morsel-driven
//! parallel scans and joins on the *same* threads that serve requests: one
//! `ServeState` holds one `Arc<WorkerPool>`, hands it to its engine's
//! [`nev_exec::ExecOptions`], and sizes it from [`ServeConfig::workers`]
//! (defaulting to the `NEV_WORKERS` environment variable via
//! [`env_workers`]).
//!
//! Correctness invariants, each backed by a test suite:
//!
//! * **snapshot isolation** — an `EVAL` runs entirely against the `Arc<Instance>`
//!   snapshot it resolved; concurrent `LOAD`s swap the catalog map copy-on-write
//!   and never mutate a shared instance;
//! * **schedule-independent answers** — certain answers are intersections over
//!   world streams, so worker count and stealing order never change a result:
//!   the determinism suite pins byte-identical responses at 1, 2 and 8 workers,
//!   and the property suite pins parallel ≡ sequential oracle verdicts on all
//!   five fragments;
//! * **round-trip fidelity** — every server response renders canonically, and the
//!   load generator asserts byte-identity against an in-process
//!   [`nev_core::engine::CertainEngine`] run on the same snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod cli;
pub mod client;
pub mod oracle;
pub mod pool;
pub mod server;
pub mod state;
pub mod stats;
pub mod wire;

pub use cache::PlanCache;
pub use catalog::Catalog;
pub use client::{run_load, self_check, workload, Client, LoadReport};
pub use nev_runtime::env_workers;
pub use oracle::{parallel_certain_answers, OracleOutcome};
pub use pool::WorkerPool;
pub use server::{Server, ServerHandle};
pub use state::{
    EvalRequest, EvalResponse, PlanKind, ServeConfig, ServeError, ServeState, PLAN_LABELS,
    SLOW_LOG_CAPACITY,
};
pub use stats::{ServeStats, StatsSnapshot};

#[cfg(test)]
mod thread_safety {
    //! `static_assertions`-style compile tests: if this module compiles, the
    //! service types are `Send + Sync` and safe to share across the pool and the
    //! connection threads.
    use super::*;

    fn require_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_types_are_send_and_sync() {
        require_send_sync::<Catalog>();
        require_send_sync::<PlanCache>();
        require_send_sync::<WorkerPool>();
        require_send_sync::<ServeState>();
        require_send_sync::<ServeStats>();
        require_send_sync::<OracleOutcome>();
        require_send_sync::<EvalResponse>();
    }
}
