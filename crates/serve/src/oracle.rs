//! The parallel bounded oracle: the possible-world stream split into chunks
//! evaluated across the worker pool, with early-exit cancellation.
//!
//! On non-guaranteed Figure 1 cells the engine must intersect the query's answers
//! over the bounded world enumeration — the one expensive path left after the
//! certified cells went compiled-naïve. The intersection is associative and
//! commutative, and (in the `{()} / ∅` Boolean encoding) uniform across arities, so
//! it parallelises cleanly:
//!
//! 1. the calling thread drives [`Semantics::worlds`] (world *generation* is cheap
//!    and inherently sequential — each world is one valuation image or extension),
//!    batching worlds into fixed-size chunks;
//! 2. each chunk becomes a pool task intersecting
//!    [`PreparedQuery::answers_in_world`] over its worlds — the expensive per-world
//!    query evaluation is where the parallelism pays;
//! 3. a shared cancellation flag is raised the moment any chunk's intersection goes
//!    empty (for a Boolean query: a counter-world was found); queued chunks then
//!    return immediately and the stream stops, mirroring the sequential oracle's
//!    early exit.
//!
//! **The verdict is scheduling-independent.** If any world refutes a tuple, the
//! final intersection excludes it no matter which worker saw the world first; if the
//! intersection ever goes empty the result is the empty set on every schedule; and
//! if no early exit triggers, every enumerated world was intersected, which is
//! exactly the sequential result. `worlds_considered` *is* schedule-dependent (a
//! cancelled run may have evaluated a few more or fewer worlds) — it is telemetry,
//! not part of the answer. The property suite checks parallel ≡ sequential verdicts
//! across every fragment, and the determinism suite checks byte-identical answers at
//! 1, 2 and 8 workers.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nev_core::engine::{CertainEngine, PreparedQuery};
use nev_core::Semantics;
use nev_exec::ExecStats;
use nev_incomplete::{Constant, Instance, Tuple};

use crate::pool::WorkerPool;

/// Worlds per pool task. Small enough to rebalance across workers, large enough to
/// amortise task overhead; fixed so runs are reproducible.
pub const DEFAULT_CHUNK: usize = 32;

/// The outcome of one parallel oracle run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OracleOutcome {
    /// The certain answers over the bounded enumeration (Boolean queries use the
    /// `{()} / ∅` encoding). Identical to the sequential oracle's answer.
    pub certain: BTreeSet<Tuple>,
    /// Worlds actually evaluated (telemetry; schedule-dependent under early exit).
    pub worlds_considered: usize,
    /// Chunks dispatched to the pool.
    pub chunks: usize,
    /// Whether early-exit cancellation fired.
    pub cancelled: bool,
    /// Whether the world stream was cut off by the world cap with the verdict
    /// still drawing on it. A cancelled run exited on definitive evidence (a
    /// counter-world, an emptied intersection), so it is never truncated; an
    /// exhausted run over a capped stream is an over-approximation and is.
    pub truncated: bool,
    /// Aggregated executor counters across all per-world evaluations.
    pub exec: ExecStats,
}

/// Intersects `query`'s answers over the bounded worlds of `d` under `semantics`,
/// splitting the stream into `chunk`-sized pool tasks. Uses `engine` only for its
/// world bounds; plan dispatch is the caller's business (run this exactly where the
/// engine would pick `EvalPlan::BoundedEnumeration`).
pub fn parallel_certain_answers(
    pool: &WorkerPool,
    engine: &CertainEngine,
    d: &Instance,
    semantics: Semantics,
    query: &Arc<PreparedQuery>,
    chunk: usize,
) -> OracleOutcome {
    let chunk = chunk.max(1);
    let bounds = query.bounds(engine.bounds());
    let allowed = Arc::new(query.allowed_constants(d));
    let cancel = Arc::new(AtomicBool::new(false));

    let mut worlds = semantics.worlds(d, &bounds);
    let mut acc: Option<BTreeSet<Tuple>> = None;
    let mut worlds_considered = 0usize;
    let mut chunks = 0usize;
    let mut exec = ExecStats::new();
    // One wave = one chunk per potential runner (workers + the helping caller), so
    // the stream never materialises more worlds than the pool can chew on.
    let wave_width = pool.workers() + 1;

    'stream: loop {
        let mut wave: Vec<Vec<Instance>> = Vec::with_capacity(wave_width);
        for _ in 0..wave_width {
            let mut batch = Vec::with_capacity(chunk);
            for world in worlds.by_ref().take(chunk) {
                batch.push(world);
            }
            let exhausted = batch.len() < chunk;
            if !batch.is_empty() {
                wave.push(batch);
            }
            if exhausted {
                break;
            }
        }
        if wave.is_empty() {
            break;
        }
        chunks += wave.len();
        let results = pool.run(wave, {
            let query = Arc::clone(query);
            let allowed = Arc::clone(&allowed);
            let cancel = Arc::clone(&cancel);
            move |_, batch: Vec<Instance>| evaluate_chunk(&query, &allowed, &cancel, batch)
        });
        for r in results {
            worlds_considered += r.worlds;
            exec.merge(&r.exec);
            if let Some(partial) = r.answers {
                let next = match acc.take() {
                    None => partial,
                    Some(prev) => prev.intersection(&partial).cloned().collect(),
                };
                let empty = next.is_empty();
                acc = Some(next);
                if empty {
                    // relaxed: advisory flag — a late observer only does spare work.
                    cancel.store(true, Ordering::Relaxed);
                    break 'stream;
                }
            } else {
                // The chunk itself went empty (and raised the flag).
                acc = Some(BTreeSet::new());
                break 'stream;
            }
        }
    }

    // `acc` is still `None` only when no world was evaluated at all; mirror the
    // sequential oracle exactly: a Boolean query is vacuously certain over an empty
    // enumeration, a k-ary intersection is empty.
    let certain = acc.unwrap_or_else(|| nev_core::engine::boolean_answers(query.is_boolean()));
    // relaxed: post-join read; the pool's workers have quiesced.
    let cancelled = cancel.load(Ordering::Relaxed);
    OracleOutcome {
        certain,
        worlds_considered,
        chunks,
        cancelled,
        truncated: !cancelled && worlds.truncated(),
        exec,
    }
}

struct ChunkResult {
    /// The chunk's intersection; `None` when it went empty (early exit raised).
    answers: Option<BTreeSet<Tuple>>,
    worlds: usize,
    exec: ExecStats,
}

fn evaluate_chunk(
    query: &PreparedQuery,
    allowed: &BTreeSet<Constant>,
    cancel: &AtomicBool,
    batch: Vec<Instance>,
) -> ChunkResult {
    let mut exec = ExecStats::new();
    let mut acc: Option<BTreeSet<Tuple>> = None;
    let mut worlds = 0usize;
    for world in &batch {
        // relaxed: advisory cancellation probe; a missed flag costs one extra world.
        if cancel.load(Ordering::Relaxed) {
            // Another chunk already refuted everything; whatever we intersected so
            // far is still a sound factor, so report it rather than discard it.
            break;
        }
        worlds += 1;
        let answers = query.answers_in_world(world, allowed, &mut exec);
        let next = match acc.take() {
            None => answers,
            Some(prev) => prev.intersection(&answers).cloned().collect(),
        };
        if next.is_empty() {
            // relaxed: advisory flag — a late observer only does spare work.
            cancel.store(true, Ordering::Relaxed);
            return ChunkResult {
                answers: None,
                worlds,
                exec,
            };
        }
        acc = Some(next);
    }
    ChunkResult {
        answers: acc,
        worlds,
        exec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_core::WorldBounds;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    fn pool() -> WorkerPool {
        WorkerPool::new(3)
    }

    fn engine() -> CertainEngine {
        CertainEngine::new()
    }

    fn outcome(d: &Instance, semantics: Semantics, text: &str, chunk: usize) -> OracleOutcome {
        let engine = engine();
        let query = Arc::new(engine.prepare(text).expect("valid query"));
        parallel_certain_answers(&pool(), &engine, d, semantics, &query, chunk)
    }

    #[test]
    fn matches_the_sequential_oracle_on_the_owa_counterexample() {
        let d0 = inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] };
        let text = "forall u . exists v . D(u, v)";
        for chunk in [1, 2, 7, 64] {
            let parallel = outcome(&d0, Semantics::Owa, text, chunk);
            let sequential = engine()
                .compare(&d0, Semantics::Owa, &engine().prepare(text).unwrap())
                .certain;
            assert_eq!(parallel.certain, sequential, "chunk={chunk}");
            assert!(parallel.certain.is_empty());
            assert!(parallel.cancelled, "a counter-world exists");
        }
    }

    #[test]
    fn matches_the_sequential_oracle_on_kary_queries() {
        // Two nulls and tight extension bounds keep the WCWA enumeration small;
        // the cross-fragment sweep lives in the release-mode determinism suite.
        let d = inst! {
            "R" => [[c(1), x(1)], [x(1), c(2)]],
        };
        let text = "Q(x, y) :- exists z . R(x, z) & R(z, y)";
        let bounds = WorldBounds {
            owa_max_extra_tuples: 1,
            wcwa_max_extra_tuples: 1,
            ..WorldBounds::default()
        };
        for semantics in [Semantics::Owa, Semantics::Cwa, Semantics::Wcwa] {
            let engine = CertainEngine::with_bounds(bounds.clone());
            let query = Arc::new(engine.prepare(text).expect("valid query"));
            let parallel = parallel_certain_answers(&pool(), &engine, &d, semantics, &query, 8);
            let sequential = engine.certain_answers(&d, semantics, &query);
            assert_eq!(parallel.certain, sequential, "{semantics}");
            assert!(!parallel.certain.is_empty(), "{semantics}");
            assert!(!parallel.cancelled, "{semantics}: every world keeps (1,2)");
            assert!(parallel.worlds_considered > 0);
            assert!(parallel.chunks > 0);
        }
    }

    #[test]
    fn zero_worlds_is_vacuously_certain_for_boolean_queries() {
        // A complete instance under CWA has exactly one world; trivially certain.
        let d = inst! { "R" => [[c(1)]] };
        let parallel = outcome(&d, Semantics::Cwa, "exists u . R(u)", 4);
        assert_eq!(parallel.certain.len(), 1);
        assert_eq!(parallel.worlds_considered, 1);
        // An empty enumeration (max_worlds = 0) matches the sequential oracle:
        // vacuously true for Boolean queries, empty for k-ary ones.
        let engine = CertainEngine::with_bounds(WorldBounds {
            max_worlds: 0,
            ..WorldBounds::default()
        });
        let boolean = Arc::new(engine.prepare("exists u . R(u)").unwrap());
        let kary = Arc::new(engine.prepare("Q(u) :- R(u)").unwrap());
        for query in [&boolean, &kary] {
            let out = parallel_certain_answers(&pool(), &engine, &d, Semantics::Cwa, query, 4);
            let sequential = engine.certain_answers(&d, Semantics::Cwa, query);
            assert_eq!(out.certain, sequential);
            assert_eq!(out.worlds_considered, 0);
        }
    }

    #[test]
    fn respects_the_engine_world_bounds() {
        let d = inst! { "R" => [[x(1), x(2), x(3)]] };
        let engine = CertainEngine::with_bounds(WorldBounds {
            max_worlds: 5,
            ..WorldBounds::default()
        });
        let query = Arc::new(engine.prepare("exists u v w . R(u, v, w)").unwrap());
        let out = parallel_certain_answers(&pool(), &engine, &d, Semantics::Cwa, &query, 2);
        assert!(out.worlds_considered <= 5);
        assert_eq!(out.certain.len(), 1, "every truncated world satisfies ∃R");
    }
}
