//! Service-wide telemetry: lock-free counters behind the `STATS` command.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by every connection and worker of a
/// [`crate::state::ServeState`]. All counters are relaxed atomics — they are
/// telemetry, not synchronisation.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Protocol requests handled (any command, including failed ones).
    pub requests: AtomicU64,
    /// `LOAD` commands that registered or replaced a catalog instance.
    pub loads: AtomicU64,
    /// `PREPARE` commands served.
    pub prepares: AtomicU64,
    /// `EVAL` requests answered successfully.
    pub evals: AtomicU64,
    /// `EXPLAIN` requests answered successfully.
    pub explains: AtomicU64,
    /// Requests rejected with an `ERR` response.
    pub errors: AtomicU64,
    /// Evaluations answered by a certified naïve pass (no world enumeration).
    pub certified: AtomicU64,
    /// Certified evaluations executed on the compiled `nev-exec` pipeline.
    pub compiled: AtomicU64,
    /// Evaluations that needed the bounded possible-world oracle.
    pub oracle: AtomicU64,
    /// Worlds evaluated across all oracle runs (parallel chunks included).
    pub worlds: AtomicU64,
    /// Oracle runs cut short by early-exit cancellation.
    pub oracle_cancelled: AtomicU64,
    /// Exec-layer morsels dispatched on the shared pool by certified naïve
    /// passes (scan chunks, join build partitions, probe chunks).
    pub morsels: AtomicU64,
    /// Hash joins that ran the exec layer's partitioned parallel path.
    pub parallel_joins: AtomicU64,
    /// Evaluations answered by a PTIME symbolic certificate (conditional
    /// tables or the sandwich) instead of world enumeration.
    pub symbolic: AtomicU64,
    /// Symbolic answers certified by the Kleene/naïve sandwich specifically.
    pub sandwich_exact: AtomicU64,
    /// Oracle answers whose world stream was cut off by the world cap with the
    /// verdict still drawing on it (over-approximations, flagged on the wire).
    pub truncated: AtomicU64,
    /// `ANALYZE` requests answered successfully.
    pub analyzed: AtomicU64,
    /// Evaluations dispatched on the normalized-naïve plan: the raw query had
    /// no Figure 1 guarantee, but its normal form landed in a wider cell.
    pub normalized_upgrades: AtomicU64,
    /// Evaluations whose query static analysis proved constantly true or
    /// false, so the exec layer could short-circuit to `∅`/`adomᵏ`.
    pub static_prunes: AtomicU64,
}

impl ServeStats {
    /// A zeroed counter block.
    pub fn new() -> Self {
        ServeStats::default()
    }

    /// Relaxed-increment helper.
    pub fn bump(counter: &AtomicU64) {
        // relaxed: counters are telemetry, not synchronisation (see type docs).
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add helper.
    pub fn add(counter: &AtomicU64, n: u64) {
        // relaxed: counters are telemetry, not synchronisation (see type docs).
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-data copy of the counters (the `STATS` response payload).
    pub fn snapshot(&self) -> StatsSnapshot {
        // relaxed: fuzzy point-in-time copy; counters are independent and monotone.
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            evals: self.evals.load(Ordering::Relaxed),
            explains: self.explains.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            certified: self.certified.load(Ordering::Relaxed),
            compiled: self.compiled.load(Ordering::Relaxed),
            oracle: self.oracle.load(Ordering::Relaxed),
            worlds: self.worlds.load(Ordering::Relaxed),
            oracle_cancelled: self.oracle_cancelled.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            parallel_joins: self.parallel_joins.load(Ordering::Relaxed),
            symbolic: self.symbolic.load(Ordering::Relaxed),
            sandwich_exact: self.sandwich_exact.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            analyzed: self.analyzed.load(Ordering::Relaxed),
            normalized_upgrades: self.normalized_upgrades.load(Ordering::Relaxed),
            static_prunes: self.static_prunes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServeStats`], extended by the cache and catalog
/// gauges when rendered by the server.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StatsSnapshot {
    /// See [`ServeStats::requests`].
    pub requests: u64,
    /// See [`ServeStats::loads`].
    pub loads: u64,
    /// See [`ServeStats::prepares`].
    pub prepares: u64,
    /// See [`ServeStats::evals`].
    pub evals: u64,
    /// See [`ServeStats::explains`].
    pub explains: u64,
    /// See [`ServeStats::errors`].
    pub errors: u64,
    /// See [`ServeStats::certified`].
    pub certified: u64,
    /// See [`ServeStats::compiled`].
    pub compiled: u64,
    /// See [`ServeStats::oracle`].
    pub oracle: u64,
    /// See [`ServeStats::worlds`].
    pub worlds: u64,
    /// See [`ServeStats::oracle_cancelled`].
    pub oracle_cancelled: u64,
    /// See [`ServeStats::morsels`].
    pub morsels: u64,
    /// See [`ServeStats::parallel_joins`].
    pub parallel_joins: u64,
    /// See [`ServeStats::symbolic`].
    pub symbolic: u64,
    /// See [`ServeStats::sandwich_exact`].
    pub sandwich_exact: u64,
    /// See [`ServeStats::truncated`].
    pub truncated: u64,
    /// See [`ServeStats::analyzed`].
    pub analyzed: u64,
    /// See [`ServeStats::normalized_upgrades`].
    pub normalized_upgrades: u64,
    /// See [`ServeStats::static_prunes`].
    pub static_prunes: u64,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requests={} loads={} prepares={} evals={} explains={} errors={} certified={} \
             compiled={} oracle={} worlds={} oracle_cancelled={} morsels={} parallel_joins={} \
             symbolic={} sandwich_exact={} truncated={} analyzed={} normalized_upgrades={} \
             static_prunes={}",
            self.requests,
            self.loads,
            self.prepares,
            self.evals,
            self.explains,
            self.errors,
            self.certified,
            self.compiled,
            self.oracle,
            self.worlds,
            self.oracle_cancelled,
            self.morsels,
            self.parallel_joins,
            self.symbolic,
            self.sandwich_exact,
            self.truncated,
            self.analyzed,
            self.normalized_upgrades,
            self.static_prunes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let stats = ServeStats::new();
        ServeStats::bump(&stats.requests);
        ServeStats::bump(&stats.requests);
        ServeStats::add(&stats.worlds, 7);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.worlds, 7);
        assert_eq!(snap.errors, 0);
        let rendered = snap.to_string();
        assert!(rendered.contains("requests=2"));
        assert!(rendered.contains("worlds=7"));
        assert!(rendered.contains("morsels=0"));
        assert!(rendered.contains("parallel_joins=0"));
    }
}
