//! The plan cache: parse + classify + compile once per distinct (query, semantics)
//! pair, not once per request.
//!
//! A [`PreparedQuery`] is the expensive per-query preparation the engine performs —
//! parsing, fragment classification, constant collection and relational-algebra
//! compilation (rule-optimised by `nev-opt`, so the cache stores the optimised
//! plan). Under service traffic the same query text arrives over and over, so the
//! cache keys an LRU on the **parsed query's canonical `Display` rendering ×
//! semantics** and stores the prepared query behind an `Arc` together with the
//! instance-independent half of the Figure 1 dispatch (the cell's
//! [`Expectation`]). Canonical keying means *every* superficial spelling
//! difference — whitespace, punctuation spacing (`exists u.R(u)` vs
//! `exists u . R(u)`), redundant parentheses — hits the same entry; each lookup
//! pays one parse, which is cheap next to the classification + compilation a
//! miss would repeat. The semantics is part of the key because the cached
//! dispatch metadata is per-cell; the `Arc<PreparedQuery>` itself is shared
//! across the semantics entries of the same canonical text, so compilation still
//! happens once per distinct query.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nev_core::engine::{EngineError, PreparedQuery};
use nev_core::summary::{expectation, Expectation};
use nev_core::Semantics;
use nev_logic::{parse_query, Query};

/// A cached entry: the shared prepared query plus the Figure 1 cell guarantee for
/// the keyed semantics (the instance-independent part of plan dispatch).
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// The prepared (parsed, classified, compiled) query, shared across semantics.
    pub prepared: Arc<PreparedQuery>,
    /// The semantics this entry was keyed under.
    pub semantics: Semantics,
    /// `expectation(semantics, fragment)` — what Figure 1 guarantees for the cell.
    pub cell: Expectation,
}

struct Entry {
    plan: CachedPlan,
    last_used: u64,
}

struct Inner {
    entries: HashMap<(String, Semantics), Entry>,
    /// Monotonic recency clock; bumped on every hit or insertion.
    clock: u64,
}

/// An LRU cache of [`CachedPlan`]s keyed on (canonical query rendering,
/// semantics).
///
/// ```
/// use nev_serve::cache::PlanCache;
/// use nev_core::Semantics;
///
/// let cache = PlanCache::new(64);
/// let a = cache.get_or_prepare("exists u .  R(u)", Semantics::Owa).unwrap();
/// // Same query modulo spelling — whitespace AND punctuation spacing: a cache
/// // hit sharing the same Arc.
/// let b = cache.get_or_prepare("exists u.R(u)", Semantics::Owa).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a.prepared, &b.prepared));
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("entries", &self.entries.len())
            .field("clock", &self.clock)
            .finish()
    }
}

/// Canonicalizes query text for cache keying: the text is parsed and the query's
/// `Display` rendering — a parse/render fixed point — becomes the key, so any
/// two spellings of the same query (whitespace, punctuation spacing, redundant
/// parentheses) occupy one cache slot. Returns the parsed query alongside the
/// key so a cache miss never re-parses.
pub fn canonical(text: &str) -> Result<(String, Query), EngineError> {
    let query = parse_query(text)?;
    Ok((query.to_string(), query))
}

impl PlanCache {
    /// A cache holding at most `capacity` (text, semantics) entries; a capacity of
    /// zero disables caching (every lookup prepares afresh).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    /// Returns `true` iff the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        // relaxed: telemetry read; may lag concurrent bumps.
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (each miss prepared a query).
    pub fn misses(&self) -> u64 {
        // relaxed: telemetry read; may lag concurrent bumps.
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU policy so far.
    pub fn evictions(&self) -> u64 {
        // relaxed: telemetry read; may lag concurrent bumps.
        self.evictions.load(Ordering::Relaxed)
    }

    /// Looks up the (canonical `text`, `semantics`) entry, preparing and inserting
    /// it on a miss. Parse/classification errors are returned verbatim, cache
    /// nothing and count nothing.
    pub fn get_or_prepare(
        &self,
        text: &str,
        semantics: Semantics,
    ) -> Result<CachedPlan, EngineError> {
        self.get_or_prepare_with_status(text, semantics)
            .map(|(plan, _hit)| plan)
    }

    /// [`PlanCache::get_or_prepare`] reporting whether the entry was a cache
    /// hit (`true`) or had to be prepared on this call (`false`). The serve
    /// layer's request tracing uses the flag to replay parse/classify/compile
    /// timings only for requests that actually paid them.
    pub fn get_or_prepare_with_status(
        &self,
        text: &str,
        semantics: Semantics,
    ) -> Result<(CachedPlan, bool), EngineError> {
        let (canonical_text, query) = canonical(text)?;
        let key = (canonical_text, semantics);
        if let Some(plan) = self.lookup(&key) {
            // relaxed: hit/miss tallies are telemetry only.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((plan, true));
        }
        // Prepare outside the lock: classification + compilation is the expensive
        // part and must not serialise concurrent misses on different texts.
        // relaxed: hit/miss tallies are telemetry only.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (prepared, _reused) = self.shared_prepared(&key.0, query);
        let plan = CachedPlan {
            cell: expectation(semantics, prepared.fragment()),
            prepared,
            semantics,
        };
        self.insert(key, plan.clone());
        Ok((plan, false))
    }

    /// Warms the cache for `text` under **every** semantics (the `PREPARE`
    /// command): one parse + compile, six cell entries sharing the same `Arc`.
    /// Counts one hit when a semantics sibling already held the compiled query
    /// and one miss when it had to be compiled afresh — so the hit/miss counters
    /// reflect preparations actually performed, `PREPARE` and `EVAL` alike (with
    /// `capacity == 0` nothing is retained and every call is one miss).
    pub fn prepare_all(&self, text: &str) -> Result<Arc<PreparedQuery>, EngineError> {
        let (canonical_text, query) = canonical(text)?;
        let (prepared, reused) = self.shared_prepared(&canonical_text, query);
        if reused {
            // relaxed: hit/miss tallies are telemetry only.
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            // relaxed: hit/miss tallies are telemetry only.
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        for semantics in Semantics::ALL {
            let key = (canonical_text.clone(), semantics);
            if self.lookup(&key).is_none() {
                self.insert(
                    key,
                    CachedPlan {
                        prepared: Arc::clone(&prepared),
                        semantics,
                        cell: expectation(semantics, prepared.fragment()),
                    },
                );
            }
        }
        Ok(prepared)
    }

    /// An `Arc<PreparedQuery>` for the canonical text, reusing any
    /// semantics-sibling entry's `Arc` (so one query is compiled at most once
    /// while cached, and a re-prepared sibling re-joins the surviving `Arc`
    /// after an eviction). The flag reports whether a sibling was reused.
    fn shared_prepared(&self, canonical_text: &str, query: Query) -> (Arc<PreparedQuery>, bool) {
        {
            let inner = self.inner.lock().expect("cache lock poisoned");
            for sibling in Semantics::ALL {
                if let Some(e) = inner.entries.get(&(canonical_text.to_string(), sibling)) {
                    return (Arc::clone(&e.plan.prepared), true);
                }
            }
        }
        (Arc::new(PreparedQuery::new(query)), false)
    }

    fn lookup(&self, key: &(String, Semantics)) -> Option<CachedPlan> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.entries.get_mut(key)?;
        entry.last_used = clock;
        Some(entry.plan.clone())
    }

    fn insert(&self, key: (String, Semantics), plan: CachedPlan) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        inner.entries.insert(
            key,
            Entry {
                plan,
                last_used: clock,
            },
        );
        while inner.entries.len() > self.capacity {
            // O(capacity) victim scan: capacities are small (hundreds), and the
            // scan runs only on insertions past capacity.
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity cache");
            inner.entries.remove(&victim);
            // relaxed: eviction tally is telemetry only.
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_logic::Fragment;

    #[test]
    fn canonical_keys_unify_spelling_variants() {
        let (a, _) = canonical("exists u.R(u)").unwrap();
        let (b, _) = canonical("  exists u .   R(u)  ").unwrap();
        let (c, _) = canonical("exists u . (R(u))").unwrap();
        assert_eq!(a, b, "punctuation spacing is not part of the key");
        assert_eq!(a, c, "redundant parentheses are not part of the key");
        let (other, _) = canonical("exists u . S(u)").unwrap();
        assert_ne!(a, other);
        assert!(canonical("exists u . R(u").is_err());
    }

    #[test]
    fn punctuation_spacing_variants_share_one_slot() {
        // Whitespace-collapsing keys used to give `exists u.R(u)` and
        // `exists u . R(u)` two slots for one plan; canonical keys fix the
        // hit rate: four spellings, one miss, three hits.
        let cache = PlanCache::new(16);
        for text in [
            "exists u . R(u)",
            "exists u.R(u)",
            "exists  u .  R(u)",
            "exists u . (R(u))",
        ] {
            cache.get_or_prepare(text, Semantics::Owa).unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn hits_share_the_prepared_arc_across_semantics() {
        let cache = PlanCache::new(16);
        let owa = cache
            .get_or_prepare("forall u . exists v . D(u, v)", Semantics::Owa)
            .unwrap();
        let cwa = cache
            .get_or_prepare("forall u .  exists v . D(u, v)", Semantics::Cwa)
            .unwrap();
        // Different cells…
        assert_ne!(owa.cell, cwa.cell);
        assert_eq!(owa.prepared.fragment(), Fragment::Positive);
        // …but one compilation: the sibling entry's Arc is reused.
        assert!(Arc::ptr_eq(&owa.prepared, &cwa.prepared));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn prepare_all_warms_every_semantics_row() {
        let cache = PlanCache::new(16);
        let prepared = cache.prepare_all("exists u v . D(u, v)").unwrap();
        assert_eq!(cache.len(), Semantics::ALL.len());
        for semantics in Semantics::ALL {
            let hit = cache
                .get_or_prepare("exists u v . D(u, v)", semantics)
                .unwrap();
            assert!(Arc::ptr_eq(&hit.prepared, &prepared));
        }
        assert_eq!(cache.hits(), Semantics::ALL.len() as u64);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = PlanCache::new(2);
        cache
            .get_or_prepare("exists u . A(u)", Semantics::Owa)
            .unwrap();
        cache
            .get_or_prepare("exists u . B(u)", Semantics::Owa)
            .unwrap();
        // Touch A so B is the LRU victim.
        cache
            .get_or_prepare("exists u . A(u)", Semantics::Owa)
            .unwrap();
        cache
            .get_or_prepare("exists u . C(u)", Semantics::Owa)
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // A survived, B did not.
        cache
            .get_or_prepare("exists u . A(u)", Semantics::Owa)
            .unwrap();
        assert_eq!(cache.hits(), 2);
        cache
            .get_or_prepare("exists u . B(u)", Semantics::Owa)
            .unwrap();
        assert_eq!(cache.misses(), 4, "B was re-prepared after eviction");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache
            .get_or_prepare("exists u . A(u)", Semantics::Owa)
            .unwrap();
        cache
            .get_or_prepare("exists u . A(u)", Semantics::Owa)
            .unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn zero_capacity_prepare_all_keeps_counters_honest() {
        let cache = PlanCache::new(0);
        let a = cache.prepare_all("exists u . A(u)").unwrap();
        let b = cache.prepare_all("exists u . A(u)").unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(
            cache.misses(),
            2,
            "nothing is retained, so every PREPARE compiles afresh"
        );
        assert!(!Arc::ptr_eq(&a, &b), "no sibling entry to share with");
    }

    #[test]
    fn sibling_eviction_keeps_the_shared_arc_and_counters_consistent() {
        // Capacity 3 < 6 semantics rows: prepare_all inserts six siblings and
        // the LRU immediately evicts the three oldest.
        let cache = PlanCache::new(3);
        let prepared = cache.prepare_all("exists u . A(u)").unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 3);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // An evicted sibling misses but re-joins the *surviving* Arc — one
        // compilation total, no divergent plans.
        let evicted = cache
            .get_or_prepare("exists u . A(u)", Semantics::ALL[0])
            .unwrap();
        assert!(Arc::ptr_eq(&evicted.prepared, &prepared));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // A surviving sibling is a genuine hit on the same Arc.
        let survivor = cache
            .get_or_prepare("exists u . A(u)", Semantics::ALL[5])
            .unwrap();
        assert!(Arc::ptr_eq(&survivor.prepared, &prepared));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        // A warm re-PREPARE is one hit (the sibling Arc), not six.
        let again = cache.prepare_all("exists u . A(u)").unwrap();
        assert!(Arc::ptr_eq(&again, &prepared));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        assert_eq!(cache.len(), 3, "capacity is still respected");
    }

    #[test]
    fn parse_errors_surface_and_cache_nothing() {
        let cache = PlanCache::new(8);
        assert!(cache
            .get_or_prepare("exists u . R(u", Semantics::Owa)
            .is_err());
        assert!(cache.prepare_all("exists u . R(u").is_err());
        assert!(cache.is_empty());
    }
}
