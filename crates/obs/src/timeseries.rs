//! Windowed time-series telemetry: rates over trailing windows, not just
//! counters-since-boot.
//!
//! A [`TimeSeries`] is a fixed-size ring of periodic [`WindowSample`]s — each
//! a timestamped copy of the serving layer's monotone counters plus its
//! per-dispatch-kind latency [`HistogramSnapshot`]s. Subtracting a ring
//! sample from the current counters ([`TimeSeries::window`]) yields a
//! [`WindowDelta`]: exactly the traffic of the trailing window, from which
//! QPS, error rate and interpolated p50/p95/p99 follow.
//!
//! Two design constraints shape the API:
//!
//! * **no background thread** — the serving layer has no ticker, so sampling
//!   is *lazy*: callers offer a sample on their own hot path and the ring
//!   keeps it only when the previous sample is at least
//!   [`TimeSeries::min_interval_us`] old ([`TimeSeries::record`]). Between
//!   offers the ring simply holds its last samples; window arithmetic always
//!   reports the *actual* elapsed span ([`WindowDelta::span_us`]), so rates
//!   stay honest even under bursty sampling.
//! * **no internal clock** — timestamps are supplied by the caller
//!   (microseconds on any monotone clock, e.g.
//!   [`crate::MetricsRegistry::uptime_us`]), which keeps the structure fully
//!   deterministic under test.
//!
//! Because every tracked quantity is a monotone counter, a window delta over
//! the whole ring reconciles *exactly* with the lifetime counters — the
//! invariant the umbrella metrics suite pins under concurrent load.
//! [`TimeSeries::reset`] clears history and re-baselines at the supplied
//! sample (it never touches the lifetime counters themselves).

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::hist::HistogramSnapshot;

/// The trailing windows the serving layer reports, as `(label, span_us)`.
pub const WINDOWS: [(&str, u64); 3] = [("1s", 1_000_000), ("10s", 10_000_000), ("60s", 60_000_000)];

/// Default minimum spacing between retained samples: 250 ms (4 Hz).
pub const DEFAULT_SAMPLE_INTERVAL_US: u64 = 250_000;

/// Default ring capacity: 256 samples × 250 ms ≈ 64 s of history — enough to
/// cover the longest [`WINDOWS`] entry with slack.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 256;

/// One timestamped copy of the serving layer's monotone telemetry.
#[derive(Clone, Debug, Default)]
pub struct WindowSample {
    /// Sample time, microseconds on the caller's monotone clock.
    pub at_us: u64,
    /// Lifetime wire requests at sample time (all commands).
    pub requests: u64,
    /// Lifetime evaluations at sample time.
    pub evals: u64,
    /// Lifetime request errors at sample time.
    pub errors: u64,
    /// Per-dispatch-kind request-latency snapshots at sample time.
    pub plans: Vec<(&'static str, HistogramSnapshot)>,
}

impl WindowSample {
    /// The request-latency snapshot merged across dispatch kinds.
    pub fn latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (_, snap) in &self.plans {
            merged.merge(snap);
        }
        merged
    }
}

/// The traffic of one trailing window: current counters minus a baseline
/// sample.
#[derive(Clone, Debug)]
pub struct WindowDelta {
    /// Actual elapsed span between baseline and current sample, microseconds
    /// (the denominator of every rate — may be shorter than the nominal
    /// window on a young server, longer under sparse sampling).
    pub span_us: u64,
    /// Wire requests in the window.
    pub requests: u64,
    /// Evaluations in the window.
    pub evals: u64,
    /// Request errors in the window.
    pub errors: u64,
    /// Window request-latency histogram, merged across dispatch kinds.
    pub latency: HistogramSnapshot,
    /// Per-dispatch-kind window latency histograms.
    pub plans: Vec<(&'static str, HistogramSnapshot)>,
}

impl WindowDelta {
    /// Evaluations per second over the window (0 on an empty span).
    pub fn qps(&self) -> f64 {
        if self.span_us == 0 {
            return 0.0;
        }
        self.evals as f64 / (self.span_us as f64 / 1_000_000.0)
    }

    /// Errors per wire request over the window (0 when no requests landed).
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.errors as f64 / self.requests as f64
    }
}

/// A fixed-size ring of [`WindowSample`]s with lazy, rate-limited admission.
#[derive(Debug)]
pub struct TimeSeries {
    min_interval_us: u64,
    capacity: usize,
    ring: Mutex<VecDeque<WindowSample>>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new()
    }
}

impl TimeSeries {
    /// A ring with the default 250 ms spacing and 256-sample capacity.
    pub fn new() -> Self {
        TimeSeries::with_config(DEFAULT_SAMPLE_INTERVAL_US, DEFAULT_SAMPLE_CAPACITY)
    }

    /// A ring keeping at most `capacity` samples spaced at least
    /// `min_interval_us` apart.
    pub fn with_config(min_interval_us: u64, capacity: usize) -> Self {
        TimeSeries {
            min_interval_us,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Minimum spacing between retained samples, microseconds.
    pub fn min_interval_us(&self) -> u64 {
        self.min_interval_us
    }

    /// Whether a sample taken at `at_us` would be retained — the cheap guard
    /// callers check before assembling a full [`WindowSample`].
    pub fn due(&self, at_us: u64) -> bool {
        let ring = self.ring.lock().expect("time-series ring poisoned");
        ring.back().map_or(true, |newest| {
            at_us.saturating_sub(newest.at_us) >= self.min_interval_us
        })
    }

    /// Offers a sample to the ring; it is kept iff it is [`TimeSeries::due`]
    /// (the oldest sample is evicted at capacity). Returns whether it was
    /// retained.
    pub fn record(&self, sample: WindowSample) -> bool {
        let mut ring = self.ring.lock().expect("time-series ring poisoned");
        let due = ring.back().map_or(true, |newest| {
            sample.at_us.saturating_sub(newest.at_us) >= self.min_interval_us
        });
        if !due {
            return false;
        }
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
        true
    }

    /// Retained samples currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("time-series ring poisoned").len()
    }

    /// Whether the ring holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears history and re-baselines at `baseline` (normally the current
    /// counters): subsequent windows report traffic since the reset, while
    /// the lifetime counters themselves are untouched.
    pub fn reset(&self, baseline: WindowSample) {
        let mut ring = self.ring.lock().expect("time-series ring poisoned");
        ring.clear();
        ring.push_back(baseline);
    }

    /// The trailing window of `window_us` microseconds ending at `current`:
    /// the baseline is the youngest ring sample at least `window_us` old
    /// (falling back to the oldest sample on a young ring, and to zeroed
    /// counters at time 0 on an empty ring, i.e. "since boot").
    pub fn window(&self, current: &WindowSample, window_us: u64) -> WindowDelta {
        let ring = self.ring.lock().expect("time-series ring poisoned");
        let baseline = ring
            .iter()
            .rev()
            .find(|sample| current.at_us.saturating_sub(sample.at_us) >= window_us)
            .or_else(|| ring.front())
            .cloned()
            .unwrap_or_default();
        drop(ring);
        let plans: Vec<(&'static str, HistogramSnapshot)> = current
            .plans
            .iter()
            .map(|(label, snap)| {
                let earlier = baseline
                    .plans
                    .iter()
                    .find(|(base_label, _)| base_label == label)
                    .map(|(_, base)| *base)
                    .unwrap_or_default();
                (*label, snap.delta(&earlier))
            })
            .collect();
        WindowDelta {
            span_us: current.at_us.saturating_sub(baseline.at_us),
            requests: current.requests.saturating_sub(baseline.requests),
            evals: current.evals.saturating_sub(baseline.evals),
            errors: current.errors.saturating_sub(baseline.errors),
            latency: current.latency().delta(&baseline.latency()),
            plans,
        }
    }

    /// Every standard trailing window ([`WINDOWS`]) ending at `current`.
    pub fn windows(&self, current: &WindowSample) -> Vec<(&'static str, WindowDelta)> {
        WINDOWS
            .iter()
            .map(|&(label, span)| (label, self.window(current, span)))
            .collect()
    }
}

/// Renders the standard windows as exposition gauge lines (one `# TYPE` per
/// metric name, all values `u64` — QPS is left to readers as
/// `evals / span_us`, keeping the grammar integral). The output slots into
/// [`crate::MetricsRegistry::expose_with`] and stays
/// [`crate::validate_exposition`]-clean.
pub fn render_window_gauges(windows: &[(&str, WindowDelta)], out: &mut String) {
    use std::fmt::Write;
    type DeltaReader = fn(&WindowDelta) -> u64;
    type SnapshotReader = fn(&HistogramSnapshot) -> u64;
    let overall: [(&str, DeltaReader); 7] = [
        ("nev_window_span_us", |w| w.span_us),
        ("nev_window_requests", |w| w.requests),
        ("nev_window_evals", |w| w.evals),
        ("nev_window_errors", |w| w.errors),
        ("nev_window_p50_us", |w| w.latency.p50()),
        ("nev_window_p95_us", |w| w.latency.p95()),
        ("nev_window_p99_us", |w| w.latency.p99()),
    ];
    for (name, read) in overall {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (label, delta) in windows {
            let _ = writeln!(out, "{name}{{window=\"{label}\"}} {}", read(delta));
        }
    }
    let per_plan: [(&str, SnapshotReader); 4] = [
        ("nev_window_plan_evals", |s| s.count),
        ("nev_window_plan_p50_us", |s| s.p50()),
        ("nev_window_plan_p95_us", |s| s.p95()),
        ("nev_window_plan_p99_us", |s| s.p99()),
    ];
    for (name, read) in per_plan {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (label, delta) in windows {
            for (plan, snap) in &delta.plans {
                let _ = writeln!(
                    out,
                    "{name}{{window=\"{label}\",plan=\"{plan}\"}} {}",
                    read(snap)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample(at_us: u64, evals: u64) -> WindowSample {
        let hist = Histogram::new();
        for i in 0..evals {
            hist.record(10 + i);
        }
        WindowSample {
            at_us,
            requests: evals * 2,
            evals,
            errors: evals / 4,
            plans: vec![("compiled", hist.snapshot())],
        }
    }

    #[test]
    fn admission_is_rate_limited_and_capacity_bounded() {
        let series = TimeSeries::with_config(1_000, 3);
        assert!(series.is_empty());
        assert!(series.record(sample(0, 1)));
        assert!(!series.record(sample(500, 2)), "too soon: dropped");
        assert!(series.record(sample(1_000, 2)));
        assert!(series.record(sample(2_000, 3)));
        assert_eq!(series.len(), 3);
        // Capacity 3: the next admission evicts the oldest sample.
        assert!(series.record(sample(3_000, 4)));
        assert_eq!(series.len(), 3);
        // With the t=0 sample evicted, a full-history window baselines at t=1000.
        let window = series.window(&sample(3_500, 5), u64::MAX);
        assert_eq!(window.span_us, 2_500);
    }

    #[test]
    fn windows_subtract_the_youngest_sufficiently_old_sample() {
        let series = TimeSeries::with_config(0, 16);
        for (at, evals) in [(0, 0), (500_000, 4), (1_000_000, 7), (1_500_000, 9)] {
            assert!(series.record(sample(at, evals)));
        }
        let current = sample(2_000_000, 12);
        // 1s window: the youngest sample ≥ 1s old is t=1.0s (evals=7).
        let one_s = series.window(&current, 1_000_000);
        assert_eq!(one_s.span_us, 1_000_000);
        assert_eq!(one_s.evals, 5);
        assert_eq!(one_s.requests, 10);
        assert_eq!(one_s.latency.count, 5);
        assert_eq!(one_s.plans[0].1.count, 5);
        assert!((one_s.qps() - 5.0).abs() < 1e-9);
        // 60s window on a 2s-old ring: falls back to the oldest sample.
        let sixty_s = series.window(&current, 60_000_000);
        assert_eq!(sixty_s.span_us, 2_000_000);
        assert_eq!(sixty_s.evals, 12);
        // Empty ring: baseline is zeroed counters at time 0 ("since boot").
        let fresh = TimeSeries::new();
        let boot = fresh.window(&current, 1_000_000);
        assert_eq!(boot.evals, 12);
        assert_eq!(boot.span_us, 2_000_000);
    }

    #[test]
    fn reset_rebaselines_without_touching_lifetime_counters() {
        let series = TimeSeries::with_config(0, 16);
        series.record(sample(0, 0));
        let current = sample(5_000_000, 40);
        assert_eq!(series.window(&current, 1_000_000).evals, 40);
        // Reset at the current counters: windows restart from zero, while the
        // counters themselves (inside `current`) keep their lifetime values.
        series.reset(current.clone());
        assert_eq!(series.len(), 1);
        let after = series.window(&current, 1_000_000);
        assert_eq!(after.evals, 0);
        assert_eq!(after.span_us, 0);
        let later = sample(6_000_000, 46);
        let delta = series.window(&later, 60_000_000);
        assert_eq!(delta.evals, 6);
        assert_eq!(delta.span_us, 1_000_000);
    }

    #[test]
    fn rendered_window_gauges_validate() {
        let series = TimeSeries::with_config(0, 8);
        series.record(sample(0, 0));
        let current = sample(2_000_000, 10);
        let windows = series.windows(&current);
        assert_eq!(windows.len(), WINDOWS.len());
        let mut out = String::from("# nev-obs exposition v1\n");
        render_window_gauges(&windows, &mut out);
        out.push_str("# EOF\n");
        let lines: Vec<String> = out.lines().map(str::to_string).collect();
        crate::validate_exposition(&lines).expect("window gauges are grammar-valid");
        assert!(out.contains("nev_window_evals{window=\"1s\"} 10"));
        assert!(out.contains("nev_window_plan_evals{window=\"60s\",plan=\"compiled\"} 10"));
    }

    #[test]
    fn error_and_qps_rates_guard_empty_denominators() {
        let zero = WindowDelta {
            span_us: 0,
            requests: 0,
            evals: 0,
            errors: 0,
            latency: HistogramSnapshot::default(),
            plans: Vec::new(),
        };
        assert_eq!(zero.qps(), 0.0);
        assert_eq!(zero.error_rate(), 0.0);
    }
}
