//! # `nev-obs` — spans, latency histograms, and the metrics registry
//!
//! The engine has four dispatch regimes (certified-naive, compiled, symbolic
//! sandwich, bounded oracle) and a morsel-parallel executor; this crate is the
//! telemetry layer that makes their costs *visible* without ever changing an
//! answer. It is zero-dependency (std only) and splits into three pieces:
//!
//! * [`hist`] — HDR-style latency [`Histogram`]s with power-of-two buckets.
//!   Recording is one relaxed atomic increment per sample, so histograms can
//!   sit on hot paths (the worker pool records every task) and be shared
//!   across threads without locks. Snapshots are plain values: mergeable,
//!   comparable, and renderable as Prometheus `_bucket`/`_sum`/`_count`
//!   series with p50/p95/p99/max readout.
//! * [`span`] — per-request stage timelines. A [`TraceRecorder`] hands out
//!   RAII [`Span`] guards (`recorder.span(Stage::Exec)`), nesting tracked by
//!   depth, bounded at [`MAX_SPANS`] records; [`TraceRecorder::finish`]
//!   freezes it into a [`Trace`] that rides on evaluation results. `Trace`
//!   compares equal to every other `Trace` by design: timing is telemetry,
//!   never part of a result's value, so derived `Eq` on result types and
//!   byte-identity determinism pins stay exact.
//! * [`registry`] — the serving-layer [`MetricsRegistry`]: per-stage and
//!   per-dispatch-kind histograms, a bounded top-K slow-query log, and the
//!   text exposition behind the wire `METRICS` command (shape-checkable with
//!   [`validate_exposition`]).
//! * [`timeseries`] — a fixed-size ring of lazy, rate-limited
//!   [`WindowSample`]s over the monotone counters, giving QPS, error rate
//!   and interpolated p50/p95/p99 over trailing 1 s / 10 s / 60 s windows
//!   ([`TimeSeries::window`]) — the data behind the wire `TOP` summary and
//!   the `nevtop` dashboard.
//!
//! ## The kill switch
//!
//! `NEV_TRACE=0` (also `off`/`false`) disables all time measurement: [`Timer`]
//! and [`TraceRecorder`] become inert — no `Instant::now()` calls, no span
//! records, no histogram samples — so the instrumented hot paths cost one
//! branch per probe point. The flag is read once per process ([`enabled`]).
//! Tracing never changes served bytes either way; the CI determinism suite
//! runs under both settings to pin that.
//!
//! ```
//! use nev_obs::{Histogram, Stage, TraceRecorder};
//!
//! let recorder = TraceRecorder::with_enabled(true);
//! {
//!     let _exec = recorder.span(Stage::Exec);
//!     recorder.leaf(Stage::Scan, 7); // replayed child timing, depth 1
//! }
//! let trace = recorder.finish();
//! assert_eq!(trace.spans().len(), 2);
//!
//! let hist = Histogram::new();
//! hist.record(120);
//! hist.record(3_500);
//! let snap = hist.snapshot();
//! assert_eq!(snap.count, 2);
//! assert!(snap.p99() >= 3_500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod span;
pub mod timeseries;

pub use hist::{bucket_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{validate_exposition, MetricsRegistry, SlowQuery};
pub use span::{Span, SpanRecord, Stage, Trace, TraceRecorder, MAX_SPANS};
pub use timeseries::{TimeSeries, WindowDelta, WindowSample, WINDOWS};

use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether instrumentation is live for this process.
///
/// Defaults to `true`; set `NEV_TRACE=0` (or `off` / `false`) to disable every
/// timer and span in the workspace. Read once and cached — flipping the
/// environment variable mid-process has no effect, which keeps concurrent
/// probe points consistent with each other.
pub fn enabled() -> bool {
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("NEV_TRACE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// A start-time capture that is inert when instrumentation is disabled.
///
/// [`Timer::start`] consults [`enabled`] once: when tracing is off it never
/// calls `Instant::now()`, and [`Timer::is_running`] lets call sites skip the
/// recording branch entirely — the "provably near-zero overhead" contract.
#[derive(Clone, Copy, Debug)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Starts a timer, or an inert one when the kill switch is set.
    pub fn start() -> Self {
        if enabled() {
            Timer(Some(Instant::now()))
        } else {
            Timer(None)
        }
    }

    /// Starts a timer regardless of the kill switch (for reporting tools that
    /// always want wall-clock numbers, e.g. the load generator).
    pub fn start_always() -> Self {
        Timer(Some(Instant::now()))
    }

    /// An inert timer: [`Timer::is_running`] is `false`, elapsed time is 0.
    pub fn disabled() -> Self {
        Timer(None)
    }

    /// Whether this timer captured a start instant.
    pub fn is_running(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds since the timer started (0 when inert).
    pub fn elapsed_us(&self) -> u64 {
        self.0
            .map(|at| at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_is_inert() {
        let t = Timer::disabled();
        assert!(!t.is_running());
        assert_eq!(t.elapsed_us(), 0);
    }

    #[test]
    fn always_on_timer_runs() {
        let t = Timer::start_always();
        assert!(t.is_running());
        // Elapsed time is monotone, not negative — just probe it compiles/runs.
        let _ = t.elapsed_us();
    }
}
