//! The serving-layer metrics registry and its text exposition.
//!
//! A [`MetricsRegistry`] aggregates what individual requests measured:
//! request latency bucketed **per dispatch kind** (the plan label), stage
//! latency bucketed **per span stage**, and a bounded top-K slow-query log.
//! [`MetricsRegistry::expose`] renders everything — plus caller-supplied
//! counters and gauges — as Prometheus-style text, the payload behind the
//! wire `METRICS` command. The grammar is fixed and machine-checkable with
//! [`validate_exposition`]; the exposition always ends with a `# EOF` line so
//! clients of the line-oriented protocol know where the (sole) multi-line
//! response stops.

use std::sync::Mutex;
use std::time::Instant;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::span::{Stage, Trace};

/// One entry of the slow-query log: everything needed to reproduce and
/// attribute the request without holding the instance.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// End-to-end request latency, microseconds.
    pub latency_us: u64,
    /// Canonical query text.
    pub query: String,
    /// Semantics the query ran under (`owa` / `cwa` / `rigid`).
    pub semantics: String,
    /// Figure 1 cell of the (semantics, fragment) classification.
    pub cell: String,
    /// Dispatch kind that served it (compiled / certified / symbolic / oracle).
    pub plan: String,
    /// Per-stage breakdown from the request's trace (stage, µs).
    pub stages: Vec<(Stage, u64)>,
}

/// Aggregated telemetry for one serving process.
#[derive(Debug)]
pub struct MetricsRegistry {
    start: Instant,
    stage: Vec<Histogram>,
    plans: Vec<(&'static str, Histogram)>,
    slow: Mutex<Vec<SlowQuery>>,
    slow_capacity: usize,
}

impl MetricsRegistry {
    /// A registry with one request-latency histogram per plan label and a
    /// slow-query log keeping the `slow_capacity` highest-latency requests.
    pub fn new(plan_labels: &[&'static str], slow_capacity: usize) -> Self {
        MetricsRegistry {
            start: Instant::now(),
            stage: (0..Stage::COUNT).map(|_| Histogram::new()).collect(),
            plans: plan_labels
                .iter()
                .map(|&label| (label, Histogram::new()))
                .collect(),
            slow: Mutex::new(Vec::new()),
            slow_capacity,
        }
    }

    /// Microseconds since the registry (i.e. the server) started.
    pub fn uptime_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Records one sample into a stage histogram.
    pub fn observe_stage(&self, stage: Stage, us: u64) {
        self.stage[stage.index()].record(us);
    }

    /// Records every span of a finished trace into the stage histograms.
    pub fn observe_trace(&self, trace: &Trace) {
        for span in trace.spans() {
            self.observe_stage(span.stage, span.dur_us);
        }
    }

    /// Records one request latency under its dispatch-kind label. Unknown
    /// labels are ignored (the label set is fixed at construction).
    pub fn observe_plan(&self, label: &str, us: u64) {
        if let Some((_, hist)) = self.plans.iter().find(|(l, _)| *l == label) {
            hist.record(us);
        }
    }

    /// Snapshot of one stage histogram.
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stage[stage.index()].snapshot()
    }

    /// Snapshots of every per-plan request-latency histogram.
    pub fn plan_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.plans
            .iter()
            .map(|(label, hist)| (*label, hist.snapshot()))
            .collect()
    }

    /// All request latencies merged across plan labels — the histogram the
    /// `STATS` p50/p99 tokens read from.
    pub fn request_totals(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (_, hist) in &self.plans {
            merged.merge(&hist.snapshot());
        }
        merged
    }

    /// Offers a request to the slow-query log; it is kept only while it ranks
    /// among the top-K by latency.
    pub fn record_slow(&self, entry: SlowQuery) {
        if self.slow_capacity == 0 {
            return;
        }
        let mut slow = self.slow.lock().expect("slow-query log poisoned");
        if slow.len() >= self.slow_capacity
            && slow
                .last()
                .is_some_and(|worst| worst.latency_us >= entry.latency_us)
        {
            return;
        }
        slow.push(entry);
        slow.sort_by_key(|kept| std::cmp::Reverse(kept.latency_us));
        slow.truncate(self.slow_capacity);
    }

    /// The current slow-query log, highest latency first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.lock().expect("slow-query log poisoned").clone()
    }

    /// Empties the slow-query log (the wire `METRICS RESET` path). Lifetime
    /// histograms and counters are deliberately untouched: reconciliation
    /// invariants (per-plan counts summing to `evals`) must survive a reset.
    pub fn reset_slow(&self) {
        self.slow.lock().expect("slow-query log poisoned").clear();
    }

    /// Renders the full exposition: uptime and caller gauges, caller
    /// counters (suffixed `_total`), the per-plan request-latency and
    /// per-stage latency histograms, any extra named histograms (e.g. the
    /// worker pool's queue-wait/run split), the slow-query log as comment
    /// lines, and the `# EOF` terminator. Empty histograms are elided.
    pub fn expose(
        &self,
        counters: &[(&str, u64)],
        gauges: &[(&str, u64)],
        extra_hists: &[(&str, HistogramSnapshot)],
    ) -> String {
        self.expose_with(counters, gauges, extra_hists, "")
    }

    /// [`MetricsRegistry::expose`] with a caller-rendered `appendix` spliced
    /// in after the histograms and before the slow-query log — the hook the
    /// serving layer uses for its windowed time-series gauges
    /// ([`crate::timeseries::render_window_gauges`]). The appendix must
    /// itself be grammar-valid exposition text (newline-terminated lines).
    pub fn expose_with(
        &self,
        counters: &[(&str, u64)],
        gauges: &[(&str, u64)],
        extra_hists: &[(&str, HistogramSnapshot)],
        appendix: &str,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        out.push_str("# nev-obs exposition v1\n");
        let _ = writeln!(out, "# TYPE nev_uptime_us gauge");
        let _ = writeln!(out, "nev_uptime_us {}", self.uptime_us());
        for &(name, value) in gauges {
            let _ = writeln!(out, "# TYPE nev_{name} gauge");
            let _ = writeln!(out, "nev_{name} {value}");
        }
        for &(name, value) in counters {
            let _ = writeln!(out, "# TYPE nev_{name}_total counter");
            let _ = writeln!(out, "nev_{name}_total {value}");
        }
        let plans = self.plan_snapshots();
        if plans.iter().any(|(_, snap)| snap.count > 0) {
            let _ = writeln!(out, "# TYPE nev_request_latency_us histogram");
            for (label, snap) in &plans {
                if snap.count > 0 {
                    snap.render_prometheus(
                        "nev_request_latency_us",
                        &format!("plan=\"{label}\""),
                        &mut out,
                    );
                }
            }
        }
        let stages: Vec<(Stage, HistogramSnapshot)> = Stage::ALL
            .iter()
            .map(|&stage| (stage, self.stage_snapshot(stage)))
            .filter(|(_, snap)| snap.count > 0)
            .collect();
        if !stages.is_empty() {
            let _ = writeln!(out, "# TYPE nev_stage_latency_us histogram");
            for (stage, snap) in &stages {
                snap.render_prometheus(
                    "nev_stage_latency_us",
                    &format!("stage=\"{}\"", stage.name()),
                    &mut out,
                );
            }
        }
        for (name, snap) in extra_hists {
            if snap.count > 0 {
                let _ = writeln!(out, "# TYPE nev_{name} histogram");
                snap.render_prometheus(&format!("nev_{name}"), "", &mut out);
            }
        }
        out.push_str(appendix);
        for entry in self.slow_queries() {
            let stages: Vec<String> = entry
                .stages
                .iter()
                .map(|(stage, us)| format!("{}:{us}", stage.name()))
                .collect();
            let _ = writeln!(
                out,
                "# slow_query latency_us={} plan={} semantics={} cell={} stages={} query={}",
                entry.latency_us,
                entry.plan,
                entry.semantics,
                entry.cell,
                if stages.is_empty() {
                    "-".to_string()
                } else {
                    stages.join(",")
                },
                entry.query.replace(['\n', '\r'], " "),
            );
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Shape-validates a `METRICS` exposition against the fixed grammar.
///
/// Checks, per line: comments are one of the known forms (`# nev-obs …`
/// header first, `# TYPE name counter|gauge|histogram`, `# slow_query …`,
/// `# EOF` last); samples are `name value` or `name{key="v",…} value` with a
/// well-formed metric name and a `u64` value. Across lines: every histogram
/// series has cumulative, non-decreasing `_bucket` counts ending at a `+Inf`
/// bucket that equals its `_count` sample. Returns the first violation.
pub fn validate_exposition(lines: &[String]) -> Result<(), String> {
    if lines.first().map(String::as_str) != Some("# nev-obs exposition v1") {
        return Err("missing exposition header".to_string());
    }
    if lines.last().map(String::as_str) != Some("# EOF") {
        return Err("missing # EOF terminator".to_string());
    }
    // (series key = name + labels-without-le) → (cumulative buckets, count/sum seen)
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for (number, line) in lines.iter().enumerate() {
        let context = |msg: &str| format!("line {}: {msg}: {line}", number + 1);
        if let Some(comment) = line.strip_prefix("# ") {
            let known = comment.starts_with("nev-obs exposition")
                || comment.starts_with("slow_query ")
                || comment == "EOF"
                || comment
                    .strip_prefix("TYPE ")
                    .and_then(|rest| rest.split_once(' '))
                    .is_some_and(|(name, kind)| {
                        valid_metric_name(name) && matches!(kind, "counter" | "gauge" | "histogram")
                    });
            if !known {
                return Err(context("unknown comment form"));
            }
            continue;
        }
        // A sample line: name[{labels}] value
        let Some((series, value)) = line.rsplit_once(' ') else {
            return Err(context("sample line needs a value"));
        };
        let Ok(value) = value.parse::<u64>() else {
            return Err(context("sample value is not a u64"));
        };
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let Some(labels) = rest.strip_suffix('}') else {
                    return Err(context("unterminated label set"));
                };
                (name, labels)
            }
            None => (series, ""),
        };
        if !valid_metric_name(name) {
            return Err(context("invalid metric name"));
        }
        let mut le = None;
        let mut other_labels = Vec::new();
        for pair in labels.split(',').filter(|p| !p.is_empty()) {
            let Some((key, quoted)) = pair.split_once('=') else {
                return Err(context("label needs key=\"value\""));
            };
            let Some(value) = quoted.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(context("label value must be quoted"));
            };
            if key == "le" {
                le = Some(value.to_string());
            } else {
                other_labels.push(format!("{key}={value}"));
            }
        }
        if let Some(base) = name.strip_suffix("_bucket") {
            let Some(le) = le else {
                return Err(context("_bucket sample needs an le label"));
            };
            let key = format!("{base}|{}", other_labels.join(","));
            buckets.entry(key).or_default().push((le, value));
        } else if let Some(base) = name.strip_suffix("_count") {
            let key = format!("{base}|{}", other_labels.join(","));
            counts.insert(key, value);
        }
    }
    for (key, series) in &buckets {
        let mut previous = 0u64;
        for (le, cumulative) in series {
            if *cumulative < previous {
                return Err(format!("histogram {key}: bucket le={le} not cumulative"));
            }
            previous = *cumulative;
        }
        let Some((le, last)) = series.last() else {
            continue;
        };
        if le != "+Inf" {
            return Err(format!("histogram {key}: missing +Inf bucket"));
        }
        match counts.get(key) {
            Some(count) if count == last => {}
            Some(count) => {
                return Err(format!(
                    "histogram {key}: +Inf bucket {last} != _count {count}"
                ));
            }
            None => return Err(format!("histogram {key}: missing _count sample")),
        }
    }
    Ok(())
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceRecorder;

    fn lines(text: &str) -> Vec<String> {
        text.lines().map(str::to_string).collect()
    }

    #[test]
    fn exposition_validates_and_reconciles() {
        let registry = MetricsRegistry::new(&["compiled", "oracle"], 4);
        registry.observe_plan("compiled", 120);
        registry.observe_plan("compiled", 4_000);
        registry.observe_plan("oracle", 90_000);
        registry.observe_plan("unknown", 1); // ignored: fixed label set
        let rec = TraceRecorder::with_enabled(true);
        drop(rec.span(Stage::Exec));
        registry.observe_trace(&rec.finish());
        let text = registry.expose(
            &[("evals", 3), ("requests", 5)],
            &[("pool_workers", 2)],
            &[],
        );
        let lines = lines(&text);
        validate_exposition(&lines).expect("well-formed exposition");
        assert!(lines.iter().any(|l| l == "nev_evals_total 3"));
        assert!(lines.iter().any(|l| l == "nev_pool_workers 2"));
        // Histogram counts reconcile with the counter they mirror.
        let plan_count: u64 = lines
            .iter()
            .filter_map(|l| l.strip_prefix("nev_request_latency_us_count{"))
            .filter_map(|l| l.split_once("} "))
            .map(|(_, v)| v.parse::<u64>().expect("count value"))
            .sum();
        assert_eq!(plan_count, 3);
    }

    #[test]
    fn slow_query_log_keeps_top_k_by_latency() {
        let registry = MetricsRegistry::new(&["oracle"], 2);
        for (latency, name) in [(50, "a"), (500, "b"), (5, "c"), (900, "d")] {
            registry.record_slow(SlowQuery {
                latency_us: latency,
                query: format!("Q{name}"),
                semantics: "owa".to_string(),
                cell: "coNP".to_string(),
                plan: "oracle".to_string(),
                stages: vec![(Stage::OracleWorlds, latency)],
            });
        }
        let slow = registry.slow_queries();
        let latencies: Vec<u64> = slow.iter().map(|s| s.latency_us).collect();
        assert_eq!(latencies, vec![900, 500]);
        // The log renders as comment lines the validator accepts.
        let text = registry.expose(&[], &[], &[]);
        validate_exposition(&lines(&text)).expect("slow log keeps grammar valid");
        assert!(text.contains("# slow_query latency_us=900"));
        // Reset empties the log without touching the latency histograms.
        registry.observe_plan("oracle", 77);
        registry.reset_slow();
        assert!(registry.slow_queries().is_empty());
        assert_eq!(registry.request_totals().count, 1, "histograms survive");
    }

    #[test]
    fn expose_with_splices_the_appendix_before_the_slow_log() {
        let registry = MetricsRegistry::new(&["oracle"], 2);
        registry.record_slow(SlowQuery {
            latency_us: 9,
            query: "Q".to_string(),
            semantics: "owa".to_string(),
            cell: "coNP".to_string(),
            plan: "oracle".to_string(),
            stages: Vec::new(),
        });
        let appendix = "# TYPE nev_window_evals gauge\nnev_window_evals{window=\"1s\"} 3\n";
        let text = registry.expose_with(&[], &[], &[], appendix);
        validate_exposition(&lines(&text)).expect("appendix keeps grammar valid");
        let window_at = text.find("nev_window_evals{").expect("appendix rendered");
        let slow_at = text.find("# slow_query").expect("slow log rendered");
        assert!(window_at < slow_at, "appendix precedes the slow-query log");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        let ok = MetricsRegistry::new(&[], 0).expose(&[], &[], &[]);
        validate_exposition(&lines(&ok)).expect("empty registry exposes fine");
        assert!(
            validate_exposition(&lines("nev_x 1\n# EOF")).is_err(),
            "no header"
        );
        assert!(
            validate_exposition(&lines("# nev-obs exposition v1\nnev_x 1")).is_err(),
            "no terminator"
        );
        let bad_value = "# nev-obs exposition v1\nnev_x abc\n# EOF";
        assert!(validate_exposition(&lines(bad_value)).is_err());
        let bad_hist = "# nev-obs exposition v1\n\
                        nev_h_bucket{le=\"1\"} 5\n\
                        nev_h_bucket{le=\"+Inf\"} 3\n\
                        nev_h_count 3\n\
                        # EOF";
        assert!(
            validate_exposition(&lines(bad_hist)).is_err(),
            "non-cumulative buckets rejected"
        );
    }

    #[test]
    fn uptime_is_monotone() {
        let registry = MetricsRegistry::new(&[], 0);
        let first = registry.uptime_us();
        std::thread::sleep(std::time::Duration::from_micros(300));
        assert!(registry.uptime_us() >= first);
    }
}
