//! Log-bucketed latency histograms: lock-free to record, mergeable to read.
//!
//! Buckets follow the HDR convention of power-of-two upper bounds: bucket `i`
//! covers `(2^(i-1), 2^i]` microseconds (bucket 0 covers `[0, 1]`), so a
//! sample lands in its bucket with one `leading_zeros` instruction and the
//! Prometheus `le` labels are exact powers of two. Forty buckets reach
//! 2³⁹ µs ≈ 6.4 days — far past any request this engine serves; larger
//! samples clamp into the last bucket (the exact `max` is tracked
//! separately).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets per histogram.
pub const BUCKETS: usize = 40;

/// Upper bound (inclusive, microseconds) of bucket `index`: `2^index`.
pub fn bucket_bound(index: usize) -> u64 {
    1u64 << index.min(BUCKETS - 1)
}

/// Bucket index for a sample of `us` microseconds.
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        ((64 - (us - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// A concurrent latency histogram: every field is a relaxed atomic, so
/// recording from any number of threads needs no lock and costs a handful of
/// uncontended atomic increments. Readers take a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample of `us` microseconds.
    pub fn record(&self, us: u64) {
        // relaxed: independent telemetry tallies; readers tolerate skew between them.
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Concurrent recorders may land
    /// between the individual loads, so a snapshot is *consistent enough* for
    /// telemetry (counts monotone, never torn within a bucket) rather than a
    /// linearisable cut — the same contract as the serving-layer counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        // relaxed: monotone counter reads; the snapshot is a fuzzy cut by contract.
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        // relaxed: same fuzzy-cut contract as the bucket loads above.
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of a [`Histogram`]: mergeable, comparable, renderable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` ≤ `2^i` µs).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum: u64,
    /// Largest single sample, microseconds.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Adds `other`'s samples into this snapshot (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (slot, more) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += more;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (0 < q ≤ 1), linearly interpolated within the bucket
    /// holding that rank (assuming samples spread uniformly across the
    /// bucket's `(lower, upper]` range) and capped at the exact recorded
    /// maximum. The estimate never leaves the winning bucket, so it is exact
    /// for dense integer-uniform data and off by less than one bucket width
    /// otherwise. 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                let lower = if index == 0 {
                    0
                } else {
                    bucket_bound(index - 1)
                };
                let width = bucket_bound(index) - lower;
                // 1-based position of the rank within this bucket's samples.
                let into = rank - (seen - bucket);
                // Integer interpolation, rounding up: `into == bucket` lands
                // exactly on the bucket's upper bound.
                let offset = (u128::from(into) * u128::from(width)).div_ceil(u128::from(bucket));
                return (lower + offset as u64).min(self.max);
            }
        }
        self.max
    }

    /// Median latency (interpolated), microseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency (interpolated), microseconds.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency (interpolated), microseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The samples recorded in `self` but not in `earlier` — the windowed
    /// delta of two snapshots of one **monotone** histogram (`earlier` taken
    /// first). Buckets, `count` and `sum` subtract (saturating, so a torn
    /// concurrent read can never underflow); `max` keeps the lifetime maximum
    /// because per-window maxima are not recoverable from monotone counters.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *slot = now.saturating_sub(*then);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Renders this snapshot as Prometheus histogram series: cumulative
    /// `_bucket{le=…}` lines up to the highest occupied bucket, the `+Inf`
    /// bucket, then `_sum` and `_count`. `labels` is either empty or a
    /// comma-separated `key="value"` list to splice before `le`.
    pub fn render_prometheus(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write;
        let highest = self
            .buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for index in 0..highest {
            cumulative += self.buckets[index];
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{}le=\"{}\"}} {cumulative}",
                if labels.is_empty() { "" } else { "," },
                bucket_bound(index)
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{}le=\"+Inf\"}} {}",
            if labels.is_empty() { "" } else { "," },
            self.count
        );
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", self.sum);
            let _ = writeln!(out, "{name}_count {}", self.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", self.sum);
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_cover_powers_of_two_exactly() {
        // Bucket i covers (2^(i-1), 2^i]: the bound itself lands in bucket i,
        // one past it in bucket i+1.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        for i in 1..BUCKETS - 1 {
            let bound = bucket_bound(i);
            assert_eq!(bucket_index(bound), i, "bound {bound} in its own bucket");
            assert_eq!(bucket_index(bound + 1), i + 1, "bound+1 spills over");
        }
        // Oversized samples clamp into the last bucket.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_are_conservative_and_capped_at_max() {
        let h = Histogram::new();
        for _ in 0..98 {
            h.record(10);
        }
        h.record(900);
        h.record(5_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 5_000);
        // Rank 50 of 98 tens interpolates inside bucket (8, 16]: 8 + ⌈50·8/98⌉.
        assert_eq!(s.p50(), 13);
        assert!(s.p50() > 8 && s.p50() <= 16, "stays inside its bucket");
        assert!(s.p99() >= 900);
        assert!(s.quantile(1.0) <= 8_192);
        assert_eq!(
            s.quantile(1.0),
            5_000,
            "tail quantiles cap at the exact max"
        );
    }

    #[test]
    fn interpolated_quantiles_are_exact_on_dense_uniform_data() {
        // 1..=2^k integer-uniform data fills every bucket (2^(b-1), 2^b]
        // completely, so within-bucket linear interpolation recovers the
        // exact rank statistic: quantile(q) == ⌈q·N⌉ for every q. (On a
        // partially filled top bucket the estimate stays within that bucket —
        // off by less than one bucket width, vs the old upper-bound readout's
        // systematic 2× inflation.)
        let h = Histogram::new();
        const N: u64 = 1_024;
        for us in 1..=N {
            h.record(us);
        }
        let s = h.snapshot();
        for q in [0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
            let exact = (q * N as f64).ceil() as u64;
            assert_eq!(s.quantile(q), exact, "q={q}");
        }
        assert_eq!(s.p50(), 512);
        assert_eq!(s.p95(), 973);
        assert_eq!(s.p99(), 1_014);
    }

    #[test]
    fn snapshot_delta_subtracts_monotone_counters() {
        let h = Histogram::new();
        h.record(10);
        h.record(100);
        let earlier = h.snapshot();
        h.record(100);
        h.record(7_000);
        let delta = h.snapshot().delta(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 7_100);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
        assert_eq!(delta.max, 7_000, "max is the lifetime maximum");
        // A stale "earlier" (counters ahead of "now") saturates to zero.
        let stale = earlier.delta(&h.snapshot());
        assert_eq!(stale.count, 0);
        assert_eq!(stale.sum, 0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        a.record(100);
        b.record(100);
        b.record(40_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 3 + 100 + 100 + 40_000);
        assert_eq!(merged.max, 40_000);
        assert_eq!(merged.buckets[bucket_index(100)], 2);
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("recorder thread");
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4_000);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_terminated() {
        let h = Histogram::new();
        h.record(1);
        h.record(3);
        h.record(3);
        let mut out = String::new();
        h.snapshot().render_prometheus("t_us", "", &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "t_us_bucket{le=\"1\"} 1");
        assert_eq!(lines[1], "t_us_bucket{le=\"2\"} 1");
        assert_eq!(lines[2], "t_us_bucket{le=\"4\"} 3");
        assert_eq!(lines[3], "t_us_bucket{le=\"+Inf\"} 3");
        assert_eq!(lines[4], "t_us_sum 7");
        assert_eq!(lines[5], "t_us_count 3");
        // Labelled form splices before `le`.
        let mut labelled = String::new();
        h.snapshot()
            .render_prometheus("t_us", "plan=\"oracle\"", &mut labelled);
        assert!(labelled.contains("t_us_bucket{plan=\"oracle\",le=\"1\"} 1"));
        assert!(labelled.contains("t_us_count{plan=\"oracle\"} 3"));
    }
}
