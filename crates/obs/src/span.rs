//! Per-request stage timelines: RAII spans recorded into a bounded trace.
//!
//! A [`TraceRecorder`] lives for one request. Probe points open RAII [`Span`]
//! guards (`recorder.span(Stage::Exec)`); nested opens record at increasing
//! depth, and sub-phase timings measured elsewhere (e.g. the executor's
//! scan/join split) replay as [`TraceRecorder::leaf`] children of whichever
//! span is open. [`TraceRecorder::finish`] freezes everything into a
//! [`Trace`], the value that rides on evaluation results.
//!
//! The recorder is inert when built disabled (or when the process-wide
//! [`crate::enabled`] kill switch is off): no clock reads, no records, and
//! `finish` returns the empty trace.

use std::sync::Mutex;
use std::time::Instant;

/// Maximum span records per trace; later spans are counted, not stored.
pub const MAX_SPANS: usize = 64;

/// The span taxonomy: every timed stage of a request's life, across layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Query-text parsing (`nev-logic`).
    Parse,
    /// Figure 1 cell classification of the parsed query (`nev-core`).
    Classify,
    /// Plan-cache lookup in the serving layer (children replay on a miss).
    CacheProbe,
    /// Compilation + `nev-opt` plan optimisation into the executable form.
    Optimize,
    /// The naive/compiled evaluation pass (`nev-exec`).
    Exec,
    /// Relation scans inside the exec pass, morsel fan-out included.
    Scan,
    /// Hash-join build sides inside the exec pass.
    JoinBuild,
    /// Hash-join probe sides inside the exec pass.
    JoinProbe,
    /// Bounded world enumeration (the oracle fallback).
    OracleWorlds,
    /// The symbolic sandwich approximation pass (`nev-symbolic`).
    Symbolic,
    /// Worker-pool task wait: batch submission to task start.
    QueueWait,
    /// Worker-pool task run time.
    TaskRun,
}

impl Stage {
    /// Number of stages in the taxonomy.
    pub const COUNT: usize = 12;

    /// Every stage, in declaration order (indexable by [`Stage::index`]).
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Parse,
        Stage::Classify,
        Stage::CacheProbe,
        Stage::Optimize,
        Stage::Exec,
        Stage::Scan,
        Stage::JoinBuild,
        Stage::JoinProbe,
        Stage::OracleWorlds,
        Stage::Symbolic,
        Stage::QueueWait,
        Stage::TaskRun,
    ];

    /// Position in [`Stage::ALL`].
    pub fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|&s| s == self)
            .expect("every stage is in ALL")
    }

    /// The wire/exposition name (snake_case, stable).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Classify => "classify",
            Stage::CacheProbe => "cache_probe",
            Stage::Optimize => "optimize",
            Stage::Exec => "exec",
            Stage::Scan => "scan",
            Stage::JoinBuild => "join_build",
            Stage::JoinProbe => "join_probe",
            Stage::OracleWorlds => "oracle_worlds",
            Stage::Symbolic => "symbolic",
            Stage::QueueWait => "queue_wait",
            Stage::TaskRun => "task_run",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finished span: a stage, when it started (µs since the request began),
/// how long it ran, and how deeply it was nested (0 = top level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which stage this span timed.
    pub stage: Stage,
    /// Start offset from the recorder's epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Nesting depth (0 for top-level spans).
    pub depth: u8,
}

/// A frozen per-request timeline.
///
/// `Trace` intentionally compares **equal to every other `Trace`**: it is
/// telemetry carried on result types that derive `PartialEq`/`Eq`, and two
/// evaluations that computed the same answers *are* equal no matter how long
/// their stages took. Determinism pins (byte-identical answers across worker
/// counts, with tracing on or off) rely on this.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    spans: Vec<SpanRecord>,
    total_us: u64,
    dropped: u32,
}

impl PartialEq for Trace {
    fn eq(&self, _other: &Trace) -> bool {
        true // telemetry: never part of a result's value (see type docs)
    }
}

impl Eq for Trace {}

impl Trace {
    /// The recorded spans, ordered by start offset (parents before children).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Wall-clock from recorder creation to [`TraceRecorder::finish`], µs.
    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    /// Spans that exceeded [`MAX_SPANS`] and were counted but not stored.
    pub fn dropped(&self) -> u32 {
        self.dropped
    }

    /// Whether anything was recorded (false for disabled recorders).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.total_us == 0
    }

    /// Total duration recorded for one stage across all its spans, µs.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.dur_us)
            .sum()
    }

    /// Sum of the top-level (depth 0) span durations, µs. Because top-level
    /// spans never overlap within one request, this is ≤ [`Trace::total_us`].
    pub fn top_level_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.dur_us)
            .sum()
    }

    /// One-line rendering for the wire `TRACE` response: comma-separated
    /// `stage:µs` entries, nesting shown by `>` prefixes (one per depth
    /// level); `-` for an empty trace.
    pub fn render(&self) -> String {
        if self.spans.is_empty() {
            return "-".to_string();
        }
        let mut parts = Vec::with_capacity(self.spans.len());
        for span in &self.spans {
            let mut part = String::new();
            for _ in 0..span.depth {
                part.push('>');
            }
            part.push_str(span.stage.name());
            part.push(':');
            part.push_str(&span.dur_us.to_string());
            parts.push(part);
        }
        parts.join(",")
    }
}

struct RecorderInner {
    spans: Vec<SpanRecord>,
    depth: u8,
    dropped: u32,
}

/// Collects spans for one request. Cheap to create; inert when disabled.
pub struct TraceRecorder {
    epoch: Option<Instant>,
    inner: Mutex<RecorderInner>,
}

impl TraceRecorder {
    /// A recorder honouring the process-wide kill switch.
    pub fn new() -> Self {
        TraceRecorder::with_enabled(crate::enabled())
    }

    /// An explicitly disabled recorder (every operation is a no-op).
    pub fn disabled() -> Self {
        TraceRecorder::with_enabled(false)
    }

    /// A recorder with the given enablement, independent of the environment —
    /// what unit tests use so they never race on the global switch.
    pub fn with_enabled(enabled: bool) -> Self {
        TraceRecorder {
            epoch: enabled.then(Instant::now),
            inner: Mutex::new(RecorderInner {
                spans: Vec::new(),
                depth: 0,
                dropped: 0,
            }),
        }
    }

    /// Whether this recorder is live.
    pub fn is_enabled(&self) -> bool {
        self.epoch.is_some()
    }

    fn now_us(&self, epoch: Instant) -> u64 {
        epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Opens a span for `stage`; it records when the returned guard drops.
    /// Spans opened while another is live nest one level deeper.
    pub fn span(&self, stage: Stage) -> Span<'_> {
        let Some(epoch) = self.epoch else {
            return Span { open: None };
        };
        let start_us = self.now_us(epoch);
        let depth = {
            let mut inner = self.inner.lock().expect("trace recorder poisoned");
            let depth = inner.depth;
            inner.depth = inner.depth.saturating_add(1);
            depth
        };
        Span {
            open: Some(SpanOpen {
                recorder: self,
                stage,
                start_us,
                depth,
            }),
        }
    }

    /// Replays an externally measured duration as a child of the currently
    /// open span (depth = current nesting). Used for sub-phase timings the
    /// recorder cannot wrap directly, e.g. the executor's scan/join split.
    pub fn leaf(&self, stage: Stage, dur_us: u64) {
        let Some(epoch) = self.epoch else {
            return;
        };
        let now = self.now_us(epoch);
        let mut inner = self.inner.lock().expect("trace recorder poisoned");
        let depth = inner.depth;
        push_span(
            &mut inner,
            SpanRecord {
                stage,
                start_us: now.saturating_sub(dur_us),
                dur_us,
                depth,
            },
        );
    }

    /// Freezes the timeline. Spans sort by start offset (ties broken by
    /// depth, parents first) so the rendering reads chronologically.
    pub fn finish(self) -> Trace {
        let Some(epoch) = self.epoch else {
            return Trace::default();
        };
        let total_us = self.now_us(epoch);
        let inner = self.inner.into_inner().expect("trace recorder poisoned");
        let mut spans = inner.spans;
        spans.sort_by_key(|s| (s.start_us, s.depth));
        Trace {
            spans,
            total_us,
            dropped: inner.dropped,
        }
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

fn push_span(inner: &mut RecorderInner, record: SpanRecord) {
    if inner.spans.len() < MAX_SPANS {
        inner.spans.push(record);
    } else {
        inner.dropped += 1;
    }
}

struct SpanOpen<'a> {
    recorder: &'a TraceRecorder,
    stage: Stage,
    start_us: u64,
    depth: u8,
}

/// RAII guard from [`TraceRecorder::span`]: the span's duration is the
/// guard's lifetime.
pub struct Span<'a> {
    open: Option<SpanOpen<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let epoch = open.recorder.epoch.expect("live span implies epoch");
        let now = open.recorder.now_us(epoch);
        let mut inner = open.recorder.inner.lock().expect("trace recorder poisoned");
        inner.depth = inner.depth.saturating_sub(1);
        push_span(
            &mut inner,
            SpanRecord {
                stage: open.stage,
                start_us: open.start_us,
                dur_us: now.saturating_sub(open.start_us),
                depth: open.depth,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_all_is_consistent_with_index_and_names() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT, "stage names are unique");
    }

    #[test]
    fn nested_spans_record_depths_and_order() {
        let rec = TraceRecorder::with_enabled(true);
        {
            let _outer = rec.span(Stage::Exec);
            rec.leaf(Stage::Scan, 5);
            let _inner = rec.span(Stage::JoinBuild);
        }
        let _top = rec.span(Stage::OracleWorlds);
        drop(_top);
        let trace = rec.finish();
        assert_eq!(trace.spans().len(), 4);
        let depths: Vec<(Stage, u8)> = trace.spans().iter().map(|s| (s.stage, s.depth)).collect();
        assert!(depths.contains(&(Stage::Exec, 0)));
        assert!(depths.contains(&(Stage::Scan, 1)));
        assert!(depths.contains(&(Stage::JoinBuild, 1)));
        assert!(depths.contains(&(Stage::OracleWorlds, 0)));
        // Parents sort before their children (same start, smaller depth).
        let exec_at = trace
            .spans()
            .iter()
            .position(|s| s.stage == Stage::Exec)
            .unwrap();
        let join_at = trace
            .spans()
            .iter()
            .position(|s| s.stage == Stage::JoinBuild)
            .unwrap();
        assert!(exec_at < join_at);
    }

    #[test]
    fn top_level_sum_is_bounded_by_total() {
        let rec = TraceRecorder::with_enabled(true);
        for _ in 0..3 {
            let _span = rec.span(Stage::Exec);
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let trace = rec.finish();
        assert!(trace.top_level_us() <= trace.total_us());
        assert!(trace.total_us() > 0);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = TraceRecorder::disabled();
        {
            let _span = rec.span(Stage::Exec);
            rec.leaf(Stage::Scan, 99);
        }
        let trace = rec.finish();
        assert!(trace.is_empty());
        assert_eq!(trace.render(), "-");
    }

    #[test]
    fn traces_always_compare_equal() {
        let rec = TraceRecorder::with_enabled(true);
        let _span = rec.span(Stage::Parse);
        drop(_span);
        let a = rec.finish();
        let b = Trace::default();
        assert_eq!(a, b, "telemetry never affects value equality");
    }

    #[test]
    fn span_count_is_bounded() {
        let rec = TraceRecorder::with_enabled(true);
        for _ in 0..(MAX_SPANS + 10) {
            let _span = rec.span(Stage::Scan);
        }
        let trace = rec.finish();
        assert_eq!(trace.spans().len(), MAX_SPANS);
        assert_eq!(trace.dropped(), 10);
    }

    #[test]
    fn render_shows_nesting_markers() {
        let rec = TraceRecorder::with_enabled(true);
        {
            let _outer = rec.span(Stage::Exec);
            rec.leaf(Stage::Scan, 3);
        }
        let rendered = rec.finish().render();
        assert!(rendered.starts_with("exec:"), "rendered: {rendered}");
        assert!(rendered.contains(">scan:3"), "rendered: {rendered}");
    }
}
