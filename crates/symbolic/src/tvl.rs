//! Kleene's strong three-valued logic.
//!
//! The truth values are ordered `False < Unknown < True`, which makes Kleene
//! conjunction the minimum and disjunction the maximum — the same trick SQL's
//! `WHERE` evaluation uses. Negation swaps the poles and fixes `Unknown`.

use std::fmt;

/// A truth value of Kleene's strong three-valued logic.
///
/// The derived `Ord` realises the truth ordering `False < Unknown < True`,
/// so [`Truth::and`] is `min` and [`Truth::or`] is `max`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Truth {
    /// Definitely false in every possible world under the active profile.
    False,
    /// Cannot be resolved without knowing the nulls.
    Unknown,
    /// Definitely true in every possible world under the active profile.
    True,
}

impl Truth {
    /// Kleene conjunction (the minimum in the truth ordering).
    pub fn and(self, other: Truth) -> Truth {
        self.min(other)
    }

    /// Kleene disjunction (the maximum in the truth ordering).
    pub fn or(self, other: Truth) -> Truth {
        self.max(other)
    }

    /// Kleene negation: swaps `True` and `False`, fixes `Unknown`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
            Truth::True => Truth::False,
        }
    }

    /// Embeds a classical boolean.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Returns `true` iff the value is [`Truth::True`].
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// Returns `true` iff the value is [`Truth::False`].
    pub fn is_false(self) -> bool {
        self == Truth::False
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Truth::False => "false",
            Truth::Unknown => "unknown",
            Truth::True => "true",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::Truth::{self, False, True, Unknown};

    const ALL: [Truth; 3] = [False, Unknown, True];

    #[test]
    fn kleene_truth_tables() {
        // Conjunction/disjunction are min/max in the truth ordering.
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
        for a in ALL {
            assert_eq!(a.and(True), a);
            assert_eq!(a.or(False), a);
            assert_eq!(a.and(False), False);
            assert_eq!(a.or(True), True);
        }
    }

    #[test]
    fn negation_is_an_involution_fixing_unknown() {
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
        for a in ALL {
            assert_eq!(a.not().not(), a);
        }
    }

    #[test]
    fn de_morgan_holds() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn boolean_embedding_and_display() {
        assert_eq!(Truth::from_bool(true), True);
        assert_eq!(Truth::from_bool(false), False);
        assert!(True.is_true() && !True.is_false());
        assert!(False.is_false() && !False.is_true());
        assert!(!Unknown.is_true() && !Unknown.is_false());
        assert_eq!(format!("{False} {Unknown} {True}"), "false unknown true");
    }
}
