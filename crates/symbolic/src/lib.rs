//! # nev-symbolic — PTIME symbolic approximation of certain answers
//!
//! The paper's Figure 1 leaves a block of (semantics, fragment) cells where
//! naïve evaluation is **not** guaranteed; the engine's only exact recourse
//! there is enumerating possible worlds, which is exponential in the null
//! count. This crate provides the polynomial-time alternatives that let the
//! dispatcher retire that fallback for most workloads:
//!
//! * [`kleene`] — a Kleene strong 3-valued evaluator over naïve tables.
//!   Nulls compare *unknown*; unknown-as-false at the root yields a
//!   **sound under-approximation** of certain answers for full first-order
//!   logic, under every semantics, in PTIME (same cost class as one naïve
//!   pass). How aggressively atoms and quantifiers may be closed off is
//!   controlled by a per-semantics [`EvalProfile`].
//! * [`cond`] + [`ctable`] — c-table style local conditions: bounded DNF
//!   formulas of `=`/`≠` literals over values. Under CWA, where every
//!   possible world is `v(D)` for a valuation `v` of the nulls, a tuple is a
//!   certain answer iff its condition is *valid*. When the surviving
//!   conditions stay equality-conjunctive the validity check is exact, giving
//!   an **exact PTIME mode** for a useful slice of CWA queries.
//!
//! The sandwich `under ⊆ certain ⊆ naive` closes the loop: whenever the
//! 3-valued under-approximation coincides with the naïve over-approximation,
//! the certain answers are known **exactly with zero worlds enumerated**.
//! The dispatcher that exploits this lives in `nev-core::engine`; this crate
//! is deliberately independent of it (it only needs `nev-incomplete`,
//! `nev-logic`, and `nev-exec`'s interning) so the engine can depend on us.
//!
//! ## Module DAG
//!
//! ```text
//!   tvl ──► kleene ◄── profile
//!   cond ──► ctable
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cond;
pub mod ctable;
pub mod kleene;
pub mod profile;
pub mod tvl;

pub use cond::Cond;
pub use ctable::{cwa_certain_answers, CwaReport};
pub use kleene::{complete_candidates, truth_of_sentence, under_approximation, KleeneEvaluator};
pub use profile::{AtomClosure, EvalProfile};
pub use tvl::Truth;
