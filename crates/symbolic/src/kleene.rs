//! A Kleene 3-valued evaluator over naïve tables.
//!
//! Evaluates full first-order formulas directly on the incomplete instance,
//! with nulls comparing *unknown* and a per-semantics [`EvalProfile`]
//! controlling how aggressively `Unknown` may be strengthened to a definite
//! verdict (see [`crate::profile`] for the soundness arguments). The central
//! guarantee, for every semantics whose profile is sound:
//!
//! * if the evaluator returns [`Truth::True`] for `φ[ā]`, then `ā` is a
//!   certain answer (every possible world satisfies `φ[v(ā)]`);
//! * if it returns [`Truth::False`], then no possible world does.
//!
//! Taking *unknown-as-false at the root* therefore yields a sound PTIME
//! **under-approximation** of certain answers: [`under_approximation`]
//! returns only tuples the oracle would also return. Cost is the same class
//! as one naïve pass (`|adom|^quantifier-depth`), not exponential in nulls.
//!
//! Values are interned into dense `u32` codes via `nev-exec`'s
//! [`Dictionary`] (extended with query-only constants, which must be
//! comparable but are neither quantifier-domain elements nor answer
//! candidates), so the inner loops compare integers, not heap values.
//!
//! Answer candidates range over `constants(D)^k`: a constant of `D` lies in
//! every world's active domain under all six semantics, while a constant
//! mentioned only by the query (or a null) can never be a certain answer
//! under the active-domain semantics the oracle implements.

use std::collections::{BTreeSet, HashMap, HashSet};

use nev_exec::Dictionary;
use nev_incomplete::{Constant, Instance, Tuple, Value};
use nev_logic::{Formula, Query, Term};

use crate::profile::{AtomClosure, EvalProfile};
use crate::tvl::Truth;

/// A variable assignment over interned codes.
type Assignment = HashMap<String, u32>;

/// One stored relation, row-major over codes, with a hash set for exact
/// membership tests (the atom-truth rule) alongside the row list the
/// unification rules iterate.
struct StoredRelation {
    rows: Vec<Vec<u32>>,
    set: HashSet<Vec<u32>>,
}

/// A 3-valued evaluator bound to one instance and one soundness profile.
pub struct KleeneEvaluator {
    profile: EvalProfile,
    dict: Dictionary,
    relations: HashMap<String, StoredRelation>,
    /// Codes of `adom(D)` — the quantifier domain (extras excluded).
    domain: Vec<u32>,
    /// Codes of `constants(D)` — the answer-candidate domain.
    candidates: Vec<u32>,
}

impl KleeneEvaluator {
    /// Builds an evaluator for `d` under `profile`. `extra_constants` are
    /// constants the formula mentions that may be absent from `d` (pass
    /// [`Formula::constants`]); they are interned so terms can be compared,
    /// but never quantified over or proposed as answers.
    pub fn new(d: &Instance, extra_constants: &BTreeSet<Constant>, profile: EvalProfile) -> Self {
        let dict = Dictionary::from_instance_with_extras(d, extra_constants.iter());
        let code_of = |v: &Value| dict.code(v).expect("every instance value is interned");
        let relations = d
            .relations()
            .map(|r| {
                let cols: Vec<Vec<u32>> = (0..r.arity())
                    .map(|i| r.column(i).map(code_of).collect())
                    .collect();
                let rows: Vec<Vec<u32>> = (0..r.len())
                    .map(|row| cols.iter().map(|col| col[row]).collect())
                    .collect();
                let set = rows.iter().cloned().collect();
                (r.name().to_string(), StoredRelation { rows, set })
            })
            .collect();
        let domain = d.adom_ordered().iter().map(code_of).collect();
        let candidates = d
            .constants()
            .into_iter()
            .map(|c| code_of(&Value::Const(c)))
            .collect();
        KleeneEvaluator {
            profile,
            dict,
            relations,
            domain,
            candidates,
        }
    }

    /// The profile the evaluator runs under.
    pub fn profile(&self) -> EvalProfile {
        self.profile
    }

    /// The interning dictionary (instance values plus query-only constants).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Evaluates a sentence under the empty assignment.
    pub fn sentence_truth(&self, formula: &Formula) -> Truth {
        self.truth(formula, &mut Assignment::new())
    }

    /// The sound under-approximation of certain answers: all candidate
    /// tuples over `constants(D)^k` whose instantiated formula evaluates to
    /// a definite [`Truth::True`]. For Boolean queries the result uses the
    /// `{()}`/`{}` encoding shared with the rest of the engine.
    pub fn under_approximation(&self, query: &Query) -> BTreeSet<Tuple> {
        let mut answers = BTreeSet::new();
        self.collect(
            query.formula(),
            query.answer_variables(),
            &mut Assignment::new(),
            &mut Vec::new(),
            &mut answers,
        );
        answers
    }

    fn collect(
        &self,
        formula: &Formula,
        vars: &[String],
        assignment: &mut Assignment,
        picked: &mut Vec<u32>,
        answers: &mut BTreeSet<Tuple>,
    ) {
        let Some((var, rest)) = vars.split_first() else {
            if self.truth(formula, assignment).is_true() {
                answers.insert(picked.iter().map(|&c| self.dict.value(c).clone()).collect());
            }
            return;
        };
        for &code in &self.candidates {
            let previous = assignment.insert(var.clone(), code);
            picked.push(code);
            self.collect(formula, rest, assignment, picked, answers);
            picked.pop();
            restore(assignment, var, previous);
        }
    }

    /// Kleene truth of a formula under an assignment of interned codes.
    fn truth(&self, formula: &Formula, assignment: &mut Assignment) -> Truth {
        match formula {
            Formula::True => Truth::True,
            Formula::False => Truth::False,
            Formula::Atom { relation, terms } => self.atom_truth(relation, terms, assignment),
            Formula::Eq(left, right) => self.eq_truth(left, right, assignment),
            Formula::Not(inner) => self.truth(inner, assignment).not(),
            Formula::And(parts) => {
                let mut acc = Truth::True;
                for part in parts {
                    acc = acc.and(self.truth(part, assignment));
                    if acc.is_false() {
                        break;
                    }
                }
                acc
            }
            Formula::Or(parts) => {
                let mut acc = Truth::False;
                for part in parts {
                    acc = acc.or(self.truth(part, assignment));
                    if acc.is_true() {
                        break;
                    }
                }
                acc
            }
            Formula::Implies(premise, conclusion) => self
                .truth(premise, assignment)
                .not()
                .or(self.truth(conclusion, assignment)),
            Formula::Exists(vars, body) => self.quantify(vars, body, assignment, true),
            Formula::Forall(vars, body) => self.quantify(vars, body, assignment, false),
        }
    }

    fn term_code(&self, term: &Term, assignment: &Assignment) -> Option<u32> {
        match term {
            Term::Var(v) => assignment.get(v).copied(),
            Term::Const(c) => self.dict.code(&Value::Const(c.clone())),
        }
    }

    fn eq_truth(&self, left: &Term, right: &Term, assignment: &Assignment) -> Truth {
        let (Some(l), Some(r)) = (
            self.term_code(left, assignment),
            self.term_code(right, assignment),
        ) else {
            // Unbound variables only arise from ill-formed input; stay safe.
            return Truth::Unknown;
        };
        if l == r {
            // Syntactic identity survives every valuation, including each
            // single-valuation branch of a powerset union.
            Truth::True
        } else if self.dict.is_const(l) && self.dict.is_const(r) {
            Truth::False
        } else {
            Truth::Unknown
        }
    }

    fn atom_truth(&self, relation: &str, terms: &[Term], assignment: &Assignment) -> Truth {
        let Some(codes) = terms
            .iter()
            .map(|t| self.term_code(t, assignment))
            .collect::<Option<Vec<u32>>>()
        else {
            return Truth::Unknown;
        };
        let Some(stored) = self.relations.get(relation) else {
            return match self.profile.atom_closure {
                // An open-world superset may populate a relation the
                // instance never mentions.
                AtomClosure::Open => Truth::Unknown,
                AtomClosure::Unify | AtomClosure::UnifyRenamed => Truth::False,
            };
        };
        if stored.set.contains(&codes) {
            // The literal tuple maps into every world's image of D.
            return Truth::True;
        }
        match self.profile.atom_closure {
            AtomClosure::Open => Truth::Unknown,
            AtomClosure::Unify => {
                if stored
                    .rows
                    .iter()
                    .any(|row| self.unifies(&codes, row, false))
                {
                    Truth::Unknown
                } else {
                    Truth::False
                }
            }
            AtomClosure::UnifyRenamed => {
                if stored
                    .rows
                    .iter()
                    .any(|row| self.unifies(&codes, row, true))
                {
                    Truth::Unknown
                } else {
                    Truth::False
                }
            }
        }
    }

    /// Whether a single valuation can map the stored row onto the query
    /// tuple. With `rename_stored` the stored row's nulls live in a
    /// namespace disjoint from the query tuple's nulls (powerset unions may
    /// resolve the same stored null differently across branches), though
    /// each side must still be internally consistent.
    fn unifies(&self, query: &[u32], stored: &[u32], rename_stored: bool) -> bool {
        if query.len() != stored.len() {
            return false;
        }
        let mut uf = Unifier::default();
        for (&q, &s) in query.iter().zip(stored) {
            let ok = match (self.dict.is_const(q), self.dict.is_const(s)) {
                (true, true) => q == s,
                (true, false) => {
                    let node = uf.node(s, rename_stored);
                    uf.bind(node, q)
                }
                (false, true) => {
                    let node = uf.node(q, false);
                    uf.bind(node, s)
                }
                (false, false) => {
                    let a = uf.node(q, false);
                    let b = uf.node(s, rename_stored);
                    uf.union(a, b)
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }

    fn quantify(
        &self,
        vars: &[String],
        body: &Formula,
        assignment: &mut Assignment,
        exists: bool,
    ) -> Truth {
        let Some((var, rest)) = vars.split_first() else {
            return self.truth(body, assignment);
        };
        let mut acc = if exists { Truth::False } else { Truth::True };
        for &code in &self.domain {
            let previous = assignment.insert(var.clone(), code);
            let t = self.quantify(rest, body, assignment, exists);
            restore(assignment, var, previous);
            acc = if exists { acc.or(t) } else { acc.and(t) };
            if (exists && acc.is_true()) || (!exists && acc.is_false()) {
                // Witnesses and counter-witnesses from adom(D) are
                // definitive under every profile.
                break;
            }
        }
        if !self.profile.closed_domain {
            // Without domain closure, exhausting adom(D) proves nothing:
            // worlds may hold elements outside the adom image.
            if exists && acc.is_false() {
                acc = Truth::Unknown;
            }
            if !exists && acc.is_true() {
                acc = Truth::Unknown;
            }
        }
        acc
    }
}

fn restore(assignment: &mut Assignment, var: &str, previous: Option<u32>) {
    match previous {
        Some(p) => {
            assignment.insert(var.to_string(), p);
        }
        None => {
            assignment.remove(var);
        }
    }
}

/// A tiny union-find over null occurrences, where a class may be bound to at
/// most one constant. Keys are `(code, renamed)` so a stored null can be
/// kept apart from an identically-coded query null.
#[derive(Default)]
struct Unifier {
    keys: Vec<(u32, bool)>,
    parent: Vec<usize>,
    bound: Vec<Option<u32>>,
}

impl Unifier {
    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn node(&mut self, code: u32, renamed: bool) -> usize {
        match self.keys.iter().position(|&k| k == (code, renamed)) {
            Some(i) => self.find(i),
            None => {
                self.keys.push((code, renamed));
                self.parent.push(self.keys.len() - 1);
                self.bound.push(None);
                self.keys.len() - 1
            }
        }
    }

    fn bind(&mut self, node: usize, constant: u32) -> bool {
        let root = self.find(node);
        match self.bound[root] {
            None => {
                self.bound[root] = Some(constant);
                true
            }
            Some(existing) => existing == constant,
        }
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return true;
        }
        if let (Some(x), Some(y)) = (self.bound[ra], self.bound[rb]) {
            if x != y {
                return false;
            }
        }
        self.bound[ra] = self.bound[ra].or(self.bound[rb]);
        self.parent[rb] = ra;
        true
    }
}

/// Convenience wrapper: the sound certain-answer under-approximation of a
/// query on an instance under a profile.
pub fn under_approximation(d: &Instance, query: &Query, profile: EvalProfile) -> BTreeSet<Tuple> {
    KleeneEvaluator::new(d, &query.formula().constants(), profile).under_approximation(query)
}

/// Convenience wrapper: the Kleene truth of a sentence on an instance under
/// a profile.
pub fn truth_of_sentence(d: &Instance, formula: &Formula, profile: EvalProfile) -> Truth {
    KleeneEvaluator::new(d, &formula.constants(), profile).sentence_truth(formula)
}

/// The tuples of a naïve answer set that can possibly be certain: certain
/// answers never mention nulls (renaming a null yields another world where the
/// tuple is absent), so incomplete tuples are discarded up front.
///
/// This is the sandwich's candidate pre-filter: comparing the Kleene
/// under-approximation `U` against `complete_candidates(naive)` instead of the
/// raw naïve set lets `U ⊆ certain ⊆ complete(naive)` pin the certain answers
/// even when naïve evaluation overshoots *only* by null-carrying tuples.
/// Static null-flow analysis (`nev-analyze`) makes the filter free: when every
/// answer column is proven null-safe, the naïve set is already all-complete.
pub fn complete_candidates(answers: &BTreeSet<Tuple>) -> BTreeSet<Tuple> {
    answers
        .iter()
        .filter(|t| t.is_complete())
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    use nev_logic::{parse_formula, parse_query};

    /// The paper's d₀: `{D(⊥₁,⊥₂), D(⊥₂,⊥₁)}`.
    fn d0() -> Instance {
        inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] }
    }

    fn truth(d: &Instance, formula: &str, profile: EvalProfile) -> Truth {
        truth_of_sentence(d, &parse_formula(formula).expect("parses"), profile)
    }

    #[test]
    fn closed_domain_proves_the_intro_sentence_on_d0() {
        // ∀u ∃v D(u,v) holds in every CWA/WCWA world of d0: the adom image
        // is exhaustive and both adom elements have successors.
        let q = "forall u . exists v . D(u, v)";
        assert_eq!(truth(&d0(), q, EvalProfile::closed()), Truth::True);
        assert_eq!(truth(&d0(), q, EvalProfile::weak_closed()), Truth::True);
        // Under OWA a world may add fresh elements without successors, so
        // the same exhaustion proves nothing.
        assert_eq!(truth(&d0(), q, EvalProfile::open_world()), Truth::Unknown);
        // And the powerset profile must not claim domain closure either.
        assert_eq!(truth(&d0(), q, EvalProfile::powerset()), Truth::Unknown);
    }

    #[test]
    fn negative_atoms_stay_unknown_when_unification_succeeds() {
        // ∃u ¬D(u,u): under CWA, D(⊥₁,⊥₁) unifies with the stored D(⊥₁,⊥₂)
        // (map both nulls to one value), so ¬D(u,u) is unknown everywhere.
        let q = "exists u . !D(u, u)";
        assert_eq!(truth(&d0(), q, EvalProfile::closed()), Truth::Unknown);
        assert_eq!(truth(&d0(), q, EvalProfile::open_world()), Truth::Unknown);
    }

    #[test]
    fn unification_failure_makes_atoms_definitely_false_under_cwa() {
        // D = {R(1, ⊥)}: R(2, 2) needs the constant 1 to become 2 — no
        // valuation does that, so under CWA the atom is False and its
        // negation certainly true; OWA still cannot close the relation.
        let d = inst! { "R" => [[c(1), x(1)]] };
        let q = "!R(2, 2)";
        assert_eq!(truth(&d, q, EvalProfile::closed()), Truth::True);
        assert_eq!(truth(&d, q, EvalProfile::powerset()), Truth::True);
        assert_eq!(truth(&d, q, EvalProfile::open_world()), Truth::Unknown);
        // R(1, 5) unifies (⊥ ↦ 5): unknown, not false, under CWA.
        assert_eq!(truth(&d, "!R(1, 5)", EvalProfile::closed()), Truth::Unknown);
        // A relation the instance never mentions is empty in every closed
        // world but arbitrary in an open one.
        assert_eq!(truth(&d, "!T(1)", EvalProfile::closed()), Truth::True);
        assert_eq!(
            truth(&d, "!T(1)", EvalProfile::open_world()),
            Truth::Unknown
        );
    }

    #[test]
    fn repeated_nulls_constrain_single_valuation_unification_only() {
        // D = {R(⊥₁,⊥₁)}: R(1,2) requires ⊥₁ ↦ 1 and ⊥₁ ↦ 2 at once — under
        // CWA that fails, so R(1,2) is definitely false. Under the powerset
        // semantics the union v₁(D) ∪ v₂(D) still only produces tuples of
        // the form (a,a) — the *renamed* unifier keeps each stored tuple's
        // occurrences tied — so it is false there too.
        let d = inst! { "R" => [[x(1), x(1)]] };
        assert_eq!(truth(&d, "R(1, 2)", EvalProfile::closed()), Truth::False);
        assert_eq!(truth(&d, "R(1, 2)", EvalProfile::powerset()), Truth::False);
        assert_eq!(
            truth(&d, "R(1, 2)", EvalProfile::open_world()),
            Truth::Unknown
        );
        // Distinct stored nulls, by contrast, may diverge.
        let d2 = inst! { "R" => [[x(1), x(2)]] };
        assert_eq!(truth(&d2, "R(1, 2)", EvalProfile::closed()), Truth::Unknown);
    }

    #[test]
    fn open_domain_blocks_exists_exhaustion() {
        // Every adom candidate makes R(1, u) false, which settles ∃u R(1,u)
        // only when quantifiers cannot reach elements outside the adom
        // image — i.e. under a closed domain, not under the powerset one.
        let d = inst! { "R" => [[c(2), x(2)]] };
        assert_eq!(
            truth(&d, "exists u . R(1, u)", EvalProfile::closed()),
            Truth::False
        );
        assert_eq!(
            truth(&d, "exists u . R(1, u)", EvalProfile::powerset()),
            Truth::Unknown,
            "powerset keeps an open domain, so ∃-exhaustion is not definitive"
        );
    }

    #[test]
    fn eq_rules_are_profile_independent() {
        let d = inst! { "R" => [[x(1), x(2)]] };
        for profile in [
            EvalProfile::open_world(),
            EvalProfile::weak_closed(),
            EvalProfile::closed(),
            EvalProfile::powerset(),
        ] {
            // Identical values: true; distinct constants: false; a null
            // against anything else: unknown.
            assert_eq!(truth(&d, "exists u . u = u", profile), Truth::True);
            assert_eq!(truth(&d, "1 = 1", profile), Truth::True);
            assert_eq!(truth(&d, "1 = 2", profile), Truth::False);
        }
        // A null against a constant is unknown even under CWA.
        assert_eq!(
            truth(&d, "forall u v . u = v", EvalProfile::closed()),
            Truth::Unknown
        );
    }

    #[test]
    fn under_approximation_returns_only_constant_tuples() {
        // D = {R(1,2), R(2,⊥)}: x with some successor. 1 certainly
        // qualifies; 2's successor is a null, which still *exists* in every
        // world, so 2 qualifies too (the witness ⊥ is in adom(D)).
        let d = inst! { "R" => [[c(1), c(2)], [c(2), x(1)]] };
        let q = parse_query("Q(u) :- exists v . R(u, v)").expect("parses");
        let under = under_approximation(&d, &q, EvalProfile::open_world());
        let expected: BTreeSet<Tuple> = [
            Tuple::new(vec![Value::int(1)]),
            Tuple::new(vec![Value::int(2)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(under, expected);
        for t in &under {
            assert!(t.is_complete());
        }
    }

    #[test]
    fn boolean_under_approximation_uses_the_unit_encoding() {
        let d = d0();
        let q = parse_query("forall u . exists v . D(u, v)").expect("parses");
        let under = under_approximation(&d, &q, EvalProfile::closed());
        assert_eq!(under.len(), 1, "certainly true ⇒ {{()}}");
        assert!(under.iter().all(|t| t.arity() == 0));
        let open = under_approximation(&d, &q, EvalProfile::open_world());
        assert!(open.is_empty(), "unknown at the root ⇒ excluded");
    }

    #[test]
    fn query_only_constants_are_comparable_but_never_answers() {
        let d = inst! { "R" => [[c(1), x(1)]] };
        // 7 is not in adom(D); the formula must still evaluate.
        assert_eq!(truth(&d, "R(7, 7)", EvalProfile::closed()), Truth::False);
        assert_eq!(
            truth(&d, "exists u . R(1, u) & u = 7", EvalProfile::closed()),
            Truth::Unknown,
            "⊥ ↦ 7 is possible but not certain"
        );
        let q = parse_query("Q(u) :- u = 7").expect("parses");
        assert!(
            under_approximation(&d, &q, EvalProfile::closed()).is_empty(),
            "query-only constants are not certain answers"
        );
    }
}
