//! Local conditions in the c-table style: bounded DNF formulas of `=` / `≠`
//! literals over values.
//!
//! A [`Cond`] describes, for one candidate answer, the set of null
//! valuations under which the query holds. Literals are eagerly simplified
//! at construction — `v = v` is `True`, `c = c'` for distinct constants is
//! `False`, and dually for `≠` — so every literal that survives involves at
//! least one null and is neither valid nor unsatisfiable on its own.
//! Consequently a condition is *valid* (holds under every valuation) iff it
//! simplified all the way to [`Cond::True`]: the valuation sending every
//! null to a fresh pairwise-distinct constant falsifies every surviving
//! equality literal simultaneously, so any disjunct still carrying a
//! literal with an `=` can be escaped. That argument needs the surviving
//! literals to be equalities — a surviving `≠` literal is *satisfied* by the
//! fresh valuation — which is why [`Cond::eq_only`] gates the exact mode in
//! [`crate::ctable`].
//!
//! Sizes are capped ([`MAX_DISJUNCTS`], [`MAX_LITERALS`]); an operation that
//! would exceed a cap collapses to the sticky [`Cond::Overflow`] marker,
//! which downstream consumers treat as "inexact, fall back".

use std::collections::BTreeSet;
use std::fmt;

use nev_incomplete::Value;

/// Maximum number of disjuncts a condition may hold before overflowing.
pub const MAX_DISJUNCTS: usize = 64;

/// Maximum number of literals per conjunct before overflowing.
pub const MAX_LITERALS: usize = 24;

/// One simplified literal. Operand pairs are stored in sorted order so that
/// structurally equal literals compare equal; at least one operand is a null.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Lit {
    /// The two values must coincide under the valuation.
    Eq(Value, Value),
    /// The two values must differ under the valuation.
    Neq(Value, Value),
}

impl Lit {
    fn negated(&self) -> Lit {
        match self {
            Lit::Eq(a, b) => Lit::Neq(a.clone(), b.clone()),
            Lit::Neq(a, b) => Lit::Eq(a.clone(), b.clone()),
        }
    }

    /// Returns `true` iff the literal is an inequality.
    pub fn is_neq(&self) -> bool {
        matches!(self, Lit::Neq(..))
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Eq(a, b) => write!(f, "{a}={b}"),
            Lit::Neq(a, b) => write!(f, "{a}≠{b}"),
        }
    }
}

/// A conjunction of literals, canonicalised as a sorted set.
pub type Conj = BTreeSet<Lit>;

/// A bounded DNF condition over null valuations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// Holds under every valuation.
    True,
    /// Holds under no valuation.
    False,
    /// Holds under the valuations satisfying at least one disjunct. The set
    /// is non-empty and no disjunct is empty (those normalise to `True`).
    Dnf(BTreeSet<Conj>),
    /// A size cap was exceeded; the condition is no longer tracked exactly.
    Overflow,
}

fn sorted_pair(a: Value, b: Value) -> (Value, Value) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Cond {
    /// The condition `a = b`, simplified.
    pub fn eq(a: Value, b: Value) -> Cond {
        if a == b {
            return Cond::True;
        }
        if a.is_const() && b.is_const() {
            return Cond::False;
        }
        let (a, b) = sorted_pair(a, b);
        Cond::single(Lit::Eq(a, b))
    }

    /// The condition `a ≠ b`, simplified.
    pub fn neq(a: Value, b: Value) -> Cond {
        if a == b {
            return Cond::False;
        }
        if a.is_const() && b.is_const() {
            return Cond::True;
        }
        let (a, b) = sorted_pair(a, b);
        Cond::single(Lit::Neq(a, b))
    }

    fn single(lit: Lit) -> Cond {
        let mut conj = Conj::new();
        conj.insert(lit);
        let mut disjuncts = BTreeSet::new();
        disjuncts.insert(conj);
        Cond::Dnf(disjuncts)
    }

    fn from_disjuncts(disjuncts: BTreeSet<Conj>) -> Cond {
        if disjuncts.is_empty() {
            Cond::False
        } else if disjuncts.iter().any(Conj::is_empty) {
            // An empty conjunct is `true`, which absorbs the disjunction.
            Cond::True
        } else if disjuncts.len() > MAX_DISJUNCTS {
            Cond::Overflow
        } else {
            Cond::Dnf(disjuncts)
        }
    }

    /// Disjunction.
    pub fn or(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::Overflow, _) | (_, Cond::Overflow) => Cond::Overflow,
            (Cond::True, _) | (_, Cond::True) => Cond::True,
            (Cond::False, c) | (c, Cond::False) => c,
            (Cond::Dnf(a), Cond::Dnf(b)) => {
                let merged: BTreeSet<Conj> = a.into_iter().chain(b).collect();
                Cond::from_disjuncts(merged)
            }
        }
    }

    /// Conjunction (DNF product, capped).
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::Overflow, _) | (_, Cond::Overflow) => Cond::Overflow,
            (Cond::False, _) | (_, Cond::False) => Cond::False,
            (Cond::True, c) | (c, Cond::True) => c,
            (Cond::Dnf(a), Cond::Dnf(b)) => {
                let mut product = BTreeSet::new();
                for left in &a {
                    for right in &b {
                        let merged: Conj = left.iter().chain(right.iter()).cloned().collect();
                        if merged.len() > MAX_LITERALS {
                            return Cond::Overflow;
                        }
                        if contradictory(&merged) {
                            continue;
                        }
                        product.insert(merged);
                        if product.len() > MAX_DISJUNCTS {
                            return Cond::Overflow;
                        }
                    }
                }
                Cond::from_disjuncts(product)
            }
        }
    }

    /// Exact negation by De Morgan: the negation of a DNF is the product of
    /// the negated disjuncts, each a disjunction of negated literals.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Cond {
        match self {
            Cond::Overflow => Cond::Overflow,
            Cond::True => Cond::False,
            Cond::False => Cond::True,
            Cond::Dnf(disjuncts) => {
                let mut acc = Cond::True;
                for conj in disjuncts {
                    let negated = conj
                        .iter()
                        .map(|lit| Cond::single(lit.negated()))
                        .fold(Cond::False, Cond::or);
                    acc = acc.and(negated);
                    if matches!(acc, Cond::False | Cond::Overflow) {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// Returns `true` iff the condition holds under every valuation. Thanks
    /// to eager literal simplification this is syntactic (see module docs);
    /// the verdict is sound unconditionally and complete when
    /// [`Cond::eq_only`] holds.
    pub fn is_true(&self) -> bool {
        matches!(self, Cond::True)
    }

    /// Returns `true` iff the condition overflowed a size cap.
    pub fn is_overflow(&self) -> bool {
        matches!(self, Cond::Overflow)
    }

    /// Returns `true` iff no surviving literal is an inequality — the regime
    /// where "not syntactically `True`" implies "not valid", making the
    /// certain-answer verdict exact.
    pub fn eq_only(&self) -> bool {
        match self {
            Cond::True | Cond::False => true,
            Cond::Overflow => false,
            Cond::Dnf(disjuncts) => !disjuncts.iter().any(|conj| conj.iter().any(Lit::is_neq)),
        }
    }
}

/// A conjunct containing both a literal and its negation is unsatisfiable.
fn contradictory(conj: &Conj) -> bool {
    conj.iter().any(|lit| conj.contains(&lit.negated()))
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => f.write_str("⊤"),
            Cond::False => f.write_str("⊥"),
            Cond::Overflow => f.write_str("overflow"),
            Cond::Dnf(disjuncts) => {
                let rendered: Vec<String> = disjuncts
                    .iter()
                    .map(|conj| {
                        let lits: Vec<String> = conj.iter().map(Lit::to_string).collect();
                        lits.join("∧")
                    })
                    .collect();
                f.write_str(&rendered.join(" ∨ "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null(i: u32) -> Value {
        Value::null(i)
    }

    #[test]
    fn ground_literals_simplify_at_construction() {
        assert_eq!(Cond::eq(Value::int(1), Value::int(1)), Cond::True);
        assert_eq!(Cond::eq(Value::int(1), Value::int(2)), Cond::False);
        assert_eq!(Cond::neq(Value::int(1), Value::int(2)), Cond::True);
        assert_eq!(Cond::neq(null(1), null(1)), Cond::False);
        assert_eq!(Cond::eq(null(1), null(1)), Cond::True);
        // Null-involving literals survive.
        assert!(matches!(Cond::eq(null(1), Value::int(3)), Cond::Dnf(_)));
    }

    #[test]
    fn literal_operands_are_stored_sorted() {
        assert_eq!(
            Cond::eq(Value::int(3), null(1)),
            Cond::eq(null(1), Value::int(3))
        );
        assert_eq!(Cond::neq(null(2), null(1)), Cond::neq(null(1), null(2)));
    }

    #[test]
    fn boolean_identities() {
        let lit = Cond::eq(null(1), Value::int(3));
        assert_eq!(lit.clone().or(Cond::True), Cond::True);
        assert_eq!(lit.clone().or(Cond::False), lit);
        assert_eq!(lit.clone().and(Cond::True), lit);
        assert_eq!(lit.clone().and(Cond::False), Cond::False);
        assert_eq!(lit.clone().or(lit.clone()), lit);
        assert_eq!(lit.clone().and(lit.clone()), lit);
    }

    #[test]
    fn negation_is_exact_de_morgan() {
        let a = Cond::eq(null(1), Value::int(3));
        let b = Cond::eq(null(2), Value::int(4));
        // ¬(a ∨ b) = ¬a ∧ ¬b.
        assert_eq!(
            a.clone().or(b.clone()).not(),
            a.clone().not().and(b.clone().not())
        );
        // Double negation restores single literals.
        assert_eq!(a.clone().not().not(), a);
        assert_eq!(Cond::True.not(), Cond::False);
        assert_eq!(Cond::False.not(), Cond::True);
    }

    #[test]
    fn contradictions_drop_out_of_products() {
        let a = Cond::eq(null(1), Value::int(3));
        // a ∧ ¬a = false.
        assert_eq!(a.clone().and(a.clone().not()), Cond::False);
        // a ∨ ¬a is NOT simplified to true (DNF has no resolution rule) but
        // it is still recognised as not syntactically valid — the sound
        // direction of the validity check.
        let excluded_middle = a.clone().or(a.not());
        assert!(!excluded_middle.is_true());
        assert!(!excluded_middle.eq_only(), "carries a ≠ literal");
    }

    #[test]
    fn eq_only_tracks_surviving_inequalities() {
        let eq = Cond::eq(null(1), Value::int(3));
        let neq = Cond::neq(null(1), Value::int(3));
        assert!(eq.eq_only());
        assert!(!neq.eq_only());
        assert!(!eq.clone().or(neq.clone()).eq_only());
        assert!(Cond::True.eq_only() && Cond::False.eq_only());
        assert!(!Cond::Overflow.eq_only());
        // Ground inequalities simplify away and leave the condition eq-only.
        let ground = Cond::neq(Value::int(1), Value::int(2)).and(eq.clone());
        assert_eq!(ground, eq);
        assert!(ground.eq_only());
    }

    #[test]
    fn caps_collapse_to_overflow_and_overflow_is_sticky() {
        // OR together more distinct literals than MAX_DISJUNCTS allows.
        let mut c = Cond::False;
        for i in 0..(MAX_DISJUNCTS as u32 + 1) {
            c = c.or(Cond::eq(null(i), Value::int(7)));
        }
        assert!(c.is_overflow());
        assert_eq!(c.clone().and(Cond::False), Cond::Overflow);
        assert_eq!(c.clone().or(Cond::True), Cond::Overflow);
        assert_eq!(c.not(), Cond::Overflow);
    }

    #[test]
    fn display_renders_compactly() {
        assert_eq!(Cond::True.to_string(), "⊤");
        assert_eq!(Cond::False.to_string(), "⊥");
        let c = Cond::eq(null(1), Value::int(3));
        assert!(c.to_string().contains('='));
    }
}
