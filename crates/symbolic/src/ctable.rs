//! Exact symbolic evaluation under CWA via conditional tables.
//!
//! Under the closed-world assumption every possible world is `v(D)` for
//! exactly one valuation `v` of the nulls, and `adom(v(D)) = v(adom(D))`.
//! Both facts make the semantics fully *compositional in the valuation*:
//!
//! * an atom `R(t̄)` holds in `v(D)` iff `v(t̄)` equals `v(s̄)` for some
//!   stored tuple `s̄` — a disjunction over stored tuples of positionwise
//!   equality conditions;
//! * quantifiers range exactly over `v(adom(D))`, so `∃x φ` is the
//!   disjunction (and `∀x φ` the conjunction) of `φ[x ↦ a]` over
//!   `a ∈ adom(D)` — including the nulls;
//! * negation is exact condition complement.
//!
//! So for each candidate answer `ā` we can compile `φ[ā]` into a single
//! [`Cond`] describing *which valuations* satisfy it, and `ā` is a certain
//! answer iff that condition is valid. Validity is checked syntactically
//! (`Cond::is_true`), which is sound unconditionally and complete exactly
//! when no surviving condition carries a `≠` literal and no size cap
//! overflowed — the [`CwaReport::exact`] flag. When `exact` is `true` the
//! returned answers are *the* certain answers under CWA, computed in
//! polynomial time with zero worlds enumerated.

use std::collections::BTreeSet;

use nev_incomplete::{Instance, Tuple, Value};
use nev_logic::{Formula, Query, Term};

use crate::cond::Cond;

/// The outcome of a conditional-table evaluation under CWA.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CwaReport {
    /// Candidate tuples whose condition is syntactically valid. Always a
    /// sound under-approximation of the CWA certain answers; equal to them
    /// when [`CwaReport::exact`] holds.
    pub answers: BTreeSet<Tuple>,
    /// Whether the verdict is exact: no condition overflowed a size cap and
    /// every rejecting condition was equality-only.
    pub exact: bool,
    /// Whether any condition overflowed a size cap (implies `!exact`).
    pub overflowed: bool,
}

/// A variable assignment over plain values (the condition algebra compares
/// [`Value`]s directly, so no interning is needed here).
type Assignment = std::collections::BTreeMap<String, Value>;

struct CondEvaluator<'a> {
    instance: &'a Instance,
    domain: Vec<Value>,
}

impl CondEvaluator<'_> {
    fn term_value(&self, term: &Term, assignment: &Assignment) -> Option<Value> {
        match term {
            Term::Var(v) => assignment.get(v).cloned(),
            Term::Const(c) => Some(Value::Const(c.clone())),
        }
    }

    fn cond(&self, formula: &Formula, assignment: &mut Assignment) -> Cond {
        match formula {
            Formula::True => Cond::True,
            Formula::False => Cond::False,
            Formula::Atom { relation, terms } => {
                let Some(values) = terms
                    .iter()
                    .map(|t| self.term_value(t, assignment))
                    .collect::<Option<Vec<Value>>>()
                else {
                    // Unbound variables only arise from ill-formed input;
                    // give up on exactness rather than guess.
                    return Cond::Overflow;
                };
                let Some(rel) = self.instance.relation(relation) else {
                    return Cond::False;
                };
                if values.len() != rel.arity() {
                    return Cond::False;
                }
                let mut acc = Cond::False;
                let mut columns: Vec<_> = (0..rel.arity()).map(|i| rel.column(i)).collect();
                for _ in 0..rel.len() {
                    let mut tuple_cond = Cond::True;
                    for (value, column) in values.iter().zip(columns.iter_mut()) {
                        let Some(stored) = column.next() else {
                            return Cond::Overflow;
                        };
                        tuple_cond = tuple_cond.and(Cond::eq(value.clone(), stored.clone()));
                    }
                    acc = acc.or(tuple_cond);
                    if acc.is_true() || acc.is_overflow() {
                        break;
                    }
                }
                acc
            }
            Formula::Eq(left, right) => {
                let (Some(l), Some(r)) = (
                    self.term_value(left, assignment),
                    self.term_value(right, assignment),
                ) else {
                    return Cond::Overflow;
                };
                Cond::eq(l, r)
            }
            Formula::Not(inner) => self.cond(inner, assignment).not(),
            Formula::And(parts) => {
                let mut acc = Cond::True;
                for part in parts {
                    acc = acc.and(self.cond(part, assignment));
                    if matches!(acc, Cond::False | Cond::Overflow) {
                        break;
                    }
                }
                acc
            }
            Formula::Or(parts) => {
                let mut acc = Cond::False;
                for part in parts {
                    acc = acc.or(self.cond(part, assignment));
                    if acc.is_true() || acc.is_overflow() {
                        break;
                    }
                }
                acc
            }
            Formula::Implies(premise, conclusion) => {
                let p = self.cond(premise, assignment).not();
                if p.is_true() || p.is_overflow() {
                    return p;
                }
                p.or(self.cond(conclusion, assignment))
            }
            Formula::Exists(vars, body) => self.quantify(vars, body, assignment, true),
            Formula::Forall(vars, body) => self.quantify(vars, body, assignment, false),
        }
    }

    fn quantify(
        &self,
        vars: &[String],
        body: &Formula,
        assignment: &mut Assignment,
        exists: bool,
    ) -> Cond {
        let Some((var, rest)) = vars.split_first() else {
            return self.cond(body, assignment);
        };
        let mut acc = if exists { Cond::False } else { Cond::True };
        for value in &self.domain {
            let previous = assignment.insert(var.clone(), value.clone());
            let c = self.quantify(rest, body, assignment, exists);
            match previous {
                Some(p) => {
                    assignment.insert(var.clone(), p);
                }
                None => {
                    assignment.remove(var);
                }
            }
            acc = if exists { acc.or(c) } else { acc.and(c) };
            let settled = if exists {
                acc.is_true()
            } else {
                acc == Cond::False
            };
            if settled || acc.is_overflow() {
                break;
            }
        }
        acc
    }
}

/// Evaluates a query symbolically under CWA. See the module docs for the
/// exactness contract; callers should trust `answers` as *the* certain
/// answers only when `exact` is set, and as a sound under-approximation
/// otherwise.
pub fn cwa_certain_answers(d: &Instance, query: &Query) -> CwaReport {
    let evaluator = CondEvaluator {
        instance: d,
        domain: d.adom_ordered(),
    };
    let candidates: Vec<Value> = d.constants().into_iter().map(Value::Const).collect();
    let vars = query.answer_variables();
    let mut answers = BTreeSet::new();
    let mut exact = true;
    let mut overflowed = false;
    let mut judge = |cond: Cond, tuple: Tuple| {
        if cond.is_overflow() {
            overflowed = true;
            exact = false;
            return;
        }
        if cond.is_true() {
            answers.insert(tuple);
        } else if !cond.eq_only() {
            // A rejecting condition with a ≠ literal might still be valid;
            // the "not certain" verdict for this tuple is unproven.
            exact = false;
        }
    };
    if vars.is_empty() {
        let cond = evaluator.cond(query.formula(), &mut Assignment::new());
        judge(cond, Tuple::new(Vec::new()));
    } else {
        // Odometer over constants(D)^k; certain answers cannot contain
        // nulls or query-only constants under the active-domain semantics.
        let k = vars.len();
        if !candidates.is_empty() {
            let mut indices = vec![0usize; k];
            loop {
                let mut assignment = Assignment::new();
                for (v, &i) in vars.iter().zip(&indices) {
                    assignment.insert(v.clone(), candidates[i].clone());
                }
                let cond = evaluator.cond(query.formula(), &mut assignment);
                let tuple: Tuple = indices.iter().map(|&i| candidates[i].clone()).collect();
                judge(cond, tuple);
                // Advance the odometer.
                let mut pos = k;
                loop {
                    if pos == 0 {
                        break;
                    }
                    pos -= 1;
                    indices[pos] += 1;
                    if indices[pos] < candidates.len() {
                        break;
                    }
                    indices[pos] = 0;
                }
                if indices.iter().all(|&i| i == 0) {
                    break;
                }
            }
        }
    }
    CwaReport {
        answers,
        exact,
        overflowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    use nev_logic::parse_query;

    fn q(text: &str) -> Query {
        parse_query(text).expect("parses")
    }

    #[test]
    fn complete_instances_are_always_exact() {
        let d = inst! { "R" => [[c(1), c(2)], [c(2), c(3)]] };
        let report = cwa_certain_answers(&d, &q("Q(u) :- exists v . R(u, v)"));
        assert!(report.exact);
        assert!(!report.overflowed);
        let expected: BTreeSet<Tuple> = [
            Tuple::new(vec![Value::int(1)]),
            Tuple::new(vec![Value::int(2)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(report.answers, expected);
    }

    #[test]
    fn intro_sentence_certifies_exactly_on_d0() {
        // ∀u ∃v D(u,v) on d0 = {D(⊥₁,⊥₂), D(⊥₂,⊥₁)}: true in every v(D).
        let d = inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] };
        let report = cwa_certain_answers(&d, &q("forall u . exists v . D(u, v)"));
        assert!(report.exact, "conditions stay equality-only");
        assert_eq!(report.answers.len(), 1, "certainly true");
    }

    #[test]
    fn negation_produces_inequalities_and_forfeits_exactness() {
        // ∃u ¬D(u,u) on d0: whether v(D) has a reflexive edge depends on
        // whether v(⊥₁) = v(⊥₂); the condition carries a ≠ literal, so the
        // rejection is not exact.
        let d = inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] };
        let report = cwa_certain_answers(&d, &q("exists u . !D(u, u)"));
        assert!(report.answers.is_empty(), "not certain, correctly rejected");
        assert!(!report.exact, "rejection rests on an unproven ≠ condition");
        assert!(!report.overflowed);
    }

    #[test]
    fn ground_negation_stays_exact() {
        // On a complete instance negation is ground and conditions simplify
        // fully: ∃u ¬R(u,u) with R = {(1,2)} is certainly true.
        let d = inst! { "R" => [[c(1), c(2)]] };
        let report = cwa_certain_answers(&d, &q("exists u . !R(u, u)"));
        assert!(report.exact);
        assert_eq!(report.answers.len(), 1);
    }

    #[test]
    fn equality_selections_certify_the_certain_slice() {
        // R = {(1,⊥)}: R(1,2) holds iff ⊥ ↦ 2 — possible, not certain.
        let d = inst! { "R" => [[c(1), x(1)]] };
        let certain = cwa_certain_answers(&d, &q("exists v . R(1, v)"));
        assert!(certain.exact);
        assert_eq!(certain.answers.len(), 1, "some successor exists certainly");
        let possible = cwa_certain_answers(&d, &q("R(1, 2)"));
        assert!(possible.answers.is_empty());
        assert!(possible.exact, "rejection condition is the equality ⊥=2");
    }

    #[test]
    fn boolean_and_empty_candidate_edge_cases() {
        // Empty instance: ∀-sentences are vacuously certain and conditions
        // are ground.
        let empty = Instance::new();
        let report = cwa_certain_answers(&empty, &q("forall u . R(u)"));
        assert!(report.exact);
        assert_eq!(report.answers.len(), 1);
        // k-ary query on an instance with no constants: no candidates, and
        // that emptiness is exact (certain answers are constant tuples).
        let nulls_only = inst! { "R" => [[x(1)]] };
        let report = cwa_certain_answers(&nulls_only, &q("Q(u) :- R(u)"));
        assert!(report.answers.is_empty());
        assert!(report.exact);
    }
}
