//! Per-semantics evaluation profiles: how far the 3-valued evaluator may
//! strengthen `Unknown` into a definite verdict without losing soundness.
//!
//! The Kleene evaluator's core rules are sound under *every* semantics of
//! incompleteness: a tuple literally stored in `D` maps into every world, two
//! syntactically identical values stay equal under every valuation, and two
//! distinct constants stay distinct. What differs between the paper's
//! semantics is how much *more* can be concluded:
//!
//! * **Atom falsity.** Under open-world semantics a possible world may contain
//!   tuples `D` never mentions, so a missing atom is merely `Unknown`. Under
//!   (minimal) CWA every world is `v(D)` for one valuation `v`, so an atom is
//!   definitely false iff no stored tuple unifies with it under a single
//!   consistent valuation. Under the powerset semantics a world is a *union*
//!   `v_1(D) ∪ … ∪ v_m(D)`, so the stored tuple's nulls must be renamed apart
//!   from the query tuple's nulls before unifying — a weaker test, because two
//!   occurrences of the same stored null may resolve differently across the
//!   union's branches.
//! * **Domain closure.** `∃x φ` is definitely false (and dually `∀x φ`
//!   definitely true) only if quantifiers cannot reach elements outside
//!   `adom(D)`'s image. That holds for CWA and WCWA, where
//!   `adom(W) = v(adom(D))`. It fails for OWA (worlds add fresh values) *and*
//!   for the powerset semantics: on `D = {E(⊥,⊥)}` the powerset world
//!   `v_1(D) ∪ v_2(D) = {E(1,1), E(2,2)}` refutes `∃y ∀x E(x,y)` even though
//!   every single-valuation image satisfies it — so treating the adom image
//!   as exhaustive for `∀`-introduction would be unsound there.
//!
//! The minimal variants inherit their parent's profile: minimal worlds are a
//! subset of the parent's worlds, so every ∀-world invariant carries over.

/// How confidently a missing atom can be called false.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AtomClosure {
    /// Worlds may contain tuples `D` never mentions (OWA, WCWA): a missing
    /// atom is `Unknown`, never `False`.
    Open,
    /// Every world is `v(D)` for a single valuation (CWA, minimal CWA): a
    /// missing atom is `False` iff no stored tuple unifies with it under one
    /// consistent valuation.
    Unify,
    /// Worlds are unions of valuation images (powerset CWA and its minimal
    /// variant): unify with each stored tuple's nulls *renamed apart* from
    /// the query tuple's nulls.
    UnifyRenamed,
}

/// A per-semantics soundness profile for the Kleene evaluator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EvalProfile {
    /// The atom-falsity rule the semantics supports.
    pub atom_closure: AtomClosure,
    /// Whether quantifiers range only over the image of `adom(D)`, making
    /// `∃`-falsity and `∀`-truth provable from the active domain alone.
    pub closed_domain: bool,
}

impl EvalProfile {
    /// Profile for the open-world assumption: nothing may be closed off.
    pub const fn open_world() -> Self {
        EvalProfile {
            atom_closure: AtomClosure::Open,
            closed_domain: false,
        }
    }

    /// Profile for the weak closed-world assumption: the domain is closed
    /// (`adom(W) = v(adom(D))`) but relations may still grow.
    pub const fn weak_closed() -> Self {
        EvalProfile {
            atom_closure: AtomClosure::Open,
            closed_domain: true,
        }
    }

    /// Profile for the closed-world assumption and its minimal variant:
    /// single-valuation unification decides atom falsity and the domain is
    /// closed.
    pub const fn closed() -> Self {
        EvalProfile {
            atom_closure: AtomClosure::Unify,
            closed_domain: true,
        }
    }

    /// Profile for the powerset closed-world assumption and its minimal
    /// variant: unification with renamed stored nulls, open domain (see the
    /// module docs for the `∃y ∀x E(x,y)` counterexample).
    pub const fn powerset() -> Self {
        EvalProfile {
            atom_closure: AtomClosure::UnifyRenamed,
            closed_domain: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_pin_the_soundness_table() {
        assert_eq!(
            EvalProfile::open_world(),
            EvalProfile {
                atom_closure: AtomClosure::Open,
                closed_domain: false
            }
        );
        assert_eq!(
            EvalProfile::weak_closed(),
            EvalProfile {
                atom_closure: AtomClosure::Open,
                closed_domain: true
            }
        );
        assert_eq!(
            EvalProfile::closed(),
            EvalProfile {
                atom_closure: AtomClosure::Unify,
                closed_domain: true
            }
        );
        // The powerset profile must NOT claim a closed domain; see the
        // module-level counterexample.
        assert_eq!(
            EvalProfile::powerset(),
            EvalProfile {
                atom_closure: AtomClosure::UnifyRenamed,
                closed_domain: false
            }
        );
    }
}
