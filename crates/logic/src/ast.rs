//! Abstract syntax of relational first-order logic.
//!
//! The connectives are those of the paper (§5): `true`, `false`, relational and
//! equality atoms, `∧`, `∨`, `¬`, `∃`, `∀`, plus a primitive implication `→` which the
//! fragments `Pos+∀G` and `∃Pos+∀G_bool` use in the *universally guarded* shape
//! `∀x̄ (R(x̄) → φ)`. Keeping `→` primitive lets the fragment classifier recognise
//! guards syntactically, exactly as the paper defines them.

use std::collections::BTreeSet;
use std::fmt;

use nev_incomplete::{Constant, Value};

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A first-order variable.
    Var(String),
    /// A constant from `Const`.
    Const(Constant),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Builds an integer-constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Constant::Int(i))
    }

    /// Builds a string-constant term.
    pub fn str(s: impl AsRef<str>) -> Self {
        Term::Const(Constant::str(s))
    }

    /// Returns the variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant, if this is a constant.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Constant::Int(i)) => write!(f, "{i}"),
            Term::Const(Constant::Str(s)) => write!(f, "'{s}'"),
        }
    }
}

/// A first-order formula over a relational vocabulary with equality.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Formula {
    /// The formula `true`.
    True,
    /// The formula `false`.
    False,
    /// A relational atom `R(t₁, …, tₖ)`.
    Atom {
        /// Relation name.
        relation: String,
        /// Argument terms.
        terms: Vec<Term>,
    },
    /// An equality atom `t₁ = t₂`.
    Eq(Term, Term),
    /// Negation `¬φ`.
    Not(Box<Formula>),
    /// Conjunction `φ₁ ∧ … ∧ φₙ` (empty conjunction is `true`).
    And(Vec<Formula>),
    /// Disjunction `φ₁ ∨ … ∨ φₙ` (empty disjunction is `false`).
    Or(Vec<Formula>),
    /// Implication `φ → ψ`.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification `∃x₁ … xₙ φ`.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification `∀x₁ … xₙ φ`.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// Builds a relational atom.
    pub fn atom(relation: impl Into<String>, terms: impl IntoIterator<Item = Term>) -> Self {
        Formula::Atom {
            relation: relation.into(),
            terms: terms.into_iter().collect(),
        }
    }

    /// Builds an equality atom.
    pub fn eq(left: Term, right: Term) -> Self {
        Formula::Eq(left, right)
    }

    /// Builds a negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: Formula) -> Self {
        Formula::Not(Box::new(inner))
    }

    /// Builds a conjunction, flattening nested conjunctions.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                Formula::And(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        match flattened.len() {
            0 => Formula::True,
            1 => flattened.pop().expect("one element"),
            _ => Formula::And(flattened),
        }
    }

    /// Builds a disjunction, flattening nested disjunctions.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                Formula::Or(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        match flattened.len() {
            0 => Formula::False,
            1 => flattened.pop().expect("one element"),
            _ => Formula::Or(flattened),
        }
    }

    /// Builds an implication.
    pub fn implies(antecedent: Formula, consequent: Formula) -> Self {
        Formula::Implies(Box::new(antecedent), Box::new(consequent))
    }

    /// Builds an existential quantification (no-op when `vars` is empty).
    pub fn exists<I, S>(vars: I, body: Formula) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }

    /// Builds a universal quantification (no-op when `vars` is empty).
    pub fn forall<I, S>(vars: I, body: Formula) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, Box::new(body))
        }
    }

    /// Builds the universally guarded formula `∀x̄ (R(x̄) → φ)` of the `Pos+∀G`
    /// fragment (§5). The guard must list pairwise distinct variables — this is the
    /// side condition Proposition 5.1 shows to be essential.
    ///
    /// # Panics
    /// Panics if the guard variables are not pairwise distinct.
    pub fn forall_guarded(relation: impl Into<String>, vars: Vec<String>, body: Formula) -> Self {
        let distinct: BTreeSet<&String> = vars.iter().collect();
        assert_eq!(
            distinct.len(),
            vars.len(),
            "guard variables must be pairwise distinct"
        );
        let guard = Formula::Atom {
            relation: relation.into(),
            terms: vars.iter().map(|v| Term::Var(v.clone())).collect(),
        };
        Formula::Forall(vars, Box::new(Formula::implies(guard, body)))
    }

    /// Builds the equality-guarded formula `∀x z (x = z → φ)` of the `Pos+∀G` fragment.
    ///
    /// # Panics
    /// Panics if the two variables coincide.
    pub fn forall_eq_guarded(v1: impl Into<String>, v2: impl Into<String>, body: Formula) -> Self {
        let v1 = v1.into();
        let v2 = v2.into();
        assert_ne!(v1, v2, "equality guard variables must be distinct");
        let guard = Formula::Eq(Term::Var(v1.clone()), Term::Var(v2.clone()));
        Formula::Forall(vec![v1, v2], Box::new(Formula::implies(guard, body)))
    }

    /// The free variables of the formula.
    pub fn free_variables(&self) -> BTreeSet<String> {
        fn go(f: &Formula, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom { terms, .. } => {
                    for t in terms {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
                Formula::Eq(a, b) => {
                    for t in [a, b] {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
                Formula::Not(inner) => go(inner, bound, out),
                Formula::And(parts) | Formula::Or(parts) => {
                    for p in parts {
                        go(p, bound, out);
                    }
                }
                Formula::Implies(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
                    let before = bound.len();
                    bound.extend(vars.iter().cloned());
                    go(body, bound, out);
                    bound.truncate(before);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Returns `true` iff the formula has no free variables (it is a sentence, i.e. a
    /// Boolean query).
    pub fn is_sentence(&self) -> bool {
        self.free_variables().is_empty()
    }

    /// The constants mentioned anywhere in the formula.
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            let mut push = |t: &Term| {
                if let Term::Const(c) = t {
                    out.insert(c.clone());
                }
            };
            match f {
                Formula::Atom { terms, .. } => terms.iter().for_each(&mut push),
                Formula::Eq(a, b) => {
                    push(a);
                    push(b);
                }
                _ => {}
            }
        });
        out
    }

    /// The relation names mentioned anywhere in the formula.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Atom { relation, .. } = f {
                out.insert(relation.clone());
            }
        });
        out
    }

    /// Visits every subformula (pre-order).
    pub fn visit<F: FnMut(&Formula)>(&self, visitor: &mut F) {
        visitor(self);
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => {}
            Formula::Not(inner) => inner.visit(visitor),
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    p.visit(visitor);
                }
            }
            Formula::Implies(a, b) => {
                a.visit(visitor);
                b.visit(visitor);
            }
            Formula::Exists(_, body) | Formula::Forall(_, body) => body.visit(visitor),
        }
    }

    /// Substitutes free occurrences of variables by values (producing a formula whose
    /// terms may mention new constants). Only constants may be substituted — nulls are
    /// *not* terms of the language; they enter evaluation only through assignments.
    ///
    /// # Panics
    /// Panics if asked to substitute a null.
    pub fn substitute_constants(
        &self,
        subst: &std::collections::BTreeMap<String, Value>,
    ) -> Formula {
        let sub_term = |t: &Term, bound: &Vec<String>| -> Term {
            match t {
                Term::Var(v) if !bound.contains(v) => match subst.get(v) {
                    Some(Value::Const(c)) => Term::Const(c.clone()),
                    Some(Value::Null(_)) => panic!("cannot substitute a null into a formula"),
                    None => t.clone(),
                },
                other => other.clone(),
            }
        };
        fn go(
            f: &Formula,
            bound: &mut Vec<String>,
            sub_term: &dyn Fn(&Term, &Vec<String>) -> Term,
        ) -> Formula {
            match f {
                Formula::True => Formula::True,
                Formula::False => Formula::False,
                Formula::Atom { relation, terms } => Formula::Atom {
                    relation: relation.clone(),
                    terms: terms.iter().map(|t| sub_term(t, bound)).collect(),
                },
                Formula::Eq(a, b) => Formula::Eq(sub_term(a, bound), sub_term(b, bound)),
                Formula::Not(inner) => Formula::Not(Box::new(go(inner, bound, sub_term))),
                Formula::And(parts) => {
                    Formula::And(parts.iter().map(|p| go(p, bound, sub_term)).collect())
                }
                Formula::Or(parts) => {
                    Formula::Or(parts.iter().map(|p| go(p, bound, sub_term)).collect())
                }
                Formula::Implies(a, b) => Formula::Implies(
                    Box::new(go(a, bound, sub_term)),
                    Box::new(go(b, bound, sub_term)),
                ),
                Formula::Exists(vars, body) => {
                    let before = bound.len();
                    bound.extend(vars.iter().cloned());
                    let body = go(body, bound, sub_term);
                    bound.truncate(before);
                    Formula::Exists(vars.clone(), Box::new(body))
                }
                Formula::Forall(vars, body) => {
                    let before = bound.len();
                    bound.extend(vars.iter().cloned());
                    let body = go(body, bound, sub_term);
                    bound.truncate(before);
                    Formula::Forall(vars.clone(), Box::new(body))
                }
            }
        }
        go(self, &mut Vec::new(), &sub_term)
    }

    /// The number of AST nodes, a rough size measure used by generators and benches.
    pub fn size(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |_| count += 1);
        count
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn needs_parens(f: &Formula) -> bool {
            matches!(
                f,
                Formula::And(_)
                    | Formula::Or(_)
                    | Formula::Implies(_, _)
                    | Formula::Exists(_, _)
                    | Formula::Forall(_, _)
            )
        }
        fn wrapped(fmtr: &mut fmt::Formatter<'_>, f: &Formula) -> fmt::Result {
            if needs_parens(f) {
                write!(fmtr, "({f})")
            } else {
                write!(fmtr, "{f}")
            }
        }
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom { relation, terms } => {
                write!(f, "{relation}(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => {
                write!(f, "!")?;
                wrapped(f, inner)
            }
            Formula::And(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    wrapped(f, p)?;
                }
                Ok(())
            }
            Formula::Or(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    wrapped(f, p)?;
                }
                Ok(())
            }
            Formula::Implies(a, b) => {
                wrapped(f, a)?;
                write!(f, " -> ")?;
                wrapped(f, b)
            }
            Formula::Exists(vars, body) => {
                write!(f, "exists {}", vars.join(" "))?;
                write!(f, " . ")?;
                wrapped(f, body)
            }
            Formula::Forall(vars, body) => {
                write!(f, "forall {}", vars.join(" "))?;
                write!(f, " . ")?;
                wrapped(f, body)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample() -> Formula {
        // ∃z (R(x,z) ∧ S(z,y)) — the introduction's conjunctive query.
        Formula::exists(
            ["z"],
            Formula::and([
                Formula::atom("R", [Term::var("x"), Term::var("z")]),
                Formula::atom("S", [Term::var("z"), Term::var("y")]),
            ]),
        )
    }

    #[test]
    fn free_variables_respect_binders() {
        let f = sample();
        assert_eq!(
            f.free_variables(),
            ["x", "y"].into_iter().map(String::from).collect()
        );
        assert!(!f.is_sentence());
        let closed = Formula::exists(["x", "y"], f);
        assert!(closed.is_sentence());
    }

    #[test]
    fn and_or_flatten_and_simplify() {
        let a = Formula::atom("R", [Term::var("x")]);
        let b = Formula::atom("S", [Term::var("x")]);
        let c = Formula::atom("T", [Term::var("x")]);
        let f = Formula::and([Formula::and([a.clone(), b.clone()]), c.clone()]);
        assert_eq!(f, Formula::And(vec![a.clone(), b.clone(), c.clone()]));
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::and([a.clone()]), a);
        assert_eq!(Formula::or([]), Formula::False);
        let g = Formula::or([Formula::or([a.clone(), b.clone()]), c.clone()]);
        assert_eq!(g, Formula::Or(vec![a, b, c]));
    }

    #[test]
    fn quantifier_builders_skip_empty_lists() {
        let a = Formula::atom("R", [Term::var("x")]);
        assert_eq!(Formula::exists(Vec::<String>::new(), a.clone()), a);
        assert_eq!(Formula::forall(Vec::<String>::new(), a.clone()), a);
    }

    #[test]
    fn guarded_universal_shapes() {
        let body = Formula::atom("S", [Term::var("x")]);
        let guarded = Formula::forall_guarded("R", vec!["x".into(), "y".into()], body.clone());
        match &guarded {
            Formula::Forall(vars, inner) => {
                assert_eq!(vars, &vec!["x".to_string(), "y".to_string()]);
                assert!(matches!(**inner, Formula::Implies(_, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        let eq_guarded = Formula::forall_eq_guarded("x", "z", body);
        assert!(matches!(eq_guarded, Formula::Forall(_, _)));
    }

    #[test]
    #[should_panic(expected = "pairwise distinct")]
    fn guard_with_repeated_variables_panics() {
        Formula::forall_guarded("R", vec!["x".into(), "x".into()], Formula::True);
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn eq_guard_with_same_variable_panics() {
        Formula::forall_eq_guarded("x", "x", Formula::True);
    }

    #[test]
    fn constants_and_relations_are_collected() {
        let f = Formula::and([
            Formula::atom("R", [Term::int(1), Term::var("x")]),
            Formula::eq(Term::var("x"), Term::str("a")),
        ]);
        assert_eq!(
            f.constants(),
            [Constant::int(1), Constant::str("a")].into_iter().collect()
        );
        assert_eq!(f.relations(), ["R".to_string()].into_iter().collect());
    }

    #[test]
    fn substitution_respects_binders() {
        let f = sample();
        let mut subst = BTreeMap::new();
        subst.insert("x".to_string(), Value::int(1));
        subst.insert("z".to_string(), Value::int(9)); // bound, must not be replaced
        let g = f.substitute_constants(&subst);
        assert_eq!(
            g.free_variables(),
            ["y"].into_iter().map(String::from).collect()
        );
        assert!(g.constants().contains(&Constant::int(1)));
        assert!(!g.constants().contains(&Constant::int(9)));
    }

    #[test]
    #[should_panic(expected = "cannot substitute a null")]
    fn substituting_null_panics() {
        let f = sample();
        let mut subst = BTreeMap::new();
        subst.insert("x".to_string(), Value::null(1));
        let _ = f.substitute_constants(&subst);
    }

    #[test]
    fn display_round_trips_visually() {
        let f = sample();
        assert_eq!(f.to_string(), "exists z . (R(x, z) & S(z, y))");
        let g = Formula::forall_guarded(
            "R",
            vec!["x".into()],
            Formula::or([Formula::atom("S", [Term::var("x")]), Formula::False]),
        );
        assert_eq!(g.to_string(), "forall x . (R(x) -> (S(x) | false))");
        assert_eq!(Formula::not(Formula::True).to_string(), "!true");
        assert_eq!(
            Formula::eq(Term::var("x"), Term::str("a")).to_string(),
            "x = 'a'"
        );
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Formula::True.size(), 1);
        assert_eq!(sample().size(), 4); // exists, and, atom, atom
    }

    #[test]
    fn term_accessors() {
        assert_eq!(Term::var("x").as_var(), Some("x"));
        assert_eq!(Term::var("x").as_const(), None);
        assert_eq!(Term::int(3).as_const(), Some(&Constant::int(3)));
        assert_eq!(Term::int(3).as_var(), None);
        assert_eq!(Term::str("a").to_string(), "'a'");
    }
}
