//! Conjunctive queries and unions of conjunctive queries as first-class data.
//!
//! Unions of conjunctive queries are exactly the existential positive formulas
//! (`∃Pos`), the class for which Imieliński & Lipski showed that naïve evaluation
//! computes certain answers under both OWA and CWA (Fact 1 of the paper). Beyond the
//! formula representation in [`crate::ast`], this module keeps CQs structured, which
//! gives access to the classical *canonical instance* construction: freeze each
//! variable into a fresh null and evaluate by homomorphism. The equivalence of the
//! two evaluation strategies is itself a useful cross-check exercised by tests and by
//! the `cross_crate_properties` integration suite.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nev_hom::search::{all_homomorphisms, HomConfig};
use nev_hom::ValueMap;
use nev_incomplete::{Instance, Tuple, Value};

use crate::ast::{Formula, Term};
use crate::query::{Query, QueryError};

/// A conjunctive query `Q(x̄) :- A₁ ∧ … ∧ Aₙ` where each `Aᵢ` is a relational atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    head: Vec<String>,
    atoms: Vec<(String, Vec<Term>)>,
}

/// Errors building conjunctive queries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CqError {
    /// A head variable does not occur in any body atom (the query would be unsafe).
    UnsafeHeadVariable(String),
    /// The query has no atoms and a non-empty head.
    EmptyBodyWithHead,
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::UnsafeHeadVariable(v) => {
                write!(f, "head variable {v} does not occur in the body")
            }
            CqError::EmptyBodyWithHead => write!(f, "a CQ with answer variables needs a body"),
        }
    }
}

impl std::error::Error for CqError {}

impl ConjunctiveQuery {
    /// Creates a conjunctive query; every head variable must occur in the body.
    pub fn new<I, S>(head: I, atoms: Vec<(String, Vec<Term>)>) -> Result<Self, CqError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let head: Vec<String> = head.into_iter().map(Into::into).collect();
        if atoms.is_empty() && !head.is_empty() {
            return Err(CqError::EmptyBodyWithHead);
        }
        let body_vars: BTreeSet<&String> = atoms
            .iter()
            .flat_map(|(_, ts)| ts.iter())
            .filter_map(|t| match t {
                Term::Var(v) => Some(v),
                Term::Const(_) => None,
            })
            .collect();
        for v in &head {
            if !body_vars.contains(v) {
                return Err(CqError::UnsafeHeadVariable(v.clone()));
            }
        }
        Ok(ConjunctiveQuery { head, atoms })
    }

    /// The answer variables.
    pub fn head(&self) -> &[String] {
        &self.head
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[(String, Vec<Term>)] {
        &self.atoms
    }

    /// The arity of the query.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// All variables occurring in the body.
    pub fn variables(&self) -> BTreeSet<String> {
        self.atoms
            .iter()
            .flat_map(|(_, ts)| ts.iter())
            .filter_map(|t| t.as_var().map(String::from))
            .collect()
    }

    /// The equivalent existential positive formula `∃ ȳ (A₁ ∧ … ∧ Aₙ)` where `ȳ` are
    /// the non-answer variables.
    pub fn to_formula(&self) -> Formula {
        let existential: Vec<String> = self
            .variables()
            .into_iter()
            .filter(|v| !self.head.contains(v))
            .collect();
        let conjuncts: Vec<Formula> = self
            .atoms
            .iter()
            .map(|(rel, terms)| Formula::atom(rel.clone(), terms.iter().cloned()))
            .collect();
        Formula::exists(existential, Formula::and(conjuncts))
    }

    /// The equivalent [`Query`].
    pub fn to_query(&self) -> Result<Query, QueryError> {
        Query::new(self.head.clone(), self.to_formula())
    }

    /// The canonical (frozen) instance of the query: each variable becomes a distinct
    /// labelled null, constants stay as they are. Returns the instance together with
    /// the variable → null assignment.
    pub fn canonical_instance(&self) -> (Instance, BTreeMap<String, Value>) {
        let mut assignment: BTreeMap<String, Value> = BTreeMap::new();
        for (next, v) in self.variables().into_iter().enumerate() {
            assignment.insert(v, Value::null(next as u32));
        }
        let mut instance = Instance::new();
        for (rel, terms) in &self.atoms {
            let tuple: Tuple = terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => assignment[v].clone(),
                    Term::Const(c) => Value::Const(c.clone()),
                })
                .collect();
            instance
                .add_tuple(rel, tuple)
                .expect("canonical instance construction is arity-consistent");
        }
        (instance, assignment)
    }

    /// Evaluates the query on an instance by enumerating database homomorphisms from
    /// its canonical instance — the classical `CQ ≡ hom` correspondence. Nulls of the
    /// *data* instance may appear in answers, exactly as with direct FO evaluation.
    pub fn evaluate_via_homomorphisms(&self, instance: &Instance) -> BTreeSet<Tuple> {
        let (canonical, assignment) = self.canonical_instance();
        let homs: Vec<ValueMap> = all_homomorphisms(&canonical, instance, &HomConfig::database());
        homs.into_iter()
            .map(|h| {
                self.head
                    .iter()
                    .map(|v| h.apply(&assignment[v]))
                    .collect::<Tuple>()
            })
            .collect()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q({}) :- ", self.head.join(", "))?;
        for (i, (rel, terms)) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{rel}(")?;
            for (j, t) in terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries of the same arity — the structured counterpart of
/// the `∃Pos` fragment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionOfConjunctiveQueries {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionOfConjunctiveQueries {
    /// Creates a UCQ; all disjuncts must share the same arity.
    ///
    /// # Panics
    /// Panics if the disjunct arities differ or the union is empty.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        assert!(!disjuncts.is_empty(), "a UCQ needs at least one disjunct");
        let arity = disjuncts[0].arity();
        assert!(
            disjuncts.iter().all(|d| d.arity() == arity),
            "all disjuncts of a UCQ must have the same arity"
        );
        UnionOfConjunctiveQueries { disjuncts }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// The arity of the union.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// The equivalent `∃Pos` query. The answer variables of the first disjunct are
    /// used as the answer variables of the union; the other disjuncts' formulas are
    /// renamed accordingly.
    pub fn to_query(&self) -> Result<Query, QueryError> {
        let head = self.disjuncts[0].head().to_vec();
        let mut parts = Vec::new();
        for d in &self.disjuncts {
            // Rename each disjunct's head variables to the shared head.
            let mut renaming: BTreeMap<String, String> = BTreeMap::new();
            for (from, to) in d.head().iter().zip(&head) {
                renaming.insert(from.clone(), to.clone());
            }
            let renamed_atoms: Vec<(String, Vec<Term>)> = d
                .atoms()
                .iter()
                .map(|(rel, terms)| {
                    (
                        rel.clone(),
                        terms
                            .iter()
                            .map(|t| match t {
                                Term::Var(v) => {
                                    Term::Var(renaming.get(v).cloned().unwrap_or_else(|| v.clone()))
                                }
                                c => c.clone(),
                            })
                            .collect(),
                    )
                })
                .collect();
            let renamed = ConjunctiveQuery::new(head.clone(), renamed_atoms)
                .expect("renaming preserves safety");
            parts.push(renamed.to_formula());
        }
        Query::new(head, Formula::or(parts))
    }

    /// Evaluates the union by homomorphism, disjunct by disjunct.
    pub fn evaluate_via_homomorphisms(&self, instance: &Instance) -> BTreeSet<Tuple> {
        self.disjuncts
            .iter()
            .flat_map(|d| d.evaluate_via_homomorphisms(instance))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_query, naive_eval_query};
    use crate::fragment::{classify, Fragment};
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    fn intro_cq() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            ["x", "y"],
            vec![
                ("R".into(), vec![Term::var("x"), Term::var("z")]),
                ("S".into(), vec![Term::var("z"), Term::var("y")]),
            ],
        )
        .unwrap()
    }

    fn intro_instance() -> Instance {
        inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        }
    }

    #[test]
    fn cq_to_formula_is_existential_positive() {
        let cq = intro_cq();
        let q = cq.to_query().unwrap();
        assert_eq!(classify(q.formula()), Fragment::ExistentialPositive);
        assert_eq!(q.arity(), 2);
        assert_eq!(cq.to_string(), "Q(x, y) :- R(x, z), S(z, y)");
    }

    #[test]
    fn hom_evaluation_matches_fo_evaluation() {
        let cq = intro_cq();
        let d = intro_instance();
        let by_hom = cq.evaluate_via_homomorphisms(&d);
        let by_fo = evaluate_query(&d, &cq.to_query().unwrap());
        assert_eq!(by_hom, by_fo);
        assert_eq!(by_hom.len(), 2);
        // And naive evaluation keeps only (1,4).
        let naive: BTreeSet<Tuple> = by_hom.into_iter().filter(Tuple::is_complete).collect();
        assert_eq!(naive, naive_eval_query(&d, &cq.to_query().unwrap()));
        assert_eq!(naive.len(), 1);
    }

    #[test]
    fn canonical_instance_freezes_variables() {
        let cq = intro_cq();
        let (canonical, assignment) = cq.canonical_instance();
        assert_eq!(canonical.fact_count(), 2);
        assert_eq!(assignment.len(), 3);
        assert!(canonical.constants().is_empty());
        // The canonical instance satisfies the (Boolean version of the) query.
        let boolean = ConjunctiveQuery::new(Vec::<String>::new(), cq.atoms().to_vec()).unwrap();
        assert_eq!(boolean.evaluate_via_homomorphisms(&canonical).len(), 1);
    }

    #[test]
    fn constants_in_atoms_constrain_answers() {
        let cq = ConjunctiveQuery::new(
            ["y"],
            vec![("R".into(), vec![Term::int(1), Term::var("y")])],
        )
        .unwrap();
        let d = inst! { "R" => [[c(1), c(2)], [c(3), c(4)]] };
        let answers = cq.evaluate_via_homomorphisms(&d);
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&Tuple::new(vec![c(2)])));
    }

    #[test]
    fn safety_is_enforced() {
        let err =
            ConjunctiveQuery::new(["x"], vec![("R".into(), vec![Term::var("y")])]).unwrap_err();
        assert_eq!(err, CqError::UnsafeHeadVariable("x".into()));
        assert!(err.to_string().contains("does not occur"));
        let err = ConjunctiveQuery::new(["x"], vec![]).unwrap_err();
        assert_eq!(err, CqError::EmptyBodyWithHead);
    }

    #[test]
    fn boolean_cq() {
        let cq = ConjunctiveQuery::new(
            Vec::<String>::new(),
            vec![("D".into(), vec![Term::var("u"), Term::var("u")])],
        )
        .unwrap();
        let with_loop = inst! { "D" => [[x(1), x(1)]] };
        let without_loop = inst! { "D" => [[x(1), x(2)]] };
        assert_eq!(cq.evaluate_via_homomorphisms(&with_loop).len(), 1);
        assert_eq!(cq.evaluate_via_homomorphisms(&without_loop).len(), 0);
    }

    #[test]
    fn ucq_union_of_answers() {
        let d = inst! { "R" => [[c(1), c(2)]], "S" => [[c(3), c(4)]] };
        let q1 = ConjunctiveQuery::new(
            ["a", "b"],
            vec![("R".into(), vec![Term::var("a"), Term::var("b")])],
        )
        .unwrap();
        let q2 = ConjunctiveQuery::new(
            ["u", "v"],
            vec![("S".into(), vec![Term::var("u"), Term::var("v")])],
        )
        .unwrap();
        let ucq = UnionOfConjunctiveQueries::new(vec![q1, q2]);
        assert_eq!(ucq.arity(), 2);
        assert_eq!(ucq.disjuncts().len(), 2);
        let by_hom = ucq.evaluate_via_homomorphisms(&d);
        assert_eq!(by_hom.len(), 2);
        let q = ucq.to_query().unwrap();
        assert_eq!(classify(q.formula()), Fragment::ExistentialPositive);
        let by_fo = evaluate_query(&d, &q);
        assert_eq!(by_hom, by_fo);
    }

    #[test]
    #[should_panic(expected = "same arity")]
    fn ucq_rejects_mixed_arities() {
        let q1 = ConjunctiveQuery::new(["a"], vec![("R".into(), vec![Term::var("a")])]).unwrap();
        let q2 = ConjunctiveQuery::new(
            ["a", "b"],
            vec![("S".into(), vec![Term::var("a"), Term::var("b")])],
        )
        .unwrap();
        UnionOfConjunctiveQueries::new(vec![q1, q2]);
    }

    #[test]
    #[should_panic(expected = "at least one disjunct")]
    fn empty_ucq_panics() {
        UnionOfConjunctiveQueries::new(vec![]);
    }
}
