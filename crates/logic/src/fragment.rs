//! Syntactic fragments of first-order logic (paper §5 and §7).
//!
//! The paper's positive answer to "when does naïve evaluation work?" is phrased in
//! terms of four syntactic classes:
//!
//! * `∃Pos` — existential positive formulas, i.e. unions of conjunctive queries
//!   (naïve evaluation works under **OWA**, and by Libkin 2011 this is optimal);
//! * `Pos` — positive formulas, allowing `∀` but no negation
//!   (naïve evaluation works under **WCWA**);
//! * `Pos+∀G` — positive formulas extended with *universal guards*
//!   `∀x̄ (R(x̄) → φ)` with pairwise distinct guard variables
//!   (naïve evaluation works under **CWA**);
//! * `∃Pos+∀G_bool` — existential positive formulas extended with *Boolean* universal
//!   guards, i.e. guarded universals that are sentences
//!   (naïve evaluation works under the powerset semantics `⦅ ⦆_CWA`).
//!
//! The classifier below implements the paper's inductive definitions literally,
//! including the subtle side conditions: guard variables must be pairwise distinct
//! (Proposition 5.1's remark shows why), plain `∀`/`∃` in `Pos+∀G` may only wrap `Pos`
//! subformulas, and `∃Pos+∀G_bool` guards must produce sentences.

use std::collections::BTreeSet;

use crate::ast::{Formula, Term};

/// The syntactic classes considered by the paper, ordered by inclusion where
/// applicable (`∃Pos ⊊ Pos ⊊ Pos+∀G ⊊ FO`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Fragment {
    /// `∃Pos`: existential positive formulas / unions of conjunctive queries.
    ExistentialPositive,
    /// `Pos`: positive formulas (`∧, ∨, ∃, ∀`, no negation).
    Positive,
    /// `Pos+∀G`: positive formulas with universal guards.
    PositiveGuarded,
    /// `∃Pos+∀G_bool`: existential positive formulas with Boolean universal guards.
    ExistentialPositiveBooleanGuarded,
    /// Full first-order logic (none of the above).
    FullFirstOrder,
}

impl Fragment {
    /// The five fragments in Figure 1 order (smallest guarantee first, full FO last).
    pub const ALL: [Fragment; 5] = [
        Fragment::ExistentialPositive,
        Fragment::Positive,
        Fragment::PositiveGuarded,
        Fragment::ExistentialPositiveBooleanGuarded,
        Fragment::FullFirstOrder,
    ];

    /// The name used in Figure 1 and in experiment logs (also the `Display` form).
    pub fn short_name(self) -> &'static str {
        match self {
            Fragment::ExistentialPositive => "∃Pos",
            Fragment::Positive => "Pos",
            Fragment::PositiveGuarded => "Pos+∀G",
            Fragment::ExistentialPositiveBooleanGuarded => "∃Pos+∀G_bool",
            Fragment::FullFirstOrder => "FO",
        }
    }
}

impl std::fmt::Display for Fragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

/// Error returned when parsing a [`Fragment`] from an unrecognised name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseFragmentError(pub String);

impl std::fmt::Display for ParseFragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown fragment `{}` (expected one of: epos, pos, pos-g, epos-gbool, fo, \
             or a Figure 1 short name)",
            self.0
        )
    }
}

impl std::error::Error for ParseFragmentError {}

impl std::str::FromStr for Fragment {
    type Err = ParseFragmentError;

    /// Parses both the Figure 1 short names (as printed by `Display`, so
    /// `to_string`/`parse` round-trips) and ASCII command-line spellings such as
    /// `epos`, `pos-g` or `existential_positive` (case-insensitive, `-`/`_`
    /// interchangeable).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        // The exact Display forms first: they contain non-ASCII quantifier symbols.
        for fragment in Fragment::ALL {
            if trimmed == fragment.short_name() {
                return Ok(fragment);
            }
        }
        let normalized: String = trimmed
            .to_ascii_lowercase()
            .chars()
            .map(|ch| {
                if ch == '_' || ch == ' ' || ch == '+' {
                    '-'
                } else {
                    ch
                }
            })
            .collect();
        match normalized.as_str() {
            "epos" | "existential-positive" | "ucq" => Ok(Fragment::ExistentialPositive),
            "pos" | "positive" => Ok(Fragment::Positive),
            "pos-g" | "pos-forall-g" | "positive-guarded" => Ok(Fragment::PositiveGuarded),
            "epos-gbool" | "epos-g-bool" | "existential-positive-boolean-guarded" => {
                Ok(Fragment::ExistentialPositiveBooleanGuarded)
            }
            "fo" | "full-fo" | "first-order" | "full-first-order" => Ok(Fragment::FullFirstOrder),
            _ => Err(ParseFragmentError(trimmed.to_string())),
        }
    }
}

fn is_atomic_or_truth(f: &Formula) -> bool {
    matches!(
        f,
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _)
    )
}

/// Returns `true` iff the formula is existential positive (`∃Pos`): built from atoms,
/// `true`, `false`, `∧`, `∨` and `∃` only.
pub fn is_existential_positive(f: &Formula) -> bool {
    match f {
        _ if is_atomic_or_truth(f) => true,
        Formula::And(parts) | Formula::Or(parts) => parts.iter().all(is_existential_positive),
        Formula::Exists(_, body) => is_existential_positive(body),
        _ => false,
    }
}

/// Returns `true` iff the formula is positive (`Pos`): built from atoms, `true`,
/// `false`, `∧`, `∨`, `∃` and `∀` — no negation, no implication.
pub fn is_positive(f: &Formula) -> bool {
    match f {
        _ if is_atomic_or_truth(f) => true,
        Formula::And(parts) | Formula::Or(parts) => parts.iter().all(is_positive),
        Formula::Exists(_, body) | Formula::Forall(_, body) => is_positive(body),
        _ => false,
    }
}

/// Recognises the guard shape `R(x₁,…,xₙ)` or `x = z` over exactly the quantified
/// variables, pairwise distinct — the side condition of the `Pos+∀G` and
/// `∃Pos+∀G_bool` guarded universals (§5, §7). Public so that rewrites which must
/// *preserve* guardedness (the `nev-analyze` normalization pipeline keeps
/// `∀x̄ (R(x̄) → φ)` intact while eliminating every other implication) can test
/// the exact shape the classifier recognises.
pub fn is_universal_guard(guard: &Formula, vars: &[String]) -> bool {
    guard_matches(guard, vars)
}

fn guard_matches(guard: &Formula, vars: &[String]) -> bool {
    let distinct: BTreeSet<&String> = vars.iter().collect();
    if distinct.len() != vars.len() {
        return false;
    }
    match guard {
        Formula::Atom { terms, .. } => {
            terms.len() == vars.len()
                && terms
                    .iter()
                    .zip(vars)
                    .all(|(t, v)| matches!(t, Term::Var(name) if name == v))
        }
        Formula::Eq(a, b) => {
            vars.len() == 2
                && matches!(a, Term::Var(name) if name == &vars[0])
                && matches!(b, Term::Var(name) if name == &vars[1])
        }
        _ => false,
    }
}

/// Returns `true` iff the formula is in `Pos+∀G` (§5): the positive fragment where
/// unguarded quantifiers wrap `Pos` subformulas and universally guarded formulas
/// `∀x̄ (R(x̄) → φ)` (with `x̄` pairwise distinct, `R` possibly `=`) wrap `Pos+∀G`
/// subformulas.
pub fn is_positive_guarded(f: &Formula) -> bool {
    match f {
        _ if is_atomic_or_truth(f) => true,
        Formula::And(parts) | Formula::Or(parts) => parts.iter().all(is_positive_guarded),
        Formula::Exists(_, body) => is_positive(body),
        Formula::Forall(vars, body) => match body.as_ref() {
            Formula::Implies(guard, inner) if guard_matches(guard, vars) => {
                is_positive_guarded(inner)
            }
            _ => is_positive(body),
        },
        _ => false,
    }
}

/// Returns `true` iff the formula is in `∃Pos+∀G_bool` (§7): existential positive
/// formulas closed under Boolean universal guards, i.e. guarded universals
/// `∀x̄ (R(x̄) → φ)` whose body's free variables are all among the (pairwise distinct)
/// guard variables — making the guarded formula a sentence.
pub fn is_existential_positive_boolean_guarded(f: &Formula) -> bool {
    match f {
        _ if is_atomic_or_truth(f) => true,
        Formula::And(parts) | Formula::Or(parts) => {
            parts.iter().all(is_existential_positive_boolean_guarded)
        }
        Formula::Exists(_, body) => is_existential_positive_boolean_guarded(body),
        Formula::Forall(vars, body) => match body.as_ref() {
            Formula::Implies(guard, inner) if guard_matches(guard, vars) => {
                is_existential_positive_boolean_guarded(inner)
                    && inner.free_variables().iter().all(|v| vars.contains(v))
            }
            _ => false,
        },
        _ => false,
    }
}

/// Classifies a formula into the *smallest* fragment of the paper containing it,
/// preferring (in order) `∃Pos`, `Pos`, `Pos+∀G`, `∃Pos+∀G_bool`, and finally full FO.
///
/// Note that `Pos+∀G` and `∃Pos+∀G_bool` are incomparable classes; a formula in both
/// is reported as `Pos+∀G` (the Figure 1 harness checks membership in each class
/// separately and does not rely on this tie-break).
pub fn classify(f: &Formula) -> Fragment {
    if is_existential_positive(f) {
        Fragment::ExistentialPositive
    } else if is_positive(f) {
        Fragment::Positive
    } else if is_positive_guarded(f) {
        Fragment::PositiveGuarded
    } else if is_existential_positive_boolean_guarded(f) {
        Fragment::ExistentialPositiveBooleanGuarded
    } else {
        Fragment::FullFirstOrder
    }
}

/// Returns `true` iff the formula belongs to the given fragment (full FO accepts
/// everything).
pub fn is_in_fragment(f: &Formula, fragment: Fragment) -> bool {
    match fragment {
        Fragment::ExistentialPositive => is_existential_positive(f),
        Fragment::Positive => is_positive(f),
        Fragment::PositiveGuarded => is_positive_guarded(f),
        Fragment::ExistentialPositiveBooleanGuarded => is_existential_positive_boolean_guarded(f),
        Fragment::FullFirstOrder => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    fn atom_r(vars: &[&str]) -> Formula {
        Formula::atom("R", vars.iter().map(|v| Term::var(*v)))
    }

    #[test]
    fn ucq_is_existential_positive() {
        // ∃z (R(x,z) ∧ S(z,y)) ∨ ∃u R(u,u)
        let f = Formula::or([
            Formula::exists(
                ["z"],
                Formula::and([
                    Formula::atom("R", [Term::var("x"), Term::var("z")]),
                    Formula::atom("S", [Term::var("z"), Term::var("y")]),
                ]),
            ),
            Formula::exists(["u"], Formula::atom("R", [Term::var("u"), Term::var("u")])),
        ]);
        assert!(is_existential_positive(&f));
        assert!(is_positive(&f));
        assert!(is_positive_guarded(&f));
        assert!(is_existential_positive_boolean_guarded(&f));
        assert_eq!(classify(&f), Fragment::ExistentialPositive);
    }

    #[test]
    fn forall_exists_is_positive_not_existential() {
        // ∀x ∃y D(x,y) — the §2.4 example that works under CWA but not OWA.
        let f = Formula::forall(
            ["x"],
            Formula::exists(["y"], Formula::atom("D", [Term::var("x"), Term::var("y")])),
        );
        assert!(!is_existential_positive(&f));
        assert!(is_positive(&f));
        assert!(is_positive_guarded(&f));
        assert!(!is_existential_positive_boolean_guarded(&f));
        assert_eq!(classify(&f), Fragment::Positive);
    }

    #[test]
    fn negation_is_full_fo() {
        let f = Formula::exists(["x"], Formula::not(atom_r(&["x"])));
        assert!(!is_positive(&f));
        assert!(!is_positive_guarded(&f));
        assert_eq!(classify(&f), Fragment::FullFirstOrder);
        assert!(is_in_fragment(&f, Fragment::FullFirstOrder));
        assert!(!is_in_fragment(&f, Fragment::Positive));
    }

    #[test]
    fn guarded_universal_is_pos_guarded_not_pos() {
        // ∀x y (R(x,y) → ∃z R(y,z))
        let f = Formula::forall_guarded(
            "R",
            vec!["x".into(), "y".into()],
            Formula::exists(["z"], Formula::atom("R", [Term::var("y"), Term::var("z")])),
        );
        assert!(!is_positive(&f), "an implication is not positive");
        assert!(is_positive_guarded(&f));
        assert_eq!(classify(&f), Fragment::PositiveGuarded);
    }

    #[test]
    fn guard_with_repeated_variables_is_rejected() {
        // ∀x (R(x,x) → S(x)) is NOT in Pos+∀G — the remark after Proposition 5.1.
        let guard = Formula::atom("R", [Term::var("x"), Term::var("x")]);
        let body = Formula::atom("S", [Term::var("x")]);
        let f = Formula::Forall(vec!["x".into()], Box::new(Formula::implies(guard, body)));
        assert!(!is_positive_guarded(&f));
        assert_eq!(classify(&f), Fragment::FullFirstOrder);
    }

    #[test]
    fn guard_must_use_exactly_the_quantified_variables() {
        // ∀x (R(x, y) → S(x)) with y free in the guard: not a guard in the paper's sense.
        let guard = Formula::atom("R", [Term::var("x"), Term::var("y")]);
        let body = Formula::atom("S", [Term::var("x")]);
        let f = Formula::Forall(vec!["x".into()], Box::new(Formula::implies(guard, body)));
        assert!(!is_positive_guarded(&f));
    }

    #[test]
    fn equality_guard_is_accepted() {
        let f = Formula::forall_eq_guarded(
            "x",
            "z",
            Formula::atom("R", [Term::var("x"), Term::var("z")]),
        );
        assert!(is_positive_guarded(&f));
        assert!(is_existential_positive_boolean_guarded(&f));
    }

    #[test]
    fn boolean_guard_requires_sentence_body() {
        // ∀x y (R(x,y) → ∃z S(y,z)) is in ∃Pos+∀G_bool (body's free vars ⊆ guard vars)…
        let ok = Formula::forall_guarded(
            "R",
            vec!["x".into(), "y".into()],
            Formula::exists(["z"], Formula::atom("S", [Term::var("y"), Term::var("z")])),
        );
        assert!(is_existential_positive_boolean_guarded(&ok));
        // …but ∀x (R(x) → S(x, w)) with w free is not.
        let not_ok = Formula::forall_guarded(
            "R",
            vec!["x".into()],
            Formula::atom("S", [Term::var("x"), Term::var("w")]),
        );
        assert!(!is_existential_positive_boolean_guarded(&not_ok));
        // A universal *inside* the body (beyond guards) is also rejected.
        let inner_forall = Formula::forall_guarded(
            "R",
            vec!["x".into()],
            Formula::forall(["y"], Formula::atom("S", [Term::var("y")])),
        );
        assert!(!is_existential_positive_boolean_guarded(&inner_forall));
    }

    #[test]
    fn pos_guarded_restricts_plain_quantifiers_to_pos_bodies() {
        // ∃x ∀y (R(x,y) → S(y)): the unguarded ∃ wraps a non-Pos body, so the formula
        // is outside Pos+∀G by the paper's inductive definition.
        let guarded =
            Formula::forall_guarded("R2", vec!["y".into()], Formula::atom("S", [Term::var("y")]));
        let f = Formula::exists(["x"], guarded.clone());
        assert!(!is_positive_guarded(&f));
        // But conjunctions/disjunctions of guarded formulas stay inside.
        let g = Formula::and([guarded.clone(), Formula::atom("T", [Term::var("u")])]);
        assert!(is_positive_guarded(&g));
        // And nested guards are fine.
        let nested = Formula::forall_guarded("R2", vec!["z".into()], guarded);
        assert!(is_positive_guarded(&nested));
    }

    #[test]
    fn classify_orders_fragments() {
        assert_eq!(classify(&Formula::True), Fragment::ExistentialPositive);
        let pos = Formula::forall(["x"], atom_r(&["x"]));
        assert_eq!(classify(&pos), Fragment::Positive);
        let dpos_gbool_only = Formula::and([
            Formula::forall_guarded("R", vec!["x".into()], Formula::atom("S", [Term::var("x")])),
            Formula::exists(["u"], Formula::atom("S", [Term::var("u")])),
        ]);
        // This one is both Pos+∀G and ∃Pos+∀G_bool; the tie-break reports Pos+∀G.
        assert_eq!(classify(&dpos_gbool_only), Fragment::PositiveGuarded);
        assert!(is_in_fragment(
            &dpos_gbool_only,
            Fragment::ExistentialPositiveBooleanGuarded
        ));
    }

    #[test]
    fn fragment_from_str_round_trips() {
        for fragment in Fragment::ALL {
            let rendered = fragment.to_string();
            assert_eq!(rendered.parse::<Fragment>(), Ok(fragment), "{rendered}");
        }
        assert_eq!(
            "epos".parse::<Fragment>(),
            Ok(Fragment::ExistentialPositive)
        );
        assert_eq!("ucq".parse::<Fragment>(), Ok(Fragment::ExistentialPositive));
        assert_eq!("Positive".parse::<Fragment>(), Ok(Fragment::Positive));
        assert_eq!("pos+g".parse::<Fragment>(), Ok(Fragment::PositiveGuarded));
        assert_eq!(
            "epos_gbool".parse::<Fragment>(),
            Ok(Fragment::ExistentialPositiveBooleanGuarded)
        );
        assert_eq!("FO".parse::<Fragment>(), Ok(Fragment::FullFirstOrder));
        let err = "posg??".parse::<Fragment>().unwrap_err();
        assert!(err.to_string().contains("unknown fragment"));
    }

    #[test]
    fn fragment_display_names() {
        assert_eq!(Fragment::ExistentialPositive.to_string(), "∃Pos");
        assert_eq!(Fragment::Positive.to_string(), "Pos");
        assert_eq!(Fragment::PositiveGuarded.to_string(), "Pos+∀G");
        assert_eq!(
            Fragment::ExistentialPositiveBooleanGuarded.to_string(),
            "∃Pos+∀G_bool"
        );
        assert_eq!(Fragment::FullFirstOrder.to_string(), "FO");
    }
}
