//! k-ary queries: a formula together with an ordered tuple of answer variables.

use std::fmt;

use crate::ast::Formula;

/// A relational query `Q(x₁, …, xₖ) ≡ φ(x₁, …, xₖ)`.
///
/// For `k = 0` the query is *Boolean* (a sentence). The paper develops all results for
/// Boolean queries first (§3–§7) and lifts them to k-ary queries in §8 and §11; the
/// implementation mirrors this by exposing both Boolean and k-ary entry points in
/// `nev-logic::eval` and `nev-core::certain`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// The answer variables, in output order. May be empty (Boolean query).
    free: Vec<String>,
    /// The defining formula. Its free variables must all be answer variables.
    formula: Formula,
}

/// Errors building queries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryError {
    /// The formula has a free variable that is not listed among the answer variables.
    UnlistedFreeVariable(String),
    /// The same answer variable is listed twice.
    DuplicateAnswerVariable(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnlistedFreeVariable(v) => {
                write!(
                    f,
                    "free variable {v} is not listed among the answer variables"
                )
            }
            QueryError::DuplicateAnswerVariable(v) => {
                write!(f, "answer variable {v} is listed more than once")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// Creates a k-ary query. Every free variable of the formula must appear among the
    /// answer variables (answer variables not occurring in the formula are allowed and
    /// simply range over the active domain).
    pub fn new<I, S>(free: I, formula: Formula) -> Result<Self, QueryError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let free: Vec<String> = free.into_iter().map(Into::into).collect();
        let mut seen = std::collections::BTreeSet::new();
        for v in &free {
            if !seen.insert(v.clone()) {
                return Err(QueryError::DuplicateAnswerVariable(v.clone()));
            }
        }
        for v in formula.free_variables() {
            if !free.contains(&v) {
                return Err(QueryError::UnlistedFreeVariable(v));
            }
        }
        Ok(Query { free, formula })
    }

    /// Creates a Boolean query from a sentence.
    ///
    /// # Panics
    /// Panics if the formula has free variables.
    pub fn boolean(formula: Formula) -> Self {
        assert!(
            formula.is_sentence(),
            "Query::boolean requires a sentence; free variables: {:?}",
            formula.free_variables()
        );
        Query {
            free: Vec::new(),
            formula,
        }
    }

    /// The answer variables in output order.
    pub fn answer_variables(&self) -> &[String] {
        &self.free
    }

    /// The arity of the query.
    pub fn arity(&self) -> usize {
        self.free.len()
    }

    /// Returns `true` iff the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// The defining formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_boolean() {
            write!(f, "Q() :- {}", self.formula)
        } else {
            write!(f, "Q({}) :- {}", self.free.join(", "), self.formula)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    #[test]
    fn builds_kary_query() {
        let f = Formula::exists(
            ["z"],
            Formula::and([
                Formula::atom("R", [Term::var("x"), Term::var("z")]),
                Formula::atom("S", [Term::var("z"), Term::var("y")]),
            ]),
        );
        let q = Query::new(["x", "y"], f).unwrap();
        assert_eq!(q.arity(), 2);
        assert!(!q.is_boolean());
        assert_eq!(q.answer_variables(), ["x".to_string(), "y".to_string()]);
        assert!(q.to_string().starts_with("Q(x, y) :-"));
    }

    #[test]
    fn rejects_unlisted_free_variable() {
        let f = Formula::atom("R", [Term::var("x"), Term::var("y")]);
        let err = Query::new(["x"], f).unwrap_err();
        assert_eq!(err, QueryError::UnlistedFreeVariable("y".into()));
        assert!(err.to_string().contains("not listed"));
    }

    #[test]
    fn rejects_duplicate_answer_variables() {
        let f = Formula::atom("R", [Term::var("x")]);
        let err = Query::new(["x", "x"], f).unwrap_err();
        assert_eq!(err, QueryError::DuplicateAnswerVariable("x".into()));
    }

    #[test]
    fn extra_answer_variables_are_allowed() {
        let f = Formula::atom("R", [Term::var("x")]);
        let q = Query::new(["x", "y"], f).unwrap();
        assert_eq!(q.arity(), 2);
    }

    #[test]
    fn boolean_query_from_sentence() {
        let f = Formula::exists(["x"], Formula::atom("R", [Term::var("x")]));
        let q = Query::boolean(f);
        assert!(q.is_boolean());
        assert_eq!(q.arity(), 0);
        assert!(q.to_string().starts_with("Q() :-"));
    }

    #[test]
    #[should_panic(expected = "requires a sentence")]
    fn boolean_query_rejects_free_variables() {
        Query::boolean(Formula::atom("R", [Term::var("x")]));
    }
}
