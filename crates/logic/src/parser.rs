//! A small text syntax for first-order formulas and queries.
//!
//! The syntax is ASCII-friendly:
//!
//! ```text
//! formula     := implication
//! implication := disjunction [ "->" implication ]
//! disjunction := conjunction { "|" conjunction }
//! conjunction := unary { "&" unary }
//! unary       := "!" unary
//!              | ("exists" | "forall") var+ "." formula
//!              | "(" formula ")"
//!              | "true" | "false"
//!              | atom | term "=" term
//! atom        := RelationName "(" [ term { "," term } ] ")"
//! term        := variable | integer | 'string'
//! ```
//!
//! Relation names start with an upper-case letter, variables with a lower-case letter.
//! Quantifier bodies extend as far to the right as possible.
//!
//! Queries use the rule-like syntax `Q(x, y) :- formula`; a bare formula denotes a
//! Boolean query when it is a sentence, and otherwise a query whose answer variables
//! are the free variables in alphabetical order.
//!
//! ```
//! use nev_logic::{parse_formula, parse_query};
//! let q = parse_query("Q(x, y) :- exists z . R(x, z) & S(z, y)").unwrap();
//! assert_eq!(q.arity(), 2);
//! let f = parse_formula("forall x . exists y . D(x, y)").unwrap();
//! assert!(f.is_sentence());
//! ```

use std::fmt;

use crate::ast::{Formula, Term};
use crate::query::Query;

/// A parse error with a human-readable message and the byte offset where it occurred.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the input at which the problem was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Bang,
    Amp,
    Pipe,
    Arrow,
    Equals,
    Turnstile, // ":-"
}

struct Lexer<'a> {
    input: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input,
            chars: input.char_indices().peekable(),
        }
    }

    fn error(&self, offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    fn tokenize(&mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut tokens = Vec::new();
        while let Some(&(offset, ch)) = self.chars.peek() {
            match ch {
                c if c.is_whitespace() => {
                    self.chars.next();
                }
                '(' => {
                    self.chars.next();
                    tokens.push((offset, Token::LParen));
                }
                ')' => {
                    self.chars.next();
                    tokens.push((offset, Token::RParen));
                }
                ',' => {
                    self.chars.next();
                    tokens.push((offset, Token::Comma));
                }
                '.' => {
                    self.chars.next();
                    tokens.push((offset, Token::Dot));
                }
                '!' => {
                    self.chars.next();
                    tokens.push((offset, Token::Bang));
                }
                '&' => {
                    self.chars.next();
                    tokens.push((offset, Token::Amp));
                }
                '|' => {
                    self.chars.next();
                    tokens.push((offset, Token::Pipe));
                }
                '=' => {
                    self.chars.next();
                    tokens.push((offset, Token::Equals));
                }
                ':' => {
                    self.chars.next();
                    match self.chars.peek() {
                        Some(&(_, '-')) => {
                            self.chars.next();
                            tokens.push((offset, Token::Turnstile));
                        }
                        _ => return Err(self.error(offset, "expected ':-'")),
                    }
                }
                '-' => {
                    self.chars.next();
                    match self.chars.peek() {
                        Some(&(_, '>')) => {
                            self.chars.next();
                            tokens.push((offset, Token::Arrow));
                        }
                        Some(&(_, c)) if c.is_ascii_digit() => {
                            let (end_offset, n) = self.lex_integer(offset)?;
                            tokens.push((end_offset, Token::Int(-n)));
                        }
                        _ => return Err(self.error(offset, "expected '->' or a number after '-'")),
                    }
                }
                '\'' => {
                    self.chars.next();
                    let start = offset + 1;
                    let end;
                    loop {
                        match self.chars.next() {
                            Some((i, '\'')) => {
                                end = i;
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.error(offset, "unterminated string literal")),
                        }
                    }
                    tokens.push((offset, Token::Str(self.input[start..end].to_string())));
                }
                c if c.is_ascii_digit() => {
                    let (o, n) = self.lex_integer(offset)?;
                    tokens.push((o, Token::Int(n)));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let start = offset;
                    while let Some(&(_, c)) = self.chars.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            self.chars.next();
                        } else {
                            break;
                        }
                    }
                    let end = self
                        .chars
                        .peek()
                        .map(|&(i, _)| i)
                        .unwrap_or(self.input.len());
                    tokens.push((start, Token::Ident(self.input[start..end].to_string())));
                }
                other => return Err(self.error(offset, format!("unexpected character '{other}'"))),
            }
        }
        Ok(tokens)
    }

    fn lex_integer(&mut self, offset: usize) -> Result<(usize, i64), ParseError> {
        let mut digits = String::new();
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        digits
            .parse::<i64>()
            .map(|n| (offset, n))
            .map_err(|_| self.error(offset, "integer literal out of range"))
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    position: usize,
}

impl Parser {
    fn new(tokens: Vec<(usize, Token)>) -> Self {
        Parser {
            tokens,
            position: 0,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.position)
            .or_else(|| self.tokens.last())
            .map(|(o, _)| *o)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.position).map(|(_, t)| t.clone());
        if t.is_some() {
            self.position += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(token) {
            self.position += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn at_end(&self) -> bool {
        self.position >= self.tokens.len()
    }

    fn parse_formula(&mut self) -> Result<Formula, ParseError> {
        let left = self.parse_disjunction()?;
        if self.peek() == Some(&Token::Arrow) {
            self.advance();
            let right = self.parse_formula()?;
            Ok(Formula::implies(left, right))
        } else {
            Ok(left)
        }
    }

    fn parse_disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_conjunction()?];
        while self.peek() == Some(&Token::Pipe) {
            self.advance();
            parts.push(self.parse_conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Formula::Or(parts)
        })
    }

    fn parse_conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_unary()?];
        while self.peek() == Some(&Token::Amp) {
            self.advance();
            parts.push(self.parse_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Formula::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Token::Bang) => {
                self.advance();
                Ok(Formula::not(self.parse_unary()?))
            }
            Some(Token::LParen) => {
                self.advance();
                let inner = self.parse_formula()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "true" => {
                    self.advance();
                    Ok(Formula::True)
                }
                "false" => {
                    self.advance();
                    Ok(Formula::False)
                }
                "exists" | "forall" => {
                    self.advance();
                    let vars = self.parse_variable_list()?;
                    self.expect(&Token::Dot, "'.' after quantified variables")?;
                    let body = self.parse_formula()?;
                    Ok(if name == "exists" {
                        Formula::exists(vars, body)
                    } else {
                        Formula::forall(vars, body)
                    })
                }
                _ => self.parse_atom_or_equality(),
            },
            Some(Token::Int(_)) | Some(Token::Str(_)) => self.parse_atom_or_equality(),
            _ => Err(self.error("expected a formula")),
        }
    }

    fn parse_variable_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut vars = Vec::new();
        while let Some(Token::Ident(name)) = self.peek() {
            if name == "exists" || name == "forall" || name == "true" || name == "false" {
                break;
            }
            if !starts_lowercase(name) {
                return Err(self.error(format!(
                    "'{name}' is not a variable (must start lower-case)"
                )));
            }
            vars.push(name.clone());
            self.advance();
        }
        if vars.is_empty() {
            return Err(self.error("expected at least one quantified variable"));
        }
        Ok(vars)
    }

    fn parse_atom_or_equality(&mut self) -> Result<Formula, ParseError> {
        // Either RelName(terms…) or term = term.
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            if starts_uppercase(&name) {
                self.advance();
                self.expect(&Token::LParen, "'(' after relation name")?;
                let mut terms = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        terms.push(self.parse_term()?);
                        if self.peek() == Some(&Token::Comma) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen, "')' to close the atom")?;
                return Ok(Formula::Atom {
                    relation: name,
                    terms,
                });
            }
        }
        let left = self.parse_term()?;
        self.expect(&Token::Equals, "'=' in equality atom")?;
        let right = self.parse_term()?;
        Ok(Formula::Eq(left, right))
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.advance() {
            Some(Token::Ident(name)) if starts_lowercase(&name) => Ok(Term::var(name)),
            Some(Token::Ident(name)) => Err(self.error(format!(
                "'{name}' cannot be used as a term (variables are lower-case)"
            ))),
            Some(Token::Int(i)) => Ok(Term::int(i)),
            Some(Token::Str(s)) => Ok(Term::str(s)),
            _ => Err(self.error("expected a term")),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        // Look ahead for "Name ( vars ) :-".
        let checkpoint = self.position;
        if let Some(Token::Ident(_)) = self.peek() {
            if let Ok(head) = self.try_parse_head() {
                let body = self.parse_formula()?;
                if !self.at_end() {
                    return Err(self.error("unexpected trailing input"));
                }
                return Query::new(head, body).map_err(|e| ParseError {
                    message: e.to_string(),
                    offset: 0,
                });
            }
            self.position = checkpoint;
        }
        let body = self.parse_formula()?;
        if !self.at_end() {
            return Err(self.error("unexpected trailing input"));
        }
        let free: Vec<String> = body.free_variables().into_iter().collect();
        Query::new(free, body).map_err(|e| ParseError {
            message: e.to_string(),
            offset: 0,
        })
    }

    fn try_parse_head(&mut self) -> Result<Vec<String>, ParseError> {
        let start = self.position;
        let result = (|| {
            let Some(Token::Ident(_)) = self.advance() else {
                return Err(self.error("expected query name"));
            };
            self.expect(&Token::LParen, "'('")?;
            let mut vars = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    match self.advance() {
                        Some(Token::Ident(v)) if starts_lowercase(&v) => vars.push(v),
                        _ => return Err(self.error("expected an answer variable")),
                    }
                    if self.peek() == Some(&Token::Comma) {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen, "')'")?;
            self.expect(&Token::Turnstile, "':-'")?;
            Ok(vars)
        })();
        if result.is_err() {
            self.position = start;
        }
        result
    }
}

fn starts_lowercase(s: &str) -> bool {
    s.chars()
        .next()
        .map(|c| c.is_lowercase() || c == '_')
        .unwrap_or(false)
}

fn starts_uppercase(s: &str) -> bool {
    s.chars().next().map(char::is_uppercase).unwrap_or(false)
}

/// Parses a formula from its text representation.
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let tokens = Lexer::new(input).tokenize()?;
    let mut parser = Parser::new(tokens);
    let formula = parser.parse_formula()?;
    if !parser.at_end() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(formula)
}

/// Parses a query: either `Name(x, y) :- formula`, or a bare formula (whose free
/// variables, in alphabetical order, become the answer variables).
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = Lexer::new(input).tokenize()?;
    let mut parser = Parser::new(tokens);
    parser.parse_query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{classify, Fragment};

    #[test]
    fn parses_intro_query() {
        let q = parse_query("Q(x, y) :- exists z . R(x, z) & S(z, y)").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(classify(q.formula()), Fragment::ExistentialPositive);
        assert_eq!(q.formula().to_string(), "exists z . (R(x, z) & S(z, y))");
    }

    #[test]
    fn parses_boolean_sentences() {
        let f = parse_formula("forall x . exists y . D(x, y)").unwrap();
        assert!(f.is_sentence());
        assert_eq!(classify(&f), Fragment::Positive);
        let g = parse_formula("exists x y . D(x, y) & D(y, x)").unwrap();
        assert!(g.is_sentence());
        assert_eq!(classify(&g), Fragment::ExistentialPositive);
    }

    #[test]
    fn parses_guarded_universals() {
        let f = parse_formula("forall x y . R(x, y) -> exists z . R(y, z)").unwrap();
        assert_eq!(classify(&f), Fragment::PositiveGuarded);
        let g = parse_formula("forall x z . x = z -> R(x, z)").unwrap();
        assert_eq!(classify(&g), Fragment::PositiveGuarded);
    }

    #[test]
    fn parses_negation_and_precedence() {
        let f = parse_formula("!R(x) | S(x) & T(x)").unwrap();
        // & binds tighter than |, so this is (!R(x)) ∨ (S(x) ∧ T(x)).
        assert_eq!(
            f,
            Formula::Or(vec![
                Formula::not(Formula::atom("R", [Term::var("x")])),
                Formula::And(vec![
                    Formula::atom("S", [Term::var("x")]),
                    Formula::atom("T", [Term::var("x")]),
                ]),
            ])
        );
        assert_eq!(classify(&f), Fragment::FullFirstOrder);
    }

    #[test]
    fn implication_is_right_associative_and_loosest() {
        let f = parse_formula("R(x) -> S(x) -> T(x)").unwrap();
        match f {
            Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Implies(_, _))),
            other => panic!("unexpected: {other}"),
        }
        let g = parse_formula("R(x) & S(x) -> T(x)").unwrap();
        match g {
            Formula::Implies(lhs, _) => assert!(matches!(*lhs, Formula::And(_))),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn parses_constants_and_strings() {
        let f = parse_formula("R(1, x) & x = 'paris' & S(-3)").unwrap();
        assert!(f.constants().contains(&nev_incomplete::Constant::int(1)));
        assert!(f
            .constants()
            .contains(&nev_incomplete::Constant::str("paris")));
        assert!(f.constants().contains(&nev_incomplete::Constant::int(-3)));
    }

    #[test]
    fn parses_true_false_and_nullary_atoms() {
        assert_eq!(parse_formula("true").unwrap(), Formula::True);
        assert_eq!(parse_formula("false").unwrap(), Formula::False);
        let f = parse_formula("P()").unwrap();
        assert_eq!(
            f,
            Formula::Atom {
                relation: "P".into(),
                terms: vec![]
            }
        );
    }

    #[test]
    fn bare_formula_query_orders_free_variables() {
        let q = parse_query("R(y, x)").unwrap();
        assert_eq!(q.answer_variables(), ["x".to_string(), "y".to_string()]);
        let b = parse_query("exists x . R(x, x)").unwrap();
        assert!(b.is_boolean());
    }

    /// Exemplar formulas exercising every production of the grammar, used by the
    /// round-trip tests below.
    const EXEMPLARS: [&str; 16] = [
        // The paper's worked queries.
        "exists z . (R(x, z) & S(z, y))",
        "forall u . exists v . D(u, v)",
        "forall u . D(u, u)",
        "exists u . !D(u, u)",
        // Connectives, precedence and associativity.
        "forall x . (R(x) -> (S(x) | T(x, 1)))",
        "!(exists u . D(u, u))",
        "forall a b . (E(a, b) -> E(b, a))",
        "!R(x) | S(x) & T(x)",
        "R(x) -> S(x) -> T(x)",
        "R(x) & S(x) & T(x) | R(y)",
        // Equality, constants, strings, negative integers.
        "x = y & R(x, y)",
        "R(1, x) & x = 'paris' & S(-3)",
        // Truth constants and nullary atoms.
        "true | false",
        "P() & true",
        // Multi-variable quantifier blocks and guarded universals.
        "forall x y . (R(x, y) -> exists z . R(y, z))",
        "exists x y z . (R(x, y) & R(y, z) & R(z, x))",
    ];

    #[test]
    fn display_parse_round_trip() {
        for text in EXEMPLARS {
            let f = parse_formula(text).unwrap();
            let reparsed = parse_formula(&f.to_string()).unwrap();
            assert_eq!(f, reparsed, "round-trip failed for {text}");
        }
    }

    #[test]
    fn query_display_parse_round_trip() {
        // Rendered queries re-parse to the same head and body, for Boolean and k-ary
        // heads alike (`Q() :- …` exercises the empty-head production).
        for text in EXEMPLARS {
            let q = parse_query(text).unwrap();
            let reparsed = parse_query(&q.to_string()).unwrap();
            assert_eq!(
                q.answer_variables(),
                reparsed.answer_variables(),
                "head round-trip failed for {text}"
            );
            assert_eq!(
                q.formula(),
                reparsed.formula(),
                "body round-trip failed for {text}"
            );
        }
    }

    #[test]
    fn round_trip_normalises_to_a_fixed_point() {
        // Display output is itself a fixed point: render(parse(render(f))) == render(f),
        // so textual comparison of formulas is reliable.
        for text in EXEMPLARS {
            let once = parse_formula(text).unwrap().to_string();
            let twice = parse_formula(&once).unwrap().to_string();
            assert_eq!(once, twice, "display is not a fixed point for {text}");
        }
    }

    #[test]
    fn error_reporting() {
        assert!(parse_formula("R(x").is_err());
        assert!(parse_formula("exists . R(x)").is_err());
        assert!(parse_formula("R(x) &&").is_err());
        assert!(parse_formula("R(x) extra").is_err());
        assert!(parse_formula("x = ").is_err());
        assert!(parse_formula("'unterminated").is_err());
        assert!(parse_formula("R(x) -").is_err());
        assert!(
            parse_formula("forall X . R(X)").is_err(),
            "upper-case variables are rejected"
        );
        let err = parse_formula("R(x").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        assert!(
            parse_query("Q(x) :- R(x, y)").is_err(),
            "free variable y not in head"
        );
    }

    #[test]
    fn uppercase_ident_as_term_is_rejected() {
        assert!(parse_formula("R(X)").is_err());
        assert!(parse_formula("Foo = x").is_err());
    }

    #[test]
    fn negative_numbers_and_arrow_disambiguation() {
        let f = parse_formula("R(-5) -> S(-1)").unwrap();
        assert!(matches!(f, Formula::Implies(_, _)));
    }
}
