//! Active-domain evaluation of FO formulas, and naïve evaluation.
//!
//! The paper assumes the *active domain semantics* for relational first-order queries
//! (§2.4): quantifiers range over `adom(D)`, the set of values actually occurring in
//! the instance. Evaluating a query directly on an incomplete database — treating
//! nulls as ordinary values that are equal only when syntactically identical — and
//! then discarding answer tuples that contain nulls is **naïve evaluation**. Whether
//! this two-step procedure computes the certain answers is precisely the question the
//! paper answers; the comparison itself lives in `nev-core`.

use std::collections::{BTreeMap, BTreeSet};

use nev_incomplete::{Instance, Tuple, Value};

use crate::ast::{Formula, Term};
use crate::query::Query;

/// A variable assignment used during evaluation.
pub type Assignment = BTreeMap<String, Value>;

fn term_value(term: &Term, assignment: &Assignment) -> Option<Value> {
    match term {
        Term::Var(v) => assignment.get(v).cloned(),
        Term::Const(c) => Some(Value::Const(c.clone())),
    }
}

/// Returns `true` iff `instance, assignment ⊨ formula` under the active-domain
/// semantics, with nulls treated as ordinary values (syntactic equality).
///
/// Free variables of the formula must be bound by the assignment; unbound variables
/// make the enclosing atom false (they can never be satisfied), which only matters for
/// ill-formed inputs.
pub fn satisfies(instance: &Instance, formula: &Formula, assignment: &Assignment) -> bool {
    let domain: Vec<Value> = instance.adom().into_iter().collect();
    let mut current = assignment.clone();
    satisfies_with_domain(instance, formula, &mut current, &domain)
}

/// The recursive satisfaction check. `assignment` is threaded mutably — quantifiers
/// extend it in place and restore it on the way out — so no per-candidate clones are
/// made anywhere below the one clone in the public entry points. `domain` is the
/// active domain, shared as a slice for the same reason.
fn satisfies_with_domain(
    instance: &Instance,
    formula: &Formula,
    assignment: &mut Assignment,
    domain: &[Value],
) -> bool {
    match formula {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom { relation, terms } => {
            let Some(rel) = instance.relation(relation) else {
                return false;
            };
            let mut values = Vec::with_capacity(terms.len());
            for t in terms {
                match term_value(t, assignment) {
                    Some(v) => values.push(v),
                    None => return false,
                }
            }
            rel.contains(&values.into_iter().collect())
        }
        Formula::Eq(a, b) => match (term_value(a, assignment), term_value(b, assignment)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
        Formula::Not(inner) => !satisfies_with_domain(instance, inner, assignment, domain),
        Formula::And(parts) => parts
            .iter()
            .all(|p| satisfies_with_domain(instance, p, assignment, domain)),
        Formula::Or(parts) => parts
            .iter()
            .any(|p| satisfies_with_domain(instance, p, assignment, domain)),
        Formula::Implies(a, b) => {
            !satisfies_with_domain(instance, a, assignment, domain)
                || satisfies_with_domain(instance, b, assignment, domain)
        }
        Formula::Exists(vars, body) => assign_all(domain, vars, assignment, &mut |extended| {
            satisfies_with_domain(instance, body, extended, domain)
        }),
        Formula::Forall(vars, body) => !assign_all(domain, vars, assignment, &mut |extended| {
            !satisfies_with_domain(instance, body, extended, domain)
        }),
    }
}

/// Tries every extension of `assignment` mapping `vars` into `domain`, mutating and
/// restoring the assignment in place; returns `true` as soon as `test` accepts one.
fn assign_all(
    domain: &[Value],
    vars: &[String],
    current: &mut Assignment,
    test: &mut dyn FnMut(&mut Assignment) -> bool,
) -> bool {
    match vars.split_first() {
        None => test(current),
        Some((v, rest)) => {
            for value in domain {
                let previous = current.insert(v.clone(), value.clone());
                let found = assign_all(domain, rest, current, test);
                match previous {
                    Some(p) => {
                        current.insert(v.clone(), p);
                    }
                    None => {
                        current.remove(v);
                    }
                }
                if found {
                    return true;
                }
            }
            false
        }
    }
}

/// Evaluates a Boolean query (sentence) on the instance, with nulls treated as
/// ordinary values. This is the first step of naïve evaluation; for Boolean queries
/// there is no second step (§2.4).
pub fn evaluate_boolean(instance: &Instance, formula: &Formula) -> bool {
    debug_assert!(formula.is_sentence(), "evaluate_boolean expects a sentence");
    satisfies(instance, formula, &Assignment::new())
}

/// Evaluates a k-ary query on the instance under the active-domain semantics,
/// returning the set of answer tuples `Q(D) ⊆ adom(D)ᵏ` (nulls may appear in answers).
pub fn evaluate_query(instance: &Instance, query: &Query) -> BTreeSet<Tuple> {
    let domain: Vec<Value> = instance.adom().into_iter().collect();
    let mut answers = BTreeSet::new();
    let vars = query.answer_variables();
    collect_answers(
        instance,
        query.formula(),
        &domain,
        vars,
        &mut Assignment::new(),
        &mut answers,
    );
    answers
}

fn collect_answers(
    instance: &Instance,
    formula: &Formula,
    domain: &[Value],
    vars: &[String],
    current: &mut Assignment,
    answers: &mut BTreeSet<Tuple>,
) {
    // Enumerate the cartesian product of the active domain over the answer variables,
    // reusing one mutable assignment for every candidate tuple.
    let k = vars.len();
    if k == 0 {
        if satisfies_with_domain(instance, formula, current, domain) {
            answers.insert(Tuple::new(Vec::new()));
        }
        return;
    }
    if domain.is_empty() {
        return;
    }
    let mut indices = vec![0usize; k];
    loop {
        for (v, idx) in vars.iter().zip(&indices) {
            current.insert(v.clone(), domain[*idx].clone());
        }
        if satisfies_with_domain(instance, formula, current, domain) {
            let tuple: Tuple = vars.iter().map(|v| current[v].clone()).collect();
            answers.insert(tuple);
        }
        // Advance the counter.
        let mut pos = 0;
        loop {
            if pos == k {
                for v in vars {
                    current.remove(v);
                }
                return;
            }
            indices[pos] += 1;
            if indices[pos] < domain.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

/// Naïve evaluation of a k-ary query (§2.4): evaluate the query on the incomplete
/// instance as if nulls were ordinary values, then keep only the answer tuples made
/// entirely of constants — the set written `Q^C(D)` in §8.
pub fn naive_eval_query(instance: &Instance, query: &Query) -> BTreeSet<Tuple> {
    evaluate_query(instance, query)
        .into_iter()
        .filter(Tuple::is_complete)
        .collect()
}

/// Naïve evaluation of a Boolean query: for sentences the "drop tuples with nulls"
/// step is vacuous, so this is plain evaluation on the incomplete instance.
pub fn naive_eval_boolean(instance: &Instance, query: &Query) -> bool {
    debug_assert!(
        query.is_boolean(),
        "naive_eval_boolean expects a Boolean query"
    );
    evaluate_boolean(instance, query.formula())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    /// The instance of the paper's introduction.
    fn intro_instance() -> Instance {
        inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        }
    }

    /// φ(x,y) = ∃z (R(x,z) ∧ S(z,y)).
    fn intro_query() -> Query {
        let f = Formula::exists(
            ["z"],
            Formula::and([
                Formula::atom("R", [Term::var("x"), Term::var("z")]),
                Formula::atom("S", [Term::var("z"), Term::var("y")]),
            ]),
        );
        Query::new(["x", "y"], f).unwrap()
    }

    #[test]
    fn intro_example_evaluation() {
        // Evaluating naïvely returns (1,4) and (⊥2,5); dropping nulls leaves (1,4).
        let d = intro_instance();
        let q = intro_query();
        let raw = evaluate_query(&d, &q);
        assert_eq!(raw.len(), 2);
        assert!(raw.contains(&Tuple::new(vec![c(1), c(4)])));
        assert!(raw.contains(&Tuple::new(vec![x(2), c(5)])));
        let naive = naive_eval_query(&d, &q);
        assert_eq!(naive.len(), 1);
        assert!(naive.contains(&Tuple::new(vec![c(1), c(4)])));
    }

    #[test]
    fn boolean_queries_on_d0() {
        // D0 = {(⊥,⊥′),(⊥′,⊥)}; §2.4 discusses two sentences on it.
        let d0 = inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] };
        let sym = Query::boolean(Formula::exists(
            ["u", "v"],
            Formula::and([
                Formula::atom("D", [Term::var("u"), Term::var("v")]),
                Formula::atom("D", [Term::var("v"), Term::var("u")]),
            ]),
        ));
        assert!(naive_eval_boolean(&d0, &sym));
        let total = Query::boolean(Formula::forall(
            ["u"],
            Formula::exists(["v"], Formula::atom("D", [Term::var("u"), Term::var("v")])),
        ));
        assert!(naive_eval_boolean(&d0, &total));
    }

    #[test]
    fn nulls_compare_syntactically() {
        let d = inst! { "R" => [[x(1), x(1)], [x(1), x(2)]] };
        // ∃u R(u,u) is true (⊥1 = ⊥1)…
        let loops = Query::boolean(Formula::exists(
            ["u"],
            Formula::atom("R", [Term::var("u"), Term::var("u")]),
        ));
        assert!(naive_eval_boolean(&d, &loops));
        // …but ∀u∀v R(u,v) is false because R(⊥2, ⊥1) is absent.
        let all = Query::boolean(Formula::forall(
            ["u", "v"],
            Formula::atom("R", [Term::var("u"), Term::var("v")]),
        ));
        assert!(!naive_eval_boolean(&d, &all));
    }

    #[test]
    fn equality_and_constants_in_atoms() {
        let d = inst! { "R" => [[c(1), c(2)]] };
        let q = Query::boolean(Formula::exists(
            ["u"],
            Formula::and([
                Formula::atom("R", [Term::int(1), Term::var("u")]),
                Formula::eq(Term::var("u"), Term::int(2)),
            ]),
        ));
        assert!(naive_eval_boolean(&d, &q));
        let q_false = Query::boolean(Formula::exists(
            ["u"],
            Formula::and([
                Formula::atom("R", [Term::int(1), Term::var("u")]),
                Formula::eq(Term::var("u"), Term::int(3)),
            ]),
        ));
        assert!(!naive_eval_boolean(&d, &q_false));
    }

    #[test]
    fn negation_and_implication() {
        let d = inst! { "R" => [[c(1)]], "S" => [[c(2)]] };
        // ∀u (R(u) → S(u)) is false: R(1) holds but S(1) does not.
        let imp = Query::boolean(Formula::forall(
            ["u"],
            Formula::implies(
                Formula::atom("R", [Term::var("u")]),
                Formula::atom("S", [Term::var("u")]),
            ),
        ));
        assert!(!naive_eval_boolean(&d, &imp));
        // ∃u ¬R(u) is true: 2 is in the active domain and not in R.
        let neg = Query::boolean(Formula::exists(
            ["u"],
            Formula::not(Formula::atom("R", [Term::var("u")])),
        ));
        assert!(naive_eval_boolean(&d, &neg));
    }

    #[test]
    fn quantifiers_over_empty_active_domain() {
        let empty = Instance::new();
        let ex = Query::boolean(Formula::exists(["u"], Formula::True));
        let fa = Query::boolean(Formula::forall(["u"], Formula::False));
        assert!(!naive_eval_boolean(&empty, &ex));
        assert!(naive_eval_boolean(&empty, &fa));
        assert!(evaluate_boolean(&empty, &Formula::True));
        assert!(!evaluate_boolean(&empty, &Formula::False));
    }

    #[test]
    fn missing_relation_atoms_are_false() {
        let d = inst! { "R" => [[c(1)]] };
        let q = Query::boolean(Formula::exists(["u"], Formula::atom("T", [Term::var("u")])));
        assert!(!naive_eval_boolean(&d, &q));
    }

    #[test]
    fn kary_query_with_constant_answers_only() {
        // Q(u) = R(u) over {R(1), R(⊥)}: raw answers {1, ⊥}, naïve answers {1}.
        let d = inst! { "R" => [[c(1)], [x(1)]] };
        let q = Query::new(["u"], Formula::atom("R", [Term::var("u")])).unwrap();
        let raw = evaluate_query(&d, &q);
        assert_eq!(raw.len(), 2);
        let naive = naive_eval_query(&d, &q);
        assert_eq!(naive.len(), 1);
        assert!(naive.contains(&Tuple::new(vec![c(1)])));
    }

    #[test]
    fn answer_variables_not_in_formula_range_over_adom() {
        let d = inst! { "R" => [[c(1)], [c(2)]] };
        let q = Query::new(["u", "v"], Formula::atom("R", [Term::var("u")])).unwrap();
        let raw = evaluate_query(&d, &q);
        // u ∈ {1,2} satisfying R, v ranges over the whole active domain {1,2}.
        assert_eq!(raw.len(), 4);
    }

    #[test]
    fn zero_ary_answers_encode_booleans() {
        let d = inst! { "R" => [[c(1)]] };
        let q_true = Query::boolean(Formula::exists(["u"], Formula::atom("R", [Term::var("u")])));
        let q_false = Query::boolean(Formula::exists(["u"], Formula::atom("S", [Term::var("u")])));
        assert_eq!(evaluate_query(&d, &q_true).len(), 1);
        assert_eq!(evaluate_query(&d, &q_false).len(), 0);
    }

    #[test]
    fn satisfies_with_explicit_assignment() {
        let d = inst! { "R" => [[c(1), x(1)]] };
        let f = Formula::atom("R", [Term::var("a"), Term::var("b")]);
        let mut assignment = Assignment::new();
        assignment.insert("a".into(), c(1));
        assignment.insert("b".into(), x(1));
        assert!(satisfies(&d, &f, &assignment));
        assignment.insert("b".into(), x(2));
        assert!(!satisfies(&d, &f, &assignment));
        // Unbound variables make atoms false rather than panicking.
        assert!(!satisfies(&d, &f, &Assignment::new()));
    }
}
