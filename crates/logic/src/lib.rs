//! # `nev-logic` — first-order queries over incomplete databases
//!
//! This crate provides the query-language layer of the `naive-eval` workspace:
//!
//! * [`ast`] — the abstract syntax of relational first-order logic (with equality and
//!   a primitive implication connective used for the *universal guards* of §5);
//! * [`parser`] — a small text syntax for formulas, used by tests, examples and the
//!   experiment harness;
//! * [`fragment`] — the syntactic fragments of the paper: `∃Pos` (unions of
//!   conjunctive queries), `Pos`, `Pos+∀G` and `∃Pos+∀G_bool` (§5, §7);
//! * [`eval`] — active-domain evaluation of FO formulas over (possibly incomplete)
//!   instances, treating nulls as ordinary values, and **naïve evaluation** (§2.4):
//!   evaluate, then discard answer tuples containing nulls;
//! * [`query`] — k-ary queries (a formula plus an ordered tuple of free variables);
//! * [`cq`] — conjunctive queries and unions of conjunctive queries as first-class
//!   data, their canonical (frozen) instances, and evaluation by homomorphism;
//! * [`rewrite`] — semantics-preserving rewrites into the executable core
//!   (`→` elimination, `∀ ⇒ ¬∃¬`) used by the `nev-exec` compiler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cq;
pub mod eval;
pub mod fragment;
pub mod parser;
pub mod query;
pub mod rewrite;

pub use ast::{Formula, Term};
pub use eval::{evaluate_boolean, evaluate_query, naive_eval_boolean, naive_eval_query};
pub use fragment::{Fragment, ParseFragmentError};
pub use parser::{parse_formula, parse_query, ParseError};
pub use query::Query;
