//! Rewrites toward the executable core of the language.
//!
//! The compiled execution engine (`nev-exec`) lowers formulas into relational
//! algebra. Its lowering only has to understand the connectives
//! `true/false/atom/=/¬/∧/∨/∃` because the two remaining connectives are
//! definable: `φ → ψ ≡ ¬φ ∨ ψ` and `∀x̄ φ ≡ ¬∃x̄ ¬φ`. Both rewrites are applied
//! under the *active-domain* semantics of [`crate::eval`], where they are exact
//! equivalences (quantifiers on both sides range over the same `adom(D)`).
//!
//! The rewrites deliberately use the raw AST constructors, not the flattening
//! smart constructors, so the output shape is predictable for the lowering and
//! the rewritten formula prints close to its textbook form.

use crate::ast::Formula;

/// Replaces every implication `φ → ψ` by `¬φ ∨ ψ`, recursively.
pub fn eliminate_implications(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => f.clone(),
        Formula::Not(inner) => Formula::Not(Box::new(eliminate_implications(inner))),
        Formula::And(parts) => Formula::And(parts.iter().map(eliminate_implications).collect()),
        Formula::Or(parts) => Formula::Or(parts.iter().map(eliminate_implications).collect()),
        Formula::Implies(a, b) => Formula::Or(vec![
            Formula::Not(Box::new(eliminate_implications(a))),
            eliminate_implications(b),
        ]),
        Formula::Exists(vars, body) => {
            Formula::Exists(vars.clone(), Box::new(eliminate_implications(body)))
        }
        Formula::Forall(vars, body) => {
            Formula::Forall(vars.clone(), Box::new(eliminate_implications(body)))
        }
    }
}

/// Replaces every universal quantifier `∀x̄ φ` by `¬∃x̄ ¬φ`, recursively.
pub fn eliminate_universals(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => f.clone(),
        Formula::Not(inner) => Formula::Not(Box::new(eliminate_universals(inner))),
        Formula::And(parts) => Formula::And(parts.iter().map(eliminate_universals).collect()),
        Formula::Or(parts) => Formula::Or(parts.iter().map(eliminate_universals).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(eliminate_universals(a)),
            Box::new(eliminate_universals(b)),
        ),
        Formula::Exists(vars, body) => {
            Formula::Exists(vars.clone(), Box::new(eliminate_universals(body)))
        }
        Formula::Forall(vars, body) => Formula::Not(Box::new(Formula::Exists(
            vars.clone(),
            Box::new(Formula::Not(Box::new(eliminate_universals(body)))),
        ))),
    }
}

/// Rewrites a formula into the executable core `true/false/atom/=/¬/∧/∨/∃`:
/// implications become `¬φ ∨ ψ` and universals become `¬∃¬` (in that order, so the
/// implications produced nowhere reintroduce `∀`).
pub fn to_executable_core(f: &Formula) -> Formula {
    eliminate_universals(&eliminate_implications(f))
}

/// Returns `true` iff the formula uses only the executable core connectives.
pub fn is_executable_core(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => true,
        Formula::Not(inner) => is_executable_core(inner),
        Formula::And(parts) | Formula::Or(parts) => parts.iter().all(is_executable_core),
        Formula::Implies(_, _) | Formula::Forall(_, _) => false,
        Formula::Exists(_, body) => is_executable_core(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_query, satisfies, Assignment};
    use crate::parser::parse_formula;
    use crate::query::Query;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    fn rewrite_cases() -> Vec<Formula> {
        [
            "forall u . exists v . D(u, v)",
            "forall u v . D(u, v) -> D(v, u)",
            "exists u . D(u, u) & (forall v w . D(v, w) -> D(w, v))",
            "forall u . (D(u, u) | exists v . D(u, v))",
            "exists u . !D(u, u)",
            "forall u . u = u",
            "(exists u v . D(u, v)) -> (exists w . D(w, w))",
        ]
        .iter()
        .map(|s| parse_formula(s).expect("valid formula"))
        .collect()
    }

    #[test]
    fn rewrites_produce_the_executable_core() {
        for f in rewrite_cases() {
            let core = to_executable_core(&f);
            assert!(is_executable_core(&core), "{f} → {core}");
            assert_eq!(
                f.free_variables(),
                core.free_variables(),
                "free variables must be preserved: {f}"
            );
        }
    }

    #[test]
    fn rewrites_preserve_active_domain_semantics() {
        let instances = [
            inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] },
            inst! { "D" => [[c(1), c(2)], [c(2), c(2)]] },
            inst! { "D" => [[x(1), x(1)]] },
            nev_incomplete::Instance::new(),
        ];
        for f in rewrite_cases() {
            let core = to_executable_core(&f);
            for d in &instances {
                if f.is_sentence() {
                    assert_eq!(
                        satisfies(d, &f, &Assignment::new()),
                        satisfies(d, &core, &Assignment::new()),
                        "{f} vs {core} on {d}"
                    );
                } else {
                    let vars: Vec<String> = f.free_variables().into_iter().collect();
                    let q = Query::new(vars.clone(), f.clone()).expect("well-formed");
                    let qc = Query::new(vars, core.clone()).expect("well-formed");
                    assert_eq!(
                        evaluate_query(d, &q),
                        evaluate_query(d, &qc),
                        "{f} vs {core} on {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn forall_becomes_not_exists_not() {
        let f = parse_formula("forall u . D(u, u)").expect("valid");
        let core = eliminate_universals(&f);
        assert_eq!(core.to_string(), "!(exists u . !D(u, u))");
    }

    #[test]
    fn implication_becomes_disjunction() {
        let f = parse_formula("D(u, u) -> D(u, v)").expect("valid");
        let core = eliminate_implications(&f);
        assert_eq!(core.to_string(), "!D(u, u) | D(u, v)");
    }
}
