//! Rewrites toward the executable core of the language.
//!
//! The compiled execution engine (`nev-exec`) lowers formulas into relational
//! algebra. Its lowering only has to understand the connectives
//! `true/false/atom/=/¬/∧/∨/∃` because the two remaining connectives are
//! definable: `φ → ψ ≡ ¬φ ∨ ψ` and `∀x̄ φ ≡ ¬∃x̄ ¬φ`. Both rewrites are applied
//! under the *active-domain* semantics of [`crate::eval`], where they are exact
//! equivalences (quantifiers on both sides range over the same `adom(D)`).
//!
//! The rewrites deliberately use the raw AST constructors, not the flattening
//! smart constructors, so the output shape is predictable for the lowering and
//! the rewritten formula prints close to its textbook form.

use crate::ast::Formula;

/// Replaces every implication `φ → ψ` by `¬φ ∨ ψ`, recursively.
pub fn eliminate_implications(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => f.clone(),
        Formula::Not(inner) => Formula::Not(Box::new(eliminate_implications(inner))),
        Formula::And(parts) => Formula::And(parts.iter().map(eliminate_implications).collect()),
        Formula::Or(parts) => Formula::Or(parts.iter().map(eliminate_implications).collect()),
        Formula::Implies(a, b) => Formula::Or(vec![
            Formula::Not(Box::new(eliminate_implications(a))),
            eliminate_implications(b),
        ]),
        Formula::Exists(vars, body) => {
            Formula::Exists(vars.clone(), Box::new(eliminate_implications(body)))
        }
        Formula::Forall(vars, body) => {
            Formula::Forall(vars.clone(), Box::new(eliminate_implications(body)))
        }
    }
}

/// Replaces every universal quantifier `∀x̄ φ` by `¬∃x̄ ¬φ`, recursively.
pub fn eliminate_universals(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => f.clone(),
        Formula::Not(inner) => Formula::Not(Box::new(eliminate_universals(inner))),
        Formula::And(parts) => Formula::And(parts.iter().map(eliminate_universals).collect()),
        Formula::Or(parts) => Formula::Or(parts.iter().map(eliminate_universals).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(eliminate_universals(a)),
            Box::new(eliminate_universals(b)),
        ),
        Formula::Exists(vars, body) => {
            Formula::Exists(vars.clone(), Box::new(eliminate_universals(body)))
        }
        Formula::Forall(vars, body) => Formula::Not(Box::new(Formula::Exists(
            vars.clone(),
            Box::new(Formula::Not(Box::new(eliminate_universals(body)))),
        ))),
    }
}

/// Rewrites a formula into the executable core `true/false/atom/=/¬/∧/∨/∃`:
/// implications become `¬φ ∨ ψ` and universals become `¬∃¬` (in that order, so the
/// implications produced nowhere reintroduce `∀`).
pub fn to_executable_core(f: &Formula) -> Formula {
    eliminate_universals(&eliminate_implications(f))
}

/// Bottom-up constant folding: `¬⊤ ⇒ ⊥`, `t = t ⇒ ⊤`, distinct constants `c ≠ c'
/// ⇒ ⊥`, absorption of `⊤`/`⊥` in `∧`/`∨`/`→`, complementary pairs `φ ∧ ¬φ ⇒ ⊥`
/// and `φ ∨ ¬φ ⇒ ⊤`, plus the two quantifier folds that are exact under the
/// active-domain semantics: `∃x̄ ⊥ ⇒ ⊥` and `∀x̄ ⊤ ⇒ ⊤`. (`∃x̄ ⊤` and `∀x̄ ⊥` are
/// **not** folded: on an empty active domain they differ from their bodies.)
///
/// `φ → ⊥` is also deliberately left alone — rewriting it to `¬φ` would destroy
/// the guarded-universal shape `∀x̄ (R(x̄) → ⊥)` that `Pos+∀G` recognises;
/// [`eliminate_unguarded_implications`] deals with the unguarded occurrences.
///
/// Every rewrite is an exact equivalence on every instance (complete or not)
/// under the two-valued active-domain semantics of [`crate::eval`].
pub fn fold_constants(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } => f.clone(),
        Formula::Eq(a, b) => {
            if a == b {
                Formula::True
            } else if matches!(
                (a, b),
                (crate::ast::Term::Const(_), crate::ast::Term::Const(_))
            ) {
                // Distinct constants denote distinct values in every world.
                Formula::False
            } else {
                f.clone()
            }
        }
        Formula::Not(inner) => match fold_constants(inner) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            other => Formula::Not(Box::new(other)),
        },
        Formula::And(parts) => {
            let mut out: Vec<Formula> = Vec::new();
            for p in parts {
                match fold_constants(p) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    other => out.push(other),
                }
            }
            if has_complementary_pair(&out) {
                return Formula::False;
            }
            match out.len() {
                0 => Formula::True,
                1 => out.pop().expect("one element"),
                _ => Formula::And(out),
            }
        }
        Formula::Or(parts) => {
            let mut out: Vec<Formula> = Vec::new();
            for p in parts {
                match fold_constants(p) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    other => out.push(other),
                }
            }
            if has_complementary_pair(&out) {
                return Formula::True;
            }
            match out.len() {
                0 => Formula::False,
                1 => out.pop().expect("one element"),
                _ => Formula::Or(out),
            }
        }
        Formula::Implies(a, b) => {
            let fa = fold_constants(a);
            let fb = fold_constants(b);
            if matches!(fa, Formula::True) {
                return fb;
            }
            if matches!(fa, Formula::False) || matches!(fb, Formula::True) {
                return Formula::True;
            }
            Formula::Implies(Box::new(fa), Box::new(fb))
        }
        Formula::Exists(vars, body) => match fold_constants(body) {
            Formula::False => Formula::False,
            other => Formula::Exists(vars.clone(), Box::new(other)),
        },
        Formula::Forall(vars, body) => match fold_constants(body) {
            Formula::True => Formula::True,
            other => Formula::Forall(vars.clone(), Box::new(other)),
        },
    }
}

/// Returns `true` iff the slice contains some `φ` together with its syntactic
/// negation `¬φ` — the witness behind the `φ ∧ ¬φ ⇒ ⊥` / `φ ∨ ¬φ ⇒ ⊤` folds
/// (exact for *any* φ: the active-domain semantics is two-valued).
fn has_complementary_pair(parts: &[Formula]) -> bool {
    parts.iter().any(|p| {
        parts
            .iter()
            .any(|q| matches!(q, Formula::Not(inner) if inner.as_ref() == p))
    })
}

/// Replaces every implication by `¬φ ∨ ψ` **except** the guarded universals
/// `∀x̄ (R(x̄) → φ)` recognised by [`crate::fragment::is_universal_guard`], whose
/// implication is the defining shape of the `Pos+∀G` / `∃Pos+∀G_bool` fragments
/// and must survive normalization for the classifier to see it.
pub fn eliminate_unguarded_implications(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => f.clone(),
        Formula::Not(inner) => Formula::Not(Box::new(eliminate_unguarded_implications(inner))),
        Formula::And(parts) => {
            Formula::And(parts.iter().map(eliminate_unguarded_implications).collect())
        }
        Formula::Or(parts) => {
            Formula::Or(parts.iter().map(eliminate_unguarded_implications).collect())
        }
        Formula::Implies(a, b) => Formula::or([
            Formula::Not(Box::new(eliminate_unguarded_implications(a))),
            eliminate_unguarded_implications(b),
        ]),
        Formula::Exists(vars, body) => Formula::Exists(
            vars.clone(),
            Box::new(eliminate_unguarded_implications(body)),
        ),
        Formula::Forall(vars, body) => match body.as_ref() {
            Formula::Implies(guard, inner) if crate::fragment::is_universal_guard(guard, vars) => {
                Formula::Forall(
                    vars.clone(),
                    Box::new(Formula::Implies(
                        guard.clone(),
                        Box::new(eliminate_unguarded_implications(inner)),
                    )),
                )
            }
            _ => Formula::Forall(
                vars.clone(),
                Box::new(eliminate_unguarded_implications(body)),
            ),
        },
    }
}

/// Pushes negations down to atoms (negation normal form): `¬¬φ ⇒ φ`, De Morgan
/// over `∧`/`∨`, `¬∃ ⇒ ∀¬`, `¬∀ ⇒ ∃¬`, `¬(φ → ψ) ⇒ φ ∧ ¬ψ`. Positive guarded
/// universals `∀x̄ (R(x̄) → φ)` are kept intact (the guard is an atom, so there is
/// nothing to push through it); under negation they become `∃x̄ (R(x̄) ∧ ¬φ)` like
/// any other implication.
pub fn push_negations(f: &Formula) -> Formula {
    nnf(f, false)
}

fn nnf(f: &Formula, negate: bool) -> Formula {
    match f {
        Formula::True => {
            if negate {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if negate {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Atom { .. } | Formula::Eq(_, _) => {
            if negate {
                Formula::Not(Box::new(f.clone()))
            } else {
                f.clone()
            }
        }
        Formula::Not(inner) => nnf(inner, !negate),
        Formula::And(parts) => {
            let kids: Vec<Formula> = parts.iter().map(|p| nnf(p, negate)).collect();
            if negate {
                Formula::Or(kids)
            } else {
                Formula::And(kids)
            }
        }
        Formula::Or(parts) => {
            let kids: Vec<Formula> = parts.iter().map(|p| nnf(p, negate)).collect();
            if negate {
                Formula::And(kids)
            } else {
                Formula::Or(kids)
            }
        }
        Formula::Implies(a, b) => {
            if negate {
                Formula::And(vec![nnf(a, false), nnf(b, true)])
            } else {
                Formula::Or(vec![nnf(a, true), nnf(b, false)])
            }
        }
        Formula::Exists(vars, body) => {
            if negate {
                Formula::Forall(vars.clone(), Box::new(nnf(body, true)))
            } else {
                Formula::Exists(vars.clone(), Box::new(nnf(body, false)))
            }
        }
        Formula::Forall(vars, body) => {
            if negate {
                Formula::Exists(vars.clone(), Box::new(nnf(body, true)))
            } else {
                match body.as_ref() {
                    Formula::Implies(guard, inner)
                        if crate::fragment::is_universal_guard(guard, vars) =>
                    {
                        Formula::Forall(
                            vars.clone(),
                            Box::new(Formula::Implies(guard.clone(), Box::new(nnf(inner, false)))),
                        )
                    }
                    _ => Formula::Forall(vars.clone(), Box::new(nnf(body, false))),
                }
            }
        }
    }
}

/// Flattens nested `∧`/`∨` (via the smart constructors) and drops syntactically
/// duplicate operands, keeping the first occurrence — `φ ∧ φ ≡ φ` and `φ ∨ φ ≡ φ`
/// under set semantics.
pub fn flatten_connectives(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => f.clone(),
        Formula::Not(inner) => Formula::Not(Box::new(flatten_connectives(inner))),
        Formula::And(parts) => match Formula::and(parts.iter().map(flatten_connectives)) {
            Formula::And(kids) => Formula::and(dedup_preserving_order(kids)),
            other => other,
        },
        Formula::Or(parts) => match Formula::or(parts.iter().map(flatten_connectives)) {
            Formula::Or(kids) => Formula::or(dedup_preserving_order(kids)),
            other => other,
        },
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(flatten_connectives(a)),
            Box::new(flatten_connectives(b)),
        ),
        Formula::Exists(vars, body) => {
            Formula::Exists(vars.clone(), Box::new(flatten_connectives(body)))
        }
        Formula::Forall(vars, body) => {
            Formula::Forall(vars.clone(), Box::new(flatten_connectives(body)))
        }
    }
}

fn dedup_preserving_order(parts: Vec<Formula>) -> Vec<Formula> {
    let mut out: Vec<Formula> = Vec::with_capacity(parts.len());
    for p in parts {
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

/// Drops quantified variables that do not occur free in the body. The fold is
/// careful about the active-domain edge cases:
///
/// * a *partially* vacuous block sheds its unused variables (`∃u v . φ(v)` ≡
///   `∃v . φ(v)` — both sides already force a non-empty domain through `v`);
/// * a *fully* vacuous `∃`-block is dropped only when the body syntactically
///   forces a non-empty active domain (a relational atom or another `∃`);
///   otherwise one variable is kept, because `∃u . ⊤` is false on the empty
///   instance while `⊤` is true;
/// * dually, a fully vacuous `∀`-block is dropped only over a body that holds
///   vacuously on the empty domain (another `∀`), since `∀u . ⊥` is true there.
pub fn prune_vacuous_quantifiers(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => f.clone(),
        Formula::Not(inner) => Formula::Not(Box::new(prune_vacuous_quantifiers(inner))),
        Formula::And(parts) => Formula::And(parts.iter().map(prune_vacuous_quantifiers).collect()),
        Formula::Or(parts) => Formula::Or(parts.iter().map(prune_vacuous_quantifiers).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(prune_vacuous_quantifiers(a)),
            Box::new(prune_vacuous_quantifiers(b)),
        ),
        Formula::Exists(vars, body) => prune_block(true, vars, prune_vacuous_quantifiers(body)),
        Formula::Forall(vars, body) => prune_block(false, vars, prune_vacuous_quantifiers(body)),
    }
}

fn prune_block(exists: bool, vars: &[String], body: Formula) -> Formula {
    if vars.is_empty() {
        // A raw empty-range quantifier (unreachable from the parser, possible
        // from AST builders) binds nothing: `∃∅.φ ≡ ∀∅.φ ≡ φ`.
        return body;
    }
    let free = body.free_variables();
    let mut kept: Vec<String> = Vec::new();
    for v in vars {
        if free.contains(v) && !kept.contains(v) {
            kept.push(v.clone());
        }
    }
    if kept.is_empty() {
        let droppable = if exists {
            // φ ⇒ adom ≠ ∅: a relational atom needs a witness tuple, an ∃ a witness value.
            matches!(body, Formula::Atom { .. } | Formula::Exists(_, _))
        } else {
            // adom = ∅ ⇒ φ: another universal holds vacuously there.
            matches!(body, Formula::Forall(_, _))
        };
        if droppable {
            return body;
        }
        kept.push(vars[0].clone());
    }
    if exists {
        Formula::Exists(kept, Box::new(body))
    } else {
        Formula::Forall(kept, Box::new(body))
    }
}

/// Returns `true` iff the formula uses only the executable core connectives.
pub fn is_executable_core(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => true,
        Formula::Not(inner) => is_executable_core(inner),
        Formula::And(parts) | Formula::Or(parts) => parts.iter().all(is_executable_core),
        Formula::Implies(_, _) | Formula::Forall(_, _) => false,
        Formula::Exists(_, body) => is_executable_core(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_query, satisfies, Assignment};
    use crate::parser::parse_formula;
    use crate::query::Query;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    fn rewrite_cases() -> Vec<Formula> {
        [
            "forall u . exists v . D(u, v)",
            "forall u v . D(u, v) -> D(v, u)",
            "exists u . D(u, u) & (forall v w . D(v, w) -> D(w, v))",
            "forall u . (D(u, u) | exists v . D(u, v))",
            "exists u . !D(u, u)",
            "forall u . u = u",
            "(exists u v . D(u, v)) -> (exists w . D(w, w))",
        ]
        .iter()
        .map(|s| parse_formula(s).expect("valid formula"))
        .collect()
    }

    #[test]
    fn rewrites_produce_the_executable_core() {
        for f in rewrite_cases() {
            let core = to_executable_core(&f);
            assert!(is_executable_core(&core), "{f} → {core}");
            assert_eq!(
                f.free_variables(),
                core.free_variables(),
                "free variables must be preserved: {f}"
            );
        }
    }

    #[test]
    fn rewrites_preserve_active_domain_semantics() {
        let instances = [
            inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] },
            inst! { "D" => [[c(1), c(2)], [c(2), c(2)]] },
            inst! { "D" => [[x(1), x(1)]] },
            nev_incomplete::Instance::new(),
        ];
        for f in rewrite_cases() {
            let core = to_executable_core(&f);
            for d in &instances {
                if f.is_sentence() {
                    assert_eq!(
                        satisfies(d, &f, &Assignment::new()),
                        satisfies(d, &core, &Assignment::new()),
                        "{f} vs {core} on {d}"
                    );
                } else {
                    let vars: Vec<String> = f.free_variables().into_iter().collect();
                    let q = Query::new(vars.clone(), f.clone()).expect("well-formed");
                    let qc = Query::new(vars, core.clone()).expect("well-formed");
                    assert_eq!(
                        evaluate_query(d, &q),
                        evaluate_query(d, &qc),
                        "{f} vs {core} on {d}"
                    );
                }
            }
        }
    }

    /// A named normalization pass.
    type NamedPass = (&'static str, fn(&Formula) -> Formula);

    /// The full normalization pass list, in pipeline order (mirrored by
    /// `nev-analyze`): every entry must preserve active-domain semantics on
    /// every instance — the property pinned below and by the umbrella
    /// proptests in `tests/cross_crate_properties.rs`.
    fn normalization_passes() -> Vec<NamedPass> {
        vec![
            ("fold_constants", fold_constants),
            (
                "eliminate_unguarded_implications",
                eliminate_unguarded_implications,
            ),
            ("push_negations", push_negations),
            ("flatten_connectives", flatten_connectives),
            ("prune_vacuous_quantifiers", prune_vacuous_quantifiers),
        ]
    }

    fn normalization_cases() -> Vec<Formula> {
        [
            // Double negation hiding an ∃Pos query inside a FO-classified shell.
            "!(!(exists u . D(u, u)))",
            // Implication chain that folds into ∃Pos after ⊥-absorption.
            "(forall u . (D(u, u) -> false)) -> (exists w . D(w, w))",
            // Guarded universal that must survive every pass untouched.
            "forall u v . D(u, v) -> D(v, u)",
            // Complementary conjunction: statically unsatisfiable.
            "exists u . D(u, u) & !D(u, u)",
            // Complementary disjunction: tautology.
            "(exists u . D(u, u)) | !(exists u . D(u, u))",
            // Constant conditions.
            "exists u . D(u, u) & 1 = 1",
            "exists u . D(u, u) & 1 = 2",
            "exists u . u = u",
            // Vacuous quantifiers, partial and full blocks.
            "exists u v . D(u, u)",
            "exists u . exists v . D(v, v)",
            "forall u . forall v . D(v, v)",
            "forall u . true",
            "exists u . true",
            "forall u . false",
            "exists u . false",
            // Negations to push through every connective.
            "!(exists u . D(u, u) & (forall v . D(v, v)))",
            "!((exists u . D(u, u)) -> (exists v . D(v, v)))",
            "!(forall u v . D(u, v) -> D(v, u))",
            // Nested duplicates for the flattener.
            "(exists u . D(u, u)) & ((exists u . D(u, u)) & (exists w . D(w, w)))",
            "(exists u . D(u, u)) | ((exists u . D(u, u)) | (exists w . D(w, w)))",
        ]
        .iter()
        .map(|s| parse_formula(s).expect("valid formula"))
        .collect()
    }

    fn eval_instances() -> Vec<nev_incomplete::Instance> {
        vec![
            inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] },
            inst! { "D" => [[c(1), c(2)], [c(2), c(2)]] },
            inst! { "D" => [[x(1), x(1)], [c(1), x(2)]] },
            // The empty instance: the active-domain quantifier edge cases live here.
            nev_incomplete::Instance::new(),
        ]
    }

    fn assert_equivalent_on(f: &Formula, g: &Formula, d: &nev_incomplete::Instance, label: &str) {
        if f.is_sentence() && g.is_sentence() {
            assert_eq!(
                satisfies(d, f, &Assignment::new()),
                satisfies(d, g, &Assignment::new()),
                "{label}: {f} vs {g} on {d}"
            );
        } else {
            let vars: Vec<String> = f.free_variables().into_iter().collect();
            let q = Query::new(vars.clone(), f.clone()).expect("well-formed");
            let qg = Query::new(vars, g.clone()).expect("well-formed");
            assert_eq!(
                evaluate_query(d, &q),
                evaluate_query(d, &qg),
                "{label}: {f} vs {g} on {d}"
            );
        }
    }

    #[test]
    fn normalization_passes_preserve_active_domain_semantics() {
        for f in normalization_cases().into_iter().chain(rewrite_cases()) {
            for (name, pass) in normalization_passes() {
                let g = pass(&f);
                assert!(
                    g.free_variables().is_subset(&f.free_variables()),
                    "{name} must not invent free variables: {f} → {g}"
                );
                for d in &eval_instances() {
                    assert_equivalent_on(&f, &g, d, name);
                }
            }
        }
    }

    #[test]
    fn normalization_passes_compose_and_are_idempotent_at_fixpoint() {
        for f in normalization_cases() {
            // Run the pipeline to a fixpoint, then check one more round changes nothing.
            let mut current = f.clone();
            for _ in 0..8 {
                let mut changed = false;
                for (_, pass) in normalization_passes() {
                    let next = pass(&current);
                    if next != current {
                        current = next;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for (name, pass) in normalization_passes() {
                assert_eq!(pass(&current), current, "{name} not at fixpoint for {f}");
            }
            for d in &eval_instances() {
                assert_equivalent_on(&f, &current, d, "pipeline");
            }
        }
    }

    #[test]
    fn fold_constants_detects_complements_and_constant_conditions() {
        let cases = [
            ("exists u . D(u, u) & !D(u, u)", "false"),
            ("(exists u . D(u, u)) | !(exists u . D(u, u))", "true"),
            ("exists u . D(u, u) & 1 = 1", "exists u . D(u, u)"),
            ("exists u . D(u, u) & 1 = 2", "false"),
            ("forall u . u = u", "true"),
            ("forall u . (D(u, u) -> true)", "true"),
        ];
        for (input, expected) in cases {
            let f = parse_formula(input).expect("valid");
            assert_eq!(fold_constants(&f).to_string(), expected, "{input}");
        }
    }

    #[test]
    fn fold_constants_keeps_guarded_false_consequent() {
        // Rewriting `∀x̄ (R(x̄) → ⊥)` to `∀x̄ ¬R(x̄)` would leave Pos+∀G; the fold
        // must keep the guarded implication intact.
        let f = parse_formula("forall u v . D(u, v) -> false").expect("valid");
        assert_eq!(fold_constants(&f), f);
    }

    #[test]
    fn push_negations_cancels_double_negation() {
        let f = parse_formula("!(!(exists u . D(u, u)))").expect("valid");
        assert_eq!(push_negations(&f).to_string(), "exists u . D(u, u)");
        let g = parse_formula("!(forall u . exists v . D(u, v))").expect("valid");
        assert_eq!(
            push_negations(&g).to_string(),
            "exists u . (forall v . !D(u, v))"
        );
    }

    #[test]
    fn push_negations_preserves_positive_guarded_universals() {
        let f = parse_formula("forall u v . D(u, v) -> D(v, u)").expect("valid");
        assert_eq!(push_negations(&f), f);
        // Under negation the guard behaves like any implication: ∃x̄ (R ∧ ¬φ).
        let g = parse_formula("!(forall u v . D(u, v) -> D(v, u))").expect("valid");
        assert_eq!(
            push_negations(&g).to_string(),
            "exists u v . (D(u, v) & !D(v, u))"
        );
    }

    #[test]
    fn eliminate_unguarded_implications_keeps_guards() {
        let guarded = parse_formula("forall u v . D(u, v) -> D(v, u)").expect("valid");
        assert_eq!(eliminate_unguarded_implications(&guarded), guarded);
        let unguarded = parse_formula("D(u, u) -> D(u, v)").expect("valid");
        assert_eq!(
            eliminate_unguarded_implications(&unguarded).to_string(),
            "!D(u, u) | D(u, v)"
        );
        // A universal whose body is an implication but not a guard is rewritten.
        let not_a_guard = parse_formula("forall u . D(u, u) -> D(u, u)").expect("valid");
        assert_eq!(
            eliminate_unguarded_implications(&not_a_guard).to_string(),
            "forall u . (!D(u, u) | D(u, u))"
        );
    }

    #[test]
    fn flatten_deduplicates_and_unwraps() {
        let f =
            parse_formula("(exists u . D(u, u)) & ((exists u . D(u, u)) & (exists w . D(w, w)))")
                .expect("valid");
        assert_eq!(
            flatten_connectives(&f).to_string(),
            "(exists u . D(u, u)) & (exists w . D(w, w))"
        );
        let g = parse_formula("(exists u . D(u, u)) | (exists u . D(u, u))").expect("valid");
        assert_eq!(flatten_connectives(&g).to_string(), "exists u . D(u, u)");
    }

    #[test]
    fn prune_vacuous_quantifiers_respects_empty_domain_semantics() {
        let cases = [
            // Partial blocks shed unused variables.
            ("exists u v . D(u, u)", "exists u . D(u, u)"),
            ("forall u v . D(u, u)", "forall u . D(u, u)"),
            // Fully vacuous ∃ over an atom/∃ body is dropped…
            ("exists u . exists v . D(v, v)", "exists v . D(v, v)"),
            // …but kept over ⊤ (false on the empty instance) and ⊥.
            ("exists u . true", "exists u . true"),
            ("forall u . false", "forall u . false"),
            // Fully vacuous ∀ over another ∀ is dropped.
            ("forall u . forall v . D(v, v)", "forall v . D(v, v)"),
            // Fully vacuous ∀ over an atom must stay (true on the empty instance).
            ("forall u . D(1, 2)", "forall u . D(1, 2)"),
        ];
        for (input, expected) in cases {
            let f = parse_formula(input).expect("valid");
            assert_eq!(
                prune_vacuous_quantifiers(&f).to_string(),
                expected,
                "{input}"
            );
        }
    }

    #[test]
    fn forall_becomes_not_exists_not() {
        let f = parse_formula("forall u . D(u, u)").expect("valid");
        let core = eliminate_universals(&f);
        assert_eq!(core.to_string(), "!(exists u . !D(u, u))");
    }

    #[test]
    fn implication_becomes_disjunction() {
        let f = parse_formula("D(u, u) -> D(u, v)").expect("valid");
        let core = eliminate_implications(&f);
        assert_eq!(core.to_string(), "!D(u, u) | D(u, v)");
    }

    mod properties {
        use super::*;
        use crate::ast::Term;
        use nev_incomplete::{Instance, Schema, Tuple, Value};
        use proptest::prelude::*;

        /// xorshift64* — a tiny deterministic RNG so formula generation needs no
        /// dependencies beyond the seed drawn by proptest.
        fn next(state: &mut u64) -> u64 {
            let mut x = *state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn random_term(state: &mut u64) -> Term {
            match next(state) % 4 {
                0 => Term::int((next(state) % 3) as i64 + 1),
                1 => Term::var("u"),
                2 => Term::var("v"),
                _ => Term::var("w"),
            }
        }

        fn random_var(state: &mut u64) -> &'static str {
            match next(state) % 3 {
                0 => "u",
                1 => "v",
                _ => "w",
            }
        }

        /// Arbitrary FO formulas over D/2 — a structural superset of all five
        /// fragments, with constants appearing inside atoms and equalities.
        fn random_formula(state: &mut u64, depth: usize) -> Formula {
            let choice = if depth == 0 {
                next(state) % 4
            } else {
                next(state) % 10
            };
            match choice {
                0 => Formula::atom("D", [random_term(state), random_term(state)]),
                1 => Formula::atom("D", [random_term(state), random_term(state)]),
                2 => Formula::eq(random_term(state), random_term(state)),
                3 => {
                    if next(state) % 2 == 0 {
                        Formula::True
                    } else {
                        Formula::False
                    }
                }
                4 => Formula::Not(Box::new(random_formula(state, depth - 1))),
                5 => Formula::and([
                    random_formula(state, depth - 1),
                    random_formula(state, depth - 1),
                ]),
                6 => Formula::or([
                    random_formula(state, depth - 1),
                    random_formula(state, depth - 1),
                ]),
                7 => Formula::Implies(
                    Box::new(random_formula(state, depth - 1)),
                    Box::new(random_formula(state, depth - 1)),
                ),
                8 => Formula::exists([random_var(state)], random_formula(state, depth - 1)),
                _ => Formula::forall([random_var(state)], random_formula(state, depth - 1)),
            }
        }

        fn value_strategy() -> impl Strategy<Value = Value> {
            prop_oneof![
                (1i64..=3).prop_map(Value::int),
                (1u32..=2).prop_map(Value::null),
            ]
        }

        /// Small instances over D/2, including the empty instance (weight 1 in 5).
        fn instance_strategy() -> impl Strategy<Value = Instance> {
            proptest::collection::vec((value_strategy(), value_strategy()), 0..=3).prop_map(
                |tuples| {
                    let mut inst = Instance::empty_of_schema(&Schema::from_relations([("D", 2)]));
                    for (a, b) in tuples {
                        inst.add_tuple("D", Tuple::new(vec![a, b]))
                            .expect("arity matches schema");
                    }
                    inst
                },
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

            /// Every normalization pass — and their composition to a fixpoint —
            /// preserves active-domain semantics on arbitrary formulas and
            /// instances, including the empty instance and constants in atoms.
            #[test]
            fn normalization_is_semantics_preserving(
                seed in 1u64..u64::MAX,
                d in instance_strategy(),
            ) {
                let mut state = seed;
                let f = random_formula(&mut state, 3);
                let mut pipeline = f.clone();
                for _ in 0..8 {
                    let mut changed = false;
                    for (_, pass) in normalization_passes() {
                        let next = pass(&pipeline);
                        if next != pipeline {
                            pipeline = next;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                for (name, pass) in normalization_passes() {
                    let g = pass(&f);
                    prop_assert!(
                        g.free_variables().is_subset(&f.free_variables()),
                        "{} invented free variables: {} → {}", name, f, g
                    );
                }
                let empty = Instance::new();
                if f.is_sentence() {
                    for inst in [&d, &empty] {
                        let expected = satisfies(inst, &f, &Assignment::new());
                        for (name, pass) in normalization_passes() {
                            prop_assert_eq!(
                                satisfies(inst, &pass(&f), &Assignment::new()),
                                expected,
                                "{}: {} on {}", name, f, inst
                            );
                        }
                        prop_assert_eq!(
                            satisfies(inst, &pipeline, &Assignment::new()),
                            expected,
                            "pipeline: {} → {} on {}", f, pipeline, inst
                        );
                    }
                } else {
                    let vars: Vec<String> = f.free_variables().into_iter().collect();
                    let q = Query::new(vars.clone(), f.clone()).expect("well-formed");
                    for inst in [&d, &empty] {
                        let expected = evaluate_query(inst, &q);
                        for (name, pass) in normalization_passes() {
                            let qn = Query::new(vars.clone(), pass(&f)).expect("well-formed");
                            prop_assert_eq!(
                                evaluate_query(inst, &qn),
                                expected.clone(),
                                "{}: {} on {}", name, f, inst
                            );
                        }
                        let qp = Query::new(vars.clone(), pipeline.clone())
                            .expect("well-formed");
                        prop_assert_eq!(
                            evaluate_query(inst, &qp),
                            expected,
                            "pipeline: {} → {} on {}", f, pipeline, inst
                        );
                    }
                }
            }
        }
    }
}
