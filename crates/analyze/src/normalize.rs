//! The normalization pipeline: named passes, traced rewrites, and the fixpoint
//! driver.
//!
//! Each pass is one of the semantics-preserving rewrites implemented in
//! [`nev_logic::rewrite`]; this module names them, runs them round-robin to a
//! fixpoint, and records a [`RewriteStep`] for every pass application that
//! changed the formula. The trace is the *evidence* behind a widened-dispatch
//! certificate: [`replay`] re-runs every step and fails if any recorded
//! `before → after` pair no longer reproduces, so a certificate holder can
//! re-check the derivation without trusting the analyzer.

use std::fmt;

use nev_logic::rewrite::{
    eliminate_unguarded_implications, flatten_connectives, fold_constants,
    prune_vacuous_quantifiers, push_negations,
};
use nev_logic::Formula;

/// One named normalization pass.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NormalizePass {
    /// Constant folding: `⊤`/`⊥` absorption, decidable equalities,
    /// complementary-pair collapse, empty-range quantifiers.
    FoldConstants,
    /// `φ → ψ ⇒ ¬φ ∨ ψ`, except universally guarded implications.
    EliminateUnguardedImplications,
    /// Negation normal form: push `¬` to the atoms (guards kept intact).
    PushNegations,
    /// Flatten nested `∧`/`∨` and drop syntactic duplicates.
    FlattenConnectives,
    /// Drop quantified variables that do not occur in the body, where that is
    /// exact under active-domain semantics.
    PruneVacuousQuantifiers,
}

/// The pipeline order. One round applies each pass once, in this order; the
/// driver repeats rounds until a whole round changes nothing.
pub const PIPELINE: [NormalizePass; 5] = [
    NormalizePass::FoldConstants,
    NormalizePass::EliminateUnguardedImplications,
    NormalizePass::PushNegations,
    NormalizePass::FlattenConnectives,
    NormalizePass::PruneVacuousQuantifiers,
];

/// Bound on fixpoint rounds. Every pass either shrinks the formula or moves
/// negations strictly inward, so real inputs converge in two or three rounds;
/// the bound is a defensive backstop, and [`normalize`] reports whether it was
/// hit via [`Normalized::converged`].
pub const MAX_ROUNDS: usize = 8;

impl NormalizePass {
    /// Applies this pass to a formula.
    pub fn apply(self, f: &Formula) -> Formula {
        match self {
            NormalizePass::FoldConstants => fold_constants(f),
            NormalizePass::EliminateUnguardedImplications => eliminate_unguarded_implications(f),
            NormalizePass::PushNegations => push_negations(f),
            NormalizePass::FlattenConnectives => flatten_connectives(f),
            NormalizePass::PruneVacuousQuantifiers => prune_vacuous_quantifiers(f),
        }
    }

    /// Short machine-friendly name, used in wire output and traces.
    pub fn name(self) -> &'static str {
        match self {
            NormalizePass::FoldConstants => "fold-constants",
            NormalizePass::EliminateUnguardedImplications => "eliminate-implications",
            NormalizePass::PushNegations => "push-negations",
            NormalizePass::FlattenConnectives => "flatten-connectives",
            NormalizePass::PruneVacuousQuantifiers => "prune-vacuous-quantifiers",
        }
    }
}

impl fmt::Display for NormalizePass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One recorded application of a pass that changed the formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RewriteStep {
    /// The pass that fired.
    pub pass: NormalizePass,
    /// The formula before the pass.
    pub before: Formula,
    /// The formula after the pass (differs from `before`).
    pub after: Formula,
}

impl fmt::Display for RewriteStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ⇒ {}", self.pass, self.before, self.after)
    }
}

/// Result of running the pipeline to a fixpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Normalized {
    /// The normal form.
    pub formula: Formula,
    /// Every pass application that changed the formula, in order.
    pub trace: Vec<RewriteStep>,
    /// False only if [`MAX_ROUNDS`] was exhausted before a quiet round.
    pub converged: bool,
}

/// Runs the full pipeline to a fixpoint (bounded by [`MAX_ROUNDS`] rounds),
/// recording a [`RewriteStep`] for each pass application that changed the
/// formula.
pub fn normalize(f: &Formula) -> Normalized {
    let mut current = f.clone();
    let mut trace = Vec::new();
    let mut converged = false;
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for pass in PIPELINE {
            let next = pass.apply(&current);
            if next != current {
                trace.push(RewriteStep {
                    pass,
                    before: current.clone(),
                    after: next.clone(),
                });
                current = next;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    Normalized {
        formula: current,
        trace,
        converged,
    }
}

/// Errors found while replaying a rewrite trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplayError {
    /// The first step's `before` is not the claimed original formula.
    WrongStart {
        /// What the trace starts from.
        found: Formula,
    },
    /// Step `index` does not chain: its `before` differs from the previous
    /// step's `after`.
    BrokenChain {
        /// Index of the offending step.
        index: usize,
    },
    /// Re-applying step `index`'s pass to its `before` did not reproduce its
    /// `after`.
    StepMismatch {
        /// Index of the offending step.
        index: usize,
        /// What the pass actually produced on replay.
        reproduced: Formula,
    },
    /// The last step's `after` is not the claimed normal form.
    WrongEnd {
        /// What the trace ends at.
        found: Formula,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::WrongStart { found } => {
                write!(
                    f,
                    "trace does not start at the original formula (starts at {found})"
                )
            }
            ReplayError::BrokenChain { index } => {
                write!(f, "step {index} does not chain from the previous step")
            }
            ReplayError::StepMismatch { index, reproduced } => {
                write!(
                    f,
                    "step {index} does not reproduce on replay (got {reproduced})"
                )
            }
            ReplayError::WrongEnd { found } => {
                write!(f, "trace does not end at the normal form (ends at {found})")
            }
        }
    }
}

/// Replays a rewrite trace: checks that it starts at `original`, that every
/// step chains and reproduces under its recorded pass, and that it ends at
/// `normalized`. An empty trace is valid exactly when the two formulas agree.
pub fn replay(
    original: &Formula,
    trace: &[RewriteStep],
    normalized: &Formula,
) -> Result<(), ReplayError> {
    let mut current = original;
    for (index, step) in trace.iter().enumerate() {
        if step.before != *current {
            return Err(if index == 0 {
                ReplayError::WrongStart {
                    found: step.before.clone(),
                }
            } else {
                ReplayError::BrokenChain { index }
            });
        }
        let reproduced = step.pass.apply(&step.before);
        if reproduced != step.after {
            return Err(ReplayError::StepMismatch { index, reproduced });
        }
        current = &step.after;
    }
    if current != normalized {
        return Err(ReplayError::WrongEnd {
            found: current.clone(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_logic::parse_formula;

    #[test]
    fn double_negation_normalizes_with_trace() {
        let f = parse_formula("!(!(exists u . S(u)))").expect("valid");
        let n = normalize(&f);
        assert!(n.converged);
        assert_eq!(n.formula.to_string(), "exists u . S(u)");
        assert!(!n.trace.is_empty());
        assert!(replay(&f, &n.trace, &n.formula).is_ok());
    }

    #[test]
    fn fixpoint_is_stable() {
        let f = parse_formula("(forall u . (S(u) -> false)) -> (exists w . S(w))").expect("valid");
        let n = normalize(&f);
        assert!(n.converged);
        let again = normalize(&n.formula);
        assert_eq!(again.formula, n.formula);
        assert!(again.trace.is_empty());
    }

    #[test]
    fn replay_rejects_tampered_traces() {
        let f = parse_formula("!(!(exists u . S(u)))").expect("valid");
        let n = normalize(&f);
        // Wrong original.
        let other = parse_formula("exists u . R(u, u)").expect("valid");
        assert!(replay(&other, &n.trace, &n.formula).is_err());
        // Wrong normal form.
        assert!(replay(&f, &n.trace, &other).is_err());
        // Tampered step.
        let mut tampered = n.trace.clone();
        tampered[0].after = other;
        assert!(replay(&f, &tampered, &n.formula).is_err());
        // Empty trace only valid when start == end.
        assert!(replay(&f, &[], &n.formula).is_err());
        assert!(replay(&f, &[], &f).is_ok());
    }
}
