//! Null-flow analysis: which answer columns can never carry nulls?
//!
//! The analysis computes, for each free variable `x` of a formula `φ`, a fact
//! that holds in *every* satisfying active-domain assignment: `x` is pinned to
//! a specific constant, `x` is non-null, or nothing is known. The rules are the
//! obvious sound ones:
//!
//! * `x = c` pins `x` to the constant `c` (constants are never nulls);
//! * `∧` unions facts, keeping the more precise one on collision;
//! * `∨` intersects facts — a fact survives only if every disjunct implies it,
//!   two different constants weaken to "non-null";
//! * quantifiers erase facts about their bound variables;
//! * `¬`, `→` and relational atoms contribute nothing (atoms happily bind
//!   nulls, and a negated equality pins nothing).
//!
//! A column proven non-null is immune to SQL's three-valued `Unknown` (see
//! [`nev_sql::report`]) and lets `nev-symbolic`'s sandwich skip the
//! incomplete-tuple side of its comparison for that column.

use std::collections::BTreeMap;

use nev_logic::{Formula, Query, Term};
use nev_sql::{ColumnNullability, ColumnReport, NullabilityReport};

/// The more precise of two facts known to hold simultaneously (used for `∧`).
fn meet(a: ColumnNullability, b: ColumnNullability) -> ColumnNullability {
    use ColumnNullability::*;
    match (a, b) {
        (Constant(c), _) | (_, Constant(c)) => Constant(c),
        (NonNull, _) | (_, NonNull) => NonNull,
        (MayBeNull, MayBeNull) => MayBeNull,
    }
}

/// The weaker of two facts from alternative branches (used for `∨`).
fn join(a: ColumnNullability, b: ColumnNullability) -> ColumnNullability {
    use ColumnNullability::*;
    match (a, b) {
        (Constant(c), Constant(d)) if c == d => Constant(c),
        (Constant(_) | NonNull, Constant(_) | NonNull) => NonNull,
        _ => MayBeNull,
    }
}

/// Facts holding for the free variables of `f` in every satisfying
/// active-domain assignment. Variables absent from the map are unconstrained.
pub fn infer_facts(f: &Formula) -> BTreeMap<String, ColumnNullability> {
    match f {
        Formula::Eq(Term::Var(x), Term::Const(c)) | Formula::Eq(Term::Const(c), Term::Var(x)) => {
            BTreeMap::from([(x.clone(), ColumnNullability::Constant(c.clone()))])
        }
        Formula::And(parts) => {
            let mut facts = BTreeMap::new();
            for p in parts {
                for (var, fact) in infer_facts(p) {
                    facts
                        .entry(var)
                        .and_modify(|existing: &mut ColumnNullability| {
                            *existing = meet(existing.clone(), fact.clone());
                        })
                        .or_insert(fact);
                }
            }
            facts
        }
        Formula::Or(parts) => {
            let mut iter = parts.iter();
            let Some(first) = iter.next() else {
                return BTreeMap::new();
            };
            let mut facts = infer_facts(first);
            for p in iter {
                let branch = infer_facts(p);
                facts = facts
                    .into_iter()
                    .filter_map(|(var, fact)| {
                        branch
                            .get(&var)
                            .map(|other| (var, join(fact, other.clone())))
                    })
                    .collect();
            }
            facts
        }
        Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
            let mut facts = infer_facts(body);
            for v in vars {
                facts.remove(v);
            }
            facts
        }
        // Atoms bind nulls freely; negation and implication flip or weaken
        // polarity, so neither contributes a positive fact.
        _ => BTreeMap::new(),
    }
}

/// Per-answer-column null-safety for a query. Answer variables that do not
/// occur in the formula range over the whole active domain (nulls included),
/// so they are reported [`ColumnNullability::MayBeNull`].
pub fn column_safety(query: &Query) -> NullabilityReport {
    let facts = infer_facts(query.formula());
    NullabilityReport {
        columns: query
            .answer_variables()
            .iter()
            .map(|v| ColumnReport {
                column: v.clone(),
                nullability: facts
                    .get(v)
                    .cloned()
                    .unwrap_or(ColumnNullability::MayBeNull),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::Constant;
    use nev_logic::parse_formula;

    fn safety_of(free: &[&str], formula: &str) -> Vec<ColumnNullability> {
        let f = parse_formula(formula).expect("valid");
        let q = Query::new(free.iter().map(|s| s.to_string()), f).expect("well-formed");
        column_safety(&q)
            .columns
            .into_iter()
            .map(|c| c.nullability)
            .collect()
    }

    #[test]
    fn constant_equations_pin_columns() {
        assert_eq!(
            safety_of(&["a"], "S(a) & a = 1"),
            vec![ColumnNullability::Constant(Constant::Int(1))]
        );
        assert_eq!(
            safety_of(&["a"], "1 = a & S(a)"),
            vec![ColumnNullability::Constant(Constant::Int(1))]
        );
    }

    #[test]
    fn disjunction_intersects_facts() {
        // Both branches pin `a` to the same constant.
        assert_eq!(
            safety_of(&["a"], "(S(a) & a = 1) | (R(a, a) & a = 1)"),
            vec![ColumnNullability::Constant(Constant::Int(1))]
        );
        // Different constants weaken to non-null.
        assert_eq!(
            safety_of(&["a"], "(a = 1) | (a = 2)"),
            vec![ColumnNullability::NonNull]
        );
        // One unconstrained branch erases the fact.
        assert_eq!(
            safety_of(&["a"], "(a = 1) | S(a)"),
            vec![ColumnNullability::MayBeNull]
        );
    }

    #[test]
    fn atoms_and_negation_prove_nothing() {
        assert_eq!(
            safety_of(&["a"], "S(a)"),
            vec![ColumnNullability::MayBeNull]
        );
        assert_eq!(
            safety_of(&["a"], "!(a = 1)"),
            vec![ColumnNullability::MayBeNull]
        );
    }

    #[test]
    fn quantifiers_erase_bound_facts_only() {
        assert_eq!(
            safety_of(&["a"], "exists b . R(a, b) & b = 2 & a = 1"),
            vec![ColumnNullability::Constant(Constant::Int(1))]
        );
    }

    #[test]
    fn unused_answer_variables_range_over_adom() {
        assert_eq!(
            safety_of(&["a", "b"], "S(a) & a = 1"),
            vec![
                ColumnNullability::Constant(Constant::Int(1)),
                ColumnNullability::MayBeNull
            ]
        );
    }
}
