//! # `nev-analyze` — static query analysis for naïve evaluation
//!
//! Figure 1 of *"When is Naïve Evaluation Possible?"* (Gheerbrant, Libkin &
//! Sirangelo, PODS 2013) states its guarantees for *syntactic* fragments, but
//! the property that actually powers naïve evaluation — monotonicity under the
//! semantics' ordering — is semantic. A query written as `¬¬∃x S(x)` classifies
//! `FullFirstOrder` and pays the symbolic/oracle path, even though it is
//! literally an ∃Pos query wearing two negations.
//!
//! This crate closes that gap *statically*, before any data is touched:
//!
//! 1. **Normalization** ([`normalize()`]): a fixpoint pipeline of
//!    semantics-preserving rewrites from [`nev_logic::rewrite`] — constant
//!    folding, unguarded-implication elimination, negation push-down,
//!    ∧/∨ flattening, vacuous-quantifier pruning — each application recorded in
//!    a replayable [`RewriteStep`] trace.
//! 2. **Fragment widening**: the Figure 1 classifier is re-run on the normal
//!    form; when it lands in a strictly smaller fragment the engine can
//!    dispatch naïvely with a certificate whose evidence is the trace
//!    (re-checkable via [`QueryAnalysis::check`]).
//! 3. **Static pruning**: normal forms `⊥`/`⊤` mean the certain answer is
//!    known with zero scans ([`QueryAnalysis::static_truth`]).
//! 4. **Null-flow typing** ([`column_safety`]): answer columns equated to
//!    constants can never carry nulls, surfaced as a
//!    [`nev_sql::NullabilityReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod normalize;
pub mod nullflow;

use std::fmt;

use nev_incomplete::Instance;
use nev_logic::eval::evaluate_query;
use nev_logic::fragment::classify;
use nev_logic::{Formula, Fragment, Query};

pub use normalize::{
    normalize, replay, NormalizePass, Normalized, ReplayError, RewriteStep, MAX_ROUNDS, PIPELINE,
};
pub use nullflow::{column_safety, infer_facts};

use nev_sql::NullabilityReport;

/// A fact the analysis established about a query, reportable over the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Diagnostic {
    /// The normal form is `⊥`: no tuple is ever a certain answer (for boolean
    /// queries, the certain answer is *false*). Zero scans needed.
    StaticallyFalse,
    /// The normal form is `⊤`: every tuple of active-domain values is an
    /// answer in every world (for boolean queries, certainly *true*).
    StaticallyTrue,
    /// Normalization moved the query into a strictly smaller fragment.
    FragmentWidened {
        /// Fragment of the original formula.
        from: Fragment,
        /// Fragment of the normal form.
        to: Fragment,
    },
    /// The pipeline hit its round bound before reaching a fixpoint (should
    /// not happen; reported rather than trusted silently).
    DidNotConverge,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::StaticallyFalse => write!(f, "statically-false"),
            Diagnostic::StaticallyTrue => write!(f, "statically-true"),
            Diagnostic::FragmentWidened { from, to } => {
                write!(f, "widened({}→{})", from.short_name(), to.short_name())
            }
            Diagnostic::DidNotConverge => write!(f, "did-not-converge"),
        }
    }
}

/// Why re-checking a [`QueryAnalysis`] failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError {
    /// The rewrite trace does not replay.
    Replay(ReplayError),
    /// A recorded fragment does not match re-classification.
    FragmentMismatch {
        /// Which formula was re-classified ("original" or "normalized").
        which: &'static str,
        /// The fragment recorded in the analysis.
        claimed: Fragment,
        /// The fragment the classifier actually returns.
        actual: Fragment,
    },
    /// Original and normalized queries disagree on an instance.
    AnswerMismatch {
        /// Rendering of the instance the disagreement was found on.
        instance: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Replay(e) => write!(f, "trace replay failed: {e}"),
            CheckError::FragmentMismatch {
                which,
                claimed,
                actual,
            } => write!(
                f,
                "{which} fragment mismatch: recorded {claimed}, classifier says {actual}"
            ),
            CheckError::AnswerMismatch { instance } => {
                write!(f, "original and normalized answers differ on {instance}")
            }
        }
    }
}

impl From<ReplayError> for CheckError {
    fn from(e: ReplayError) -> Self {
        CheckError::Replay(e)
    }
}

/// The full result of statically analyzing one query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryAnalysis {
    original: Query,
    normalized: Query,
    original_fragment: Fragment,
    normalized_fragment: Fragment,
    trace: Vec<RewriteStep>,
    diagnostics: Vec<Diagnostic>,
    nullability: NullabilityReport,
}

/// Analyzes a query: normalizes it, re-classifies the normal form, detects
/// static truth/falsity, and types the answer columns' null-flow.
pub fn analyze(query: &Query) -> QueryAnalysis {
    QueryAnalysis::new(query)
}

impl QueryAnalysis {
    /// Runs the analysis. See [`analyze`].
    pub fn new(query: &Query) -> QueryAnalysis {
        let original_fragment = classify(query.formula());
        let Normalized {
            formula,
            trace,
            converged,
        } = normalize(query.formula());
        // The normal form keeps the original answer schema: rewrites only ever
        // drop variable occurrences, and unused head variables are legal (they
        // range over the active domain).
        let normalized = Query::new(query.answer_variables().to_vec(), formula)
            .expect("normalization never invents free variables");
        let normalized_fragment = classify(normalized.formula());

        let mut diagnostics = Vec::new();
        if !converged {
            diagnostics.push(Diagnostic::DidNotConverge);
        }
        match normalized.formula() {
            Formula::False => diagnostics.push(Diagnostic::StaticallyFalse),
            Formula::True => diagnostics.push(Diagnostic::StaticallyTrue),
            _ => {}
        }
        if normalized_fragment < original_fragment {
            diagnostics.push(Diagnostic::FragmentWidened {
                from: original_fragment,
                to: normalized_fragment,
            });
        }
        // Null-flow runs on the *normal form*: folded constants and pruned
        // branches only sharpen the facts.
        let nullability = column_safety(&normalized);

        QueryAnalysis {
            original: query.clone(),
            normalized,
            original_fragment,
            normalized_fragment,
            trace,
            diagnostics,
            nullability,
        }
    }

    /// The query as written.
    pub fn original(&self) -> &Query {
        &self.original
    }

    /// The normalized query (same answer schema as the original).
    pub fn normalized(&self) -> &Query {
        &self.normalized
    }

    /// Fragment of the original formula.
    pub fn original_fragment(&self) -> Fragment {
        self.original_fragment
    }

    /// Fragment of the normal form.
    pub fn normalized_fragment(&self) -> Fragment {
        self.normalized_fragment
    }

    /// The recorded rewrite trace (empty when the query was already normal).
    pub fn trace(&self) -> &[RewriteStep] {
        &self.trace
    }

    /// Facts established during analysis.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Per-answer-column null-safety.
    pub fn nullability(&self) -> &NullabilityReport {
        &self.nullability
    }

    /// Did normalization change the formula at all?
    pub fn changed(&self) -> bool {
        !self.trace.is_empty()
    }

    /// Did normalization land in a strictly smaller fragment?
    pub fn widened(&self) -> bool {
        self.normalized_fragment < self.original_fragment
    }

    /// `Some(truth)` when the normal form is `⊤`/`⊥`, i.e. the certain answer
    /// is known without scanning any data.
    pub fn static_truth(&self) -> Option<bool> {
        match self.normalized.formula() {
            Formula::True => Some(true),
            Formula::False => Some(false),
            _ => None,
        }
    }

    /// Re-checks the analysis without trusting the analyzer: replays the
    /// rewrite trace step by step and re-runs the Figure 1 classifier on both
    /// formulas, comparing against the recorded fragments.
    pub fn check(&self) -> Result<(), CheckError> {
        replay(
            self.original.formula(),
            &self.trace,
            self.normalized.formula(),
        )?;
        for (which, query, claimed) in [
            ("original", &self.original, self.original_fragment),
            ("normalized", &self.normalized, self.normalized_fragment),
        ] {
            let actual = classify(query.formula());
            if actual != claimed {
                return Err(CheckError::FragmentMismatch {
                    which,
                    claimed,
                    actual,
                });
            }
        }
        Ok(())
    }

    /// [`check`](Self::check), plus a differential run: evaluates the original
    /// and normalized queries naïvely on `instance` and fails if they differ.
    pub fn check_on(&self, instance: &Instance) -> Result<(), CheckError> {
        self.check()?;
        if evaluate_query(instance, &self.original) != evaluate_query(instance, &self.normalized) {
            return Err(CheckError::AnswerMismatch {
                instance: format!("{instance}"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    use nev_logic::parse_formula;

    fn boolean(formula: &str) -> Query {
        Query::new(
            Vec::<String>::new(),
            parse_formula(formula).expect("valid formula"),
        )
        .expect("sentence")
    }

    #[test]
    fn double_negation_widens_to_existential_positive() {
        let q = boolean("!(!(exists u . S(u)))");
        let a = analyze(&q);
        assert_eq!(a.original_fragment(), Fragment::FullFirstOrder);
        assert_eq!(a.normalized_fragment(), Fragment::ExistentialPositive);
        assert!(a.widened());
        assert!(a
            .diagnostics()
            .iter()
            .any(|d| matches!(d, Diagnostic::FragmentWidened { .. })));
        a.check().expect("certificate evidence replays");
    }

    #[test]
    fn implication_chain_widens() {
        // `(∀u (S(u) → ⊥)) → ∃w S(w)` is FO as written; the normal form is
        // `(∃u S(u)) ∨ (∃w S(w))` — existential positive.
        let q = boolean("(forall u . (S(u) -> false)) -> (exists w . S(w))");
        let a = analyze(&q);
        assert_eq!(a.original_fragment(), Fragment::FullFirstOrder);
        assert_eq!(a.normalized_fragment(), Fragment::ExistentialPositive);
        a.check().expect("replays");
        let d = inst! { "S" => [[c(1)], [x(1)]] };
        a.check_on(&d).expect("differential run agrees");
        a.check_on(&nev_incomplete::Instance::new())
            .expect("and on the empty instance");
    }

    #[test]
    fn guarded_universals_stay_put() {
        let q = boolean("forall u v . R(u, v) -> R(v, u)");
        let a = analyze(&q);
        assert!(!a.changed());
        assert_eq!(a.original_fragment(), Fragment::PositiveGuarded);
        assert_eq!(a.normalized_fragment(), Fragment::PositiveGuarded);
        assert!(!a.widened());
        a.check().expect("empty trace replays");
    }

    #[test]
    fn contradictions_prune_statically() {
        let q = boolean("exists u . S(u) & !S(u)");
        let a = analyze(&q);
        assert_eq!(a.static_truth(), Some(false));
        assert!(a.diagnostics().contains(&Diagnostic::StaticallyFalse));
        let q2 = boolean("(exists u . S(u)) | !(exists u . S(u))");
        let a2 = analyze(&q2);
        assert_eq!(a2.static_truth(), Some(true));
    }

    #[test]
    fn null_flow_reaches_the_report() {
        let f = parse_formula("S(a) & a = 1").expect("valid");
        let q = Query::new(vec!["a".to_string()], f).expect("well-formed");
        let a = analyze(&q);
        assert_eq!(a.nullability().to_string(), "a=const(1)");
        assert!(a.nullability().all_null_safe());
    }

    #[test]
    fn check_catches_tampering() {
        let q = boolean("!(!(exists u . S(u)))");
        let mut a = analyze(&q);
        a.normalized_fragment = Fragment::Positive;
        assert!(matches!(
            a.check(),
            Err(CheckError::FragmentMismatch {
                which: "normalized",
                ..
            })
        ));
    }
}
