//! Vectorised, set-at-a-time execution of compiled plans over interned instances.
//!
//! Intermediates are **column-major** `Batch`es — one flat `Vec<u32>` per
//! schema column plus a row count — so operators run as tight per-column loops
//! over dense code vectors instead of pushing one heap-allocated row at a time.
//! Hash keys are gathered into reusable buffers and looked up through
//! `Borrow<[u32]>`, so the probe loops of joins, anti-joins and dedup allocate
//! only when they *insert*. Sets appear exactly once, at the final
//! [`ExecOutput`] boundary, which keeps answers canonical (`BTreeSet`) without
//! paying ordered-set maintenance inside the pipeline.
//!
//! This is also where stage 2 of the `nev-opt` optimiser lives: join groups
//! (kept flat by the rule stage) are re-ordered **here**, per instance, by the
//! greedy cost-based search of [`crate::optimize`] seeded from the actual
//! base-relation cardinalities of the [`InternedInstance`] at hand. The chosen
//! order is memoised in the per-execution context, alongside the hash index
//! cache (keyed on interned relation *ids*, never cloned names), and an empty
//! intermediate short-circuits the rest of its group.
//!
//! # Morsel-driven parallelism
//!
//! When [`ExecOptions`] carries a shared [`WorkerPool`], large base-relation
//! scans split into fixed-size **morsels** dispatched across the pool, and
//! large hash joins run a **partitioned** build/probe: build rows scatter into
//! a fixed number of partitions, one hash table is built per partition in
//! parallel, and probe morsels route by the same deterministic hash. Partial
//! batches merge back in submission order (the pool's [`WorkerPool::run`]
//! preserves slot order), so both the answers *and* the telemetry are
//! byte-identical at every worker count: morsel and partition counts depend
//! only on the data and [`ExecOptions::morsel_rows`], never on how many
//! threads happen to serve them. Pools with fewer than two background workers
//! add no parallel capacity, so they take the sequential kernels unchanged —
//! the parallel machinery is strictly pay-as-you-go.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use nev_incomplete::{Instance, Tuple};
use nev_obs::Timer;
use nev_runtime::WorkerPool;

use crate::algebra::{flatten_join_refs, merge_schemas, PlanNode, ScanTerm};
use crate::cost;
use crate::intern::{ColumnarRelation, InternedInstance};
use crate::lower::CompiledQuery;
use crate::optimize::greedy_join_order;
use crate::profile::{op_label, OpProfile, OpSample};
use crate::stats::{ExecStats, ExecTimings};

/// Default number of rows per scan/probe morsel. Below this, the coordination
/// cost of crossing a thread boundary exceeds the work being shipped.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Number of build-side partitions of a parallel hash join. A fixed constant —
/// never derived from the worker count — so the partition layout (and the
/// telemetry counting it) is a pure function of the data.
const JOIN_PARTITIONS: usize = 8;

/// How a compiled plan executes: an optional shared worker pool for
/// morsel-driven parallelism, and the morsel granularity.
///
/// The default (`pool: None`) is the plain sequential executor. With a pool,
/// operators over at least `2 × morsel_rows` rows fan out across it; smaller
/// inputs stay on the calling thread, and a pool with fewer than two
/// background workers is treated as sequential (the submitting thread would be
/// doing all the work anyway, so the fan-out could only add overhead). Answers
/// are identical either way — the determinism suite pins this at worker counts
/// 0, 1, 2 and 8.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// The shared pool morsels dispatch on; `None` (or a pool with `< 2`
    /// background workers) keeps execution sequential.
    pub pool: Option<Arc<WorkerPool>>,
    /// Rows per morsel (clamped to at least 1).
    pub morsel_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            pool: None,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

impl ExecOptions {
    /// Sequential options (no pool, default morsel size).
    pub fn sequential() -> Self {
        ExecOptions::default()
    }

    /// Options dispatching morsels on `pool` at the default granularity.
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        ExecOptions {
            pool: Some(pool),
            ..ExecOptions::default()
        }
    }

    /// The number of background workers of the attached pool (`0` when there is
    /// no pool, or a pool in caller-runs-everything mode).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.workers())
    }
}

/// The result of executing a compiled query on one instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecOutput {
    /// The answer tuples (Boolean queries use the `{()} / ∅` encoding).
    pub answers: BTreeSet<Tuple>,
    /// Execution counters for this pass.
    pub stats: ExecStats,
    /// Phase timings for this pass (always-equal telemetry; zero when the
    /// `NEV_TRACE=0` kill switch disables instrumentation).
    pub timings: ExecTimings,
}

/// An intermediate binding relation, column-major: `cols[i][r]` is the code of
/// schema variable `i` in row `r`. The explicit `rows` count carries the
/// cardinality of zero-column (Boolean) batches, where `{()}` vs `∅` is the
/// whole answer.
struct Batch {
    schema: Vec<String>,
    cols: Vec<Vec<u32>>,
    rows: usize,
}

impl Batch {
    fn empty(schema: Vec<String>) -> Self {
        let cols = vec![Vec::new(); schema.len()];
        Batch {
            schema,
            cols,
            rows: 0,
        }
    }

    fn unit() -> Self {
        Batch {
            schema: Vec::new(),
            cols: Vec::new(),
            rows: 1,
        }
    }

    /// Gathers the key of row `r` over `positions` into `buf` (reused across rows).
    fn key_into(&self, r: usize, positions: &[usize], buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(positions.iter().map(|&p| self.cols[p][r]));
    }
}

/// A base-relation hash index: key codes (one per bound column) → row ids.
type RelationIndex = HashMap<Vec<u32>, Vec<usize>>;

/// A deterministic FNV-1a hash over key codes, used to partition parallel hash
/// joins. Deliberately *not* `RandomState`: the partition a row lands in must
/// be the same in every run, on every thread, so telemetry and merge order are
/// reproducible.
fn partition_hash(key: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &code in key {
        h ^= u64::from(code);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Splits `0..total` into `[start, end)` morsel ranges of `morsel` rows each.
fn morsel_ranges(total: usize, morsel: usize) -> Vec<(usize, usize)> {
    let morsel = morsel.max(1);
    (0..total)
        .step_by(morsel)
        .map(|start| (start, (start + morsel).min(total)))
        .collect()
}

/// The shared handles a parallel execution needs: `Arc`s of the interned
/// instance and the pool, so morsel closures (which must be `'static`) can
/// clone their own owners.
#[derive(Clone, Copy)]
struct SharedExec<'a> {
    inst: &'a Arc<InternedInstance>,
    pool: &'a Arc<WorkerPool>,
}

/// Per-execution state: the interned instance, the counters, the cache of base
/// hash indexes keyed on (relation id, bound column positions) — shared by every
/// scan of the same relation with the same bound shape (e.g. self-joins) — and
/// the memoised cost-based join orders.
struct ExecContext<'a> {
    inst: &'a InternedInstance,
    /// `Some` when this execution may dispatch morsels on a pool.
    shared: Option<SharedExec<'a>>,
    stats: ExecStats,
    timings: ExecTimings,
    indexes: HashMap<u32, HashMap<Vec<usize>, RelationIndex>>,
    /// Keyed on the group node's address within the plan: the plan outlives the
    /// context, so an address identifies one group node for the whole
    /// execution. Structurally identical groups at different addresses decide
    /// their (identical, deterministic) order independently — a cheap repeat
    /// instead of a deep `PlanNode` clone per cache key.
    join_orders: HashMap<usize, Vec<usize>>,
    /// Stage-2 cost-based reordering enabled (`CompilerConfig::optimize`).
    reorder: bool,
    morsel_rows: usize,
    /// `Some` when this execution records a per-operator profile (the wire
    /// `PROFILE` command). `None` — the default — keeps every probe point to a
    /// single branch, so unprofiled runs are untouched.
    profile: Option<OpProfile>,
    /// Current operator nesting depth of the profiled recursion.
    profile_depth: usize,
}

impl<'a> ExecContext<'a> {
    fn new(
        inst: &'a InternedInstance,
        shared: Option<SharedExec<'a>>,
        reorder: bool,
        morsel_rows: usize,
    ) -> Self {
        ExecContext {
            inst,
            shared,
            stats: ExecStats::new(),
            timings: ExecTimings::default(),
            indexes: HashMap::new(),
            join_orders: HashMap::new(),
            reorder,
            morsel_rows: morsel_rows.max(1),
            profile: None,
            profile_depth: 0,
        }
    }

    /// The execution order for one flattened join group, decided by the greedy
    /// cost-based search on this instance's real cardinalities and memoised per
    /// group node. `joins_reordered` is bumped when the decision (not each
    /// reuse) deviates from the written order.
    fn join_order(&mut self, group: &PlanNode, leaves: &[&PlanNode]) -> Vec<usize> {
        if !self.reorder {
            return (0..leaves.len()).collect();
        }
        let key = group as *const PlanNode as usize;
        if let Some(order) = self.join_orders.get(&key) {
            return order.clone();
        }
        let schemas: Vec<Vec<String>> = leaves.iter().map(|l| l.schema()).collect();
        let estimates: Vec<f64> = leaves
            .iter()
            .map(|l| cost::estimate(l, self.inst))
            .collect();
        let adom = (self.inst.dictionary().len() as f64).max(1.0);
        let order = greedy_join_order(&schemas, &estimates, adom);
        if order.iter().enumerate().any(|(pos, &i)| pos != i) {
            self.stats.joins_reordered += 1;
        }
        self.join_orders.insert(key, order.clone());
        order
    }

    /// Rows of `rel` (interned id `id`) whose `cols` hold exactly `key`, via a
    /// cached hash index. Lookups borrow `cols` as a slice — no key is cloned
    /// unless the index is actually built.
    fn probe_index(
        &mut self,
        id: u32,
        rel: &ColumnarRelation,
        cols: &[usize],
        key: &[u32],
    ) -> Vec<usize> {
        let per_relation = self.indexes.entry(id).or_default();
        if !per_relation.contains_key(cols) {
            let mut index: RelationIndex = HashMap::new();
            let mut k: Vec<u32> = Vec::with_capacity(cols.len());
            for r in 0..rel.len() {
                k.clear();
                k.extend(cols.iter().map(|&c| rel.col(c)[r]));
                match index.get_mut(k.as_slice()) {
                    Some(rows) => rows.push(r),
                    None => {
                        index.insert(k.clone(), vec![r]);
                    }
                }
            }
            self.stats.index_builds += 1;
            self.stats.rows_scanned += rel.len() as u64;
            per_relation.insert(cols.to_vec(), index);
        }
        self.stats.hash_probes += 1;
        self.indexes[&id][cols]
            .get(key)
            .cloned()
            .unwrap_or_default()
    }
}

/// Evaluates one plan node, recording a pre-order [`OpSample`] around the
/// operator when this execution is profiled. The default (unprofiled) path is
/// one `Option` check and otherwise identical to calling [`eval_node`]
/// directly — profiling can never change answers, stats or served bytes.
fn eval(node: &PlanNode, ctx: &mut ExecContext<'_>) -> Batch {
    if ctx.profile.is_none() {
        return eval_node(node, ctx);
    }
    let estimated_rows = cost::estimate(node, ctx.inst);
    let depth = ctx.profile_depth;
    let index = {
        let profile = ctx.profile.as_mut().expect("profiled execution");
        profile.ops.push(OpSample {
            depth,
            label: op_label(node),
            wall_us: 0,
            rows: 0,
            estimated_rows,
            counts_intermediate: false,
        });
        profile.ops.len() - 1
    };
    ctx.profile_depth = depth + 1;
    // A profile is an explicit request for wall-clock numbers, so the timer
    // ignores the NEV_TRACE kill switch (unlike the ambient stage timings).
    let timer = Timer::start_always();
    let batch = eval_node(node, ctx);
    let wall_us = timer.elapsed_us();
    ctx.profile_depth = depth;
    let counts_intermediate = counted_as_intermediate(node, &batch);
    let profile = ctx.profile.as_mut().expect("profiled execution");
    let op = &mut profile.ops[index];
    op.wall_us = wall_us;
    op.rows = batch.rows as u64;
    op.counts_intermediate = counts_intermediate;
    batch
}

/// Whether the node's output rows are one of the increments summed into
/// [`ExecStats::intermediate_rows`]. `Join` groups are excluded here because
/// their pairwise folds are recorded (and flagged) as separate `HashJoin`
/// samples by [`eval_join_group`]; a Boolean complement short-circuits before
/// the counter and is likewise excluded.
fn counted_as_intermediate(node: &PlanNode, batch: &Batch) -> bool {
    match node {
        PlanNode::AdomEq { .. }
        | PlanNode::Union { .. }
        | PlanNode::Project { .. }
        | PlanNode::AntiJoin { .. }
        | PlanNode::DomainPad { .. } => true,
        PlanNode::Complement { .. } => !batch.schema.is_empty(),
        _ => false,
    }
}

fn eval_node(node: &PlanNode, ctx: &mut ExecContext<'_>) -> Batch {
    match node {
        PlanNode::Scan {
            relation,
            pattern,
            schema,
        } => {
            let timer = Timer::start();
            let batch = eval_scan(relation, pattern, schema, ctx);
            if timer.is_running() {
                ctx.timings.scan_us += timer.elapsed_us();
            }
            batch
        }
        PlanNode::Unit => Batch::unit(),
        PlanNode::Empty { schema } => Batch::empty(schema.clone()),
        PlanNode::AdomConst { var, value } => {
            let (cols, rows) = match ctx.inst.dictionary().code(value) {
                Some(code) => (vec![vec![code]], 1),
                None => (vec![Vec::new()], 0),
            };
            Batch {
                schema: vec![var.clone()],
                cols,
                rows,
            }
        }
        PlanNode::AdomEq { vars } => {
            let n = ctx.inst.dictionary().len() as u32;
            ctx.stats.intermediate_rows += u64::from(n);
            let column: Vec<u32> = (0..n).collect();
            Batch {
                schema: vars.to_vec(),
                cols: vec![column.clone(), column],
                rows: n as usize,
            }
        }
        PlanNode::Join { .. } => eval_join_group(node, ctx),
        PlanNode::AntiJoin { left, right } => {
            let l = eval(left, ctx);
            let r = eval(right, ctx);
            eval_anti_join(l, r, ctx)
        }
        PlanNode::Union { inputs } => {
            let mut out: Option<Batch> = None;
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            let mut key: Vec<u32> = Vec::new();
            for input in inputs {
                let b = eval(input, ctx);
                let acc = out.get_or_insert_with(|| Batch::empty(b.schema.clone()));
                let all: Vec<usize> = (0..b.cols.len()).collect();
                for r in 0..b.rows {
                    b.key_into(r, &all, &mut key);
                    if !seen.contains(key.as_slice()) {
                        seen.insert(key.clone());
                        for (ci, col) in acc.cols.iter_mut().enumerate() {
                            col.push(b.cols[ci][r]);
                        }
                        acc.rows += 1;
                    }
                }
            }
            let out = out.unwrap_or_else(|| Batch::empty(Vec::new()));
            ctx.stats.intermediate_rows += out.rows as u64;
            out
        }
        PlanNode::Project { input, keep } => {
            let b = eval(input, ctx);
            let positions: Vec<usize> = keep
                .iter()
                .map(|v| {
                    b.schema
                        .binary_search(v)
                        .expect("projection keeps schema columns")
                })
                .collect();
            let mut out = Batch::empty(keep.clone());
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            let mut key: Vec<u32> = Vec::with_capacity(positions.len());
            for r in 0..b.rows {
                b.key_into(r, &positions, &mut key);
                if !seen.contains(key.as_slice()) {
                    seen.insert(key.clone());
                    for (ci, &p) in positions.iter().enumerate() {
                        out.cols[ci].push(b.cols[p][r]);
                    }
                    out.rows += 1;
                }
            }
            ctx.stats.intermediate_rows += out.rows as u64;
            out
        }
        PlanNode::DomainPad { input, vars } => {
            let b = eval(input, ctx);
            eval_domain_pad(b, vars, ctx)
        }
        PlanNode::Complement { input } => {
            let b = eval(input, ctx);
            eval_complement(b, ctx)
        }
    }
}

/// Evaluates one flattened join group in the cost-chosen order, folding joins
/// pairwise and short-circuiting to an empty batch (over the group's full
/// schema) as soon as the accumulator empties — unevaluated members cannot
/// resurrect an empty join.
///
/// When profiled, every pairwise fold records a `HashJoin[schema]` sample at
/// the leaves' depth: actual fold output rows against the running
/// [`cost::join_estimate`] in the chosen order — the estimated-vs-actual
/// feedback that shows where the greedy reorder's guesses drift.
fn eval_join_group(group: &PlanNode, ctx: &mut ExecContext<'_>) -> Batch {
    let mut leaves = Vec::new();
    flatten_join_refs(group, &mut leaves);
    let order = ctx.join_order(group, &leaves);
    let full_schema = leaves
        .iter()
        .fold(Vec::new(), |acc, l| merge_schemas(&acc, &l.schema()));
    let profiled = ctx.profile.is_some();
    let adom = if profiled {
        (ctx.inst.dictionary().len() as f64).max(1.0)
    } else {
        1.0
    };
    let mut est_acc = 0.0f64;
    let mut acc: Option<Batch> = None;
    for &i in &order {
        if let Some(batch) = &acc {
            if batch.rows == 0 {
                return Batch::empty(full_schema);
            }
        }
        let leaf_est = if profiled {
            cost::estimate(leaves[i], ctx.inst)
        } else {
            0.0
        };
        let next = eval(leaves[i], ctx);
        acc = Some(match acc {
            None => {
                est_acc = leaf_est;
                next
            }
            Some(prev) => {
                let fold_est =
                    cost::join_estimate(est_acc, &prev.schema, leaf_est, &leaves[i].schema(), adom);
                let timer = if profiled {
                    Timer::start_always()
                } else {
                    Timer::disabled()
                };
                let joined = eval_join(prev, next, ctx);
                if profiled {
                    let depth = ctx.profile_depth;
                    let profile = ctx.profile.as_mut().expect("profiled execution");
                    profile.ops.push(OpSample {
                        depth,
                        label: format!("HashJoin[{}]", joined.schema.join(",")),
                        wall_us: timer.elapsed_us(),
                        rows: joined.rows as u64,
                        estimated_rows: fold_est,
                        counts_intermediate: true,
                    });
                }
                est_acc = fold_est;
                joined
            }
        });
    }
    acc.expect("a join group has at least two members")
}

fn eval_scan(
    relation: &str,
    pattern: &[ScanTerm],
    schema: &[String],
    ctx: &mut ExecContext<'_>,
) -> Batch {
    let Some(id) = ctx.inst.relation_id(relation) else {
        return Batch::empty(schema.to_vec());
    };
    let rel = ctx.inst.relation_by_id(id);
    if rel.arity() != pattern.len() {
        // A same-named relation of a different arity never matches the atom —
        // exactly the interpreter's `contains` behaviour.
        return Batch::empty(schema.to_vec());
    }
    // Resolve constant positions to codes; a constant absent from the instance
    // makes the whole selection empty.
    let mut bound_cols = Vec::new();
    let mut bound_codes = Vec::new();
    let mut first_occurrence: HashMap<&str, usize> = HashMap::new();
    let mut eq_checks = Vec::new();
    for (i, t) in pattern.iter().enumerate() {
        match t {
            ScanTerm::Const(v) => match ctx.inst.dictionary().code(v) {
                Some(code) => {
                    bound_cols.push(i);
                    bound_codes.push(code);
                }
                None => return Batch::empty(schema.to_vec()),
            },
            ScanTerm::Var(v) => match first_occurrence.get(v.as_str()) {
                Some(&f) => eq_checks.push((f, i)),
                None => {
                    first_occurrence.insert(v, i);
                }
            },
        }
    }
    let out_positions: Vec<usize> = schema
        .iter()
        .map(|v| first_occurrence[v.as_str()])
        .collect();
    if bound_cols.is_empty() {
        ctx.stats.rows_scanned += rel.len() as u64;
        return scan_full(id, rel, &eq_checks, &out_positions, schema, ctx);
    }
    let candidates = ctx.probe_index(id, rel, &bound_cols, &bound_codes);
    let mut out = Batch::empty(schema.to_vec());
    for &r in &candidates {
        if eq_checks
            .iter()
            .all(|&(a, b)| rel.col(a)[r] == rel.col(b)[r])
        {
            for (ci, &p) in out_positions.iter().enumerate() {
                out.cols[ci].push(rel.col(p)[r]);
            }
            out.rows += 1;
        }
    }
    out
}

/// A full (unbound) relation scan: filter by the repeated-variable equality
/// checks, gather the output columns. Large relations split into morsels on
/// the shared pool; the partial batches concatenate in morsel order, so the
/// output is identical to the sequential gather.
fn scan_full(
    id: u32,
    rel: &ColumnarRelation,
    eq_checks: &[(usize, usize)],
    out_positions: &[usize],
    schema: &[String],
    ctx: &mut ExecContext<'_>,
) -> Batch {
    let morsel = ctx.morsel_rows;
    if let Some(shared) = ctx.shared {
        if rel.len() >= 2 * morsel {
            let ranges = morsel_ranges(rel.len(), morsel);
            ctx.stats.morsels_dispatched += ranges.len() as u64;
            ctx.stats.batches_processed += ranges.len() as u64;
            let inst = Arc::clone(shared.inst);
            let eq: Arc<Vec<(usize, usize)>> = Arc::new(eq_checks.to_vec());
            let outp: Arc<Vec<usize>> = Arc::new(out_positions.to_vec());
            let parts = shared.pool.run(ranges, move |_, (start, end)| {
                let rel = inst.relation_by_id(id);
                let mut cols: Vec<Vec<u32>> = vec![Vec::new(); outp.len()];
                let mut rows = 0usize;
                for r in start..end {
                    if eq.iter().all(|&(a, b)| rel.col(a)[r] == rel.col(b)[r]) {
                        for (ci, &p) in outp.iter().enumerate() {
                            cols[ci].push(rel.col(p)[r]);
                        }
                        rows += 1;
                    }
                }
                (cols, rows)
            });
            let mut out = Batch::empty(schema.to_vec());
            for (part_cols, part_rows) in parts {
                for (ci, part) in part_cols.into_iter().enumerate() {
                    out.cols[ci].extend(part);
                }
                out.rows += part_rows;
            }
            return out;
        }
    }
    let mut out = Batch::empty(schema.to_vec());
    for r in 0..rel.len() {
        if eq_checks
            .iter()
            .all(|&(a, b)| rel.col(a)[r] == rel.col(b)[r])
        {
            for (ci, &p) in out_positions.iter().enumerate() {
                out.cols[ci].push(rel.col(p)[r]);
            }
            out.rows += 1;
        }
    }
    out
}

fn eval_join(l: Batch, r: Batch, ctx: &mut ExecContext<'_>) -> Batch {
    let schema = merge_schemas(&l.schema, &r.schema);
    // Shared variables and their positions on each side.
    let shared_vars: Vec<&String> = l
        .schema
        .iter()
        .filter(|v| r.schema.binary_search(v).is_ok())
        .collect();
    let lkey: Vec<usize> = shared_vars
        .iter()
        .map(|v| l.schema.binary_search(v).expect("shared"))
        .collect();
    let rkey: Vec<usize> = shared_vars
        .iter()
        .map(|v| r.schema.binary_search(v).expect("shared"))
        .collect();
    // For every output column, where it comes from: `(from_left, position)` —
    // left wins on shared columns.
    let sources: Vec<(bool, usize)> = schema
        .iter()
        .map(|v| match l.schema.binary_search(v) {
            Ok(p) => (true, p),
            Err(_) => (false, r.schema.binary_search(v).expect("from one side")),
        })
        .collect();
    // Build on the smaller side, probe with the larger.
    let build_left = l.rows <= r.rows;
    let (build_key, probe_key) = if build_left {
        (lkey, rkey)
    } else {
        (rkey, lkey)
    };
    let probe_rows = if build_left { r.rows } else { l.rows };
    ctx.stats.hash_probes += probe_rows as u64;
    let parallel = ctx.shared.filter(|_| probe_rows >= 2 * ctx.morsel_rows);
    let (cols, rows) = match parallel {
        Some(shared) => {
            ctx.stats.parallel_joins += 1;
            eval_join_partitioned(
                Arc::new(l),
                Arc::new(r),
                build_left,
                Arc::new(build_key),
                Arc::new(probe_key),
                Arc::new(sources),
                shared,
                ctx.morsel_rows,
                &mut ctx.stats,
                &mut ctx.timings,
            )
        }
        None => {
            let (build, probe) = if build_left { (&l, &r) } else { (&r, &l) };
            let build_timer = Timer::start();
            let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::with_capacity(build.rows);
            let mut key: Vec<u32> = Vec::with_capacity(build_key.len());
            for i in 0..build.rows {
                build.key_into(i, &build_key, &mut key);
                match table.get_mut(key.as_slice()) {
                    Some(rows) => rows.push(i),
                    None => {
                        table.insert(key.clone(), vec![i]);
                    }
                }
            }
            if build_timer.is_running() {
                ctx.timings.join_build_us += build_timer.elapsed_us();
            }
            let probe_timer = Timer::start();
            let mut cols: Vec<Vec<u32>> = vec![Vec::new(); sources.len()];
            let mut rows = 0usize;
            for prow in 0..probe.rows {
                probe.key_into(prow, &probe_key, &mut key);
                let Some(matches) = table.get(key.as_slice()) else {
                    continue;
                };
                for &b in matches {
                    let (li, ri) = if build_left { (b, prow) } else { (prow, b) };
                    for (ci, &(from_left, p)) in sources.iter().enumerate() {
                        cols[ci].push(if from_left {
                            l.cols[p][li]
                        } else {
                            r.cols[p][ri]
                        });
                    }
                    rows += 1;
                }
            }
            if probe_timer.is_running() {
                ctx.timings.join_probe_us += probe_timer.elapsed_us();
            }
            (cols, rows)
        }
    };
    ctx.stats.intermediate_rows += rows as u64;
    Batch { schema, cols, rows }
}

/// The parallel hash join: the build side scatters into [`JOIN_PARTITIONS`]
/// buckets by a deterministic key hash, one hash table is built per partition
/// across the pool, and probe morsels route by the same hash. Probe morsels
/// merge in order, and within a key the match list preserves build-row order,
/// so the output rows equal the sequential join's, row for row.
#[allow(clippy::too_many_arguments)]
fn eval_join_partitioned(
    l: Arc<Batch>,
    r: Arc<Batch>,
    build_left: bool,
    build_key: Arc<Vec<usize>>,
    probe_key: Arc<Vec<usize>>,
    sources: Arc<Vec<(bool, usize)>>,
    shared: SharedExec<'_>,
    morsel: usize,
    stats: &mut ExecStats,
    timings: &mut ExecTimings,
) -> (Vec<Vec<u32>>, usize) {
    let (build, probe) = if build_left { (&l, &r) } else { (&r, &l) };
    let build_timer = Timer::start();
    // 1. Scatter build rows into partitions (sequential: one cheap pass that
    //    fixes a layout every later task agrees on).
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); JOIN_PARTITIONS];
    let mut key: Vec<u32> = Vec::with_capacity(build_key.len());
    for i in 0..build.rows {
        build.key_into(i, &build_key, &mut key);
        buckets[(partition_hash(&key) as usize) % JOIN_PARTITIONS].push(i);
    }
    let buckets = Arc::new(buckets);
    // 2. Build one table per partition, in parallel.
    stats.morsels_dispatched += JOIN_PARTITIONS as u64;
    let tables: Vec<HashMap<Vec<u32>, Vec<usize>>> = {
        let build = Arc::clone(if build_left { &l } else { &r });
        let build_key = Arc::clone(&build_key);
        let buckets = Arc::clone(&buckets);
        shared
            .pool
            .run((0..JOIN_PARTITIONS).collect(), move |_, p| {
                let mut table: HashMap<Vec<u32>, Vec<usize>> =
                    HashMap::with_capacity(buckets[p].len());
                for &i in &buckets[p] {
                    let key: Vec<u32> = build_key.iter().map(|&c| build.cols[c][i]).collect();
                    table.entry(key).or_default().push(i);
                }
                table
            })
    };
    let tables = Arc::new(tables);
    if build_timer.is_running() {
        timings.join_build_us += build_timer.elapsed_us();
    }
    // 3. Probe in morsels, routing each key to its partition's table.
    let probe_timer = Timer::start();
    let ranges = morsel_ranges(probe.rows, morsel);
    stats.morsels_dispatched += ranges.len() as u64;
    stats.batches_processed += ranges.len() as u64;
    let parts = {
        let la = Arc::clone(&l);
        let ra = Arc::clone(&r);
        shared.pool.run(ranges, move |_, (start, end)| {
            let probe = if build_left { &ra } else { &la };
            let mut cols: Vec<Vec<u32>> = vec![Vec::new(); sources.len()];
            let mut rows = 0usize;
            let mut key: Vec<u32> = Vec::with_capacity(probe_key.len());
            for prow in start..end {
                probe.key_into(prow, &probe_key, &mut key);
                let table = &tables[(partition_hash(&key) as usize) % JOIN_PARTITIONS];
                let Some(matches) = table.get(key.as_slice()) else {
                    continue;
                };
                for &b in matches {
                    let (li, ri) = if build_left { (b, prow) } else { (prow, b) };
                    for (ci, &(from_left, p)) in sources.iter().enumerate() {
                        cols[ci].push(if from_left {
                            la.cols[p][li]
                        } else {
                            ra.cols[p][ri]
                        });
                    }
                    rows += 1;
                }
            }
            (cols, rows)
        })
    };
    let mut merged: Vec<Vec<u32>> = Vec::new();
    let mut rows = 0usize;
    for (part_cols, part_rows) in parts {
        if merged.is_empty() {
            merged = part_cols;
        } else {
            for (ci, part) in part_cols.into_iter().enumerate() {
                merged[ci].extend(part);
            }
        }
        rows += part_rows;
    }
    if probe_timer.is_running() {
        timings.join_probe_us += probe_timer.elapsed_us();
    }
    (merged, rows)
}

fn eval_anti_join(l: Batch, r: Batch, ctx: &mut ExecContext<'_>) -> Batch {
    // The lowering guarantees r.schema ⊆ l.schema.
    let positions: Vec<usize> = r
        .schema
        .iter()
        .map(|v| l.schema.binary_search(v).expect("anti-join schema subset"))
        .collect();
    let all_r: Vec<usize> = (0..r.cols.len()).collect();
    let mut exclude: HashSet<Vec<u32>> = HashSet::with_capacity(r.rows);
    let mut key: Vec<u32> = Vec::with_capacity(all_r.len());
    for i in 0..r.rows {
        r.key_into(i, &all_r, &mut key);
        if !exclude.contains(key.as_slice()) {
            exclude.insert(key.clone());
        }
    }
    ctx.stats.hash_probes += l.rows as u64;
    let mut out = Batch::empty(l.schema.clone());
    for i in 0..l.rows {
        l.key_into(i, &positions, &mut key);
        if !exclude.contains(key.as_slice()) {
            for (ci, col) in out.cols.iter_mut().enumerate() {
                col.push(l.cols[ci][i]);
            }
            out.rows += 1;
        }
    }
    ctx.stats.intermediate_rows += out.rows as u64;
    out
}

fn eval_domain_pad(b: Batch, vars: &[String], ctx: &mut ExecContext<'_>) -> Batch {
    let mut sorted_vars: Vec<String> = vars.to_vec();
    sorted_vars.sort();
    let schema = merge_schemas(&b.schema, &sorted_vars);
    let n = ctx.inst.dictionary().len();
    if n == 0 {
        return Batch::empty(schema);
    }
    enum Src {
        Input(usize),
        Pad(usize),
    }
    let sources: Vec<Src> = schema
        .iter()
        .map(|v| match b.schema.binary_search(v) {
            Ok(p) => Src::Input(p),
            Err(_) => Src::Pad(sorted_vars.binary_search(v).expect("padded")),
        })
        .collect();
    let k = sorted_vars.len();
    // Each input row expands into adom^k padded rows; pad column `p` cycles
    // with period n^(p+1) (position 0 fastest), matching the little-endian
    // odometer the row-at-a-time executor ran. Every output column is filled
    // with one arithmetic loop — no per-row materialisation.
    let reps = n
        .checked_pow(k as u32)
        .expect("domain pad cardinality overflows usize");
    let total = b.rows * reps;
    let mut cols: Vec<Vec<u32>> = Vec::with_capacity(sources.len());
    for src in &sources {
        let mut col: Vec<u32> = Vec::with_capacity(total);
        match src {
            Src::Input(p) => {
                for i in 0..b.rows {
                    let v = b.cols[*p][i];
                    col.resize(col.len() + reps, v);
                }
            }
            Src::Pad(p) => {
                let stride = n.pow(*p as u32);
                for _ in 0..b.rows {
                    for j in 0..reps {
                        col.push(((j / stride) % n) as u32);
                    }
                }
            }
        }
        cols.push(col);
    }
    ctx.stats.intermediate_rows += total as u64;
    Batch {
        schema,
        cols,
        rows: total,
    }
}

fn eval_complement(b: Batch, ctx: &mut ExecContext<'_>) -> Batch {
    let k = b.schema.len();
    if k == 0 {
        // Boolean negation under the {()} / ∅ encoding.
        let rows = usize::from(b.rows == 0);
        return Batch {
            schema: b.schema,
            cols: b.cols,
            rows,
        };
    }
    let n = ctx.inst.dictionary().len();
    let all: Vec<usize> = (0..k).collect();
    let mut present: HashSet<Vec<u32>> = HashSet::with_capacity(b.rows);
    let mut key: Vec<u32> = Vec::with_capacity(k);
    for i in 0..b.rows {
        b.key_into(i, &all, &mut key);
        if !present.contains(key.as_slice()) {
            present.insert(key.clone());
        }
    }
    let mut out = Batch::empty(b.schema);
    if n > 0 {
        let total = n
            .checked_pow(k as u32)
            .expect("complement cardinality overflows usize");
        let mut current = vec![0u32; k];
        for _ in 0..total {
            if !present.contains(current.as_slice()) {
                for (ci, &v) in current.iter().enumerate() {
                    out.cols[ci].push(v);
                }
                out.rows += 1;
            }
            // Advance the little-endian odometer over adom^k.
            for value in current.iter_mut() {
                *value += 1;
                if (*value as usize) < n {
                    break;
                }
                *value = 0;
            }
        }
    }
    ctx.stats.intermediate_rows += out.rows as u64;
    out
}

impl CompiledQuery {
    /// Executes the plan on an instance, returning **all** answers — including
    /// tuples containing nulls — like [`nev_logic::eval::evaluate_query`].
    pub fn execute(&self, d: &Instance) -> ExecOutput {
        self.execute_with(d, &ExecOptions::default())
    }

    /// Executes the plan and keeps only the all-constant answers — **naïve
    /// evaluation**, like [`nev_logic::eval::naive_eval_query`].
    pub fn execute_naive(&self, d: &Instance) -> ExecOutput {
        self.execute_naive_with(d, &ExecOptions::default())
    }

    /// [`CompiledQuery::execute`] under explicit [`ExecOptions`] (e.g. with a
    /// shared worker pool for morsel-driven parallelism).
    pub fn execute_with(&self, d: &Instance, options: &ExecOptions) -> ExecOutput {
        let interned = Arc::new(InternedInstance::new(d));
        let mut stats = ExecStats::new();
        let mut timings = ExecTimings::default();
        let answers =
            self.execute_interned_timed(&interned, false, &mut stats, &mut timings, options);
        ExecOutput {
            answers,
            stats,
            timings,
        }
    }

    /// [`CompiledQuery::execute_naive`] under explicit [`ExecOptions`].
    pub fn execute_naive_with(&self, d: &Instance, options: &ExecOptions) -> ExecOutput {
        let interned = Arc::new(InternedInstance::new(d));
        let mut stats = ExecStats::new();
        let mut timings = ExecTimings::default();
        let answers =
            self.execute_interned_timed(&interned, true, &mut stats, &mut timings, options);
        ExecOutput {
            answers,
            stats,
            timings,
        }
    }

    /// Executes against an already-interned instance, sequentially, merging
    /// counters into `stats`. With `complete_only`, rows containing null codes
    /// are dropped — the "discard tuples with nulls" half of naïve evaluation,
    /// decided with one integer comparison per position.
    pub fn execute_interned(
        &self,
        inst: &InternedInstance,
        complete_only: bool,
        stats: &mut ExecStats,
    ) -> BTreeSet<Tuple> {
        let mut timings = ExecTimings::default();
        self.run_interned(
            inst,
            None,
            complete_only,
            stats,
            &mut timings,
            DEFAULT_MORSEL_ROWS,
        )
    }

    /// [`CompiledQuery::execute_interned`] under explicit [`ExecOptions`]: the
    /// instance arrives in an `Arc` so morsel tasks (which outlive no borrow)
    /// can share it across the pool.
    pub fn execute_interned_with(
        &self,
        inst: &Arc<InternedInstance>,
        complete_only: bool,
        stats: &mut ExecStats,
        options: &ExecOptions,
    ) -> BTreeSet<Tuple> {
        let mut timings = ExecTimings::default();
        self.execute_interned_timed(inst, complete_only, stats, &mut timings, options)
    }

    /// [`CompiledQuery::execute_interned_with`], additionally merging the
    /// pass's phase timings into `timings`.
    pub fn execute_interned_timed(
        &self,
        inst: &Arc<InternedInstance>,
        complete_only: bool,
        stats: &mut ExecStats,
        timings: &mut ExecTimings,
        options: &ExecOptions,
    ) -> BTreeSet<Tuple> {
        // Fanning out only pays when the pool genuinely adds parallel capacity:
        // with zero or one background workers the submitting thread is doing
        // (essentially) all the work anyway, and every morsel would still pay
        // queue, boxing and partition-hash overhead. Below two workers the
        // sequential kernels run unchanged — the pay-as-you-go guarantee the
        // `exec_scaling` bench pins against the set-at-a-time baseline.
        match options.pool.as_ref().filter(|pool| pool.workers() >= 2) {
            Some(pool) => self.run_interned(
                inst,
                Some(SharedExec { inst, pool }),
                complete_only,
                stats,
                timings,
                options.morsel_rows,
            ),
            None => self.run_interned(
                inst,
                None,
                complete_only,
                stats,
                timings,
                options.morsel_rows,
            ),
        }
    }

    /// [`CompiledQuery::execute_naive_with`] with per-operator profiling: runs
    /// the same evaluation (same answers, same counters) while recording an
    /// [`OpProfile`] of inclusive wall times, output rows and cost-model
    /// estimates per executed operator — the collector behind the wire
    /// `PROFILE` command.
    pub fn execute_naive_profiled(
        &self,
        d: &Instance,
        options: &ExecOptions,
    ) -> (ExecOutput, OpProfile) {
        let interned = Arc::new(InternedInstance::new(d));
        let mut stats = ExecStats::new();
        let mut timings = ExecTimings::default();
        let shared = options
            .pool
            .as_ref()
            .filter(|pool| pool.workers() >= 2)
            .map(|pool| SharedExec {
                inst: &interned,
                pool,
            });
        let (answers, profile) = self.run_profiled(
            &interned,
            shared,
            true,
            &mut stats,
            &mut timings,
            options.morsel_rows,
            true,
        );
        (
            ExecOutput {
                answers,
                stats,
                timings,
            },
            profile,
        )
    }

    fn run_interned(
        &self,
        inst: &InternedInstance,
        shared: Option<SharedExec<'_>>,
        complete_only: bool,
        stats: &mut ExecStats,
        timings: &mut ExecTimings,
        morsel_rows: usize,
    ) -> BTreeSet<Tuple> {
        self.run_profiled(
            inst,
            shared,
            complete_only,
            stats,
            timings,
            morsel_rows,
            false,
        )
        .0
    }

    #[allow(clippy::too_many_arguments)]
    fn run_profiled(
        &self,
        inst: &InternedInstance,
        shared: Option<SharedExec<'_>>,
        complete_only: bool,
        stats: &mut ExecStats,
        timings: &mut ExecTimings,
        morsel_rows: usize,
        profile: bool,
    ) -> (BTreeSet<Tuple>, OpProfile) {
        let mut ctx = ExecContext::new(inst, shared, self.reorder, morsel_rows);
        if profile {
            ctx.profile = Some(OpProfile::default());
        }
        // Replay the compile-time rule count and the root cardinality estimate
        // into this execution's telemetry (`as` saturates, never panics).
        ctx.stats.rules_fired = self.rules.total();
        ctx.stats.estimated_rows = cost::estimate(&self.plan, inst) as u64;
        let batch = eval(&self.plan, &mut ctx);
        debug_assert_eq!(batch.schema, self.schema, "plan schema must match");
        let dict = inst.dictionary();
        let mut answers = BTreeSet::new();
        for r in 0..batch.rows {
            if complete_only && !batch.cols.iter().all(|col| dict.is_const(col[r])) {
                continue;
            }
            let tuple: Tuple = self
                .output_positions
                .iter()
                .map(|&p| dict.value(batch.cols[p][r]).clone())
                .collect();
            answers.insert(tuple);
        }
        stats.merge(&ctx.stats);
        timings.merge(&ctx.timings);
        (answers, ctx.profile.unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    use nev_logic::eval::{evaluate_query, naive_eval_query};
    use nev_logic::parse_query;

    fn check(text: &str, d: &Instance) -> ExecOutput {
        let q = parse_query(text).expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let out = compiled.execute(d);
        assert_eq!(out.answers, evaluate_query(d, &q), "raw answers on {text}");
        let naive = compiled.execute_naive(d);
        assert_eq!(
            naive.answers,
            naive_eval_query(d, &q),
            "naive answers on {text}"
        );
        out
    }

    fn intro() -> Instance {
        inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        }
    }

    #[test]
    fn intro_join_matches_the_interpreter() {
        let out = check("Q(x, y) :- exists z . R(x, z) & S(z, y)", &intro());
        assert_eq!(out.answers.len(), 2);
        assert!(out.stats.rows_scanned > 0);
        assert!(out.stats.hash_probes > 0);
    }

    #[test]
    fn constants_in_atoms_use_the_index() {
        let d = inst! { "R" => [[c(1), c(2)], [c(1), c(3)], [c(2), c(3)]] };
        let out = check("Q(u) :- R(1, u)", &d);
        assert_eq!(out.answers.len(), 2);
        assert_eq!(out.stats.index_builds, 1);
        assert!(out.stats.hash_probes >= 1);
    }

    #[test]
    fn self_joins_share_one_index() {
        let d = inst! { "R" => [[c(1), c(2)], [c(2), c(3)]] };
        // Two scans of R bound on column 0 share the cached index.
        let out = check("Q(u) :- exists v . R(1, v) & R(2, u)", &d);
        assert_eq!(out.stats.index_builds, 1);
    }

    #[test]
    fn repeated_variables_select_within_rows() {
        let d = inst! { "R" => [[c(1), c(1)], [c(1), c(2)], [x(1), x(1)]] };
        let out = check("Q(u) :- R(u, u)", &d);
        assert_eq!(out.answers.len(), 2);
    }

    #[test]
    fn negation_forall_and_equality_match_the_interpreter() {
        let d0 = inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] };
        let loops = inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] };
        for d in [&d0, &loops, &Instance::new()] {
            check("forall u . exists v . D(u, v)", d);
            check("exists u . !D(u, u)", d);
            check("forall u v . D(u, v) -> D(v, u)", d);
            check("Q(u) :- exists v . D(u, v) & !D(v, u)", d);
            check("exists u v . D(u, v) & u = v", d);
            check("exists u . D(u, u) & u = 1", d);
        }
    }

    #[test]
    fn empty_instances_and_missing_relations() {
        let empty = Instance::new();
        check("exists u . T(u)", &empty);
        check("Q(u) :- T(u)", &empty);
        check("forall u . T(u)", &empty);
        let d = inst! { "R" => [[c(1)]] };
        check("exists u . T(u)", &d);
        // A constant absent from the instance: empty selection, not an error.
        check("exists u . R(9)", &d);
    }

    #[test]
    fn answer_variables_absent_from_the_formula_range_over_adom() {
        let d = inst! { "R" => [[c(1)], [c(2)]] };
        let out = check("Q(u, v) :- R(u)", &d);
        assert_eq!(out.answers.len(), 4);
    }

    #[test]
    fn boolean_encoding_round_trips() {
        let d = inst! { "R" => [[c(1)]] };
        let t = check("exists u . R(u)", &d);
        assert_eq!(t.answers.len(), 1);
        let f = check("exists u . S(u)", &d);
        assert!(f.answers.is_empty());
    }

    /// A join-chain workload big enough to cross small morsel thresholds.
    fn chain_instance(rows: usize) -> Instance {
        let mut d = Instance::new();
        for i in 0..rows {
            let a = c((i % 17) as i64);
            let b = c((i % 13) as i64);
            d.add_tuple("R", vec![a.clone(), b.clone()]).unwrap();
            d.add_tuple("S", vec![b, c((i % 7) as i64)]).unwrap();
        }
        d
    }

    #[test]
    fn parallel_execution_equals_sequential_at_every_worker_count() {
        let d = chain_instance(300);
        let q = parse_query("Q(u, w) :- exists v . R(u, v) & S(v, w)").expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let sequential = compiled.execute_naive(&d);
        for workers in [0, 1, 2, 8] {
            let options = ExecOptions {
                pool: Some(Arc::new(WorkerPool::new(workers))),
                morsel_rows: 64,
            };
            let parallel = compiled.execute_naive_with(&d, &options);
            assert_eq!(
                parallel.answers, sequential.answers,
                "workers={workers}: answers changed"
            );
            if workers >= 2 {
                assert!(
                    parallel.stats.morsels_dispatched > 0,
                    "workers={workers}: the morsel path engaged"
                );
                assert!(parallel.stats.parallel_joins > 0, "workers={workers}");
            } else {
                // Pools that cannot add parallel capacity run the sequential
                // kernels unchanged — pay-as-you-go, no fan-out overhead.
                assert_eq!(parallel.stats, sequential.stats, "workers={workers}");
            }
            // Morsel counts are a function of the data, never the worker count.
            let again = compiled.execute_naive_with(&d, &options);
            assert_eq!(parallel.stats, again.stats, "workers={workers}");
        }
        // Parallel-capable worker counts report identical telemetry.
        let stats: Vec<ExecStats> = [2usize, 3, 8]
            .iter()
            .map(|&workers| {
                let options = ExecOptions {
                    pool: Some(Arc::new(WorkerPool::new(workers))),
                    morsel_rows: 64,
                };
                compiled.execute_naive_with(&d, &options).stats
            })
            .collect();
        assert_eq!(stats[0], stats[1]);
        assert_eq!(stats[1], stats[2]);
    }

    #[test]
    fn small_inputs_stay_sequential_even_with_a_pool() {
        let d = intro();
        let q = parse_query("Q(x, y) :- exists z . R(x, z) & S(z, y)").expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let options = ExecOptions::with_pool(Arc::new(WorkerPool::new(4)));
        let out = compiled.execute_naive_with(&d, &options);
        assert_eq!(
            out.stats.morsels_dispatched, 0,
            "below the morsel threshold"
        );
        assert_eq!(out.stats.parallel_joins, 0);
        assert_eq!(out.answers, compiled.execute_naive(&d).answers);
    }

    #[test]
    fn empty_instances_dispatch_no_morsels() {
        let q = parse_query("Q(u, w) :- exists v . R(u, v) & S(v, w)").expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let options = ExecOptions {
            pool: Some(Arc::new(WorkerPool::new(2))),
            morsel_rows: 1,
        };
        let out = compiled.execute_naive_with(&Instance::new(), &options);
        assert!(out.answers.is_empty());
        assert_eq!(out.stats.morsels_dispatched, 0);
        assert_eq!(out.stats.batches_processed, 0);
    }

    #[test]
    fn morsel_telemetry_counts_scan_chunks() {
        // 10 rows, morsel_rows = 2 → exactly 5 scan morsels per unbound scan.
        let mut d = Instance::new();
        for i in 0..10 {
            d.add_tuple("R", vec![c(i as i64)]).unwrap();
        }
        let q = parse_query("Q(u) :- R(u)").expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let options = ExecOptions {
            pool: Some(Arc::new(WorkerPool::new(2))),
            morsel_rows: 2,
        };
        let out = compiled.execute_naive_with(&d, &options);
        assert_eq!(out.answers.len(), 10);
        assert_eq!(out.stats.morsels_dispatched, 5);
        assert_eq!(out.stats.batches_processed, 5);
        assert_eq!(out.stats.rows_scanned, 10);
    }

    #[test]
    fn profiled_runs_match_unprofiled_and_reconcile_accounting() {
        let d = chain_instance(300);
        let q = parse_query("Q(u, w) :- exists v . R(u, v) & S(v, w)").expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let plain = compiled.execute_naive(&d);
        let (out, profile) = compiled.execute_naive_profiled(&d, &ExecOptions::default());
        // Profiling changes nothing about the evaluation itself.
        assert_eq!(out.answers, plain.answers);
        assert_eq!(out.stats, plain.stats);
        // Every executed operator was sampled: the join group, its leaves and
        // the pairwise fold, each with a cost-model estimate attached.
        assert!(profile
            .ops
            .iter()
            .any(|op| op.label.starts_with("JoinGroup")));
        assert!(profile.ops.iter().any(|op| op.label.starts_with("Scan R")));
        assert!(profile
            .ops
            .iter()
            .any(|op| op.label.starts_with("HashJoin[")));
        assert!(profile.ops.iter().all(|op| op.estimated_rows >= 0.0));
        // The flagged samples reconcile exactly with the executor's own
        // intermediate-row counter, and the per-operator self times telescope
        // to the root's inclusive wall time (children nest inside parents on
        // one monotone clock, so no saturation can fire).
        assert_eq!(profile.intermediate_rows(), out.stats.intermediate_rows);
        assert_eq!(profile.total_self_us(), profile.root_wall_us());
        assert!(!profile.render().contains('\n'));
    }

    #[test]
    fn timings_populate_scan_and_join_phases_when_enabled() {
        let d = chain_instance(300);
        let q = parse_query("Q(u, w) :- exists v . R(u, v) & S(v, w)").expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let out = compiled.execute_naive(&d);
        if nev_obs::enabled() {
            // A scan and a hash join ran: their phases were measured. (µs
            // clocks can legitimately read 0 on a fast pass, so assert the
            // recording happened via the parallel path below instead of here.)
            let _ = out.timings.total_us();
        } else {
            assert_eq!(out.timings.total_us(), 0, "kill switch zeroes timings");
        }
        // Timings never affect output equality — the cross-worker-count
        // equality pins in this module rely on this.
        let again = compiled.execute_naive(&d);
        assert_eq!(out, again);
    }

    #[test]
    fn parallel_stats_match_sequential_core_counters() {
        // The shared counters (scanned/probes/indexes/intermediate) must not
        // depend on whether the morsel path ran.
        let d = chain_instance(200);
        let q = parse_query("Q(u, w) :- exists v . R(u, v) & S(v, w)").expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let sequential = compiled.execute_naive(&d).stats;
        let options = ExecOptions {
            pool: Some(Arc::new(WorkerPool::new(3))),
            morsel_rows: 32,
        };
        let parallel = compiled.execute_naive_with(&d, &options).stats;
        assert_eq!(parallel.rows_scanned, sequential.rows_scanned);
        assert_eq!(parallel.hash_probes, sequential.hash_probes);
        assert_eq!(parallel.index_builds, sequential.index_builds);
        assert_eq!(parallel.intermediate_rows, sequential.intermediate_rows);
        assert!(parallel.morsels_dispatched > 0);
        assert_eq!(sequential.morsels_dispatched, 0);
    }
}
