//! Set-at-a-time execution of compiled plans over interned instances.
//!
//! This is also where stage 2 of the `nev-opt` optimiser lives: join groups
//! (kept flat by the rule stage) are re-ordered **here**, per instance, by the
//! greedy cost-based search of [`crate::optimize`] seeded from the actual
//! base-relation cardinalities of the [`InternedInstance`] at hand. The chosen
//! order is memoised in the per-execution context, alongside the hash index
//! cache, and an empty intermediate short-circuits the rest of its group.

use std::collections::{BTreeSet, HashMap, HashSet};

use nev_incomplete::{Instance, Tuple};

use crate::algebra::{flatten_join_refs, merge_schemas, PlanNode, ScanTerm};
use crate::cost;
use crate::intern::{ColumnarRelation, InternedInstance};
use crate::lower::CompiledQuery;
use crate::optimize::greedy_join_order;
use crate::stats::ExecStats;

/// The result of executing a compiled query on one instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecOutput {
    /// The answer tuples (Boolean queries use the `{()} / ∅` encoding).
    pub answers: BTreeSet<Tuple>,
    /// Execution counters for this pass.
    pub stats: ExecStats,
}

/// An intermediate binding relation: rows of codes over a sorted variable schema.
struct Batch {
    schema: Vec<String>,
    rows: Vec<Vec<u32>>,
}

impl Batch {
    fn empty(schema: Vec<String>) -> Self {
        Batch {
            schema,
            rows: Vec::new(),
        }
    }
}

/// A base-relation hash index: key codes (one per bound column) → row ids.
type RelationIndex = HashMap<Vec<u32>, Vec<usize>>;

/// Per-execution state: the interned instance, the counters, the cache of base
/// hash indexes keyed on (relation, bound column positions) — shared by every scan
/// of the same relation with the same bound shape (e.g. self-joins) — and the
/// memoised cost-based join orders (keyed on the group's structural hash, so
/// identical groups appearing twice in one plan decide their order once).
struct ExecContext<'a> {
    inst: &'a InternedInstance,
    stats: ExecStats,
    indexes: HashMap<(String, Vec<usize>), RelationIndex>,
    /// Keyed on the group node itself (not a digest): a hash collision must
    /// fall through to equality, never to another group's order vector.
    join_orders: HashMap<PlanNode, Vec<usize>>,
    /// Stage-2 cost-based reordering enabled (`CompilerConfig::optimize`).
    reorder: bool,
}

impl<'a> ExecContext<'a> {
    fn new(inst: &'a InternedInstance, reorder: bool) -> Self {
        ExecContext {
            inst,
            stats: ExecStats::new(),
            indexes: HashMap::new(),
            join_orders: HashMap::new(),
            reorder,
        }
    }

    /// The execution order for one flattened join group, decided by the greedy
    /// cost-based search on this instance's real cardinalities and memoised per
    /// group. `joins_reordered` is bumped when the decision (not each reuse)
    /// deviates from the written order.
    fn join_order(&mut self, group: &PlanNode, leaves: &[&PlanNode]) -> Vec<usize> {
        if !self.reorder {
            return (0..leaves.len()).collect();
        }
        if let Some(order) = self.join_orders.get(group) {
            return order.clone();
        }
        let schemas: Vec<Vec<String>> = leaves.iter().map(|l| l.schema()).collect();
        let estimates: Vec<f64> = leaves
            .iter()
            .map(|l| cost::estimate(l, self.inst))
            .collect();
        let adom = (self.inst.dictionary().len() as f64).max(1.0);
        let order = greedy_join_order(&schemas, &estimates, adom);
        if order.iter().enumerate().any(|(pos, &i)| pos != i) {
            self.stats.joins_reordered += 1;
        }
        self.join_orders.insert(group.clone(), order.clone());
        order
    }

    /// Rows of `rel` whose `cols` hold exactly `key`, via a (cached) hash index.
    fn probe_index(
        &mut self,
        relation: &str,
        rel: &ColumnarRelation,
        cols: &[usize],
        key: &[u32],
    ) -> Vec<usize> {
        let map_key = (relation.to_string(), cols.to_vec());
        if !self.indexes.contains_key(&map_key) {
            let mut index: RelationIndex = HashMap::new();
            for r in 0..rel.len() {
                let k: Vec<u32> = cols.iter().map(|&c| rel.col(c)[r]).collect();
                index.entry(k).or_default().push(r);
            }
            self.stats.index_builds += 1;
            self.stats.rows_scanned += rel.len() as u64;
            self.indexes.insert(map_key.clone(), index);
        }
        self.stats.hash_probes += 1;
        self.indexes[&map_key].get(key).cloned().unwrap_or_default()
    }
}

fn eval(node: &PlanNode, ctx: &mut ExecContext<'_>) -> Batch {
    match node {
        PlanNode::Scan {
            relation,
            pattern,
            schema,
        } => eval_scan(relation, pattern, schema, ctx),
        PlanNode::Unit => Batch {
            schema: Vec::new(),
            rows: vec![Vec::new()],
        },
        PlanNode::Empty { schema } => Batch::empty(schema.clone()),
        PlanNode::AdomConst { var, value } => {
            let rows = match ctx.inst.dictionary().code(value) {
                Some(code) => vec![vec![code]],
                None => Vec::new(),
            };
            Batch {
                schema: vec![var.clone()],
                rows,
            }
        }
        PlanNode::AdomEq { vars } => {
            let n = ctx.inst.dictionary().len() as u32;
            ctx.stats.intermediate_rows += u64::from(n);
            Batch {
                schema: vars.to_vec(),
                rows: (0..n).map(|c| vec![c, c]).collect(),
            }
        }
        PlanNode::Join { .. } => eval_join_group(node, ctx),
        PlanNode::AntiJoin { left, right } => {
            let l = eval(left, ctx);
            let r = eval(right, ctx);
            eval_anti_join(l, r, ctx)
        }
        PlanNode::Union { inputs } => {
            let mut schema = Vec::new();
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            let mut rows = Vec::new();
            for input in inputs {
                let b = eval(input, ctx);
                schema = b.schema;
                for row in b.rows {
                    if seen.insert(row.clone()) {
                        rows.push(row);
                    }
                }
            }
            ctx.stats.intermediate_rows += rows.len() as u64;
            Batch { schema, rows }
        }
        PlanNode::Project { input, keep } => {
            let b = eval(input, ctx);
            let positions: Vec<usize> = keep
                .iter()
                .map(|v| {
                    b.schema
                        .binary_search(v)
                        .expect("projection keeps schema columns")
                })
                .collect();
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            let mut rows = Vec::new();
            for row in &b.rows {
                let projected: Vec<u32> = positions.iter().map(|&p| row[p]).collect();
                if seen.insert(projected.clone()) {
                    rows.push(projected);
                }
            }
            ctx.stats.intermediate_rows += rows.len() as u64;
            Batch {
                schema: keep.clone(),
                rows,
            }
        }
        PlanNode::DomainPad { input, vars } => {
            let b = eval(input, ctx);
            eval_domain_pad(b, vars, ctx)
        }
        PlanNode::Complement { input } => {
            let b = eval(input, ctx);
            eval_complement(b, ctx)
        }
    }
}

/// Evaluates one flattened join group in the cost-chosen order, folding joins
/// pairwise and short-circuiting to an empty batch (over the group's full
/// schema) as soon as the accumulator empties — unevaluated members cannot
/// resurrect an empty join.
fn eval_join_group(group: &PlanNode, ctx: &mut ExecContext<'_>) -> Batch {
    let mut leaves = Vec::new();
    flatten_join_refs(group, &mut leaves);
    let order = ctx.join_order(group, &leaves);
    let full_schema = leaves
        .iter()
        .fold(Vec::new(), |acc, l| merge_schemas(&acc, &l.schema()));
    let mut acc: Option<Batch> = None;
    for &i in &order {
        if let Some(batch) = &acc {
            if batch.rows.is_empty() {
                return Batch::empty(full_schema);
            }
        }
        let next = eval(leaves[i], ctx);
        acc = Some(match acc {
            None => next,
            Some(prev) => eval_join(prev, next, ctx),
        });
    }
    acc.expect("a join group has at least two members")
}

fn eval_scan(
    relation: &str,
    pattern: &[ScanTerm],
    schema: &[String],
    ctx: &mut ExecContext<'_>,
) -> Batch {
    let Some(rel) = ctx.inst.relation(relation) else {
        return Batch::empty(schema.to_vec());
    };
    if rel.arity() != pattern.len() {
        // A same-named relation of a different arity never matches the atom —
        // exactly the interpreter's `contains` behaviour.
        return Batch::empty(schema.to_vec());
    }
    // Resolve constant positions to codes; a constant absent from the instance
    // makes the whole selection empty.
    let mut bound_cols = Vec::new();
    let mut bound_codes = Vec::new();
    let mut first_occurrence: HashMap<&str, usize> = HashMap::new();
    let mut eq_checks = Vec::new();
    for (i, t) in pattern.iter().enumerate() {
        match t {
            ScanTerm::Const(v) => match ctx.inst.dictionary().code(v) {
                Some(code) => {
                    bound_cols.push(i);
                    bound_codes.push(code);
                }
                None => return Batch::empty(schema.to_vec()),
            },
            ScanTerm::Var(v) => match first_occurrence.get(v.as_str()) {
                Some(&f) => eq_checks.push((f, i)),
                None => {
                    first_occurrence.insert(v, i);
                }
            },
        }
    }
    let out_positions: Vec<usize> = schema
        .iter()
        .map(|v| first_occurrence[v.as_str()])
        .collect();
    let candidates: Vec<usize> = if bound_cols.is_empty() {
        ctx.stats.rows_scanned += rel.len() as u64;
        (0..rel.len()).collect()
    } else {
        ctx.probe_index(relation, rel, &bound_cols, &bound_codes)
    };
    let rows: Vec<Vec<u32>> = candidates
        .into_iter()
        .filter(|&r| {
            eq_checks
                .iter()
                .all(|&(a, b)| rel.col(a)[r] == rel.col(b)[r])
        })
        .map(|r| out_positions.iter().map(|&p| rel.col(p)[r]).collect())
        .collect();
    Batch {
        schema: schema.to_vec(),
        rows,
    }
}

fn eval_join(l: Batch, r: Batch, ctx: &mut ExecContext<'_>) -> Batch {
    let schema = merge_schemas(&l.schema, &r.schema);
    // Shared variables and their positions on each side.
    let shared: Vec<&String> = l
        .schema
        .iter()
        .filter(|v| r.schema.binary_search(v).is_ok())
        .collect();
    let lkey: Vec<usize> = shared
        .iter()
        .map(|v| l.schema.binary_search(v).expect("shared"))
        .collect();
    let rkey: Vec<usize> = shared
        .iter()
        .map(|v| r.schema.binary_search(v).expect("shared"))
        .collect();
    // For every output column, where it comes from (left wins on shared columns).
    enum Src {
        L(usize),
        R(usize),
    }
    let sources: Vec<Src> = schema
        .iter()
        .map(|v| match l.schema.binary_search(v) {
            Ok(p) => Src::L(p),
            Err(_) => Src::R(r.schema.binary_search(v).expect("from one side")),
        })
        .collect();
    // Build on the smaller side, probe with the larger.
    let build_left = l.rows.len() <= r.rows.len();
    let (build, probe) = if build_left { (&l, &r) } else { (&r, &l) };
    let (build_key, probe_key) = if build_left {
        (&lkey, &rkey)
    } else {
        (&rkey, &lkey)
    };
    let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (i, row) in build.rows.iter().enumerate() {
        let key: Vec<u32> = build_key.iter().map(|&p| row[p]).collect();
        table.entry(key).or_default().push(i);
    }
    let mut rows = Vec::new();
    for probe_row in &probe.rows {
        ctx.stats.hash_probes += 1;
        let key: Vec<u32> = probe_key.iter().map(|&p| probe_row[p]).collect();
        let Some(matches) = table.get(&key) else {
            continue;
        };
        for &b in matches {
            let build_row = &build.rows[b];
            let (lrow, rrow) = if build_left {
                (build_row, probe_row)
            } else {
                (probe_row, build_row)
            };
            rows.push(
                sources
                    .iter()
                    .map(|s| match s {
                        Src::L(p) => lrow[*p],
                        Src::R(p) => rrow[*p],
                    })
                    .collect(),
            );
        }
    }
    ctx.stats.intermediate_rows += rows.len() as u64;
    Batch { schema, rows }
}

fn eval_anti_join(l: Batch, r: Batch, ctx: &mut ExecContext<'_>) -> Batch {
    // The lowering guarantees r.schema ⊆ l.schema.
    let positions: Vec<usize> = r
        .schema
        .iter()
        .map(|v| l.schema.binary_search(v).expect("anti-join schema subset"))
        .collect();
    let exclude: HashSet<Vec<u32>> = r.rows.into_iter().collect();
    let rows: Vec<Vec<u32>> = l
        .rows
        .into_iter()
        .filter(|row| {
            ctx.stats.hash_probes += 1;
            let key: Vec<u32> = positions.iter().map(|&p| row[p]).collect();
            !exclude.contains(&key)
        })
        .collect();
    ctx.stats.intermediate_rows += rows.len() as u64;
    Batch {
        schema: l.schema,
        rows,
    }
}

fn eval_domain_pad(b: Batch, vars: &[String], ctx: &mut ExecContext<'_>) -> Batch {
    let mut sorted_vars: Vec<String> = vars.to_vec();
    sorted_vars.sort();
    let schema = merge_schemas(&b.schema, &sorted_vars);
    let n = ctx.inst.dictionary().len() as u32;
    if n == 0 {
        return Batch::empty(schema);
    }
    enum Src {
        Input(usize),
        Pad(usize),
    }
    let sources: Vec<Src> = schema
        .iter()
        .map(|v| match b.schema.binary_search(v) {
            Ok(p) => Src::Input(p),
            Err(_) => Src::Pad(sorted_vars.binary_search(v).expect("padded")),
        })
        .collect();
    let k = sorted_vars.len();
    let mut rows = Vec::new();
    let mut pad = vec![0u32; k];
    for row in &b.rows {
        pad.iter_mut().for_each(|p| *p = 0);
        loop {
            rows.push(
                sources
                    .iter()
                    .map(|s| match s {
                        Src::Input(p) => row[*p],
                        Src::Pad(p) => pad[*p],
                    })
                    .collect(),
            );
            // Advance the odometer over adom^k.
            let mut pos = 0;
            loop {
                if pos == k {
                    break;
                }
                pad[pos] += 1;
                if pad[pos] < n {
                    break;
                }
                pad[pos] = 0;
                pos += 1;
            }
            if pos == k {
                break;
            }
        }
    }
    ctx.stats.intermediate_rows += rows.len() as u64;
    Batch { schema, rows }
}

fn eval_complement(b: Batch, ctx: &mut ExecContext<'_>) -> Batch {
    let k = b.schema.len();
    if k == 0 {
        // Boolean negation under the {()} / ∅ encoding.
        let rows = if b.rows.is_empty() {
            vec![Vec::new()]
        } else {
            Vec::new()
        };
        return Batch {
            schema: b.schema,
            rows,
        };
    }
    let n = ctx.inst.dictionary().len() as u32;
    let present: HashSet<Vec<u32>> = b.rows.into_iter().collect();
    let mut rows = Vec::new();
    let mut current = vec![0u32; k];
    if n > 0 {
        loop {
            if !present.contains(&current) {
                rows.push(current.clone());
            }
            let mut pos = 0;
            loop {
                if pos == k {
                    break;
                }
                current[pos] += 1;
                if current[pos] < n {
                    break;
                }
                current[pos] = 0;
                pos += 1;
            }
            if pos == k {
                break;
            }
        }
    }
    ctx.stats.intermediate_rows += rows.len() as u64;
    Batch {
        schema: b.schema,
        rows,
    }
}

impl CompiledQuery {
    /// Executes the plan on an instance, returning **all** answers — including
    /// tuples containing nulls — like [`nev_logic::eval::evaluate_query`].
    pub fn execute(&self, d: &Instance) -> ExecOutput {
        let interned = InternedInstance::new(d);
        let mut stats = ExecStats::new();
        let answers = self.execute_interned(&interned, false, &mut stats);
        ExecOutput { answers, stats }
    }

    /// Executes the plan and keeps only the all-constant answers — **naïve
    /// evaluation**, like [`nev_logic::eval::naive_eval_query`].
    pub fn execute_naive(&self, d: &Instance) -> ExecOutput {
        let interned = InternedInstance::new(d);
        let mut stats = ExecStats::new();
        let answers = self.execute_interned(&interned, true, &mut stats);
        ExecOutput { answers, stats }
    }

    /// Executes against an already-interned instance, merging counters into
    /// `stats`. With `complete_only`, rows containing null codes are dropped — the
    /// "discard tuples with nulls" half of naïve evaluation, decided with one
    /// integer comparison per position.
    pub fn execute_interned(
        &self,
        inst: &InternedInstance,
        complete_only: bool,
        stats: &mut ExecStats,
    ) -> BTreeSet<Tuple> {
        let mut ctx = ExecContext::new(inst, self.reorder);
        // Replay the compile-time rule count and the root cardinality estimate
        // into this execution's telemetry (`as` saturates, never panics).
        ctx.stats.rules_fired = self.rules.total();
        ctx.stats.estimated_rows = cost::estimate(&self.plan, inst) as u64;
        let batch = eval(&self.plan, &mut ctx);
        debug_assert_eq!(batch.schema, self.schema, "plan schema must match");
        let dict = inst.dictionary();
        let mut answers = BTreeSet::new();
        for row in &batch.rows {
            if complete_only && !row.iter().all(|&code| dict.is_const(code)) {
                continue;
            }
            let tuple: Tuple = self
                .output_positions
                .iter()
                .map(|&p| dict.value(row[p]).clone())
                .collect();
            answers.insert(tuple);
        }
        stats.merge(&ctx.stats);
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    use nev_logic::eval::{evaluate_query, naive_eval_query};
    use nev_logic::parse_query;

    fn check(text: &str, d: &Instance) -> ExecOutput {
        let q = parse_query(text).expect("valid query");
        let compiled = CompiledQuery::compile(&q).expect("compiles");
        let out = compiled.execute(d);
        assert_eq!(out.answers, evaluate_query(d, &q), "raw answers on {text}");
        let naive = compiled.execute_naive(d);
        assert_eq!(
            naive.answers,
            naive_eval_query(d, &q),
            "naive answers on {text}"
        );
        out
    }

    fn intro() -> Instance {
        inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        }
    }

    #[test]
    fn intro_join_matches_the_interpreter() {
        let out = check("Q(x, y) :- exists z . R(x, z) & S(z, y)", &intro());
        assert_eq!(out.answers.len(), 2);
        assert!(out.stats.rows_scanned > 0);
        assert!(out.stats.hash_probes > 0);
    }

    #[test]
    fn constants_in_atoms_use_the_index() {
        let d = inst! { "R" => [[c(1), c(2)], [c(1), c(3)], [c(2), c(3)]] };
        let out = check("Q(u) :- R(1, u)", &d);
        assert_eq!(out.answers.len(), 2);
        assert_eq!(out.stats.index_builds, 1);
        assert!(out.stats.hash_probes >= 1);
    }

    #[test]
    fn self_joins_share_one_index() {
        let d = inst! { "R" => [[c(1), c(2)], [c(2), c(3)]] };
        // Two scans of R bound on column 0 share the cached index.
        let out = check("Q(u) :- exists v . R(1, v) & R(2, u)", &d);
        assert_eq!(out.stats.index_builds, 1);
    }

    #[test]
    fn repeated_variables_select_within_rows() {
        let d = inst! { "R" => [[c(1), c(1)], [c(1), c(2)], [x(1), x(1)]] };
        let out = check("Q(u) :- R(u, u)", &d);
        assert_eq!(out.answers.len(), 2);
    }

    #[test]
    fn negation_forall_and_equality_match_the_interpreter() {
        let d0 = inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] };
        let loops = inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] };
        for d in [&d0, &loops, &Instance::new()] {
            check("forall u . exists v . D(u, v)", d);
            check("exists u . !D(u, u)", d);
            check("forall u v . D(u, v) -> D(v, u)", d);
            check("Q(u) :- exists v . D(u, v) & !D(v, u)", d);
            check("exists u v . D(u, v) & u = v", d);
            check("exists u . D(u, u) & u = 1", d);
        }
    }

    #[test]
    fn empty_instances_and_missing_relations() {
        let empty = Instance::new();
        check("exists u . T(u)", &empty);
        check("Q(u) :- T(u)", &empty);
        check("forall u . T(u)", &empty);
        let d = inst! { "R" => [[c(1)]] };
        check("exists u . T(u)", &d);
        // A constant absent from the instance: empty selection, not an error.
        check("exists u . R(9)", &d);
    }

    #[test]
    fn answer_variables_absent_from_the_formula_range_over_adom() {
        let d = inst! { "R" => [[c(1)], [c(2)]] };
        let out = check("Q(u, v) :- R(u)", &d);
        assert_eq!(out.answers.len(), 4);
    }

    #[test]
    fn boolean_encoding_round_trips() {
        let d = inst! { "R" => [[c(1)]] };
        let t = check("exists u . R(u)", &d);
        assert_eq!(t.answers.len(), 1);
        let f = check("exists u . S(u)", &d);
        assert!(f.answers.is_empty());
    }
}
