//! `nev-opt` — the two-stage plan optimiser for the certified naive path.
//!
//! **Stage 1 (compile time, rule-based)** is [`crate::rules`]: semantics-
//! preserving rewrites — projection pushdown, self-join deduplication,
//! `Complement` → anti-join, pad absorption, union flattening — applied once
//! when a query is compiled, so every consumer of the cached
//! [`crate::CompiledQuery`] (the engine's `PreparedQuery`, the serve layer's
//! `PlanCache`) executes the rewritten plan.
//!
//! **Stage 2 (execution time, cost-based)** is [`greedy_join_order`]: join
//! groups are kept flat by stage 1, and at execution time the executor
//! ([`crate::exec`]) re-orders each group greedily — smallest estimated
//! intermediate first, cross products deferred to last — using the cost model
//! of [`crate::cost`] seeded from the **actual** base-relation cardinalities of
//! the instance at hand. The chosen order is memoised per group alongside the
//! executor's hash-index cache, and re-derived per instance because different
//! instances (or different possible worlds of one instance) have different
//! cardinalities.

use crate::algebra::PlanNode;
use crate::cost::{join_estimate, shared_count};
use crate::rules::{apply_rules, RuleReport};

/// Runs the rule-based stage over a lowered plan. The returned plan computes
/// exactly the same rows on every instance; the report says which rules fired.
pub fn optimize(plan: PlanNode) -> (PlanNode, RuleReport) {
    apply_rules(plan)
}

/// Greedy join-order search over one flattened join group.
///
/// `schemas[i]`/`estimates[i]` describe group member `i` (sorted schema,
/// estimated cardinality on the current instance). Returns the execution
/// order: start from the smallest estimated member, then repeatedly fold in
/// the member minimising the estimated intermediate size among those sharing
/// at least one variable with the accumulated schema — members sharing none
/// (cross products) are deferred until nothing else remains. Ties break on the
/// lowest index, so the search is deterministic and the identity permutation
/// means "the written order was already chosen".
pub fn greedy_join_order(schemas: &[Vec<String>], estimates: &[f64], adom: f64) -> Vec<usize> {
    let n = schemas.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);

    // Seed: the smallest estimated member that shares a variable with someone
    // (so the chain can grow joins, not cross products). A member estimated
    // empty trumps connectivity — joining anything with it is free.
    let connected_at_all: Vec<bool> = (0..n)
        .map(|i| (0..n).any(|j| j != i && shared_count(&schemas[i], &schemas[j]) > 0))
        .collect();
    let first_pos = (0..remaining.len())
        .min_by(|&a, &b| {
            let ia = remaining[a];
            let ib = remaining[b];
            let pref = |i: usize| !(estimates[i] < 1.0 || connected_at_all[i]);
            pref(ia)
                .cmp(&pref(ib))
                .then(estimates[ia].total_cmp(&estimates[ib]))
                .then(ia.cmp(&ib))
        })
        .expect("non-empty group");
    let first = remaining.remove(first_pos);
    order.push(first);
    let mut acc_schema = schemas[first].clone();
    let mut acc_estimate = estimates[first];

    while !remaining.is_empty() {
        // Prefer members connected to the accumulated schema; among them (or
        // among all, when none connects) minimise the estimated join output.
        let connected: Vec<usize> = (0..remaining.len())
            .filter(|&p| shared_count(&acc_schema, &schemas[remaining[p]]) > 0)
            .collect();
        let candidates = if connected.is_empty() {
            (0..remaining.len()).collect()
        } else {
            connected
        };
        let best_pos = candidates
            .into_iter()
            .min_by(|&a, &b| {
                let ia = remaining[a];
                let ib = remaining[b];
                let ea =
                    join_estimate(acc_estimate, &acc_schema, estimates[ia], &schemas[ia], adom);
                let eb =
                    join_estimate(acc_estimate, &acc_schema, estimates[ib], &schemas[ib], adom);
                ea.total_cmp(&eb).then(ia.cmp(&ib))
            })
            .expect("non-empty candidates");
        let next = remaining.remove(best_pos);
        acc_estimate = join_estimate(
            acc_estimate,
            &acc_schema,
            estimates[next],
            &schemas[next],
            adom,
        );
        acc_schema = crate::algebra::merge_schemas(&acc_schema, &schemas[next]);
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(vars: &[&str]) -> Vec<String> {
        let mut v: Vec<String> = vars.iter().map(|x| x.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn smallest_member_starts_and_chains_follow_connectivity() {
        // R(x,y)=100, S(y,z)=100, T(z,w)=2: start at T, then S (shares z),
        // then R (shares y) — never the written order.
        let schemas = [s(&["x", "y"]), s(&["y", "z"]), s(&["z", "w"])];
        let estimates = [100.0, 100.0, 2.0];
        assert_eq!(greedy_join_order(&schemas, &estimates, 50.0), [2, 1, 0]);
    }

    #[test]
    fn cross_products_are_deferred_to_last() {
        // U(a) is tiny but shares nothing; the connected chain must run first.
        let schemas = [s(&["x", "y"]), s(&["y", "z"]), s(&["a"])];
        let estimates = [10.0, 10.0, 1.0];
        let order = greedy_join_order(&schemas, &estimates, 10.0);
        assert_eq!(*order.last().expect("non-empty"), 2, "{order:?}");
        // …unless a member is estimated empty: then it leads, because an empty
        // accumulator short-circuits the whole group.
        let order = greedy_join_order(&schemas, &[10.0, 10.0, 0.0], 10.0);
        assert_eq!(order[0], 2, "{order:?}");
    }

    #[test]
    fn already_optimal_orders_come_back_as_identity() {
        let schemas = [s(&["x", "y"]), s(&["y", "z"])];
        let estimates = [2.0, 10.0];
        assert_eq!(greedy_join_order(&schemas, &estimates, 10.0), [0, 1]);
        assert_eq!(greedy_join_order(&[s(&["x"])], &[5.0], 10.0), [0]);
        assert_eq!(greedy_join_order(&[], &[], 10.0), Vec::<usize>::new());
    }
}
