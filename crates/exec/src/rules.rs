//! Stage 1 of the `nev-opt` optimiser: rule-based plan rewrites.
//!
//! Every rule is a set-semantics identity over the active-domain algebra of
//! [`crate::algebra`], so rewriting can never change an answer — only the work
//! done to produce it. The rules:
//!
//! * **Union flattening** — nested unions splice into their parent, `Empty`
//!   inputs and duplicate inputs are dropped, single-input unions unwrap;
//! * **Self-join deduplication** — a natural join of two *identical* subplans is
//!   idempotent (`X ⋈ X = X`), so self-joins introduced by repeated conjuncts
//!   collapse to one evaluation;
//! * **Pad absorption** — `l ⋈ pad_vs(x) = l ⋈ x` whenever `vs ⊆ schema(l)`:
//!   the join immediately pins every padded column to `l`'s values, so crossing
//!   with `adom^vs` first is pure waste;
//! * **Complement → anti-join** — `l ⋈ (adom^k ∖ x) = l ▷ x` whenever
//!   `schema(x) ⊆ schema(l)`: the conjunction binds the negated variables, so
//!   the `adom^k` materialisation is never needed;
//! * **Join-over-union distribution** — `l ⋈ (a ∪ b) = (l ⋈ a) ∪ (l ⋈ b)`,
//!   applied only when a union input is a `DomainPad`/`Complement` (and the
//!   plans are small), because its sole purpose is to expose the two rules
//!   above inside disjunctions;
//! * **Projection pushdown** — columns not needed upstream are projected away
//!   as early as possible (with duplicate elimination), *without* inserting
//!   projections between the members of one join group — those stay flat so the
//!   cost-based stage ([`crate::optimize`]/[`crate::exec`]) can still reorder
//!   them.

use crate::algebra::{flatten_join_refs, merge_schemas, PlanNode};

/// Per-rule firing counts for one optimisation run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RuleReport {
    /// Nested/empty/duplicate union inputs simplified.
    pub unions_flattened: u64,
    /// Identical-subplan self-joins collapsed.
    pub self_joins_deduped: u64,
    /// `DomainPad`s absorbed into a binding join.
    pub pads_absorbed: u64,
    /// `Complement`s rewritten into anti-joins.
    pub complements_rewritten: u64,
    /// Joins distributed over unions (to expose the two rules above).
    pub joins_distributed: u64,
    /// Projections pushed below their original position (or pad columns
    /// trimmed).
    pub projections_pushed: u64,
    /// `Empty` inputs propagated through joins, anti-joins, pads and
    /// projections (statically-unsat subplans collapsing to zero scans).
    pub empties_propagated: u64,
}

impl RuleReport {
    /// Total number of rule firings.
    pub fn total(&self) -> u64 {
        self.unions_flattened
            + self.self_joins_deduped
            + self.pads_absorbed
            + self.complements_rewritten
            + self.joins_distributed
            + self.projections_pushed
            + self.empties_propagated
    }

    fn merge(&mut self, other: &RuleReport) {
        self.unions_flattened += other.unions_flattened;
        self.self_joins_deduped += other.self_joins_deduped;
        self.pads_absorbed += other.pads_absorbed;
        self.complements_rewritten += other.complements_rewritten;
        self.joins_distributed += other.joins_distributed;
        self.projections_pushed += other.projections_pushed;
        self.empties_propagated += other.empties_propagated;
    }
}

/// Distribution is only worthwhile (and only safe against plan-size blowup)
/// within these limits.
const MAX_DISTRIBUTED_INPUTS: usize = 4;
const MAX_DISTRIBUTED_NODE_COUNT: usize = 24;
/// Structural rewriting runs to a fixpoint; this caps pathological ping-pong.
const MAX_PASSES: usize = 8;

/// Applies every rule to a fixpoint, then pushes projections down, then cleans
/// up once more. The returned plan has the same output schema and the same
/// output rows as the input on every instance.
pub fn apply_rules(plan: PlanNode) -> (PlanNode, RuleReport) {
    let mut report = RuleReport::default();
    let mut plan = structural_fixpoint(plan, &mut report);
    let needed = plan.schema();
    plan = push_projections(plan, &needed, &mut report);
    plan = structural_fixpoint(plan, &mut report);
    (plan, report)
}

fn structural_fixpoint(mut plan: PlanNode, report: &mut RuleReport) -> PlanNode {
    for _ in 0..MAX_PASSES {
        let mut pass = RuleReport::default();
        plan = rewrite(plan, &mut pass);
        let progress = pass.total() > 0;
        report.merge(&pass);
        if !progress {
            break;
        }
    }
    plan
}

/// One bottom-up structural rewrite pass.
fn rewrite(node: PlanNode, report: &mut RuleReport) -> PlanNode {
    match node {
        PlanNode::Join { left, right } => {
            let left = rewrite(*left, report);
            let right = rewrite(*right, report);
            rewrite_join(left, right, report)
        }
        PlanNode::AntiJoin { left, right } => {
            let left = rewrite(*left, report);
            let right = rewrite(*right, report);
            // ∅ ▷ x = ∅; l ▷ ∅ = l.
            if matches!(left, PlanNode::Empty { .. }) {
                report.empties_propagated += 1;
                return left;
            }
            if matches!(right, PlanNode::Empty { .. }) {
                report.empties_propagated += 1;
                return left;
            }
            PlanNode::AntiJoin {
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        PlanNode::Union { inputs } => rewrite_union(inputs, report),
        PlanNode::Project { input, keep } => {
            let input = rewrite(*input, report);
            if matches!(input, PlanNode::Empty { .. }) {
                report.empties_propagated += 1;
                return PlanNode::Empty { schema: keep };
            }
            if input.schema() == keep {
                report.projections_pushed += 1;
                input
            } else {
                PlanNode::Project {
                    input: Box::new(input),
                    keep,
                }
            }
        }
        PlanNode::DomainPad { input, vars } => {
            let input = rewrite(*input, report);
            // pad_vs(∅) = ∅: padding cannot resurrect an empty input.
            if matches!(input, PlanNode::Empty { .. }) {
                report.empties_propagated += 1;
                let schema = PlanNode::DomainPad {
                    input: Box::new(input),
                    vars,
                }
                .schema();
                return PlanNode::Empty { schema };
            }
            PlanNode::DomainPad {
                input: Box::new(input),
                vars,
            }
        }
        PlanNode::Complement { input } => PlanNode::Complement {
            input: Box::new(rewrite(*input, report)),
        },
        leaf => leaf,
    }
}

fn rewrite_join(left: PlanNode, right: PlanNode, report: &mut RuleReport) -> PlanNode {
    // Unit is the join identity (rule applications can re-expose it).
    if matches!(left, PlanNode::Unit) {
        return right;
    }
    if matches!(right, PlanNode::Unit) {
        return left;
    }
    // ∅ is the join annihilator: a statically-empty side empties the join.
    if matches!(left, PlanNode::Empty { .. }) || matches!(right, PlanNode::Empty { .. }) {
        report.empties_propagated += 1;
        let schema = merge_schemas(&left.schema(), &right.schema());
        return PlanNode::Empty { schema };
    }
    // Self-join dedup: X ⋈ X = X under set semantics.
    if left == right {
        report.self_joins_deduped += 1;
        return left;
    }
    // Pad absorption, both orientations.
    if let PlanNode::DomainPad { input, vars } = &right {
        if !vars.is_empty() && is_subset_of(vars, &left.schema()) {
            report.pads_absorbed += 1;
            let inner = (**input).clone();
            return rewrite_join(left, inner, report);
        }
    }
    if let PlanNode::DomainPad { input, vars } = &left {
        if !vars.is_empty() && is_subset_of(vars, &right.schema()) {
            report.pads_absorbed += 1;
            let inner = (**input).clone();
            return rewrite_join(inner, right, report);
        }
    }
    // Complement → anti-join when the other side binds the negated columns.
    if let PlanNode::Complement { input } = &right {
        if is_subset_of(&input.schema(), &left.schema()) {
            report.complements_rewritten += 1;
            return PlanNode::AntiJoin {
                right: Box::new((**input).clone()),
                left: Box::new(left),
            };
        }
    }
    if let PlanNode::Complement { input } = &left {
        if is_subset_of(&input.schema(), &right.schema()) {
            report.complements_rewritten += 1;
            return PlanNode::AntiJoin {
                left: Box::new(right),
                right: Box::new((**input).clone()),
            };
        }
    }
    // Join-over-union distribution, gated on it exposing pads/complements.
    for (unioned, other) in [(&right, &left), (&left, &right)] {
        if let PlanNode::Union { inputs } = unioned {
            if inputs.len() <= MAX_DISTRIBUTED_INPUTS
                && other.node_count() <= MAX_DISTRIBUTED_NODE_COUNT
                && inputs.iter().any(is_expensive)
            {
                report.joins_distributed += 1;
                let inputs = inputs.clone();
                let other = other.clone();
                let distributed: Vec<PlanNode> = inputs
                    .into_iter()
                    .map(|input| rewrite_join(other.clone(), input, report))
                    .collect();
                return rewrite_union(distributed, report);
            }
        }
    }
    PlanNode::Join {
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// A node the distribution rule wants to expose to absorption/anti-join.
fn is_expensive(node: &PlanNode) -> bool {
    matches!(
        node,
        PlanNode::Complement { .. } | PlanNode::DomainPad { .. }
    )
}

fn rewrite_union(inputs: Vec<PlanNode>, report: &mut RuleReport) -> PlanNode {
    let schema = inputs.first().map(PlanNode::schema).unwrap_or_default();
    let mut flat: Vec<PlanNode> = Vec::with_capacity(inputs.len());
    for input in inputs {
        let input = rewrite(input, report);
        match input {
            PlanNode::Union { inputs: nested } => {
                report.unions_flattened += 1;
                for n in nested {
                    if matches!(n, PlanNode::Empty { .. }) || flat.contains(&n) {
                        continue;
                    }
                    flat.push(n);
                }
            }
            PlanNode::Empty { .. } => {
                report.unions_flattened += 1;
            }
            other => {
                if flat.contains(&other) {
                    report.unions_flattened += 1;
                } else {
                    flat.push(other);
                }
            }
        }
    }
    match flat.len() {
        0 => PlanNode::Empty { schema },
        1 => {
            report.unions_flattened += 1;
            flat.pop().expect("one input")
        }
        _ => PlanNode::Union { inputs: flat },
    }
}

/// Returns `true` iff sorted `a` ⊆ sorted `b`.
fn is_subset_of(a: &[String], b: &[String]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j == b.len() {
            return false;
        }
        match b[j].cmp(&a[i]) {
            std::cmp::Ordering::Less => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Greater => return false,
        }
    }
    true
}

fn sorted_intersection(a: &[String], b: &[String]) -> Vec<String> {
    a.iter()
        .filter(|v| b.binary_search(v).is_ok())
        .cloned()
        .collect()
}

/// Projection pushdown: returns a plan computing exactly `π_needed(node)`
/// (`needed` must be a sorted subset of `node.schema()`). Projections are
/// **not** inserted between the members of a join group — the group stays flat
/// for the cost-based reorderer — but are pushed onto the group's leaves, into
/// union inputs, below existing projections, and used to trim pad columns.
fn push_projections(node: PlanNode, needed: &[String], report: &mut RuleReport) -> PlanNode {
    match node {
        PlanNode::Project { input, keep } => {
            if needed != keep.as_slice() {
                report.projections_pushed += 1;
            }
            push_projections(*input, needed, report)
        }
        PlanNode::Join { .. } => {
            // Flatten the group (the shared group definition from `algebra`),
            // compute what each leaf must keep (columns needed upstream plus
            // every column shared with a sibling leaf), push into the leaves,
            // and rebuild the group in written order.
            let mut leaf_refs = Vec::new();
            flatten_join_refs(&node, &mut leaf_refs);
            let schemas: Vec<Vec<String>> = leaf_refs.iter().map(|l| l.schema()).collect();
            let leaves: Vec<PlanNode> = leaf_refs.into_iter().cloned().collect();
            let mut rebuilt: Option<PlanNode> = None;
            let mut group_schema: Vec<String> = Vec::new();
            for (i, leaf) in leaves.into_iter().enumerate() {
                let mut keep: Vec<String> = sorted_intersection(&schemas[i], needed);
                for (j, other) in schemas.iter().enumerate() {
                    if j != i {
                        let shared = sorted_intersection(&schemas[i], other);
                        keep = merge_schemas(&keep, &shared);
                    }
                }
                if keep.len() < schemas[i].len() {
                    report.projections_pushed += 1;
                }
                let pushed = push_projections(leaf, &keep, report);
                group_schema = merge_schemas(&group_schema, &keep);
                rebuilt = Some(match rebuilt {
                    None => pushed,
                    Some(acc) => PlanNode::Join {
                        left: Box::new(acc),
                        right: Box::new(pushed),
                    },
                });
            }
            let rebuilt = rebuilt.expect("a join group has leaves");
            wrap(rebuilt, needed, &group_schema)
        }
        PlanNode::AntiJoin { left, right } => {
            let right_schema = right.schema();
            let left_needed = merge_schemas(needed, &right_schema);
            let left = push_projections(*left, &left_needed, report);
            let right = push_projections(*right, &right_schema, report);
            wrap(
                PlanNode::AntiJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                },
                needed,
                &left_needed,
            )
        }
        PlanNode::Union { inputs } => {
            let shrank = inputs
                .first()
                .map(|i| i.schema().len() > needed.len())
                .unwrap_or(false);
            if shrank {
                report.projections_pushed += 1;
            }
            PlanNode::Union {
                inputs: inputs
                    .into_iter()
                    .map(|i| push_projections(i, needed, report))
                    .collect(),
            }
        }
        PlanNode::DomainPad { input, vars } => {
            let input_schema = input.schema();
            let mut vars_needed: Vec<String> = vars
                .iter()
                .filter(|v| needed.binary_search(v).is_ok())
                .cloned()
                .collect();
            vars_needed.sort();
            let input_needed = sorted_intersection(&input_schema, needed);
            if vars_needed.len() == vars.len() {
                let input = push_projections(*input, &input_needed, report);
                return PlanNode::DomainPad {
                    input: Box::new(input),
                    vars,
                };
            }
            report.projections_pushed += 1;
            if !input_needed.is_empty() {
                // Surviving input columns witness a non-empty active domain, so
                // unneeded pad columns can simply be dropped.
                let input = push_projections(*input, &input_needed, report);
                if vars_needed.is_empty() {
                    input
                } else {
                    PlanNode::DomainPad {
                        input: Box::new(input),
                        vars: vars_needed,
                    }
                }
            } else {
                // Zero-column input (`∃u.true`-like): keep one pad column as the
                // "active domain is non-empty" guard, projecting it away above.
                let input = push_projections(*input, &[], report);
                let guard = if vars_needed.is_empty() {
                    vec![vars[0].clone()]
                } else {
                    vars_needed
                };
                let guard_schema = guard.clone();
                wrap(
                    PlanNode::DomainPad {
                        input: Box::new(input),
                        vars: guard,
                    },
                    needed,
                    &guard_schema,
                )
            }
        }
        PlanNode::Complement { input } => {
            // π does not commute with complement: optimise inside, wrap above.
            let input_schema = input.schema();
            let inner = push_projections(*input, &input_schema, report);
            wrap(
                PlanNode::Complement {
                    input: Box::new(inner),
                },
                needed,
                &input_schema,
            )
        }
        PlanNode::Empty { .. } => PlanNode::Empty {
            schema: needed.to_vec(),
        },
        leaf => {
            let schema = leaf.schema();
            if needed.len() < schema.len() {
                report.projections_pushed += 1;
            }
            wrap(leaf, needed, &schema)
        }
    }
}

/// Projects `node` (of schema `schema`) down to `needed` when they differ.
fn wrap(node: PlanNode, needed: &[String], schema: &[String]) -> PlanNode {
    if needed == schema {
        node
    } else {
        PlanNode::Project {
            input: Box::new(node),
            keep: needed.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::ScanTerm;

    fn scan(rel: &str, vars: &[&str]) -> PlanNode {
        let mut schema: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
        schema.sort();
        schema.dedup();
        PlanNode::Scan {
            relation: rel.into(),
            pattern: vars.iter().map(|v| ScanTerm::Var(v.to_string())).collect(),
            schema,
        }
    }

    fn join(l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::Join {
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn self_joins_collapse() {
        let (plan, report) = apply_rules(join(scan("R", &["x", "y"]), scan("R", &["x", "y"])));
        assert_eq!(plan, scan("R", &["x", "y"]));
        assert_eq!(report.self_joins_deduped, 1);
        assert_eq!(report.total(), 1);
    }

    #[test]
    fn pads_absorb_into_binding_joins() {
        let padded = PlanNode::DomainPad {
            input: Box::new(scan("S", &["y"])),
            vars: vec!["x".into()],
        };
        let (plan, report) = apply_rules(join(scan("R", &["x", "y"]), padded));
        assert_eq!(plan, join(scan("R", &["x", "y"]), scan("S", &["y"])));
        assert_eq!(report.pads_absorbed, 1);
    }

    #[test]
    fn bound_complements_become_anti_joins() {
        let complement = PlanNode::Complement {
            input: Box::new(scan("S", &["y"])),
        };
        let (plan, report) = apply_rules(join(complement, scan("R", &["x", "y"])));
        assert_eq!(
            plan,
            PlanNode::AntiJoin {
                left: Box::new(scan("R", &["x", "y"])),
                right: Box::new(scan("S", &["y"])),
            }
        );
        assert_eq!(report.complements_rewritten, 1);
    }

    #[test]
    fn unbound_complements_survive() {
        let complement = PlanNode::Complement {
            input: Box::new(scan("S", &["y", "z"])),
        };
        let (plan, report) = apply_rules(join(scan("R", &["x"]), complement.clone()));
        assert_eq!(plan, join(scan("R", &["x"]), complement));
        assert_eq!(report.complements_rewritten, 0);
    }

    #[test]
    fn unions_flatten_dedup_and_drop_empties() {
        let nested = PlanNode::Union {
            inputs: vec![
                PlanNode::Union {
                    inputs: vec![scan("A", &["x"]), scan("B", &["x"])],
                },
                PlanNode::Empty {
                    schema: vec!["x".into()],
                },
                scan("A", &["x"]),
            ],
        };
        let (plan, report) = apply_rules(nested);
        assert_eq!(
            plan,
            PlanNode::Union {
                inputs: vec![scan("A", &["x"]), scan("B", &["x"])],
            }
        );
        assert!(report.unions_flattened >= 2, "{report:?}");
    }

    #[test]
    fn joins_distribute_over_expensive_unions_and_simplify() {
        // R(x,y) ⋈ (pad_y(E(x)) ∪ pad_x(¬S(y))) — the disjunction-with-negation
        // shape: distribution exposes one pad absorption and one anti-join.
        let union = PlanNode::Union {
            inputs: vec![
                PlanNode::DomainPad {
                    input: Box::new(scan("E", &["x"])),
                    vars: vec!["y".into()],
                },
                PlanNode::DomainPad {
                    input: Box::new(PlanNode::Complement {
                        input: Box::new(scan("S", &["y"])),
                    }),
                    vars: vec!["x".into()],
                },
            ],
        };
        let (plan, report) = apply_rules(join(scan("R", &["x", "y"]), union));
        assert_eq!(
            plan,
            PlanNode::Union {
                inputs: vec![
                    join(scan("R", &["x", "y"]), scan("E", &["x"])),
                    PlanNode::AntiJoin {
                        left: Box::new(scan("R", &["x", "y"])),
                        right: Box::new(scan("S", &["y"])),
                    },
                ],
            }
        );
        assert_eq!(report.joins_distributed, 1);
        assert_eq!(report.pads_absorbed, 2);
        assert_eq!(report.complements_rewritten, 1);
    }

    #[test]
    fn projections_push_onto_group_leaves_but_not_between_them() {
        // π_x(R(x,y) ⋈ S(y,z) ⋈ T(z,w)): w is projected away inside T's leaf,
        // but the three-way group stays flat (no Project between joins).
        let group = join(
            join(scan("R", &["x", "y"]), scan("S", &["y", "z"])),
            scan("T", &["z", "w"]),
        );
        let plan = PlanNode::Project {
            input: Box::new(group),
            keep: vec!["x".into()],
        };
        let (optimised, report) = apply_rules(plan);
        assert!(report.projections_pushed > 0, "{report:?}");
        assert_eq!(optimised.schema(), vec!["x".to_string()]);
        // The T leaf lost its w column behind a leaf-level projection…
        let rendered = optimised.compact();
        assert!(rendered.contains("Project[z](Scan T(z,w))"), "{rendered}");
        // …and the group is still a flat nested-join chain under one Project.
        assert!(rendered.starts_with("Project[x](HashJoin("), "{rendered}");
    }

    #[test]
    fn empty_inputs_annihilate_joins_pads_and_projections() {
        // R(x,y) ⋈ ∅(y,z) = ∅(x,y,z), with zero scans left in the plan.
        let empty = PlanNode::Empty {
            schema: vec!["y".into(), "z".into()],
        };
        let (plan, report) = apply_rules(join(scan("R", &["x", "y"]), empty.clone()));
        assert_eq!(
            plan,
            PlanNode::Empty {
                schema: vec!["x".into(), "y".into(), "z".into()],
            }
        );
        assert!(report.empties_propagated >= 1, "{report:?}");

        // pad_w(∅) then π empties all the way up.
        let padded = PlanNode::Project {
            input: Box::new(PlanNode::DomainPad {
                input: Box::new(empty),
                vars: vec!["w".into()],
            }),
            keep: vec!["w".into()],
        };
        let (plan, report) = apply_rules(padded);
        assert_eq!(
            plan,
            PlanNode::Empty {
                schema: vec!["w".into()],
            }
        );
        assert!(report.empties_propagated >= 2, "{report:?}");
    }

    #[test]
    fn empty_sides_simplify_anti_joins() {
        // ∅ ▷ S = ∅.
        let empty = PlanNode::Empty {
            schema: vec!["y".into()],
        };
        let (plan, report) = apply_rules(PlanNode::AntiJoin {
            left: Box::new(empty.clone()),
            right: Box::new(scan("S", &["y"])),
        });
        assert_eq!(plan, empty);
        assert_eq!(report.empties_propagated, 1);

        // R ▷ ∅ = R.
        let (plan, report) = apply_rules(PlanNode::AntiJoin {
            left: Box::new(scan("R", &["x", "y"])),
            right: Box::new(empty),
        });
        assert_eq!(plan, scan("R", &["x", "y"]));
        assert_eq!(report.empties_propagated, 1);
    }

    #[test]
    fn pad_columns_trim_but_the_empty_domain_guard_survives() {
        // π_∅(pad_u(Unit)) — the ∃u.true shape: the pad must survive as the
        // "adom is non-empty" guard.
        let plan = PlanNode::Project {
            input: Box::new(PlanNode::DomainPad {
                input: Box::new(PlanNode::Unit),
                vars: vec!["u".into(), "v".into()],
            }),
            keep: vec![],
        };
        let (optimised, _) = apply_rules(plan);
        assert_eq!(
            optimised,
            PlanNode::Project {
                input: Box::new(PlanNode::DomainPad {
                    input: Box::new(PlanNode::Unit),
                    vars: vec!["u".into()],
                }),
                keep: vec![],
            }
        );
    }
}
