//! # `nev-exec` — compiled relational-algebra execution for the certified path
//!
//! The paper's headline (Figure 1) is that on guaranteed (semantics, fragment)
//! cells *one* naïve evaluation pass computes the certain answers. Making that pass
//! fast is a classical database problem, and this crate gives it the classical
//! database answer: compile the query **once** into a physical operator DAG and
//! execute it set-at-a-time over dictionary-encoded data, instead of walking the
//! formula tree per candidate tuple.
//!
//! * [`intern`] — per-instance `Value → u32` dictionaries (constants in the low
//!   codes) and column-major code batches for every relation;
//! * [`algebra`] — the operator DAG: indexed scan, selection, projection, hash
//!   join, anti-join, union, active-domain padding and complement;
//! * [`lower`] — the `Formula`/`Query` → algebra compiler (safe, active-domain
//!   faithful; `→`/`∀` eliminated via [`nev_logic::rewrite`]), with a cost guard
//!   that rejects wide complements so the engine can fall back to the interpreter;
//! * [`rules`], [`cost`], [`optimize`] — **`nev-opt`**, the two-stage plan
//!   optimiser: compile-time rewrite rules (projection pushdown, self-join
//!   deduplication, complement → anti-join, pad absorption, union flattening)
//!   plus an execution-time greedy join-order search seeded from real
//!   base-relation cardinalities;
//! * [`exec`] — the vectorised executor: column-major batches, allocation-free
//!   hash kernels, and **morsel-driven parallelism** over a shared
//!   [`nev_runtime::WorkerPool`] (opt in via [`ExecOptions`]), with the
//!   [`ExecStats`] counter block (rows scanned, hash probes, index builds,
//!   fallbacks, rules fired, joins reordered, morsels dispatched);
//! * [`stats`] — the counters themselves;
//! * [`profile`] — the opt-in per-operator [`OpProfile`] collector behind the
//!   wire `PROFILE` command: inclusive wall time, output rows and the cost
//!   model's estimate for every executed operator (including each pairwise
//!   join fold in the cost-chosen order).
//!
//! The crate is semantics-complete over the executable core: for every query it
//! *accepts*, [`CompiledQuery::execute`] returns exactly
//! [`nev_logic::eval::evaluate_query`]'s answers and [`CompiledQuery::execute_naive`]
//! exactly [`nev_logic::eval::naive_eval_query`]'s — the differential property suite
//! in the workspace root (`tests/exec_equivalence.rs`) holds this equation under
//! seeded workloads across all five fragments.
//!
//! ```
//! use nev_exec::CompiledQuery;
//! use nev_incomplete::builder::{c, x};
//! use nev_incomplete::inst;
//! use nev_logic::parse_query;
//!
//! let d = inst! {
//!     "R" => [[c(1), x(1)], [x(2), x(3)]],
//!     "S" => [[x(1), c(4)], [x(3), c(5)]],
//! };
//! let q = parse_query("Q(x, y) :- exists z . R(x, z) & S(z, y)")?;
//! let compiled = CompiledQuery::compile(&q).expect("a join pipeline compiles");
//! let out = compiled.execute_naive(&d);
//! assert_eq!(out.answers.len(), 1); // {(1, 4)} — the paper's §1 answer
//! assert!(out.stats.hash_probes > 0);
//! # Ok::<(), nev_logic::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod cost;
pub mod exec;
pub mod intern;
pub mod lower;
pub mod optimize;
pub mod profile;
pub mod rules;
pub mod stats;

pub use algebra::{PlanNode, ScanTerm};
pub use exec::{ExecOptions, ExecOutput, DEFAULT_MORSEL_ROWS};
pub use intern::{ColumnarRelation, Dictionary, InternedInstance};
pub use lower::{CompileError, CompiledQuery, CompilerConfig};
pub use optimize::greedy_join_order;
pub use profile::{OpProfile, OpSample};
pub use rules::RuleReport;
pub use stats::{ExecStats, ExecTimings};
