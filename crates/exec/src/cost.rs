//! The cost model behind the `nev-opt` optimiser: output-cardinality estimates
//! for every operator, seeded from **real** base-relation cardinalities.
//!
//! Estimates are deliberately simple — classical textbook formulas under a
//! uniformity assumption — because they only need to *rank* alternative join
//! orders, not predict run times:
//!
//! * a [`PlanNode::Scan`] starts from the relation's actual row count (read off
//!   the [`InternedInstance`]) and divides by `|adom|` per bound column and per
//!   repeated-variable equality check;
//! * a join multiplies its inputs and divides by `|adom|` per shared variable
//!   (each shared variable is an equality predicate with selectivity
//!   `1/|adom|` under uniformity);
//! * `DomainPad` multiplies by `|adom|` per padded variable and `Complement`
//!   subtracts from `|adom|^k` — which is exactly why the rule stage tries to
//!   rewrite both away before the cost stage ever ranks them.
//!
//! Everything is `f64`: the estimates cross `|adom|^k` scales where `u64` would
//! overflow, and ranking does not need exactness.

use std::collections::HashSet;

use crate::algebra::{PlanNode, ScanTerm};
use crate::intern::InternedInstance;

/// Estimated output rows of `node` on `inst` (always finite and `>= 0`).
pub fn estimate(node: &PlanNode, inst: &InternedInstance) -> f64 {
    let adom = (inst.dictionary().len() as f64).max(1.0);
    estimate_inner(node, inst, adom)
}

fn estimate_inner(node: &PlanNode, inst: &InternedInstance, adom: f64) -> f64 {
    match node {
        PlanNode::Scan {
            relation, pattern, ..
        } => estimate_scan(relation, pattern, inst, adom),
        PlanNode::Unit => 1.0,
        PlanNode::Empty { .. } => 0.0,
        // Real data again: one row iff the constant occurs in the instance.
        PlanNode::AdomConst { value, .. } => {
            if inst.dictionary().code(value).is_some() {
                1.0
            } else {
                0.0
            }
        }
        // Real size, not the division-safe clamp: an empty domain has no rows.
        PlanNode::AdomEq { .. } => inst.dictionary().len() as f64,
        PlanNode::Join { left, right } => {
            let l = estimate_inner(left, inst, adom);
            let r = estimate_inner(right, inst, adom);
            join_estimate(l, &left.schema(), r, &right.schema(), adom)
        }
        // An anti-join keeps at most the left side; halving is the usual
        // "unknown selectivity" guess.
        PlanNode::AntiJoin { left, .. } => estimate_inner(left, inst, adom) * 0.5,
        PlanNode::Union { inputs } => {
            let sum: f64 = inputs.iter().map(|i| estimate_inner(i, inst, adom)).sum();
            let k = inputs.first().map(|i| i.schema().len()).unwrap_or(0);
            sum.min(domain_power(adom, k))
        }
        PlanNode::Project { input, keep } => {
            estimate_inner(input, inst, adom).min(domain_power(adom, keep.len()))
        }
        PlanNode::DomainPad { input, vars } => {
            estimate_inner(input, inst, adom) * domain_power(adom, vars.len())
        }
        PlanNode::Complement { input } => {
            let k = input.schema().len();
            (domain_power(adom, k) - estimate_inner(input, inst, adom)).max(0.0)
        }
    }
}

/// The estimated output of joining relations of sizes `l` and `r` over the given
/// (sorted) schemas: `l·r / |adom|^s` for `s` shared variables — the uniformity
/// selectivity of `s` equality predicates. No shared variables is a genuine
/// cross product.
pub fn join_estimate(l: f64, l_schema: &[String], r: f64, r_schema: &[String], adom: f64) -> f64 {
    let shared = shared_count(l_schema, r_schema);
    l * r / domain_power(adom, shared)
}

/// Number of variables two sorted schemas share.
pub fn shared_count(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j, mut shared) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared
}

fn domain_power(adom: f64, k: usize) -> f64 {
    // Cap the exponent so pathological schemas cannot overflow to infinity.
    adom.powi(k.min(32) as i32).max(1.0)
}

fn estimate_scan(relation: &str, pattern: &[ScanTerm], inst: &InternedInstance, adom: f64) -> f64 {
    let Some(rel) = inst.relation(relation) else {
        return 0.0;
    };
    if rel.arity() != pattern.len() {
        return 0.0;
    }
    let mut selectivity_predicates = 0usize;
    let mut seen: HashSet<&str> = HashSet::new();
    for term in pattern {
        match term {
            ScanTerm::Const(value) => {
                // A constant absent from the instance empties the scan outright.
                if inst.dictionary().code(value).is_none() {
                    return 0.0;
                }
                selectivity_predicates += 1;
            }
            ScanTerm::Var(v) => {
                if !seen.insert(v.as_str()) {
                    // Repeated variable: an intra-row equality check.
                    selectivity_predicates += 1;
                }
            }
        }
    }
    rel.len() as f64 / domain_power(adom, selectivity_predicates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::c;
    use nev_incomplete::{inst, Value};

    fn scan(rel: &str, vars: &[&str]) -> PlanNode {
        let mut schema: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
        schema.sort();
        schema.dedup();
        PlanNode::Scan {
            relation: rel.into(),
            pattern: vars.iter().map(|v| ScanTerm::Var(v.to_string())).collect(),
            schema,
        }
    }

    #[test]
    fn scans_use_real_cardinalities() {
        let d = inst! {
            "R" => [[c(1), c(2)], [c(2), c(3)], [c(3), c(1)]],
            "S" => [[c(1)]],
        };
        let interned = InternedInstance::new(&d);
        assert_eq!(estimate(&scan("R", &["x", "y"]), &interned), 3.0);
        assert_eq!(estimate(&scan("S", &["x"]), &interned), 1.0);
        assert_eq!(estimate(&scan("T", &["x"]), &interned), 0.0);
        // Bound columns and repeated variables divide by |adom|.
        let bound = PlanNode::Scan {
            relation: "R".into(),
            pattern: vec![ScanTerm::Const(Value::int(1)), ScanTerm::Var("y".into())],
            schema: vec!["y".into()],
        };
        assert!(estimate(&bound, &interned) < 3.0);
        let absent = PlanNode::Scan {
            relation: "R".into(),
            pattern: vec![ScanTerm::Const(Value::int(99)), ScanTerm::Var("y".into())],
            schema: vec!["y".into()],
        };
        assert_eq!(estimate(&absent, &interned), 0.0);
        assert!(estimate(&scan("R", &["x", "x"]), &interned) < 3.0);
    }

    #[test]
    fn joins_divide_by_shared_variables_and_pads_multiply() {
        let d = inst! {
            "R" => [[c(1), c(2)], [c(2), c(3)], [c(3), c(1)]],
            "S" => [[c(1), c(2)], [c(2), c(3)]],
        };
        let interned = InternedInstance::new(&d);
        let adom = interned.dictionary().len() as f64;
        let join = PlanNode::Join {
            left: Box::new(scan("R", &["x", "y"])),
            right: Box::new(scan("S", &["y", "z"])),
        };
        assert_eq!(estimate(&join, &interned), 3.0 * 2.0 / adom);
        let cross = PlanNode::Join {
            left: Box::new(scan("R", &["x", "y"])),
            right: Box::new(scan("S", &["u", "v"])),
        };
        assert_eq!(estimate(&cross, &interned), 6.0);
        let pad = PlanNode::DomainPad {
            input: Box::new(scan("S", &["y", "z"])),
            vars: vec!["w".into()],
        };
        assert_eq!(estimate(&pad, &interned), 2.0 * adom);
        let complement = PlanNode::Complement {
            input: Box::new(scan("S", &["y", "z"])),
        };
        assert_eq!(estimate(&complement, &interned), adom * adom - 2.0);
    }

    #[test]
    fn empty_instances_estimate_zero_data() {
        let interned = InternedInstance::new(&nev_incomplete::Instance::new());
        assert_eq!(estimate(&scan("R", &["x"]), &interned), 0.0);
        assert_eq!(estimate(&PlanNode::Unit, &interned), 1.0);
        assert_eq!(
            estimate(
                &PlanNode::AdomEq {
                    vars: ["x".into(), "y".into()]
                },
                &interned
            ),
            0.0
        );
    }
}
