//! Per-operator profiling: the EXPLAIN-ANALYZE-style collector behind the wire
//! `PROFILE` command.
//!
//! A profiled execution records one [`OpSample`] per operator the executor
//! actually runs, in **pre-order**: inclusive wall time, output rows, and the
//! `nev-opt` cost model's cardinality estimate for the node — the feedback
//! loop that makes estimated-vs-actual drift observable per plan node. Join
//! groups additionally record one `HashJoin` sample per pairwise fold in the
//! cost-chosen order, with the running [`crate::cost::join_estimate`] as the
//! estimate, so a reordered chain shows where the greedy search's guesses
//! land against real intermediate cardinalities.
//!
//! Profiling is strictly opt-in per execution: the default path through
//! [`crate::exec`] checks one `Option` per node and records nothing, so
//! unprofiled runs (and their served bytes) are untouched. Because a profile
//! is an explicit request for wall-clock numbers, its timers ignore the
//! `NEV_TRACE` kill switch — unlike the ambient stage timings.

use crate::algebra::{flatten_join_refs, PlanNode, ScanTerm};

/// One profiled operator: where it sits in the plan, what it produced, and
/// what the cost model expected it to produce.
#[derive(Clone, Debug, PartialEq)]
pub struct OpSample {
    /// Nesting depth below the plan root (the root is depth 0). Join-fold
    /// samples sit at the same depth as the group's leaves.
    pub depth: usize,
    /// The operator head (no children), e.g. `Scan R(x,y)` or `Project[x]`.
    pub label: String,
    /// Inclusive wall time of the operator and everything beneath it, in
    /// microseconds. Subtract the direct children ([`OpProfile::self_us`]) for
    /// the operator's own share.
    pub wall_us: u64,
    /// Rows the operator emitted.
    pub rows: u64,
    /// The `nev-opt` cost model's output-cardinality estimate for this node.
    pub estimated_rows: f64,
    /// Whether `rows` is one of the increments summed into
    /// [`crate::ExecStats::intermediate_rows`] — the hook the profile-accuracy
    /// test uses to reconcile the two accountings.
    pub counts_intermediate: bool,
}

/// The per-operator profile of one plan execution: [`OpSample`]s in pre-order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpProfile {
    /// The recorded samples, pre-order over the executed operator tree.
    pub ops: Vec<OpSample>,
}

impl OpProfile {
    /// Inclusive wall time of the plan root (0 for an empty profile).
    pub fn root_wall_us(&self) -> u64 {
        self.ops.first().map_or(0, |op| op.wall_us)
    }

    /// The operator's own wall time at `index`: its inclusive time minus the
    /// inclusive times of its **direct** children (saturating, since two
    /// clock reads of the same interval can disagree by a microsecond).
    pub fn self_us(&self, index: usize) -> u64 {
        let depth = self.ops[index].depth;
        let children: u64 = self.ops[index + 1..]
            .iter()
            .take_while(|op| op.depth > depth)
            .filter(|op| op.depth == depth + 1)
            .map(|op| op.wall_us)
            .sum();
        self.ops[index].wall_us.saturating_sub(children)
    }

    /// Sum of every operator's own ([`OpProfile::self_us`]) time. Telescopes
    /// to (at most) the root's inclusive time, which in turn is bounded by the
    /// surrounding exec stage span — the reconciliation the profile-accuracy
    /// test pins.
    pub fn total_self_us(&self) -> u64 {
        (0..self.ops.len()).map(|i| self.self_us(i)).sum()
    }

    /// Sum of `rows` over the samples that count toward
    /// [`crate::ExecStats::intermediate_rows`], for reconciling the profile
    /// against the executor's own accounting.
    pub fn intermediate_rows(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| op.counts_intermediate)
            .map(|op| op.rows)
            .sum()
    }

    /// One-line rendering for the wire: samples joined with ` | `, nesting
    /// shown as a `>` per depth level, estimates rounded to whole rows —
    /// `Project[x] est=1 rows=2 us=40 | >Scan R(x,y) est=3 rows=3 us=12 | …`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .ops
            .iter()
            .map(|op| {
                format!(
                    "{}{} est={} rows={} us={}",
                    ">".repeat(op.depth),
                    op.label,
                    op.estimated_rows.round() as u64,
                    op.rows,
                    op.wall_us,
                )
            })
            .collect();
        parts.join(" | ")
    }
}

/// The operator-head label an [`OpSample`] carries: the node kind plus its
/// defining detail, never its children (the profile's depth field carries the
/// shape). A `Join` node labels the whole flattened group — its pairwise
/// folds appear as separate `HashJoin[schema]` samples.
pub(crate) fn op_label(node: &PlanNode) -> String {
    match node {
        PlanNode::Scan {
            relation, pattern, ..
        } => {
            let args: Vec<String> = pattern
                .iter()
                .map(|t| match t {
                    ScanTerm::Var(v) => v.clone(),
                    ScanTerm::Const(c) => c.to_string(),
                })
                .collect();
            format!("Scan {relation}({})", args.join(","))
        }
        PlanNode::Unit => "Unit".to_string(),
        PlanNode::Empty { .. } => "Empty".to_string(),
        PlanNode::AdomConst { var, value } => format!("AdomConst {var}={value}"),
        PlanNode::AdomEq { vars } => format!("AdomEq {}={}", vars[0], vars[1]),
        PlanNode::Join { .. } => {
            let mut leaves = Vec::new();
            flatten_join_refs(node, &mut leaves);
            format!("JoinGroup(leaves={})", leaves.len())
        }
        PlanNode::AntiJoin { .. } => "AntiJoin".to_string(),
        PlanNode::Union { inputs } => format!("Union(arms={})", inputs.len()),
        PlanNode::Project { keep, .. } => format!("Project[{}]", keep.join(",")),
        PlanNode::DomainPad { vars, .. } => format!("DomainPad[{}]", vars.join(",")),
        PlanNode::Complement { .. } => "Complement".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(depth: usize, label: &str, wall_us: u64, rows: u64, counts: bool) -> OpSample {
        OpSample {
            depth,
            label: label.to_string(),
            wall_us,
            rows,
            estimated_rows: rows as f64,
            counts_intermediate: counts,
        }
    }

    #[test]
    fn self_times_subtract_direct_children_and_telescope() {
        let profile = OpProfile {
            ops: vec![
                sample(0, "Project[x]", 100, 2, true),
                sample(1, "JoinGroup(leaves=2)", 80, 4, false),
                sample(2, "Scan R(x,y)", 30, 3, false),
                sample(2, "Scan S(y,z)", 20, 2, false),
                sample(2, "HashJoin[x,y,z]", 25, 4, true),
            ],
        };
        assert_eq!(profile.root_wall_us(), 100);
        assert_eq!(profile.self_us(0), 20); // 100 - 80
        assert_eq!(profile.self_us(1), 5); // 80 - (30 + 20 + 25)
        assert_eq!(profile.self_us(2), 30); // leaves keep their own time
                                            // The self times telescope back to exactly the root's inclusive time.
        assert_eq!(profile.total_self_us(), 100);
        // Only the flagged samples reconcile with intermediate_rows.
        assert_eq!(profile.intermediate_rows(), 6);
    }

    #[test]
    fn clock_jitter_saturates_instead_of_underflowing() {
        let profile = OpProfile {
            ops: vec![
                sample(0, "Union(arms=2)", 10, 1, true),
                sample(1, "Unit", 12, 1, false),
            ],
        };
        assert_eq!(profile.self_us(0), 0);
        assert!(profile.total_self_us() >= profile.self_us(0));
    }

    #[test]
    fn render_is_one_line_with_depth_markers() {
        let profile = OpProfile {
            ops: vec![
                sample(0, "Project[x]", 7, 2, true),
                sample(1, "Scan R(x)", 3, 3, false),
            ],
        };
        let line = profile.render();
        assert_eq!(
            line,
            "Project[x] est=2 rows=2 us=7 | >Scan R(x) est=3 rows=3 us=3"
        );
        assert!(!line.contains('\n'));
        assert_eq!(OpProfile::default().render(), "");
    }
}
