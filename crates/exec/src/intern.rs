//! Dictionary encoding of instances: `Value → u32` codes and columnar batches.
//!
//! Tree-walking evaluation compares [`Value`]s — heap-allocated strings, enum tags —
//! at every step. The compiled engine instead interns the active domain of an
//! instance **once** into dense `u32` codes (constants first, then nulls, in the
//! deterministic [`Instance::adom_ordered`] order) and stores every relation as a
//! column-major batch of codes. All downstream operators work on codes: equality is
//! an integer compare, hashing is integer hashing, and "is this answer tuple free of
//! nulls?" is a single comparison against the constant count.

use std::collections::HashMap;

use nev_incomplete::{Constant, Instance, Value};

/// A per-instance interning dictionary: a bijection between `adom(D)` and the code
/// range `0..len`, with constants occupying the low codes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dictionary {
    values: Vec<Value>,
    codes: HashMap<Value, u32>,
    const_count: u32,
}

impl Dictionary {
    /// Interns the active domain of an instance. Codes `0..const_count` are the
    /// constants of `D`, codes `const_count..len` its nulls.
    pub fn from_instance(d: &Instance) -> Self {
        let values = d.adom_ordered();
        let const_count = values.iter().take_while(|v| v.is_const()).count() as u32;
        let codes = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        Dictionary {
            values,
            codes,
            const_count,
        }
    }

    /// Interns the active domain plus a set of extra constants that do not
    /// occur in the instance (e.g. constants mentioned only by a query).
    ///
    /// Extras are appended after the instance's own constants (deduplicated,
    /// in sorted order) and before the nulls, so the "constants occupy the
    /// low codes" invariant of [`Dictionary::is_const`] still holds and the
    /// codes of the instance's own values are unchanged relative to
    /// [`Dictionary::from_instance`].
    pub fn from_instance_with_extras<'a, I>(d: &Instance, extras: I) -> Self
    where
        I: IntoIterator<Item = &'a Constant>,
    {
        let adom = d.adom_ordered();
        let own_consts = adom.iter().take_while(|v| v.is_const()).count();
        let mut fresh: Vec<Value> = extras
            .into_iter()
            .map(|c| Value::Const(c.clone()))
            .filter(|v| !adom[..own_consts].contains(v))
            .collect();
        fresh.sort();
        fresh.dedup();
        let mut values = Vec::with_capacity(adom.len() + fresh.len());
        values.extend_from_slice(&adom[..own_consts]);
        values.extend(fresh);
        let const_count = values.len() as u32;
        values.extend_from_slice(&adom[own_consts..]);
        let codes = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        Dictionary {
            values,
            codes,
            const_count,
        }
    }

    /// The code of a value, if the value occurs in the instance.
    pub fn code(&self, v: &Value) -> Option<u32> {
        self.codes.get(v).copied()
    }

    /// The value behind a code.
    ///
    /// # Panics
    /// Panics if the code is out of range.
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// Returns `true` iff the code denotes a constant (not a null).
    pub fn is_const(&self, code: u32) -> bool {
        code < self.const_count
    }

    /// The size of the interned active domain.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` iff the active domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The number of constants in the active domain.
    pub fn const_count(&self) -> usize {
        self.const_count as usize
    }
}

/// One relation stored column-major: `cols[i][r]` is the code at position `i` of
/// row `r`. Rows follow the relation's deterministic tuple order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColumnarRelation {
    arity: usize,
    len: usize,
    cols: Vec<Vec<u32>>,
}

impl ColumnarRelation {
    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One column of codes.
    pub fn col(&self, i: usize) -> &[u32] {
        &self.cols[i]
    }

    /// Materialises row `r` as a vector of codes.
    pub fn row(&self, r: usize) -> Vec<u32> {
        self.cols.iter().map(|c| c[r]).collect()
    }
}

/// An instance interned for compiled execution: the dictionary plus every
/// relation as a columnar code batch, addressed by a dense `u32` **relation
/// id** assigned in sorted-name order. The executor resolves each scanned name
/// to its id once and keys every per-relation cache (hash indexes, morsel
/// tasks) on the id — no `String` clone or string hash on the hot path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InternedInstance {
    dict: Dictionary,
    /// Relation names in id order (sorted, so ids are deterministic).
    names: Vec<String>,
    ids: HashMap<String, u32>,
    relations: Vec<ColumnarRelation>,
}

impl InternedInstance {
    /// Interns an instance: builds the dictionary, encodes every relation
    /// column by column (via [`nev_incomplete::Relation::column`]), and assigns
    /// relation ids `0..n` in sorted-name order.
    pub fn new(d: &Instance) -> Self {
        let dict = Dictionary::from_instance(d);
        let mut encoded: Vec<(String, ColumnarRelation)> = d
            .relations()
            .map(|r| {
                let cols: Vec<Vec<u32>> = (0..r.arity())
                    .map(|i| {
                        r.column(i)
                            .map(|v| dict.code(v).expect("every relation value is in adom"))
                            .collect()
                    })
                    .collect();
                let rel = ColumnarRelation {
                    arity: r.arity(),
                    len: r.len(),
                    cols,
                };
                (r.name().to_string(), rel)
            })
            .collect();
        encoded.sort_by(|a, b| a.0.cmp(&b.0));
        let mut names = Vec::with_capacity(encoded.len());
        let mut ids = HashMap::with_capacity(encoded.len());
        let mut relations = Vec::with_capacity(encoded.len());
        for (id, (name, rel)) in encoded.into_iter().enumerate() {
            ids.insert(name.clone(), id as u32);
            names.push(name);
            relations.push(rel);
        }
        InternedInstance {
            dict,
            names,
            ids,
            relations,
        }
    }

    /// The interning dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Looks up a relation's columnar batch by name.
    pub fn relation(&self, name: &str) -> Option<&ColumnarRelation> {
        self.ids.get(name).map(|&id| &self.relations[id as usize])
    }

    /// The dense id of a relation, if the instance has one by that name. Ids
    /// are assigned in sorted-name order, so they are stable across re-interns
    /// of equal instances.
    pub fn relation_id(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The columnar batch behind a relation id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn relation_by_id(&self, id: u32) -> &ColumnarRelation {
        &self.relations[id as usize]
    }

    /// The name behind a relation id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn relation_name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// The number of relations in the instance.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    fn sample() -> Instance {
        inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        }
    }

    #[test]
    fn dictionary_codes_constants_first() {
        let d = sample();
        let dict = Dictionary::from_instance(&d);
        assert_eq!(dict.len(), 6);
        assert_eq!(dict.const_count(), 3);
        for code in 0..dict.len() as u32 {
            assert_eq!(dict.is_const(code), dict.value(code).is_const());
            assert_eq!(dict.code(dict.value(code)), Some(code));
        }
        assert_eq!(dict.code(&Value::int(999)), None);
        assert!(!dict.is_empty());
        assert!(Dictionary::from_instance(&Instance::new()).is_empty());
    }

    #[test]
    fn extras_extend_the_constant_block_without_moving_nulls_behind_constants() {
        let d = sample();
        let extras = [Constant::from(99), Constant::from(1)]; // 1 already interned
        let dict = Dictionary::from_instance_with_extras(&d, extras.iter());
        assert_eq!(dict.const_count(), 4, "one genuinely new constant");
        assert_eq!(dict.len(), 7);
        let code = dict.code(&Value::int(99)).expect("extra is interned");
        assert!(dict.is_const(code));
        // Every interned value still round-trips and nulls stay above the
        // constant block.
        for code in 0..dict.len() as u32 {
            assert_eq!(dict.is_const(code), dict.value(code).is_const());
            assert_eq!(dict.code(dict.value(code)), Some(code));
        }
        // No extras: identical to the plain constructor.
        let plain = Dictionary::from_instance(&d);
        let empty = Dictionary::from_instance_with_extras(&d, std::iter::empty());
        assert_eq!(plain, empty);
    }

    #[test]
    fn columnar_relations_round_trip_rows() {
        let d = sample();
        let interned = InternedInstance::new(&d);
        let dict = interned.dictionary();
        let r = interned.relation("R").expect("R interned");
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.col(0).len(), 2);
        // Decode every row back to values and check it is a tuple of R.
        for row in 0..r.len() {
            let decoded: Vec<Value> = r.row(row).iter().map(|&c| dict.value(c).clone()).collect();
            assert!(d.contains_tuple("R", &decoded.into_iter().collect()));
        }
        assert!(interned.relation("T").is_none());
    }

    #[test]
    fn relation_ids_are_dense_and_sorted_by_name() {
        let d = sample();
        let interned = InternedInstance::new(&d);
        assert_eq!(interned.relation_count(), 2);
        let r = interned.relation_id("R").expect("R has an id");
        let s = interned.relation_id("S").expect("S has an id");
        assert_eq!((r, s), (0, 1), "ids follow sorted-name order");
        assert_eq!(interned.relation_name(r), "R");
        assert_eq!(interned.relation_name(s), "S");
        assert_eq!(interned.relation_id("T"), None);
        // Id and name lookups resolve to the same batch.
        assert_eq!(
            interned.relation_by_id(r),
            interned.relation("R").expect("R interned")
        );
        // Re-interning an equal instance assigns the same ids.
        let again = InternedInstance::new(&sample());
        assert_eq!(again.relation_id("R"), Some(r));
        assert_eq!(again.relation_id("S"), Some(s));
    }
}
