//! Lowering `Formula`/`Query` ASTs into the physical operator DAG.
//!
//! The lowering is a literal, bottom-up translation of the active-domain semantics
//! (`nev_logic::eval`) into set-at-a-time operators:
//!
//! * atoms become indexed scans (constants and repeated variables turn into
//!   selections), `∧` becomes natural hash joins, `∨` becomes domain-padded unions,
//!   `∃` becomes projection (after padding quantified variables missing from the
//!   body — `∃u.true` is false on an empty active domain, and padding preserves
//!   exactly that);
//! * `¬` inside a conjunction becomes an **anti-join** against the positive part
//!   whenever the negated subformula's variables are already bound; everywhere else
//!   it becomes an active-domain **complement** `adom^k ∖ φ`;
//! * `→` and `∀` are first rewritten away by [`nev_logic::rewrite`] (`¬φ ∨ ψ`,
//!   `¬∃¬`).
//!
//! The only shapes the compiler rejects are complements whose column count exceeds
//! [`CompilerConfig::max_complement_columns`]: those would materialise `adom(D)^k`,
//! where the tree-walking interpreter's candidate-at-a-time strategy is the better
//! plan. Rejection is how the engine decides to fall back — see
//! `nev-core::engine`'s `ExecStats::fallbacks`.

use std::collections::BTreeSet;
use std::fmt;

use nev_incomplete::Value;
use nev_logic::ast::{Formula, Term};
use nev_logic::rewrite::to_executable_core;
use nev_logic::Query;

use crate::algebra::{merge_schemas, PlanNode, ScanTerm};

/// Cost guards of the compiler.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompilerConfig {
    /// Maximum number of columns an active-domain complement may have. A complement
    /// over `k` columns materialises up to `|adom|^k` rows, so wide complements are
    /// the one shape where the interpreter's candidate-at-a-time evaluation wins;
    /// queries needing one are rejected and routed to the interpreter.
    pub max_complement_columns: usize,
    /// Run the `nev-opt` rule stage ([`crate::optimize`]) over the lowered plan.
    /// Disabling it yields the literal syntactic lowering — the baseline the
    /// differential suite (`tests/opt_equivalence.rs`) and the `opt_pipeline`
    /// benchmark compare against.
    pub optimize: bool,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            max_complement_columns: 3,
            optimize: true,
        }
    }
}

/// Why a query has no compiled form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// A negation (or a `∀` via `¬∃¬`) requires an active-domain complement over
    /// more columns than the configured limit.
    ComplementTooWide {
        /// Columns the complement would have.
        columns: usize,
        /// The configured [`CompilerConfig::max_complement_columns`].
        limit: usize,
    },
}

impl CompileError {
    /// Compact machine-readable rendering for wire responses, e.g.
    /// `complement_too_wide(columns=4,limit=3)`.
    pub fn reason_code(&self) -> String {
        match self {
            CompileError::ComplementTooWide { columns, limit } => {
                format!("complement_too_wide(columns={columns},limit={limit})")
            }
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ComplementTooWide { columns, limit } => write!(
                f,
                "active-domain complement over {columns} columns exceeds the limit of {limit}; \
                 the interpreter is the better plan for this shape"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A lowered subplan: the operator plus its sorted output schema.
struct Lowered {
    node: PlanNode,
    schema: Vec<String>,
}

impl Lowered {
    fn new(node: PlanNode, schema: Vec<String>) -> Self {
        Lowered { node, schema }
    }
}

/// Returns `true` iff sorted `a` is a subset of sorted `b`.
fn is_subset(a: &[String], b: &[String]) -> bool {
    let mut j = 0;
    for v in a {
        loop {
            if j == b.len() {
                return false;
            }
            match b[j].cmp(v) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

/// Natural join smart constructor (`Unit` is the join identity).
fn join(a: Lowered, b: Lowered) -> Lowered {
    if matches!(a.node, PlanNode::Unit) {
        return b;
    }
    if matches!(b.node, PlanNode::Unit) {
        return a;
    }
    let schema = merge_schemas(&a.schema, &b.schema);
    Lowered::new(
        PlanNode::Join {
            left: Box::new(a.node),
            right: Box::new(b.node),
        },
        schema,
    )
}

/// Pads a subplan up to a (sorted) superset schema with active-domain columns.
fn pad_to(l: Lowered, target: &[String]) -> Lowered {
    debug_assert!(is_subset(&l.schema, target), "target must cover the schema");
    let missing: Vec<String> = target
        .iter()
        .filter(|v| l.schema.binary_search(v).is_err())
        .cloned()
        .collect();
    if missing.is_empty() {
        return l;
    }
    Lowered::new(
        PlanNode::DomainPad {
            input: Box::new(l.node),
            vars: missing,
        },
        target.to_vec(),
    )
}

/// Active-domain complement smart constructor, applying the cost guard.
fn complement(l: Lowered, config: &CompilerConfig) -> Result<Lowered, CompileError> {
    if l.schema.len() > config.max_complement_columns {
        return Err(CompileError::ComplementTooWide {
            columns: l.schema.len(),
            limit: config.max_complement_columns,
        });
    }
    let schema = l.schema.clone();
    Ok(Lowered::new(
        PlanNode::Complement {
            input: Box::new(l.node),
        },
        schema,
    ))
}

fn lower(f: &Formula, config: &CompilerConfig) -> Result<Lowered, CompileError> {
    match f {
        Formula::True => Ok(Lowered::new(PlanNode::Unit, Vec::new())),
        Formula::False => Ok(Lowered::new(
            PlanNode::Empty { schema: Vec::new() },
            Vec::new(),
        )),
        Formula::Atom { relation, terms } => Ok(lower_atom(relation, terms)),
        Formula::Eq(a, b) => Ok(lower_eq(a, b)),
        Formula::Not(inner) => complement(lower(inner, config)?, config),
        Formula::And(parts) => lower_and(parts, config),
        Formula::Or(parts) => lower_or(parts, config),
        Formula::Exists(vars, body) => lower_exists(vars, body, config),
        // `→` and `∀` are definable; delegate to the nev-logic rewrites (compile()
        // already eliminates them up front, this keeps `lower` total).
        Formula::Implies(_, _) | Formula::Forall(_, _) => lower(&to_executable_core(f), config),
    }
}

fn lower_atom(relation: &str, terms: &[Term]) -> Lowered {
    let pattern: Vec<ScanTerm> = terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => ScanTerm::Var(v.clone()),
            Term::Const(c) => ScanTerm::Const(Value::Const(c.clone())),
        })
        .collect();
    let schema: Vec<String> = terms
        .iter()
        .filter_map(|t| t.as_var().map(str::to_string))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    Lowered::new(
        PlanNode::Scan {
            relation: relation.to_string(),
            pattern,
            schema: schema.clone(),
        },
        schema,
    )
}

fn lower_eq(a: &Term, b: &Term) -> Lowered {
    match (a, b) {
        (Term::Const(ca), Term::Const(cb)) => {
            if ca == cb {
                Lowered::new(PlanNode::Unit, Vec::new())
            } else {
                Lowered::new(PlanNode::Empty { schema: Vec::new() }, Vec::new())
            }
        }
        (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => Lowered::new(
            PlanNode::AdomConst {
                var: v.clone(),
                value: Value::Const(c.clone()),
            },
            vec![v.clone()],
        ),
        (Term::Var(x), Term::Var(y)) if x == y => {
            // x = x holds for every active-domain value of x.
            Lowered::new(
                PlanNode::DomainPad {
                    input: Box::new(PlanNode::Unit),
                    vars: vec![x.clone()],
                },
                vec![x.clone()],
            )
        }
        (Term::Var(x), Term::Var(y)) => {
            let mut vars = [x.clone(), y.clone()];
            vars.sort();
            let schema = vars.to_vec();
            Lowered::new(PlanNode::AdomEq { vars }, schema)
        }
    }
}

fn lower_and(parts: &[Formula], config: &CompilerConfig) -> Result<Lowered, CompileError> {
    // Join the positive conjuncts first, then apply each negated conjunct as an
    // anti-join when its variables are already bound (the common, cheap case) and
    // as a complement join otherwise.
    let mut acc = Lowered::new(PlanNode::Unit, Vec::new());
    let mut negatives = Vec::new();
    for p in parts {
        match p {
            Formula::Not(inner) => negatives.push(inner.as_ref()),
            positive => acc = join(acc, lower(positive, config)?),
        }
    }
    for inner in negatives {
        let li = lower(inner, config)?;
        if is_subset(&li.schema, &acc.schema) {
            let schema = acc.schema.clone();
            acc = Lowered::new(
                PlanNode::AntiJoin {
                    left: Box::new(acc.node),
                    right: Box::new(li.node),
                },
                schema,
            );
        } else {
            acc = join(acc, complement(li, config)?);
        }
    }
    Ok(acc)
}

fn lower_or(parts: &[Formula], config: &CompilerConfig) -> Result<Lowered, CompileError> {
    if parts.is_empty() {
        return Ok(Lowered::new(
            PlanNode::Empty { schema: Vec::new() },
            Vec::new(),
        ));
    }
    let lowered: Vec<Lowered> = parts
        .iter()
        .map(|p| lower(p, config))
        .collect::<Result<_, _>>()?;
    let target = lowered
        .iter()
        .fold(Vec::new(), |acc, l| merge_schemas(&acc, &l.schema));
    let mut padded: Vec<Lowered> = lowered.into_iter().map(|l| pad_to(l, &target)).collect();
    if padded.len() == 1 {
        return Ok(padded.pop().expect("one element"));
    }
    Ok(Lowered::new(
        PlanNode::Union {
            inputs: padded.into_iter().map(|l| l.node).collect(),
        },
        target,
    ))
}

fn lower_exists(
    vars: &[String],
    body: &Formula,
    config: &CompilerConfig,
) -> Result<Lowered, CompileError> {
    let lb = lower(body, config)?;
    if vars.is_empty() {
        return Ok(lb);
    }
    let mut quantified: Vec<String> = vars.to_vec();
    quantified.sort();
    quantified.dedup();
    // Quantified variables not free in the body still range over the active domain
    // (∃u.φ is false on an empty domain even when u is unused in φ).
    let target = merge_schemas(&lb.schema, &quantified);
    let padded = pad_to(lb, &target);
    let keep: Vec<String> = target
        .iter()
        .filter(|v| quantified.binary_search(v).is_err())
        .cloned()
        .collect();
    Ok(Lowered::new(
        PlanNode::Project {
            input: Box::new(padded.node),
            keep: keep.clone(),
        },
        keep,
    ))
}

/// A query compiled to a physical plan, ready for repeated execution against
/// different instances (or different possible worlds of one instance).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompiledQuery {
    /// The plan the executor runs: the logical lowering after the `nev-opt`
    /// rule stage (or the logical plan itself with `optimize: false`).
    pub(crate) plan: PlanNode,
    /// The literal syntactic lowering, kept for `EXPLAIN`-style introspection.
    pub(crate) logical: PlanNode,
    /// Which rules fired while optimising `logical` into `plan`.
    pub(crate) rules: crate::rules::RuleReport,
    /// Whether the executor may run the stage-2 cost-based join reorder
    /// (`CompilerConfig::optimize`; off = the literal written join order).
    pub(crate) reorder: bool,
    /// Answer variables in output order.
    pub(crate) answer_vars: Vec<String>,
    /// The plan's sorted schema (== sorted answer variables).
    pub(crate) schema: Vec<String>,
    /// `output_positions[i]` is the schema column holding `answer_vars[i]`.
    pub(crate) output_positions: Vec<usize>,
}

impl CompiledQuery {
    /// Compiles a query with the default [`CompilerConfig`].
    pub fn compile(query: &Query) -> Result<Self, CompileError> {
        CompiledQuery::compile_with(query, &CompilerConfig::default())
    }

    /// Compiles a query: rewrites `→`/`∀` away, lowers the executable core into the
    /// operator DAG, pads the plan so that unused answer variables range over
    /// the active domain (exactly as the interpreter enumerates them), and —
    /// unless disabled — runs the `nev-opt` rule stage over the result.
    pub fn compile_with(query: &Query, config: &CompilerConfig) -> Result<Self, CompileError> {
        let core = to_executable_core(query.formula());
        let lowered = lower(&core, config)?;
        let mut sorted_answers: Vec<String> = query.answer_variables().to_vec();
        sorted_answers.sort();
        let padded = pad_to(lowered, &sorted_answers);
        let output_positions = query
            .answer_variables()
            .iter()
            .map(|v| {
                padded
                    .schema
                    .binary_search(v)
                    .expect("answer variables form the schema")
            })
            .collect();
        let logical = padded.node;
        let (plan, rules) = if config.optimize {
            crate::optimize::optimize(logical.clone())
        } else {
            (logical.clone(), crate::rules::RuleReport::default())
        };
        debug_assert_eq!(
            plan.schema(),
            padded.schema,
            "optimisation preserves schema"
        );
        Ok(CompiledQuery {
            plan,
            logical,
            rules,
            reorder: config.optimize,
            answer_vars: query.answer_variables().to_vec(),
            schema: padded.schema,
            output_positions,
        })
    }

    /// The root of the physical plan the executor runs (rule-optimised by
    /// default).
    pub fn plan(&self) -> &PlanNode {
        &self.plan
    }

    /// The literal syntactic lowering, before the rule stage ran.
    pub fn logical_plan(&self) -> &PlanNode {
        &self.logical
    }

    /// The rule firings recorded while optimising this query.
    pub fn rules(&self) -> &crate::rules::RuleReport {
        &self.rules
    }

    /// Total number of optimiser rules fired at compile time.
    pub fn rules_fired(&self) -> u64 {
        self.rules.total()
    }

    /// The answer variables, in output order.
    pub fn answer_variables(&self) -> &[String] {
        &self.answer_vars
    }

    /// An EXPLAIN-style rendering: the logical plan and, when it differs, the
    /// rule-optimised plan the executor actually runs.
    pub fn explain(&self) -> String {
        if self.plan == self.logical {
            format!(
                "CompiledQuery({}) [{} operators, 0 rules fired]\n{}",
                self.answer_vars.join(", "),
                self.plan.node_count(),
                self.plan
            )
        } else {
            format!(
                "CompiledQuery({}) [{} rules fired]\nlogical [{} operators]:\n{}optimized [{} operators]:\n{}",
                self.answer_vars.join(", "),
                self.rules_fired(),
                self.logical.node_count(),
                self.logical,
                self.plan.node_count(),
                self.plan
            )
        }
    }

    /// A one-line `EXPLAIN` rendering (what the `nevd` wire protocol ships):
    /// `rules=<n> logical=(…) optimized=(…)`.
    pub fn explain_compact(&self) -> String {
        format!(
            "rules={} logical=({}) optimized=({})",
            self.rules_fired(),
            self.logical.compact(),
            self.plan.compact()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_logic::parse_query;

    fn compiled(text: &str) -> CompiledQuery {
        CompiledQuery::compile(&parse_query(text).expect("valid query")).expect("compiles")
    }

    #[test]
    fn join_queries_lower_to_hash_joins() {
        let q = compiled("Q(x, y) :- exists z . R(x, z) & S(z, y)");
        let s = q.explain();
        assert!(s.contains("HashJoin"), "{s}");
        assert!(s.contains("Project"), "{s}");
        assert!(!s.contains("Complement"), "{s}");
        assert_eq!(q.answer_variables(), ["x", "y"]);
    }

    #[test]
    fn negation_in_conjunction_lowers_to_anti_join() {
        let q = compiled("exists u . R(u, u) & !S(u)");
        assert!(q.explain().contains("AntiJoin"), "{}", q.explain());
    }

    #[test]
    fn bare_negation_lowers_to_complement() {
        let q = compiled("exists u . !S(u)");
        assert!(q.explain().contains("Complement"), "{}", q.explain());
    }

    #[test]
    fn forall_lowers_via_not_exists_not() {
        let q = compiled("forall u . exists v . D(u, v)");
        let s = q.explain();
        // ∀u φ ≡ ¬∃u ¬φ: two complements around a projection.
        assert!(s.matches("Complement").count() >= 2, "{s}");
    }

    #[test]
    fn wide_complements_are_rejected() {
        let q = parse_query("forall u v w t . R(u, v) & R(w, t)").expect("valid query");
        let err = CompiledQuery::compile(&q).expect_err("4-column complement");
        assert_eq!(
            err,
            CompileError::ComplementTooWide {
                columns: 4,
                limit: 3
            }
        );
        assert!(err.to_string().contains("4 columns"));
        // A looser config accepts the same query.
        let config = CompilerConfig {
            max_complement_columns: 4,
            ..CompilerConfig::default()
        };
        assert!(CompiledQuery::compile_with(&q, &config).is_ok());
    }

    #[test]
    fn unused_answer_variables_are_domain_padded() {
        let q = compiled("Q(u, v) :- R(u)");
        assert!(q.explain().contains("DomainPad [v]"), "{}", q.explain());
        assert_eq!(q.answer_variables(), ["u", "v"]);
    }

    #[test]
    fn output_positions_follow_answer_order() {
        // Answer order (y, x) vs sorted schema [x, y].
        let q = compiled("Q(y, x) :- R(x, y)");
        assert_eq!(q.answer_variables(), ["y", "x"]);
        assert_eq!(q.output_positions, [1, 0]);
    }

    #[test]
    fn equality_shapes() {
        assert!(compiled("exists u . u = u").explain().contains("DomainPad"));
        assert!(compiled("exists u v . u = v").explain().contains("AdomEq"));
        assert!(compiled("exists u . u = 3").explain().contains("AdomConst"));
    }
}
