//! The physical relational-algebra operator DAG.
//!
//! Every operator consumes and produces *binding relations*: sets of rows over a
//! **sorted** list of variable names (the schema). Working with sorted schemas makes
//! the natural join, anti-join and union alignments purely positional and keeps the
//! plan deterministic; the final projection to the query's answer-variable order
//! happens once, in [`crate::CompiledQuery`].
//!
//! The semantics implemented here is the *active-domain* semantics of
//! [`nev_logic::eval`]: `DomainPad` and `Complement` range over `adom(D)`, which is
//! exactly how the interpreter's quantifiers and negations behave.

use std::fmt;

use nev_incomplete::Value;

/// One argument position of a base-relation scan.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ScanTerm {
    /// A variable: the position is emitted as (or equality-checked against) a column.
    Var(String),
    /// A constant: the position is a selection `col = value`.
    Const(Value),
}

/// A node of the physical operator DAG.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PlanNode {
    /// Scan a base relation with a selection/projection pattern: constant positions
    /// are selections (served by a hash index keyed on the bound columns), repeated
    /// variables are intra-row equality checks, and the output schema is the sorted
    /// set of distinct variables.
    Scan {
        /// Base relation name.
        relation: String,
        /// One entry per relation position.
        pattern: Vec<ScanTerm>,
        /// Sorted distinct variables of the pattern.
        schema: Vec<String>,
    },
    /// The 0-ary relation holding exactly the empty row (`true`).
    Unit,
    /// The empty relation over a schema (`false`, or a statically empty selection).
    Empty {
        /// Output schema.
        schema: Vec<String>,
    },
    /// `{(a) | a ∈ adom, a = value}` — equality of a variable with a constant:
    /// one row if the constant occurs in the instance, no rows otherwise.
    AdomConst {
        /// The variable.
        var: String,
        /// The constant to pin it to.
        value: Value,
    },
    /// `{(a, a) | a ∈ adom}` over two distinct variables — the equality atom `x = y`.
    AdomEq {
        /// The two variables, sorted.
        vars: [String; 2],
    },
    /// Natural hash join on the shared variables (cross product if none).
    Join {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
    },
    /// Anti-join: rows of `left` with **no** matching row in `right`. The lowering
    /// guarantees `right`'s schema is a subset of `left`'s — this is the
    /// active-domain difference serving in-conjunction negation.
    AntiJoin {
        /// Rows to filter.
        left: Box<PlanNode>,
        /// Rows to exclude matches of.
        right: Box<PlanNode>,
    },
    /// Set union of inputs with identical schemas.
    Union {
        /// The inputs.
        inputs: Vec<PlanNode>,
    },
    /// Projection onto a (sorted) subset of the input schema, with duplicate
    /// elimination — existential quantification.
    Project {
        /// Input.
        input: Box<PlanNode>,
        /// Sorted subset of the input schema to keep.
        keep: Vec<String>,
    },
    /// Cross product with `adom(D)` for each listed variable — the active-domain
    /// padding that aligns subformulas over different free-variable sets.
    DomainPad {
        /// Input.
        input: Box<PlanNode>,
        /// New variables, disjoint from the input schema.
        vars: Vec<String>,
    },
    /// Active-domain complement: `adom(D)^schema ∖ input` — negation.
    Complement {
        /// Input.
        input: Box<PlanNode>,
    },
}

/// Merges two sorted deduplicated schemas into their sorted union.
pub fn merge_schemas(a: &[String], b: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Flattens a nested join tree into its group leaves, recursing through `Join`
/// nodes only — the **one** definition of what a "join group" is, shared by the
/// rule stage's projection pushdown and the executor's cost-based reorderer so
/// their notion of group membership can never drift.
pub fn flatten_join_refs<'p>(node: &'p PlanNode, leaves: &mut Vec<&'p PlanNode>) {
    match node {
        PlanNode::Join { left, right } => {
            flatten_join_refs(left, leaves);
            flatten_join_refs(right, leaves);
        }
        leaf => leaves.push(leaf),
    }
}

impl PlanNode {
    /// The sorted output schema of the node (recomputed recursively; the executor
    /// instead threads schemas through its batches).
    pub fn schema(&self) -> Vec<String> {
        match self {
            PlanNode::Scan { schema, .. } | PlanNode::Empty { schema } => schema.clone(),
            PlanNode::Unit => Vec::new(),
            PlanNode::AdomConst { var, .. } => vec![var.clone()],
            PlanNode::AdomEq { vars } => vars.to_vec(),
            PlanNode::Join { left, right } => merge_schemas(&left.schema(), &right.schema()),
            PlanNode::AntiJoin { left, .. } => left.schema(),
            PlanNode::Union { inputs } => inputs.first().map(PlanNode::schema).unwrap_or_default(),
            PlanNode::Project { keep, .. } => keep.clone(),
            PlanNode::DomainPad { input, vars } => {
                let mut sorted_vars = vars.clone();
                sorted_vars.sort();
                merge_schemas(&input.schema(), &sorted_vars)
            }
            PlanNode::Complement { input } => input.schema(),
        }
    }

    /// The number of operator nodes in the DAG (a size measure for tests/logs).
    pub fn node_count(&self) -> usize {
        1 + match self {
            PlanNode::Scan { .. }
            | PlanNode::Unit
            | PlanNode::Empty { .. }
            | PlanNode::AdomConst { .. }
            | PlanNode::AdomEq { .. } => 0,
            PlanNode::Join { left, right } | PlanNode::AntiJoin { left, right } => {
                left.node_count() + right.node_count()
            }
            PlanNode::Union { inputs } => inputs.iter().map(PlanNode::node_count).sum(),
            PlanNode::Project { input, .. }
            | PlanNode::DomainPad { input, .. }
            | PlanNode::Complement { input } => input.node_count(),
        }
    }

    /// A single-line rendering of the plan (nested, parenthesised) — the form the
    /// `EXPLAIN` wire command ships, since every protocol response is one line.
    pub fn compact(&self) -> String {
        match self {
            PlanNode::Scan {
                relation, pattern, ..
            } => {
                let args: Vec<String> = pattern
                    .iter()
                    .map(|t| match t {
                        ScanTerm::Var(v) => v.clone(),
                        ScanTerm::Const(c) => c.to_string(),
                    })
                    .collect();
                format!("Scan {relation}({})", args.join(","))
            }
            PlanNode::Unit => "Unit".to_string(),
            PlanNode::Empty { schema } => format!("Empty[{}]", schema.join(",")),
            PlanNode::AdomConst { var, value } => format!("AdomConst {var}={value}"),
            PlanNode::AdomEq { vars } => format!("AdomEq {}={}", vars[0], vars[1]),
            PlanNode::Join { left, right } => {
                format!("HashJoin({}, {})", left.compact(), right.compact())
            }
            PlanNode::AntiJoin { left, right } => {
                format!("AntiJoin({}, {})", left.compact(), right.compact())
            }
            PlanNode::Union { inputs } => {
                let parts: Vec<String> = inputs.iter().map(PlanNode::compact).collect();
                format!("Union({})", parts.join(", "))
            }
            PlanNode::Project { input, keep } => {
                format!("Project[{}]({})", keep.join(","), input.compact())
            }
            PlanNode::DomainPad { input, vars } => {
                format!("DomainPad[{}]({})", vars.join(","), input.compact())
            }
            PlanNode::Complement { input } => format!("Complement({})", input.compact()),
        }
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            PlanNode::Scan {
                relation, pattern, ..
            } => {
                write!(f, "{pad}Scan {relation}(")?;
                for (i, t) in pattern.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match t {
                        ScanTerm::Var(v) => write!(f, "{v}")?,
                        ScanTerm::Const(c) => write!(f, "{c}")?,
                    }
                }
                writeln!(f, ")")
            }
            PlanNode::Unit => writeln!(f, "{pad}Unit"),
            PlanNode::Empty { schema } => writeln!(f, "{pad}Empty [{}]", schema.join(", ")),
            PlanNode::AdomConst { var, value } => {
                writeln!(f, "{pad}AdomConst {var} = {value}")
            }
            PlanNode::AdomEq { vars } => writeln!(f, "{pad}AdomEq {} = {}", vars[0], vars[1]),
            PlanNode::Join { left, right } => {
                writeln!(f, "{pad}HashJoin")?;
                left.render(f, indent + 1)?;
                right.render(f, indent + 1)
            }
            PlanNode::AntiJoin { left, right } => {
                writeln!(f, "{pad}AntiJoin")?;
                left.render(f, indent + 1)?;
                right.render(f, indent + 1)
            }
            PlanNode::Union { inputs } => {
                writeln!(f, "{pad}Union")?;
                for i in inputs {
                    i.render(f, indent + 1)?;
                }
                Ok(())
            }
            PlanNode::Project { input, keep } => {
                writeln!(f, "{pad}Project [{}]", keep.join(", "))?;
                input.render(f, indent + 1)
            }
            PlanNode::DomainPad { input, vars } => {
                writeln!(f, "{pad}DomainPad [{}]", vars.join(", "))?;
                input.render(f, indent + 1)
            }
            PlanNode::Complement { input } => {
                writeln!(f, "{pad}Complement")?;
                input.render(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for PlanNode {
    /// Renders the plan as an indented EXPLAIN-style tree.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, vars: &[&str]) -> PlanNode {
        let mut schema: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
        schema.sort();
        schema.dedup();
        PlanNode::Scan {
            relation: rel.into(),
            pattern: vars.iter().map(|v| ScanTerm::Var(v.to_string())).collect(),
            schema,
        }
    }

    #[test]
    fn merge_schemas_is_a_sorted_union() {
        let a = vec!["a".to_string(), "c".to_string()];
        let b = vec!["b".to_string(), "c".to_string(), "d".to_string()];
        assert_eq!(merge_schemas(&a, &b), ["a", "b", "c", "d"]);
        assert_eq!(merge_schemas(&a, &[]), a);
    }

    #[test]
    fn schemas_propagate_through_operators() {
        let join = PlanNode::Join {
            left: Box::new(scan("R", &["x", "y"])),
            right: Box::new(scan("S", &["y", "z"])),
        };
        assert_eq!(join.schema(), ["x", "y", "z"]);
        let project = PlanNode::Project {
            input: Box::new(join.clone()),
            keep: vec!["x".into(), "z".into()],
        };
        assert_eq!(project.schema(), ["x", "z"]);
        let pad = PlanNode::DomainPad {
            input: Box::new(project),
            vars: vec!["w".into()],
        };
        assert_eq!(pad.schema(), ["w", "x", "z"]);
        assert_eq!(join.node_count(), 3);
        assert_eq!(PlanNode::Unit.schema(), Vec::<String>::new());
    }

    #[test]
    fn display_renders_a_tree() {
        let plan = PlanNode::Project {
            input: Box::new(PlanNode::Join {
                left: Box::new(scan("R", &["x", "y"])),
                right: Box::new(PlanNode::AdomConst {
                    var: "y".into(),
                    value: Value::int(3),
                }),
            }),
            keep: vec!["x".into()],
        };
        let s = plan.to_string();
        assert!(s.contains("Project [x]"));
        assert!(s.contains("HashJoin"));
        assert!(s.contains("Scan R(x, y)"));
        assert!(s.contains("AdomConst y = 3"));
        // The compact form is the same tree on one line.
        let compact = plan.compact();
        assert_eq!(compact, "Project[x](HashJoin(Scan R(x,y), AdomConst y=3))");
        assert!(!compact.contains('\n'));
    }
}
