//! Execution telemetry: the `ExecStats` counter block.

use std::fmt;

/// Counters describing one (or several, merged) compiled-execution passes.
///
/// The engine (`nev-core`) surfaces these next to its `worlds_enumerated` /
/// `enumeration_passes` telemetry, so a caller can see *how* an answer was produced:
/// how much base data was scanned, how much hashing the joins did, and whether any
/// evaluation had to fall back to the tree-walking interpreter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExecStats {
    /// Base-relation rows read by scans and index builds.
    pub rows_scanned: u64,
    /// Hash-table probes performed by joins, anti-joins and index lookups.
    pub hash_probes: u64,
    /// Hash indexes built over base relations (keyed on bound columns).
    pub index_builds: u64,
    /// Rows produced by intermediate operators (joins, unions, pads, complements).
    pub intermediate_rows: u64,
    /// Evaluations routed to the tree-walking interpreter because the query has no
    /// compiled form (the compiler rejected its shape).
    pub fallbacks: u64,
    /// Rewrite rules the `nev-opt` optimiser fired while producing the executed
    /// plan (compile-time; replayed into the stats of every execution so callers
    /// see which plan shape answered them).
    pub rules_fired: u64,
    /// Join groups whose execution order differed from the written (syntactic)
    /// order because the cost-based greedy search chose a cheaper one.
    pub joins_reordered: u64,
    /// The cost model's estimate of the root plan's output rows, summed over the
    /// executions merged into this block (compare with `intermediate_rows` to see
    /// how far off the uniformity assumptions were).
    pub estimated_rows: u64,
    /// Morsels dispatched on the shared worker pool (scan chunks, join build
    /// partitions, probe chunks). Zero on a purely sequential execution; a pure
    /// function of the data and the morsel size, never of the worker count.
    pub morsels_dispatched: u64,
    /// Column batches produced by morsel tasks (scan and probe chunks).
    pub batches_processed: u64,
    /// Hash joins that ran the partitioned parallel build/probe path.
    pub parallel_joins: u64,
}

impl ExecStats {
    /// A zeroed counter block.
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// The counter block recording exactly one interpreter fallback.
    pub fn fallback() -> Self {
        ExecStats {
            fallbacks: 1,
            ..ExecStats::default()
        }
    }

    /// Adds another counter block into this one (used to aggregate the per-world
    /// executions of the bounded oracle, or a whole batch).
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.hash_probes += other.hash_probes;
        self.index_builds += other.index_builds;
        self.intermediate_rows += other.intermediate_rows;
        self.fallbacks += other.fallbacks;
        self.rules_fired += other.rules_fired;
        self.joins_reordered += other.joins_reordered;
        self.estimated_rows += other.estimated_rows;
        self.morsels_dispatched += other.morsels_dispatched;
        self.batches_processed += other.batches_processed;
        self.parallel_joins += other.parallel_joins;
    }

    /// Returns `true` iff every counter is zero (no compiled work, no fallbacks).
    pub fn is_empty(&self) -> bool {
        *self == ExecStats::default()
    }
}

/// Wall-clock timings of one (or several, merged) compiled-execution passes,
/// in microseconds, split along the executor's phase boundaries.
///
/// Unlike [`ExecStats`], whose counters are a pure function of the data (and
/// therefore pinned byte-identical across worker counts by the determinism
/// suite), timings vary run to run — so `ExecTimings` deliberately compares
/// **equal to every other `ExecTimings`**. Result types can keep deriving
/// `PartialEq`/`Eq` and every existing telemetry-parity assertion stays exact.
/// All fields stay zero under the `NEV_TRACE=0` kill switch.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecTimings {
    /// Time in relation scans (morsel fan-out included).
    pub scan_us: u64,
    /// Time building hash-join tables (partition scatter included).
    pub join_build_us: u64,
    /// Time probing hash-join tables (probe-side merge included).
    pub join_probe_us: u64,
}

impl PartialEq for ExecTimings {
    fn eq(&self, _other: &ExecTimings) -> bool {
        true // telemetry: never part of a result's value (see type docs)
    }
}

impl Eq for ExecTimings {}

impl ExecTimings {
    /// Adds another timing block into this one.
    pub fn merge(&mut self, other: &ExecTimings) {
        self.scan_us += other.scan_us;
        self.join_build_us += other.join_build_us;
        self.join_probe_us += other.join_probe_us;
    }

    /// Total measured execution time across the phases, microseconds.
    pub fn total_us(&self) -> u64 {
        self.scan_us + self.join_build_us + self.join_probe_us
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} probes={} indexes={} intermediate={} fallbacks={} rules={} \
             reordered={} estimated={} morsels={} batches={} parallel_joins={}",
            self.rows_scanned,
            self.hash_probes,
            self.index_builds,
            self.intermediate_rows,
            self.fallbacks,
            self.rules_fired,
            self.joins_reordered,
            self.estimated_rows,
            self.morsels_dispatched,
            self.batches_processed,
            self.parallel_joins
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ExecStats {
            rows_scanned: 1,
            hash_probes: 2,
            index_builds: 3,
            intermediate_rows: 4,
            fallbacks: 0,
            rules_fired: 2,
            joins_reordered: 1,
            estimated_rows: 8,
            morsels_dispatched: 5,
            batches_processed: 5,
            parallel_joins: 1,
        };
        a.merge(&ExecStats::fallback());
        a.merge(&ExecStats {
            rows_scanned: 10,
            ..ExecStats::default()
        });
        assert_eq!(a.rows_scanned, 11);
        assert_eq!(a.fallbacks, 1);
        assert_eq!(a.rules_fired, 2);
        assert_eq!(a.joins_reordered, 1);
        assert_eq!(a.estimated_rows, 8);
        assert_eq!(a.morsels_dispatched, 5);
        assert_eq!(a.batches_processed, 5);
        assert_eq!(a.parallel_joins, 1);
        assert!(!a.is_empty());
        assert!(ExecStats::new().is_empty());
    }

    #[test]
    fn timings_merge_but_never_differ_under_eq() {
        let mut a = ExecTimings {
            scan_us: 5,
            join_build_us: 7,
            join_probe_us: 11,
        };
        a.merge(&ExecTimings {
            scan_us: 1,
            join_build_us: 2,
            join_probe_us: 3,
        });
        assert_eq!(a.total_us(), 29);
        // Telemetry equality is always true: timings never split results.
        assert_eq!(a, ExecTimings::default());
    }

    #[test]
    fn display_lists_all_counters() {
        let s = ExecStats::fallback().to_string();
        assert!(s.contains("fallbacks=1"));
        assert!(s.contains("scanned=0"));
        assert!(s.contains("rules=0"));
        assert!(s.contains("reordered=0"));
        assert!(s.contains("estimated=0"));
        assert!(s.contains("morsels=0"));
        assert!(s.contains("batches=0"));
        assert!(s.contains("parallel_joins=0"));
    }
}
