//! Certain answers and the naïve-evaluation comparison (paper §2.4, §8).
//!
//! Given an incomplete database `D`, a semantics `⟦·⟧` and a query `Q`, the *certain
//! answers* are `certain(Q, D) = ⋂ { Q(D') | D' ∈ ⟦D⟧ }` — the answers true in every
//! possible world. *Naïve evaluation works* for `Q` when evaluating `Q` directly on
//! `D` (treating nulls as values) and discarding answer tuples with nulls produces
//! exactly `certain(Q, D)` on every `D`.
//!
//! The functions here compute certain answers against the bounded possible-world
//! enumeration of [`crate::semantics`] and compare them with naïve evaluation. The
//! exactness guarantees of the enumeration (exact for the CWA family, sound
//! over-approximation of certain answers otherwise) translate as follows:
//!
//! * a reported **disagreement** where the naïve answer is *not contained* in the
//!   bounded certain answers is always a genuine failure of naïve evaluation, because
//!   the true certain answers are a subset of the bounded ones;
//! * a reported **agreement** `naïve = certain_bounded`, combined with the paper's
//!   preservation theorem for the query's fragment (which gives
//!   `naïve ⊆ certain_true`), pins `certain_true` between two equal sets and hence
//!   certifies exact agreement.
//!
//! **Deprecated surface.** These free functions re-derive the query's bounds per call
//! and always run the bounded oracle; they are kept as thin shims over
//! [`crate::engine::CertainEngine`], which classifies a query once
//! ([`crate::engine::PreparedQuery`]), dispatches on Figure 1
//! ([`crate::engine::EvalPlan`]) and supports batched single-pass evaluation.

use std::collections::BTreeSet;

use nev_incomplete::{Instance, Tuple};
use nev_logic::Query;

use crate::engine::{CertainEngine, PreparedQuery};
use crate::semantics::{Semantics, WorldBounds};

/// Bounds pre-populated with the constants mentioned by a query, so that the world
/// enumeration is generic relative to them.
pub fn bounds_for_query(query: &Query, base: &WorldBounds) -> WorldBounds {
    base.extended_with(query.formula().constants())
}

/// Computes the certain answer to a **Boolean** query under the given semantics, over
/// the bounded world enumeration.
///
/// # Panics
/// Panics if the query is not Boolean; prefer
/// [`CertainEngine::certainly_true`], which reports the mismatch as a typed
/// [`crate::engine::EngineError`] instead.
#[deprecated(
    since = "0.2.0",
    note = "use `nev_core::engine::CertainEngine::certainly_true` (plan-then-execute API)"
)]
pub fn certain_answers_boolean(
    d: &Instance,
    query: &Query,
    semantics: Semantics,
    bounds: &WorldBounds,
) -> bool {
    assert!(
        query.is_boolean(),
        "certain_answers_boolean expects a Boolean query"
    );
    let engine = CertainEngine::with_bounds(bounds.clone());
    !engine
        .certain_answers(d, semantics, &PreparedQuery::new(query.clone()))
        .is_empty()
}

/// Computes the certain answers to a k-ary query under the given semantics, over the
/// bounded world enumeration: the intersection of `Q(D')` over all enumerated worlds.
///
/// Certain answers of a generic query can only mention constants of the instance or of
/// the query (renaming any other constant yields another world where the tuple is not
/// an answer), so the result is additionally restricted to those constants — this
/// keeps the bounded enumeration from reporting tuples built out of its internal fresh
/// constants.
#[deprecated(
    since = "0.2.0",
    note = "use `nev_core::engine::CertainEngine::certain_answers` (plan-then-execute API)"
)]
pub fn certain_answers(
    d: &Instance,
    query: &Query,
    semantics: Semantics,
    bounds: &WorldBounds,
) -> BTreeSet<Tuple> {
    CertainEngine::with_bounds(bounds.clone()).certain_answers(
        d,
        semantics,
        &PreparedQuery::new(query.clone()),
    )
}

/// The outcome of comparing naïve evaluation with certain answers on one instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaiveEvalReport {
    /// The semantics used.
    pub semantics: Semantics,
    /// The naïve answers `Q^C(D)` (constant tuples of `Q(D)`); for Boolean queries a
    /// singleton empty tuple encodes `true` and the empty set encodes `false`.
    pub naive: BTreeSet<Tuple>,
    /// The certain answers over the bounded world enumeration.
    pub certain: BTreeSet<Tuple>,
}

impl NaiveEvalReport {
    /// Returns `true` iff naïve evaluation agrees with the (bounded) certain answers.
    pub fn agrees(&self) -> bool {
        self.naive == self.certain
    }

    /// Returns `true` iff naïve evaluation produced an answer that is not certain —
    /// which, by the soundness of the bounded enumeration, witnesses a genuine failure
    /// of naïve evaluation (an *unsound* naïve answer).
    pub fn naive_overshoots(&self) -> bool {
        !self.naive.is_subset(&self.certain)
    }

    /// Returns `true` iff every naïve answer is certain but some certain answer is
    /// missed by naïve evaluation (naïve evaluation is sound but incomplete here).
    pub fn naive_undershoots(&self) -> bool {
        self.naive.is_subset(&self.certain) && self.naive != self.certain
    }
}

/// Compares naïve evaluation with certain answers for a (Boolean or k-ary) query on a
/// single instance. Always runs the bounded oracle (never the certified shortcut), so
/// the report genuinely *validates* the paper's guarantees.
#[deprecated(
    since = "0.2.0",
    note = "use `nev_core::engine::CertainEngine::compare` (plan-then-execute API)"
)]
pub fn compare_naive_and_certain(
    d: &Instance,
    query: &Query,
    semantics: Semantics,
    bounds: &WorldBounds,
) -> NaiveEvalReport {
    let engine = CertainEngine::with_bounds(bounds.clone());
    let eval = engine.compare(d, semantics, &PreparedQuery::new(query.clone()));
    NaiveEvalReport {
        semantics,
        naive: eval.naive,
        certain: eval.certain,
    }
}

/// Returns `true` iff naïve evaluation computes the (bounded) certain answers for the
/// query on this instance under this semantics.
#[deprecated(
    since = "0.2.0",
    note = "use `nev_core::engine::CertainEngine::compare` and `Evaluation::agrees`"
)]
pub fn naive_evaluation_works(
    d: &Instance,
    query: &Query,
    semantics: Semantics,
    bounds: &WorldBounds,
) -> bool {
    CertainEngine::with_bounds(bounds.clone())
        .compare(d, semantics, &PreparedQuery::new(query.clone()))
        .agrees()
}

#[cfg(test)]
#[allow(deprecated)] // the shims themselves are under test here
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    use nev_logic::eval::naive_eval_boolean;
    use nev_logic::parse_query;

    fn d0() -> Instance {
        inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] }
    }

    #[test]
    fn intro_example_certain_answers_under_owa_and_cwa() {
        // Q(x,y) = ∃z (R(x,z) ∧ S(z,y)) on the introduction's instance: the certain
        // answer is {(1,4)} and naïve evaluation finds it.
        let d = inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        };
        let q = parse_query("Q(x, y) :- exists z . R(x, z) & S(z, y)").unwrap();
        for sem in [Semantics::Owa, Semantics::Cwa] {
            let report = compare_naive_and_certain(&d, &q, sem, &WorldBounds::default());
            assert!(report.agrees(), "{sem}: {report:?}");
            assert_eq!(report.certain.len(), 1);
            assert!(report.certain.contains(&Tuple::new(vec![c(1), c(4)])));
        }
    }

    #[test]
    fn section_2_4_examples_on_d0() {
        let d0 = d0();
        // ∃x,y (D(x,y) ∧ D(y,x)): certain under both OWA and CWA, naïve evaluation true.
        let sym = parse_query("exists u v . D(u, v) & D(v, u)").unwrap();
        assert!(naive_eval_boolean(&d0, &sym));
        assert!(certain_answers_boolean(
            &d0,
            &sym,
            Semantics::Owa,
            &WorldBounds::default()
        ));
        assert!(certain_answers_boolean(
            &d0,
            &sym,
            Semantics::Cwa,
            &WorldBounds::default()
        ));
        // ∀x∃y D(x,y): naïve evaluation true; certain under CWA, NOT certain under OWA.
        let total = parse_query("forall u . exists v . D(u, v)").unwrap();
        assert!(naive_eval_boolean(&d0, &total));
        assert!(certain_answers_boolean(
            &d0,
            &total,
            Semantics::Cwa,
            &WorldBounds::default()
        ));
        assert!(!certain_answers_boolean(
            &d0,
            &total,
            Semantics::Owa,
            &WorldBounds::default()
        ));
        // Hence naïve evaluation works for it under CWA but not under OWA.
        assert!(naive_evaluation_works(
            &d0,
            &total,
            Semantics::Cwa,
            &WorldBounds::default()
        ));
        assert!(!naive_evaluation_works(
            &d0,
            &total,
            Semantics::Owa,
            &WorldBounds::default()
        ));
        let report =
            compare_naive_and_certain(&d0, &total, Semantics::Owa, &WorldBounds::default());
        assert!(report.naive_overshoots());
        assert!(!report.naive_undershoots());
    }

    #[test]
    fn negation_fails_under_cwa_too() {
        // Q = ∃x ¬D(x,x) on D0: naïvely true (no self-loops syntactically), but the
        // world collapsing both nulls has only a self-loop, so not certain under CWA.
        let d0 = d0();
        let q = parse_query("exists u . !D(u, u)").unwrap();
        assert!(naive_eval_boolean(&d0, &q));
        assert!(!certain_answers_boolean(
            &d0,
            &q,
            Semantics::Cwa,
            &WorldBounds::default()
        ));
        assert!(!naive_evaluation_works(
            &d0,
            &q,
            Semantics::Cwa,
            &WorldBounds::default()
        ));
    }

    #[test]
    fn kary_certain_answers_drop_null_only_answers() {
        // Q(u) = R(u): naïve answers {1}; under CWA the null's value varies, so the
        // certain answers are also {1}.
        let d = inst! { "R" => [[c(1)], [x(1)]] };
        let q = parse_query("Q(u) :- R(u)").unwrap();
        let report = compare_naive_and_certain(&d, &q, Semantics::Cwa, &WorldBounds::default());
        assert!(report.agrees());
        assert_eq!(report.certain.len(), 1);
        // Under OWA the same holds (it is a conjunctive query).
        assert!(naive_evaluation_works(
            &d,
            &q,
            Semantics::Owa,
            &WorldBounds::default()
        ));
    }

    #[test]
    fn repeated_null_certain_answer() {
        // D = {R(⊥,⊥)}: Q = ∃u R(u,u) is certainly true under every semantics, because
        // the repeated null forces a self-loop in every world.
        let d = inst! { "R" => [[x(1), x(1)]] };
        let q = parse_query("exists u . R(u, u)").unwrap();
        for sem in Semantics::ALL {
            assert!(
                certain_answers_boolean(&d, &q, sem, &WorldBounds::default()),
                "{sem} should certainly satisfy ∃u R(u,u)"
            );
        }
        // Whereas with two distinct nulls it is not certain (they may differ) — except
        // under the minimal semantics, where minimality forces the collapse.
        let d2 = inst! { "R" => [[x(1), x(2)]] };
        assert!(!certain_answers_boolean(
            &d2,
            &q,
            Semantics::Cwa,
            &WorldBounds::default()
        ));
        assert!(!certain_answers_boolean(
            &d2,
            &q,
            Semantics::Owa,
            &WorldBounds::default()
        ));
    }

    #[test]
    fn query_constants_enter_the_budget() {
        // Q = ∃u (R(u) ∧ u = 5): not certain under CWA because ⊥ need not be 5; the
        // budget must contain the constant 5 for the counterexample world to exist.
        let d = inst! { "R" => [[x(1)]] };
        let q = parse_query("exists u . R(u) & u = 5").unwrap();
        assert!(!naive_eval_boolean(&d, &q));
        assert!(!certain_answers_boolean(
            &d,
            &q,
            Semantics::Cwa,
            &WorldBounds::default()
        ));
        // The dual query ∃u (R(u) ∧ ¬(u = 5)) is naïvely true but not certain.
        let q2 = parse_query("exists u . R(u) & !(u = 5)").unwrap();
        assert!(naive_eval_boolean(&d, &q2));
        assert!(!certain_answers_boolean(
            &d,
            &q2,
            Semantics::Cwa,
            &WorldBounds::default()
        ));
    }

    #[test]
    fn boolean_report_encoding() {
        let d = inst! { "R" => [[c(1)]] };
        let q = parse_query("exists u . R(u)").unwrap();
        let report = compare_naive_and_certain(&d, &q, Semantics::Cwa, &WorldBounds::default());
        assert!(report.agrees());
        assert_eq!(report.naive.len(), 1);
        assert_eq!(report.naive.iter().next().unwrap().arity(), 0);
    }

    #[test]
    fn complete_instance_certain_answers_equal_evaluation() {
        let d = inst! { "R" => [[c(1), c(2)], [c(2), c(3)]] };
        let q = parse_query("Q(a, b) :- R(a, b) | exists z . R(a, z) & R(z, b)").unwrap();
        for sem in Semantics::ALL {
            let report = compare_naive_and_certain(&d, &q, sem, &WorldBounds::default());
            assert!(report.agrees(), "{sem} must agree on complete instances");
            assert_eq!(report.certain.len(), 3);
        }
    }

    #[test]
    fn wcwa_positive_universal_query_works() {
        // Q = ∀x ∃y D(x,y) on D0 is certain under WCWA (the active domain cannot grow)
        // and naive evaluation agrees — a Pos query, per Theorem 5.2.
        let d0 = d0();
        let q = parse_query("forall u . exists v . D(u, v)").unwrap();
        assert!(naive_evaluation_works(
            &d0,
            &q,
            Semantics::Wcwa,
            &WorldBounds::default()
        ));
    }
}
