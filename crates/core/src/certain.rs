//! Certain answers and the naïve-evaluation comparison (paper §2.4, §8).
//!
//! Given an incomplete database `D`, a semantics `⟦·⟧` and a query `Q`, the *certain
//! answers* are `certain(Q, D) = ⋂ { Q(D') | D' ∈ ⟦D⟧ }` — the answers true in every
//! possible world. *Naïve evaluation works* for `Q` when evaluating `Q` directly on
//! `D` (treating nulls as values) and discarding answer tuples with nulls produces
//! exactly `certain(Q, D)` on every `D`.
//!
//! Certain answers are computed against the bounded possible-world enumeration of
//! [`crate::semantics`] and compared with naïve evaluation by
//! [`crate::engine::CertainEngine`] — **the** evaluation API:
//!
//! * [`crate::engine::CertainEngine::certain_answers`] — the bounded oracle
//!   (Boolean queries use the `{()} / ∅` encoding, so "certainly true" is
//!   "non-empty");
//! * [`crate::engine::CertainEngine::compare`] — naïve evaluation **and** the
//!   bounded oracle side by side, the validation primitive behind the Figure 1
//!   harness;
//! * [`crate::engine::CertainEngine::evaluate`] — plan-then-execute dispatch that
//!   skips the oracle entirely on guaranteed Figure 1 cells;
//! * [`crate::engine::Evaluation::agrees`] — "naïve evaluation works" on one
//!   instance.
//!
//! The free functions that used to live here (`certain_answers`,
//! `certain_answers_boolean`, `compare_naive_and_certain`,
//! `naive_evaluation_works`) were deprecated shims over the engine since the
//! plan-then-execute API landed; every caller has migrated, and they are gone.
//!
//! The exactness guarantees of the bounded enumeration (exact for the CWA family,
//! sound over-approximation of certain answers otherwise) translate as follows:
//!
//! * a reported **disagreement** where the naïve answer is *not contained* in the
//!   bounded certain answers is always a genuine failure of naïve evaluation, because
//!   the true certain answers are a subset of the bounded ones;
//! * a reported **agreement** `naïve = certain_bounded`, combined with the paper's
//!   preservation theorem for the query's fragment (which gives
//!   `naïve ⊆ certain_true`), pins `certain_true` between two equal sets and hence
//!   certifies exact agreement.

use nev_logic::Query;

use crate::semantics::WorldBounds;

/// Bounds pre-populated with the constants mentioned by a query, so that the world
/// enumeration is generic relative to them.
///
/// The cached equivalent, for a query that is prepared once, is
/// [`crate::engine::PreparedQuery::bounds`]; both delegate to
/// [`WorldBounds::extended_with`], so the derivation cannot diverge.
pub fn bounds_for_query(query: &Query, base: &WorldBounds) -> WorldBounds {
    base.extended_with(query.formula().constants())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CertainEngine;
    use crate::semantics::Semantics;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::{inst, Instance, Tuple};
    use nev_logic::eval::naive_eval_boolean;
    use nev_logic::parse_query;

    fn d0() -> Instance {
        inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] }
    }

    fn engine() -> CertainEngine {
        CertainEngine::new()
    }

    /// The certain-answer decision for a Boolean query, via the engine's oracle.
    fn certainly(d: &Instance, text: &str, sem: Semantics) -> bool {
        let e = engine();
        let q = e.prepare(text).expect("valid query");
        !e.certain_answers(d, sem, &q).is_empty()
    }

    /// Does naïve evaluation compute the bounded certain answers here?
    fn naive_works(d: &Instance, text: &str, sem: Semantics) -> bool {
        let e = engine();
        let q = e.prepare(text).expect("valid query");
        e.compare(d, sem, &q).agrees()
    }

    #[test]
    fn bounds_for_query_collects_the_constants() {
        let q = parse_query("exists u . R(u) & u = 5").unwrap();
        let bounds = bounds_for_query(&q, &WorldBounds::default());
        assert_eq!(bounds.extra_constants.len(), 1);
        // … and matches the prepared query's cached derivation.
        let prepared = engine().prepare("exists u . R(u) & u = 5").unwrap();
        assert_eq!(
            prepared.bounds(&WorldBounds::default()).extra_constants,
            bounds.extra_constants
        );
    }

    #[test]
    fn intro_example_certain_answers_under_owa_and_cwa() {
        // Q(x,y) = ∃z (R(x,z) ∧ S(z,y)) on the introduction's instance: the certain
        // answer is {(1,4)} and naïve evaluation finds it.
        let d = inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        };
        let e = engine();
        let q = e
            .prepare("Q(x, y) :- exists z . R(x, z) & S(z, y)")
            .unwrap();
        for sem in [Semantics::Owa, Semantics::Cwa] {
            let report = e.compare(&d, sem, &q);
            assert!(report.agrees(), "{sem}: {report:?}");
            assert_eq!(report.certain.len(), 1);
            assert!(report.certain.contains(&Tuple::new(vec![c(1), c(4)])));
        }
    }

    #[test]
    fn section_2_4_examples_on_d0() {
        let d0 = d0();
        // ∃x,y (D(x,y) ∧ D(y,x)): certain under both OWA and CWA, naïve evaluation true.
        let sym = "exists u v . D(u, v) & D(v, u)";
        assert!(naive_eval_boolean(&d0, &parse_query(sym).unwrap()));
        assert!(certainly(&d0, sym, Semantics::Owa));
        assert!(certainly(&d0, sym, Semantics::Cwa));
        // ∀x∃y D(x,y): naïve evaluation true; certain under CWA, NOT certain under OWA.
        let total = "forall u . exists v . D(u, v)";
        assert!(naive_eval_boolean(&d0, &parse_query(total).unwrap()));
        assert!(certainly(&d0, total, Semantics::Cwa));
        assert!(!certainly(&d0, total, Semantics::Owa));
        // Hence naïve evaluation works for it under CWA but not under OWA.
        assert!(naive_works(&d0, total, Semantics::Cwa));
        assert!(!naive_works(&d0, total, Semantics::Owa));
        let e = engine();
        let q = e.prepare(total).unwrap();
        let report = e.compare(&d0, Semantics::Owa, &q);
        assert!(report.naive_overshoots());
        assert!(!report.naive_undershoots());
    }

    #[test]
    fn negation_fails_under_cwa_too() {
        // Q = ∃x ¬D(x,x) on D0: naïvely true (no self-loops syntactically), but the
        // world collapsing both nulls has only a self-loop, so not certain under CWA.
        let d0 = d0();
        let q = "exists u . !D(u, u)";
        assert!(naive_eval_boolean(&d0, &parse_query(q).unwrap()));
        assert!(!certainly(&d0, q, Semantics::Cwa));
        assert!(!naive_works(&d0, q, Semantics::Cwa));
    }

    #[test]
    fn kary_certain_answers_drop_null_only_answers() {
        // Q(u) = R(u): naïve answers {1}; under CWA the null's value varies, so the
        // certain answers are also {1}.
        let d = inst! { "R" => [[c(1)], [x(1)]] };
        let e = engine();
        let q = e.prepare("Q(u) :- R(u)").unwrap();
        let report = e.compare(&d, Semantics::Cwa, &q);
        assert!(report.agrees());
        assert_eq!(report.certain.len(), 1);
        // Under OWA the same holds (it is a conjunctive query).
        assert!(naive_works(&d, "Q(u) :- R(u)", Semantics::Owa));
    }

    #[test]
    fn repeated_null_certain_answer() {
        // D = {R(⊥,⊥)}: Q = ∃u R(u,u) is certainly true under every semantics, because
        // the repeated null forces a self-loop in every world.
        let d = inst! { "R" => [[x(1), x(1)]] };
        let q = "exists u . R(u, u)";
        for sem in Semantics::ALL {
            assert!(
                certainly(&d, q, sem),
                "{sem} should certainly satisfy ∃u R(u,u)"
            );
        }
        // Whereas with two distinct nulls it is not certain (they may differ) — except
        // under the minimal semantics, where minimality forces the collapse.
        let d2 = inst! { "R" => [[x(1), x(2)]] };
        assert!(!certainly(&d2, q, Semantics::Cwa));
        assert!(!certainly(&d2, q, Semantics::Owa));
    }

    #[test]
    fn query_constants_enter_the_budget() {
        // Q = ∃u (R(u) ∧ u = 5): not certain under CWA because ⊥ need not be 5; the
        // budget must contain the constant 5 for the counterexample world to exist.
        let d = inst! { "R" => [[x(1)]] };
        let q = "exists u . R(u) & u = 5";
        assert!(!naive_eval_boolean(&d, &parse_query(q).unwrap()));
        assert!(!certainly(&d, q, Semantics::Cwa));
        // The dual query ∃u (R(u) ∧ ¬(u = 5)) is naïvely true but not certain.
        let q2 = "exists u . R(u) & !(u = 5)";
        assert!(naive_eval_boolean(&d, &parse_query(q2).unwrap()));
        assert!(!certainly(&d, q2, Semantics::Cwa));
    }

    #[test]
    fn boolean_report_encoding() {
        let d = inst! { "R" => [[c(1)]] };
        let e = engine();
        let q = e.prepare("exists u . R(u)").unwrap();
        let report = e.compare(&d, Semantics::Cwa, &q);
        assert!(report.agrees());
        assert_eq!(report.naive.len(), 1);
        assert_eq!(report.naive.iter().next().unwrap().arity(), 0);
    }

    #[test]
    fn complete_instance_certain_answers_equal_evaluation() {
        let d = inst! { "R" => [[c(1), c(2)], [c(2), c(3)]] };
        let e = engine();
        let q = e
            .prepare("Q(a, b) :- R(a, b) | exists z . R(a, z) & R(z, b)")
            .unwrap();
        for sem in Semantics::ALL {
            let report = e.compare(&d, sem, &q);
            assert!(report.agrees(), "{sem} must agree on complete instances");
            assert_eq!(report.certain.len(), 3);
        }
    }

    #[test]
    fn wcwa_positive_universal_query_works() {
        // Q = ∀x ∃y D(x,y) on D0 is certain under WCWA (the active domain cannot grow)
        // and naive evaluation agrees — a Pos query, per Theorem 5.2.
        assert!(naive_works(
            &d0(),
            "forall u . exists v . D(u, v)",
            Semantics::Wcwa
        ));
    }
}
