//! Figure 1 of the paper, as data (paper §12).
//!
//! The paper's summary table maps each semantics of incompleteness to the FO fragment
//! for which naïve evaluation is guaranteed to compute certain answers:
//!
//! | semantics | naïve evaluation works for |
//! |---|---|
//! | OWA | `∃Pos` (unions of CQs) — and this is optimal (Libkin 2011) |
//! | WCWA | `Pos` |
//! | CWA | `Pos+∀G` |
//! | `⦅ ⦆_CWA` | `∃Pos+∀G_bool` |
//! | `⟦ ⟧ᵐⁱⁿ_CWA` | `Pos+∀G`, over cores; always a sound approximation |
//! | `⦅ ⦆ᵐⁱⁿ_CWA` | `∃Pos+∀G_bool`, over cores; always a sound approximation |
//!
//! [`figure1`] expands this into one cell per (semantics, fragment) pair with the
//! expectation the experiment harness (`nev-bench`, experiment E1) validates:
//! *Works* cells must show naïve = certain on every trial, *WorksOverCores* cells must
//! do so on core instances, and *NotGuaranteed* cells carry no such promise (for
//! several of them the harness exhibits explicit counterexamples, e.g. `Pos` under
//! OWA on the instance `D₀` of §2.4).

use nev_logic::Fragment;

use crate::semantics::Semantics;

/// What the paper guarantees for a (semantics, fragment) cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// Naïve evaluation computes certain answers on every instance.
    Works,
    /// Naïve evaluation computes certain answers on every **core** instance, and is a
    /// sound approximation (answers ⊆ certain answers) on every instance.
    WorksOverCores,
    /// The paper makes no guarantee for the whole fragment under this semantics;
    /// counterexamples may exist (and for several cells are exhibited in the paper).
    NotGuaranteed,
}

/// One cell of Figure 1, extended to every (semantics, fragment) combination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Figure1Cell {
    /// The semantics of incompleteness.
    pub semantics: Semantics,
    /// The query fragment.
    pub fragment: Fragment,
    /// What the paper guarantees for this combination.
    pub expectation: Expectation,
}

/// The fragments listed in Figure 1, plus full FO as the "beyond the guarantee" row.
pub const FRAGMENTS: [Fragment; 5] = [
    Fragment::ExistentialPositive,
    Fragment::Positive,
    Fragment::PositiveGuarded,
    Fragment::ExistentialPositiveBooleanGuarded,
    Fragment::FullFirstOrder,
];

/// The guaranteed fragment of each semantics, as printed in Figure 1.
pub fn guaranteed_fragment(semantics: Semantics) -> Fragment {
    match semantics {
        Semantics::Owa => Fragment::ExistentialPositive,
        Semantics::Wcwa => Fragment::Positive,
        Semantics::Cwa => Fragment::PositiveGuarded,
        Semantics::PowersetCwa => Fragment::ExistentialPositiveBooleanGuarded,
        Semantics::MinimalCwa => Fragment::PositiveGuarded,
        Semantics::MinimalPowersetCwa => Fragment::ExistentialPositiveBooleanGuarded,
    }
}

/// The expectation for a single (semantics, fragment) cell.
///
/// The entries follow from the paper as follows:
///
/// * a fragment works under a semantics when it is (syntactically) included in a class
///   preserved under that semantics' homomorphisms — in particular `∃Pos` works
///   everywhere, and `∃Pos+∀G_bool` also works under plain CWA because single strong
///   onto homomorphisms are a special case of unions of them;
/// * under the minimal semantics, fragments that work under the corresponding
///   saturated semantics work **over cores** (Corollary 10.12); `∃Pos` works
///   everywhere even off cores because homomorphism-preserved queries never
///   distinguish an instance from its core;
/// * everything else is not guaranteed.
pub fn expectation(semantics: Semantics, fragment: Fragment) -> Expectation {
    use Expectation::*;
    use Fragment::*;
    match (semantics, fragment) {
        // Full first-order logic is never guaranteed.
        (_, FullFirstOrder) => NotGuaranteed,

        // OWA: only ∃Pos (optimal by Libkin 2011).
        (Semantics::Owa, ExistentialPositive) => Works,
        (Semantics::Owa, _) => NotGuaranteed,

        // WCWA: Pos (hence also ∃Pos). Guarded fragments are not covered.
        (Semantics::Wcwa, ExistentialPositive | Positive) => Works,
        (Semantics::Wcwa, _) => NotGuaranteed,

        // CWA: Pos+∀G (hence ∃Pos and Pos); ∃Pos+∀G_bool also works because strong
        // onto homomorphisms are singleton unions of strong onto homomorphisms.
        (Semantics::Cwa, _) => Works,

        // Powerset CWA: ∃Pos+∀G_bool (hence ∃Pos). Pos and Pos+∀G are not covered.
        (Semantics::PowersetCwa, ExistentialPositive | ExistentialPositiveBooleanGuarded) => Works,
        (Semantics::PowersetCwa, _) => NotGuaranteed,

        // Minimal CWA: Pos+∀G over cores (hence Pos and ∃Pos+∀G_bool over cores);
        // ∃Pos works everywhere because it cannot distinguish D from core(D).
        (Semantics::MinimalCwa, ExistentialPositive) => Works,
        (Semantics::MinimalCwa, _) => WorksOverCores,

        // Minimal powerset CWA: ∃Pos+∀G_bool over cores; ∃Pos everywhere.
        (Semantics::MinimalPowersetCwa, ExistentialPositive) => Works,
        (Semantics::MinimalPowersetCwa, ExistentialPositiveBooleanGuarded) => WorksOverCores,
        (Semantics::MinimalPowersetCwa, _) => NotGuaranteed,
    }
}

/// The full table: one cell per semantics and fragment.
pub fn figure1() -> Vec<Figure1Cell> {
    let mut cells = Vec::new();
    for semantics in Semantics::ALL {
        for fragment in FRAGMENTS {
            cells.push(Figure1Cell {
                semantics,
                fragment,
                expectation: expectation(semantics, fragment),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_one_cell_per_combination() {
        let cells = figure1();
        assert_eq!(cells.len(), Semantics::ALL.len() * FRAGMENTS.len());
        for semantics in Semantics::ALL {
            for fragment in FRAGMENTS {
                assert_eq!(
                    cells
                        .iter()
                        .filter(|c| c.semantics == semantics && c.fragment == fragment)
                        .count(),
                    1
                );
            }
        }
    }

    #[test]
    fn guaranteed_fragments_match_figure_1() {
        assert_eq!(
            guaranteed_fragment(Semantics::Owa),
            Fragment::ExistentialPositive
        );
        assert_eq!(guaranteed_fragment(Semantics::Wcwa), Fragment::Positive);
        assert_eq!(
            guaranteed_fragment(Semantics::Cwa),
            Fragment::PositiveGuarded
        );
        assert_eq!(
            guaranteed_fragment(Semantics::PowersetCwa),
            Fragment::ExistentialPositiveBooleanGuarded
        );
        assert_eq!(
            guaranteed_fragment(Semantics::MinimalCwa),
            Fragment::PositiveGuarded
        );
        assert_eq!(
            guaranteed_fragment(Semantics::MinimalPowersetCwa),
            Fragment::ExistentialPositiveBooleanGuarded
        );
    }

    #[test]
    fn guaranteed_fragment_cells_are_marked_works() {
        for semantics in Semantics::ALL {
            let fragment = guaranteed_fragment(semantics);
            let exp = expectation(semantics, fragment);
            if semantics.is_minimal() {
                assert_eq!(exp, Expectation::WorksOverCores, "{semantics}");
            } else {
                assert_eq!(exp, Expectation::Works, "{semantics}");
            }
        }
    }

    #[test]
    fn ucqs_work_under_every_semantics() {
        for semantics in Semantics::ALL {
            assert_eq!(
                expectation(semantics, Fragment::ExistentialPositive),
                Expectation::Works,
                "{semantics}"
            );
        }
    }

    #[test]
    fn full_fo_is_never_guaranteed() {
        for semantics in Semantics::ALL {
            assert_eq!(
                expectation(semantics, Fragment::FullFirstOrder),
                Expectation::NotGuaranteed,
                "{semantics}"
            );
        }
    }

    #[test]
    fn owa_beyond_ucq_is_not_guaranteed() {
        assert_eq!(
            expectation(Semantics::Owa, Fragment::Positive),
            Expectation::NotGuaranteed
        );
        assert_eq!(
            expectation(Semantics::Owa, Fragment::PositiveGuarded),
            Expectation::NotGuaranteed
        );
        assert_eq!(
            expectation(Semantics::Wcwa, Fragment::PositiveGuarded),
            Expectation::NotGuaranteed
        );
        assert_eq!(
            expectation(Semantics::Cwa, Fragment::PositiveGuarded),
            Expectation::Works
        );
        assert_eq!(
            expectation(Semantics::PowersetCwa, Fragment::Positive),
            Expectation::NotGuaranteed
        );
    }
}
