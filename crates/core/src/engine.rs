//! `CertainEngine` — the plan-then-execute query-evaluation API (Figure 1 as a
//! dispatch table).
//!
//! The rest of `nev-core` *validates* the paper's central result — naïve evaluation
//! computes certain answers exactly when the query's fragment is preserved under the
//! semantics' homomorphisms. This module *operationalises* it:
//!
//! 1. a [`PreparedQuery`] parses, classifies **and compiles** a query once
//!    (fragment, constants, arity, and — when the `nev-exec` compiler accepts its
//!    shape — a physical relational-algebra plan) instead of re-deriving them per
//!    call;
//! 2. an [`EvalPlan`] is chosen per (instance, semantics, query) by consulting the
//!    machine-readable Figure 1 ([`crate::summary::expectation`]): on guaranteed
//!    cells the engine answers by one polynomial naïve evaluation pass — executed by
//!    the compiled set-at-a-time engine ([`EvalPlan::CompiledNaive`]) when a plan
//!    exists, by the tree-walking interpreter ([`EvalPlan::CertifiedNaive`])
//!    otherwise — carrying a [`Certificate`] naming both the justifying theorem and
//!    the executor; everything else is [`EvalPlan::BoundedEnumeration`];
//! 3. the bounded oracle streams worlds from the lazy [`Semantics::worlds`] iterator
//!    with early exit (a Boolean query stops at the first counter-world, a k-ary
//!    intersection stops when it becomes empty); each per-world evaluation also
//!    routes through the compiled plan when one exists;
//! 4. [`CertainEngine::evaluate_all`] amortises the expensive part across a batch:
//!    the instance's worlds are enumerated **at most once** and every per-query
//!    certain-answer intersection is folded in that single pass.
//!
//! Every [`Evaluation`] carries an [`ExecStats`] counter block (rows scanned, hash
//! probes, interpreter fallbacks) mirroring the `worlds_enumerated` /
//! `enumeration_passes` telemetry, so callers can see *how* an answer was produced.
//!
//! This engine **is** the evaluation API (the legacy free functions of
//! [`crate::certain`] were removed once every caller migrated). The per-world
//! primitives the oracle is built from — [`PreparedQuery::naive_answers`] and
//! [`PreparedQuery::answers_in_world`] — are public, so external schedulers (the
//! `nev-serve` parallel oracle splits the [`Semantics::worlds`] stream across a
//! worker pool) can reassemble the exact same certain-answer intersection.
//!
//! ```
//! use nev_core::engine::{CertainEngine, EvalPlan};
//! use nev_core::Semantics;
//! use nev_incomplete::builder::{c, x};
//! use nev_incomplete::inst;
//!
//! // The paper's introduction: R = {(1,⊥1),(⊥2,⊥3)}, S = {(⊥1,4),(⊥3,5)}.
//! let d = inst! {
//!     "R" => [[c(1), x(1)], [x(2), x(3)]],
//!     "S" => [[x(1), c(4)], [x(3), c(5)]],
//! };
//! let engine = CertainEngine::new();
//! let q = engine.prepare("Q(x, y) :- exists z . R(x, z) & S(z, y)")?;
//!
//! // A union of conjunctive queries under OWA: Figure 1 certifies naïve evaluation,
//! // so no possible world is ever enumerated — and the join pipeline compiles, so
//! // the pass runs on the nev-exec hash-join executor, not the interpreter.
//! let eval = engine.evaluate(&d, Semantics::Owa, &q);
//! assert!(matches!(eval.plan, EvalPlan::CompiledNaive(_)));
//! assert_eq!(eval.worlds_enumerated, 0);
//! assert_eq!(eval.certain.len(), 1);
//! assert!(eval.exec.hash_probes > 0);
//! assert_eq!(eval.exec.fallbacks, 0);
//! # Ok::<(), nev_core::engine::EngineError>(())
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use nev_analyze::{CheckError, QueryAnalysis};
use nev_exec::{
    CompileError, CompiledQuery, CompilerConfig, ExecOptions, ExecStats, ExecTimings, OpProfile,
};
use nev_hom::is_core;
use nev_incomplete::{Constant, Instance, Tuple};
use nev_logic::eval::{evaluate_boolean, evaluate_query, naive_eval_query};
use nev_logic::fragment::classify;
use nev_logic::parser::ParseError;
use nev_logic::query::QueryError;
use nev_logic::{parse_query, Fragment, Query};
use nev_obs::{Stage, Timer, Trace, TraceRecorder};
use nev_runtime::WorkerPool;
use nev_symbolic::{complete_candidates, cwa_certain_answers, under_approximation, EvalProfile};

use crate::semantics::{Semantics, WorldBounds};
use crate::summary::{expectation, Expectation};

/// Errors surfaced by the engine API (replacing the `assert!`-based panics of the
/// legacy free functions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// The parsed formula was not a well-formed query (free-variable problems).
    Query(QueryError),
    /// A Boolean-only entry point was called with a k-ary query.
    NotBoolean {
        /// The arity of the offending query.
        arity: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "query parse error: {e}"),
            EngineError::Query(e) => write!(f, "ill-formed query: {e}"),
            EngineError::NotBoolean { arity } => {
                write!(f, "expected a Boolean query, got one of arity {arity}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Query(e) => Some(e),
            EngineError::NotBoolean { .. } => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

/// A query prepared for repeated evaluation: parsed and classified **once**, with the
/// fragment, the mentioned constants and the arity cached.
///
/// ```
/// use nev_core::engine::PreparedQuery;
/// use nev_logic::Fragment;
///
/// let q = PreparedQuery::parse("forall u . exists v . D(u, v)")?;
/// assert_eq!(q.fragment(), Fragment::Positive);
/// assert!(q.is_boolean());
/// # Ok::<(), nev_core::engine::EngineError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PreparedQuery {
    query: Query,
    fragment: Fragment,
    constants: BTreeSet<Constant>,
    compiled: Option<CompiledQuery>,
    compile_error: Option<CompileError>,
    analysis: QueryAnalysis,
    normalized_compiled: Option<CompiledQuery>,
    prep: PrepTimings,
}

/// Wall-clock telemetry for the three preparation stages of a [`PreparedQuery`]:
/// parse, classify and compile. All zero when tracing is disabled (`NEV_TRACE=0`)
/// or when the query was built from an already-parsed [`Query`] (no parse stage).
///
/// Telemetry never participates in equality: two `PreparedQuery`s that prepared
/// the same query compare equal regardless of how long preparation took, so
/// plan-cache lookups and the differential suites stay timing-independent.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrepTimings {
    /// Microseconds spent in `parse_query` (zero for pre-parsed queries).
    pub parse_us: u64,
    /// Microseconds spent classifying the formula into its Figure 1 fragment.
    pub classify_us: u64,
    /// Microseconds spent in the `nev-exec` compiler (including `nev-opt` rewrites).
    pub compile_us: u64,
    /// Microseconds spent in the `nev-analyze` static pass (normalization,
    /// re-classification, null-flow), including compiling the normal form when
    /// it differs.
    pub analyze_us: u64,
}

impl PartialEq for PrepTimings {
    fn eq(&self, _other: &Self) -> bool {
        true // telemetry is not part of a prepared query's identity
    }
}

impl Eq for PrepTimings {}

impl PreparedQuery {
    /// Prepares an already-built [`Query`]: classifies it into the smallest Figure 1
    /// fragment, caches its constants, and attempts to compile it into a `nev-exec`
    /// physical plan (kept as `None` when the compiler rejects the shape — every
    /// later evaluation then falls back to the tree-walking interpreter and records
    /// the fallback in [`ExecStats::fallbacks`]).
    pub fn new(query: Query) -> Self {
        PreparedQuery::with_compiler_config(query, &CompilerConfig::default())
    }

    /// Prepares a query under an explicit [`CompilerConfig`] — e.g. with
    /// `optimize: false` to pin the literal syntactic lowering as a baseline
    /// (the differential suite compares optimised against exactly this).
    pub fn with_compiler_config(query: Query, config: &CompilerConfig) -> Self {
        let classify_timer = Timer::start();
        let fragment = classify(query.formula());
        let constants = query.formula().constants();
        let classify_us = classify_timer.elapsed_us();
        let compile_timer = Timer::start();
        let (compiled, compile_error) = match CompiledQuery::compile_with(&query, config) {
            Ok(compiled) => (Some(compiled), None),
            Err(e) => (None, Some(e)),
        };
        let compile_us = compile_timer.elapsed_us();
        let analyze_timer = Timer::start();
        let analysis = QueryAnalysis::new(&query);
        // The normal form gets its own compiled plan when it differs: the
        // widened dispatch path runs *that* pass, and a shape the compiler
        // rejected as written (e.g. behind a wide `∀`) often compiles after
        // normalization.
        let normalized_compiled = if analysis.changed() {
            CompiledQuery::compile_with(analysis.normalized(), config).ok()
        } else {
            None
        };
        let prep = PrepTimings {
            parse_us: 0,
            classify_us,
            compile_us,
            analyze_us: analyze_timer.elapsed_us(),
        };
        PreparedQuery {
            query,
            fragment,
            constants,
            compiled,
            compile_error,
            analysis,
            normalized_compiled,
            prep,
        }
    }

    /// Parses and prepares a query from the text syntax of `nev-logic`.
    pub fn parse(text: &str) -> Result<Self, EngineError> {
        let parse_timer = Timer::start();
        let query = parse_query(text)?;
        let parse_us = parse_timer.elapsed_us();
        let mut prepared = PreparedQuery::new(query);
        prepared.prep.parse_us = parse_us;
        Ok(prepared)
    }

    /// Wall-clock telemetry for the parse/classify/compile preparation stages
    /// (all-zero under `NEV_TRACE=0`). Never part of equality.
    pub fn prep_timings(&self) -> PrepTimings {
        self.prep
    }

    /// The underlying query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The smallest Figure 1 fragment containing the query's formula.
    pub fn fragment(&self) -> Fragment {
        self.fragment
    }

    /// The constants mentioned by the query's formula.
    pub fn constants(&self) -> &BTreeSet<Constant> {
        &self.constants
    }

    /// The arity of the query (`0` for Boolean queries).
    pub fn arity(&self) -> usize {
        self.query.arity()
    }

    /// Returns `true` iff the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.query.is_boolean()
    }

    /// The compiled physical plan, when the `nev-exec` compiler accepted the
    /// query's shape.
    pub fn compiled(&self) -> Option<&CompiledQuery> {
        self.compiled.as_ref()
    }

    /// Returns `true` iff the query has a compiled physical plan.
    pub fn compiles(&self) -> bool {
        self.compiled.is_some()
    }

    /// Why the compiler rejected the query's shape (`None` when it compiled).
    pub fn compile_error(&self) -> Option<&CompileError> {
        self.compile_error.as_ref()
    }

    /// The static analysis of this query: normal form, rewrite trace,
    /// re-classified fragment, diagnostics and null-flow typing.
    pub fn analysis(&self) -> &QueryAnalysis {
        &self.analysis
    }

    /// The Figure 1 fragment of the query's *normal form* (equal to
    /// [`PreparedQuery::fragment`] when normalization changed nothing).
    pub fn normalized_fragment(&self) -> Fragment {
        self.analysis.normalized_fragment()
    }

    /// Did normalization rewrite the formula at all?
    pub fn normalization_changed(&self) -> bool {
        self.analysis.changed()
    }

    /// The compiled plan of the normal form, when normalization changed the
    /// formula and the compiler accepted the normalized shape.
    pub fn normalized_compiled(&self) -> Option<&CompiledQuery> {
        self.normalized_compiled.as_ref()
    }

    /// Returns `true` iff the widened dispatch path would run on the compiled
    /// pipeline (the normal form's own plan, or the original's when the
    /// formula was already normal).
    pub fn normalized_compiles(&self) -> bool {
        if self.analysis.changed() {
            self.normalized_compiled.is_some()
        } else {
            self.compiled.is_some()
        }
    }

    /// Re-checks the static analysis behind any normalized-dispatch
    /// certificate: replays the rewrite trace and re-runs the classifier (see
    /// [`QueryAnalysis::check`]).
    pub fn check_normalization(&self) -> Result<(), CheckError> {
        self.analysis.check()
    }

    /// [`PreparedQuery::check_normalization`] plus a differential run of the
    /// original vs the normalized query on `d`.
    pub fn check_normalization_on(&self, d: &Instance) -> Result<(), CheckError> {
        self.analysis.check_on(d)
    }

    /// The `EXPLAIN` rendering of the compiled plan — both the logical lowering
    /// and the `nev-opt` rule-optimised plan the executor runs — or `None` when
    /// the compiler rejected the query's shape (interpreter fallback).
    pub fn explain(&self) -> Option<String> {
        self.compiled.as_ref().map(CompiledQuery::explain)
    }

    /// World-enumeration bounds extended with this query's constants, so that the
    /// enumeration is generic relative to them (the cached equivalent of
    /// [`crate::certain::bounds_for_query`]).
    pub fn bounds(&self, base: &WorldBounds) -> WorldBounds {
        base.extended_with(self.constants.iter().cloned())
    }

    /// The constants an answer tuple may mention on instance `d`: the instance's
    /// constants plus the query's own. Certain answers are restricted to this set —
    /// renaming any other constant yields another world where the tuple is not an
    /// answer — which keeps the bounded enumeration's internal fresh constants out
    /// of results. This is the `allowed` argument of
    /// [`PreparedQuery::answers_in_world`].
    pub fn allowed_constants(&self, d: &Instance) -> BTreeSet<Constant> {
        let mut allowed = d.constants();
        allowed.extend(self.constants.iter().cloned());
        allowed
    }

    /// The naïve answers `Q^C(D)` with the Boolean `{()} / ∅` encoding, executed by
    /// the compiled plan when one exists (one interpreter fallback is recorded
    /// otherwise). This is the single certified pass behind
    /// [`EvalPlan::CompiledNaive`] / [`EvalPlan::CertifiedNaive`].
    pub fn naive_answers(&self, d: &Instance) -> (BTreeSet<Tuple>, ExecStats) {
        naive_answers(d, self, &ExecOptions::default())
    }

    /// [`PreparedQuery::naive_answers`] under explicit [`ExecOptions`] — with a
    /// pool attached, the compiled pass runs morsel-parallel. This is what
    /// [`CertainEngine::naive_answers`] calls with the engine's own options.
    pub fn naive_answers_with(
        &self,
        d: &Instance,
        options: &ExecOptions,
    ) -> (BTreeSet<Tuple>, ExecStats) {
        naive_answers(d, self, options)
    }

    /// The query's answers in one complete world, restricted to the `allowed`
    /// constants (Boolean queries use the `{()} / ∅` encoding — the answer set is
    /// non-empty iff the sentence holds in the world). Runs on the compiled plan
    /// when one exists, merging its counters into `exec`; an interpreter evaluation
    /// counts as one fallback.
    ///
    /// The bounded oracle is *exactly* the intersection of this set over a world
    /// stream — for Boolean and k-ary queries alike, since `{()} ∩ {()} = {()}` and
    /// any empty factor empties the product. Exposing the per-world step lets
    /// external schedulers (e.g. the `nev-serve` chunked parallel oracle) compute
    /// the same certain answers under their own world partitioning.
    pub fn answers_in_world(
        &self,
        world: &Instance,
        allowed: &BTreeSet<Constant>,
        exec: &mut ExecStats,
    ) -> BTreeSet<Tuple> {
        answers_in_world(world, self, allowed, exec)
    }
}

impl fmt::Display for PreparedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.query, self.fragment)
    }
}

/// Which engine executes the certified naïve evaluation pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Executor {
    /// The `nev-exec` compiled relational-algebra pipeline (interned codes, hash
    /// joins, set-at-a-time operators).
    CompiledAlgebra,
    /// The tree-walking active-domain interpreter of `nev-logic::eval`.
    Interpreter,
}

impl fmt::Display for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Executor::CompiledAlgebra => write!(f, "nev-exec compiled algebra"),
            Executor::Interpreter => write!(f, "tree-walking interpreter"),
        }
    }
}

/// A machine-checkable justification for skipping world enumeration: the Figure 1
/// cell that guarantees naïve evaluation, the paper result behind it, and the
/// executor that will run the single naïve pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// The semantics of the cell.
    pub semantics: Semantics,
    /// The query fragment of the cell.
    pub fragment: Fragment,
    /// The guarantee Figure 1 records for the cell.
    pub expectation: Expectation,
    /// For `WorksOverCores` cells: the instance was verified to be a core, which is
    /// the side condition of the guarantee (Corollary 10.12).
    pub core_checked: bool,
    /// The paper result justifying the certified shortcut.
    pub theorem: &'static str,
    /// The engine executing the naïve pass this certificate authorises.
    pub executor: Executor,
}

impl Certificate {
    /// Re-derives the certificate from the machine-readable Figure 1 and confirms the
    /// shortcut was justified: the cell really carries a guarantee, and the
    /// over-cores side condition was discharged where required.
    pub fn check(&self) -> bool {
        let cell = expectation(self.semantics, self.fragment);
        cell == self.expectation
            && match cell {
                Expectation::Works => true,
                Expectation::WorksOverCores => self.core_checked,
                Expectation::NotGuaranteed => false,
            }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {}: {}{} [executor: {}]",
            self.semantics,
            self.fragment,
            self.theorem,
            if self.core_checked {
                " [instance verified to be a core]"
            } else {
                ""
            },
            self.executor
        )
    }
}

/// The paper result behind each semantics' Figure 1 guarantee.
fn theorem_for(semantics: Semantics) -> &'static str {
    match semantics {
        Semantics::Owa => {
            "Theorem 4.8 + Corollary 4.9: ∃Pos is preserved under homomorphisms \
             (optimal by Libkin 2011)"
        }
        Semantics::Wcwa => "Theorem 5.2: Pos is preserved under onto homomorphisms",
        Semantics::Cwa => "Theorem 5.2: Pos+∀G is preserved under strong onto homomorphisms",
        Semantics::PowersetCwa => {
            "Proposition 7.4: ∃Pos+∀G_bool is preserved under unions of strong onto \
             homomorphisms"
        }
        Semantics::MinimalCwa => {
            "Corollary 10.12: Pos+∀G is naïvely evaluable over cores under ⟦ ⟧min_CWA"
        }
        Semantics::MinimalPowersetCwa => {
            "Corollary 10.12: ∃Pos+∀G_bool is naïvely evaluable over cores under ⦅ ⦆min_CWA"
        }
    }
}

/// Whether a symbolic answer is the exact certain-answer set or a sound subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymbolicMode {
    /// The symbolic answers **are** the certain answers.
    Exact,
    /// The symbolic answers are a sound under-approximation: every returned
    /// tuple is certain, but certain tuples may be missing.
    UnderApprox,
}

impl fmt::Display for SymbolicMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicMode::Exact => write!(f, "exact"),
            SymbolicMode::UnderApprox => write!(f, "under-approx"),
        }
    }
}

/// Which PTIME symbolic technique produced the answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymbolicTechnique {
    /// CWA conditional tables: per-candidate `=`/`≠` conditions whose validity
    /// decides certainty; exact when every surviving condition is
    /// equality-only ([`nev_symbolic::ctable`]).
    ConditionalTables,
    /// The sandwich: the Kleene under-approximation coincided with the naïve
    /// over-approximation, pinning the certain answers from both sides.
    Sandwich,
    /// Plain unknown-as-false Kleene evaluation, reported as an
    /// under-approximation without an exactness claim.
    Kleene,
}

impl fmt::Display for SymbolicTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicTechnique::ConditionalTables => write!(f, "conditional tables"),
            SymbolicTechnique::Sandwich => write!(f, "sandwich"),
            SymbolicTechnique::Kleene => write!(f, "3-valued Kleene"),
        }
    }
}

/// A machine-checkable justification for answering a non-guaranteed Figure 1
/// cell without enumerating worlds: which PTIME technique ran and what it
/// proved (exactness or mere soundness).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SymbolicCertificate {
    /// The semantics of the cell.
    pub semantics: Semantics,
    /// The query fragment of the cell.
    pub fragment: Fragment,
    /// Exactness claim of the answer.
    pub mode: SymbolicMode,
    /// The technique that produced it.
    pub technique: SymbolicTechnique,
    /// For minimal-semantics sandwiches: the instance was verified to be a
    /// core, the side condition under which the naïve answers over-approximate
    /// the certain answers (the fresh-injective image is then a possible
    /// world).
    pub core_checked: bool,
}

impl SymbolicCertificate {
    /// Confirms the certificate's claims are internally consistent: exactness
    /// is only ever claimed by the techniques that can prove it, and the
    /// minimal-semantics sandwich carries its core side condition.
    pub fn check(&self) -> bool {
        match self.technique {
            SymbolicTechnique::ConditionalTables => {
                self.semantics == Semantics::Cwa && self.mode == SymbolicMode::Exact
            }
            SymbolicTechnique::Sandwich => {
                self.mode == SymbolicMode::Exact
                    && (!self.semantics.is_minimal() || self.core_checked)
            }
            SymbolicTechnique::Kleene => self.mode == SymbolicMode::UnderApprox,
        }
    }
}

impl fmt::Display for SymbolicCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {}: {} via {}{}",
            self.semantics,
            self.fragment,
            self.mode,
            self.technique,
            if self.core_checked {
                " [instance verified to be a core]"
            } else {
                ""
            }
        )
    }
}

/// The per-semantics soundness profile the Kleene evaluator runs under (see
/// `nev-symbolic`'s [`EvalProfile`] docs for the proofs): OWA closes nothing,
/// WCWA closes the domain, CWA closes both, and the powerset semantics close
/// atoms only — via renamed unification — because unions of valuation images
/// defeat domain closure. The minimal variants inherit their parent's profile
/// (minimal worlds are a subset of the parent's, so every ∀-world invariant
/// carries over).
pub fn symbolic_profile(semantics: Semantics) -> EvalProfile {
    match semantics {
        Semantics::Owa => EvalProfile::open_world(),
        Semantics::Wcwa => EvalProfile::weak_closed(),
        Semantics::Cwa | Semantics::MinimalCwa => EvalProfile::closed(),
        Semantics::PowersetCwa | Semantics::MinimalPowersetCwa => EvalProfile::powerset(),
    }
}

/// How the engine answers a query on a given instance and semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalPlan {
    /// Figure 1 guarantees naïve evaluation computes the certain answers **and**
    /// the query compiled: one set-at-a-time pass on the `nev-exec` operator
    /// pipeline, no world enumeration, with the justifying [`Certificate`].
    CompiledNaive(Certificate),
    /// Figure 1 guarantees naïve evaluation but the compiler rejected the query's
    /// shape: one tree-walking interpreter pass (recorded as a fallback in
    /// [`ExecStats`]), no world enumeration.
    CertifiedNaive(Certificate),
    /// The query as *written* has no Figure 1 guarantee, but its `nev-analyze`
    /// normal form classifies into a guaranteed fragment: one naïve pass over
    /// the **normalized** query (semantics-preserving by construction — the
    /// rewrite trace is replayable via
    /// [`PreparedQuery::check_normalization`]), no world enumeration. The
    /// certificate's `fragment` is the normalized fragment.
    NormalizedNaive(Certificate),
    /// No Figure 1 guarantee applies, but a PTIME symbolic technique settled the
    /// answer without enumerating a single world (see [`SymbolicCertificate`]).
    /// [`CertainEngine::plan`] never returns this statically — it is the
    /// evaluation-time upgrade of [`EvalPlan::BoundedEnumeration`] reported by
    /// [`CertainEngine::evaluate`] and [`CertainEngine::plan_with_symbolic`].
    Symbolic(SymbolicCertificate),
    /// No guarantee applies: intersect query answers over the bounded possible-world
    /// enumeration.
    BoundedEnumeration,
}

impl EvalPlan {
    /// Returns the certificate of a certified naïve plan. Symbolic plans carry
    /// a [`SymbolicCertificate`] instead — see [`EvalPlan::symbolic_certificate`].
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            EvalPlan::CompiledNaive(cert)
            | EvalPlan::CertifiedNaive(cert)
            | EvalPlan::NormalizedNaive(cert) => Some(cert),
            EvalPlan::Symbolic(_) | EvalPlan::BoundedEnumeration => None,
        }
    }

    /// Returns the certificate of a symbolic plan.
    pub fn symbolic_certificate(&self) -> Option<&SymbolicCertificate> {
        match self {
            EvalPlan::Symbolic(cert) => Some(cert),
            _ => None,
        }
    }

    /// Returns `true` for the certified naïve fast path (compiled,
    /// interpreted, or via the normalized formula). Symbolic plans answer
    /// without enumeration too, but by a different argument — test them with
    /// [`EvalPlan::is_symbolic`].
    pub fn is_certified(&self) -> bool {
        matches!(
            self,
            EvalPlan::CompiledNaive(_) | EvalPlan::CertifiedNaive(_) | EvalPlan::NormalizedNaive(_)
        )
    }

    /// Returns `true` iff dispatch was upgraded by normalization-based
    /// fragment widening.
    pub fn is_normalized(&self) -> bool {
        matches!(self, EvalPlan::NormalizedNaive(_))
    }

    /// Returns `true` for the PTIME symbolic path.
    pub fn is_symbolic(&self) -> bool {
        matches!(self, EvalPlan::Symbolic(_))
    }

    /// Returns `true` iff the plan executes on the compiled `nev-exec` pipeline.
    pub fn is_compiled(&self) -> bool {
        matches!(self, EvalPlan::CompiledNaive(_))
    }
}

/// The outcome of evaluating one prepared query on one instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Evaluation {
    /// The semantics used.
    pub semantics: Semantics,
    /// The plan the engine executed.
    pub plan: EvalPlan,
    /// The naïve answers `Q^C(D)`; for Boolean queries a singleton empty tuple
    /// encodes `true` and the empty set encodes `false`.
    pub naive: BTreeSet<Tuple>,
    /// The certain answers: equal to `naive` on the certified path, the bounded
    /// possible-world intersection otherwise.
    pub certain: BTreeSet<Tuple>,
    /// Number of possible worlds visited to produce this answer (`0` on the
    /// certified path).
    pub worlds_enumerated: usize,
    /// Whether the bounded oracle's world stream was cut off by
    /// [`WorldBounds::max_worlds`] *and* the verdict depended on exhausting it.
    /// A truncated answer is an over-approximation drawn from a world sample,
    /// not an exact oracle verdict. Early exits (a Boolean counter-world, an
    /// emptied k-ary intersection) are definitive regardless of the cap, and
    /// the certified and symbolic paths never enumerate, so those all report
    /// `false`.
    pub truncated: bool,
    /// Compiled-execution counters for this answer: rows scanned, hash probes,
    /// and the number of evaluations that fell back to the interpreter because
    /// the query has no compiled plan.
    pub exec: ExecStats,
    /// The per-request stage timeline (exec pass, symbolic probe, world
    /// enumeration, …), bounded by [`nev_obs::MAX_SPANS`]. Empty when tracing is
    /// disabled (`NEV_TRACE=0`) or the entry point did not record one. Like
    /// [`ExecTimings`], traces never participate in equality — two evaluations
    /// that computed the same answers compare equal whatever their timelines —
    /// so the determinism suites hold with tracing on or off.
    pub trace: Trace,
}

impl Evaluation {
    /// Returns `true` iff naïve evaluation agrees with the certain answers.
    pub fn agrees(&self) -> bool {
        self.naive == self.certain
    }

    /// Boolean decoding of the certain answers (`true` iff the empty tuple is
    /// certain). Meaningful for Boolean queries only.
    pub fn is_certainly_true(&self) -> bool {
        !self.certain.is_empty()
    }

    /// Returns `true` iff naïve evaluation produced an answer that is not certain.
    pub fn naive_overshoots(&self) -> bool {
        !self.naive.is_subset(&self.certain)
    }

    /// Returns `true` iff every naïve answer is certain but some certain answer is
    /// missed.
    pub fn naive_undershoots(&self) -> bool {
        self.naive.is_subset(&self.certain) && self.naive != self.certain
    }
}

/// The outcome of a batch evaluation: per-query results plus the enumeration
/// accounting that witnesses the single shared world pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchEvaluation {
    /// One evaluation per input query, in input order.
    pub results: Vec<Evaluation>,
    /// Number of world-enumeration passes over the instance: `0` when every query
    /// took the certified fast path, `1` otherwise — never more.
    pub enumeration_passes: usize,
    /// Total number of worlds visited across the batch.
    pub worlds_enumerated: usize,
    /// Whether the shared world pass was truncated by
    /// [`WorldBounds::max_worlds`] with unresolved queries still drawing on it
    /// (see [`Evaluation::truncated`]).
    pub truncated: bool,
    /// The batch-level stage timeline: one exec span covering the planning loop
    /// (naïve passes and symbolic probes) and one world-enumeration span for the
    /// shared oracle pass. Never part of equality (see [`Evaluation::trace`]).
    pub trace: Trace,
}

impl BatchEvaluation {
    /// Returns `true` iff naïve evaluation agreed with the certain answers on every
    /// query of the batch.
    pub fn all_agree(&self) -> bool {
        self.results.iter().all(Evaluation::agrees)
    }

    /// The batch's compiled-execution counters, aggregated across all results.
    pub fn exec_totals(&self) -> ExecStats {
        let mut totals = ExecStats::new();
        for r in &self.results {
            totals.merge(&r.exec);
        }
        totals
    }
}

/// The reusable query-evaluation engine: world-enumeration bounds plus the Figure 1
/// dispatch table.
///
/// ```
/// use nev_core::engine::CertainEngine;
/// use nev_core::Semantics;
/// use nev_incomplete::builder::x;
/// use nev_incomplete::inst;
///
/// // D0 = {(⊥,⊥′),(⊥′,⊥)} and the §2.4 query ∀x∃y D(x,y): naïvely true, certain
/// // under CWA (certified, no enumeration), refuted by enumeration under OWA.
/// let d0 = inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] };
/// let engine = CertainEngine::new();
/// let q = engine.prepare("forall u . exists v . D(u, v)")?;
/// assert_eq!(engine.certainly_true(&d0, Semantics::Cwa, &q)?, true);
/// assert_eq!(engine.certainly_true(&d0, Semantics::Owa, &q)?, false);
/// # Ok::<(), nev_core::engine::EngineError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct CertainEngine {
    bounds: WorldBounds,
    exec: ExecOptions,
}

impl CertainEngine {
    /// An engine with the default [`WorldBounds`].
    pub fn new() -> Self {
        CertainEngine::default()
    }

    /// An engine with explicit world-enumeration bounds.
    pub fn with_bounds(bounds: WorldBounds) -> Self {
        CertainEngine {
            bounds,
            exec: ExecOptions::default(),
        }
    }

    /// Attaches a shared worker pool: certified naïve passes dispatch scan and
    /// join morsels on it (see [`nev_exec::ExecOptions`]). Answers are
    /// byte-identical with or without a pool — only wall-clock changes.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.exec.pool = Some(pool);
        self
    }

    /// Overrides the full execution options (pool and morsel granularity).
    pub fn with_exec_options(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// The execution options certified naïve passes run under.
    pub fn exec_options(&self) -> &ExecOptions {
        &self.exec
    }

    /// The engine's base world-enumeration bounds (query constants are added per
    /// query at evaluation time).
    pub fn bounds(&self) -> &WorldBounds {
        &self.bounds
    }

    /// Parses and prepares a query (convenience for [`PreparedQuery::parse`]).
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, EngineError> {
        PreparedQuery::parse(text)
    }

    /// Chooses the evaluation plan for a query on an instance by consulting the
    /// machine-readable Figure 1: certified naïve evaluation exactly when the
    /// (semantics, fragment) cell carries a guarantee — unconditionally for `Works`
    /// cells, and after verifying the instance is a core for `WorksOverCores` cells.
    /// Certified cells route to the compiled `nev-exec` pipeline when the query has
    /// a plan, and to the interpreter otherwise.
    pub fn plan(&self, d: &Instance, semantics: Semantics, query: &PreparedQuery) -> EvalPlan {
        let cell = expectation(semantics, query.fragment());
        let executor = if query.compiles() {
            Executor::CompiledAlgebra
        } else {
            Executor::Interpreter
        };
        let certificate = |core_checked: bool| Certificate {
            semantics,
            fragment: query.fragment(),
            expectation: cell,
            core_checked,
            theorem: theorem_for(semantics),
            executor,
        };
        let certified = match cell {
            Expectation::Works => Some(certificate(false)),
            Expectation::WorksOverCores if is_core(d) => Some(certificate(true)),
            _ => None,
        };
        match certified {
            Some(cert) if query.compiles() => EvalPlan::CompiledNaive(cert),
            Some(cert) => EvalPlan::CertifiedNaive(cert),
            // The syntactic fragment carries no guarantee; when the
            // `nev-analyze` normal form classifies into a guaranteed fragment,
            // dispatch upgrades to one naïve pass over the normalized query.
            None => match self.normalized_certificate(d, semantics, query) {
                Some(cert) => EvalPlan::NormalizedNaive(cert),
                None => EvalPlan::BoundedEnumeration,
            },
        }
    }

    /// The fragment-widening certificate, when the query's *normal form* lands
    /// in a Figure 1 cell with a guarantee the original fragment lacks. The
    /// certificate records the normalized fragment; its evidence — the rewrite
    /// trace — re-checks via [`PreparedQuery::check_normalization`].
    fn normalized_certificate(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
    ) -> Option<Certificate> {
        if !query.analysis().widened() {
            return None;
        }
        let fragment = query.normalized_fragment();
        let cell = expectation(semantics, fragment);
        let executor = if query.normalized_compiles() {
            Executor::CompiledAlgebra
        } else {
            Executor::Interpreter
        };
        let certificate = |core_checked: bool| Certificate {
            semantics,
            fragment,
            expectation: cell,
            core_checked,
            theorem: theorem_for(semantics),
            executor,
        };
        match cell {
            Expectation::Works => Some(certificate(false)),
            Expectation::WorksOverCores if is_core(d) => Some(certificate(true)),
            _ => None,
        }
    }

    /// Evaluates a query with plan dispatch: certified naïve evaluation when
    /// Figure 1 applies (no world enumeration; compiled when the query has a
    /// plan); on non-guaranteed cells the PTIME symbolic ladder — CWA
    /// conditional tables, then the Kleene/naïve sandwich — and only when the
    /// sandwich stays open the bounded world-enumeration oracle.
    pub fn evaluate(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
    ) -> Evaluation {
        let recorder = TraceRecorder::new();
        let mut eval = self.evaluate_traced(d, semantics, query, &recorder);
        eval.trace = recorder.finish();
        eval
    }

    /// [`CertainEngine::evaluate`] recording its stage timeline into a
    /// caller-owned [`TraceRecorder`] — the serve layer uses this to splice the
    /// engine's spans into a wider per-request trace (plan-cache probe, oracle
    /// scheduling, …). The returned evaluation's own `trace` field is left
    /// empty; the caller finishes the recorder when the request completes.
    pub fn evaluate_traced(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
        recorder: &TraceRecorder,
    ) -> Evaluation {
        match self.plan(d, semantics, query) {
            plan @ (EvalPlan::CompiledNaive(_) | EvalPlan::CertifiedNaive(_)) => {
                let (naive, exec) = self.naive_answers_traced(d, query, recorder);
                Evaluation {
                    semantics,
                    plan,
                    certain: naive.clone(),
                    naive,
                    worlds_enumerated: 0,
                    truncated: false,
                    exec,
                    trace: Trace::default(),
                }
            }
            plan @ EvalPlan::NormalizedNaive(_) => {
                // One naïve pass over the *normalized* query. Every rewrite in
                // the trace preserves naïve evaluation on arbitrary instances
                // (nulls included), so this is also the original query's naïve
                // answer — and the widened cell's guarantee makes it certain.
                let (naive, exec) = self.normalized_naive_answers_traced(d, query, recorder);
                Evaluation {
                    semantics,
                    plan,
                    certain: naive.clone(),
                    naive,
                    worlds_enumerated: 0,
                    truncated: false,
                    exec,
                    trace: Trace::default(),
                }
            }
            EvalPlan::Symbolic(_) | EvalPlan::BoundedEnumeration => {
                let (naive, mut exec) = self.naive_answers_traced(d, query, recorder);
                let symbolic_span = recorder.span(Stage::Symbolic);
                let symbolic = self.symbolic_with_naive(d, semantics, query, &naive, &exec);
                drop(symbolic_span);
                if let Some(eval) = symbolic {
                    return eval;
                }
                let oracle_span = recorder.span(Stage::OracleWorlds);
                let (certain, worlds_enumerated, truncated) =
                    self.bounded_certain(d, semantics, query, &mut exec);
                drop(oracle_span);
                Evaluation {
                    semantics,
                    plan: EvalPlan::BoundedEnumeration,
                    naive,
                    certain,
                    worlds_enumerated,
                    truncated,
                    exec,
                    trace: Trace::default(),
                }
            }
        }
    }

    /// Attempts the PTIME exact symbolic techniques on a non-guaranteed cell.
    /// Returns `Some` iff one of them *certified* the certain answers — with
    /// `worlds_enumerated == 0` and an [`EvalPlan::Symbolic`] plan — and `None`
    /// when the query should fall back to the bounded oracle. Certified
    /// Figure 1 cells also return `None`: naïve evaluation already answers
    /// them exactly without any symbolic machinery.
    pub fn evaluate_symbolic(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
    ) -> Option<Evaluation> {
        if self.plan(d, semantics, query).is_certified() {
            return None;
        }
        let (naive, exec) = naive_answers(d, query, &self.exec);
        self.symbolic_with_naive(d, semantics, query, &naive, &exec)
    }

    /// The unconditional Kleene under-approximation: every returned tuple is a
    /// certain answer under any semantics (sound for full FO), but certain
    /// tuples may be missing — the plan carries
    /// [`SymbolicMode::UnderApprox`] to say so. PTIME, zero worlds enumerated.
    pub fn symbolic_under_approximation(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
    ) -> Evaluation {
        let (naive, exec) = naive_answers(d, query, &self.exec);
        let under = under_approximation(d, query.query(), symbolic_profile(semantics));
        Evaluation {
            semantics,
            plan: EvalPlan::Symbolic(SymbolicCertificate {
                semantics,
                fragment: query.fragment(),
                mode: SymbolicMode::UnderApprox,
                technique: SymbolicTechnique::Kleene,
                core_checked: false,
            }),
            naive,
            certain: under,
            worlds_enumerated: 0,
            truncated: false,
            exec,
            trace: Trace::default(),
        }
    }

    /// Like [`CertainEngine::plan`], but additionally runs the PTIME symbolic
    /// probe on non-guaranteed cells: when conditional tables or the sandwich
    /// would certify the answer, returns the [`EvalPlan::Symbolic`] plan
    /// [`CertainEngine::evaluate`] would report. Costs up to one naïve pass
    /// plus the symbolic evaluation — still polynomial, never a world.
    pub fn plan_with_symbolic(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
    ) -> EvalPlan {
        match self.plan(d, semantics, query) {
            EvalPlan::Symbolic(_) | EvalPlan::BoundedEnumeration => {
                let (naive, exec) = naive_answers(d, query, &self.exec);
                match self.symbolic_with_naive(d, semantics, query, &naive, &exec) {
                    Some(eval) => eval.plan,
                    None => EvalPlan::BoundedEnumeration,
                }
            }
            plan => plan,
        }
    }

    /// The symbolic ladder, reusing an already-computed naïve pass: (1) under
    /// CWA, conditional tables — exact whenever the surviving conditions are
    /// equality-only; (2) the sandwich — the Kleene under-approximation `U`
    /// satisfies `U ⊆ certain`, and `certain ⊆ naive` whenever the
    /// fresh-injective image of `d` is a possible world (always, except under
    /// the minimal semantics off cores), so `U == naive` pins the certain
    /// answers exactly. Returns `None` when neither technique certifies.
    fn symbolic_with_naive(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
        naive: &BTreeSet<Tuple>,
        exec: &ExecStats,
    ) -> Option<Evaluation> {
        let certificate = |mode, technique, core_checked| SymbolicCertificate {
            semantics,
            fragment: query.fragment(),
            mode,
            technique,
            core_checked,
        };
        if semantics == Semantics::Cwa {
            let report = cwa_certain_answers(d, query.query());
            if report.exact {
                return Some(Evaluation {
                    semantics,
                    plan: EvalPlan::Symbolic(certificate(
                        SymbolicMode::Exact,
                        SymbolicTechnique::ConditionalTables,
                        false,
                    )),
                    naive: naive.clone(),
                    certain: report.answers,
                    worlds_enumerated: 0,
                    truncated: false,
                    exec: *exec,
                    trace: Trace::default(),
                });
            }
        }
        let core_checked = semantics.is_minimal() && is_core(d);
        if !semantics.is_minimal() || core_checked {
            let under = under_approximation(d, query.query(), symbolic_profile(semantics));
            // Tighten the sandwich upper bound before comparing: a certain
            // answer must hold in every world, so it can contain no nulls,
            // and `under ⊆ certain ⊆ complete(naive)`. When null-flow
            // analysis proves every answer column null-safe the filter is a
            // no-op and we skip the extra pass.
            let candidates = if query.analysis().nullability().all_null_safe() {
                naive.clone()
            } else {
                complete_candidates(naive)
            };
            if under == candidates {
                return Some(Evaluation {
                    semantics,
                    plan: EvalPlan::Symbolic(certificate(
                        SymbolicMode::Exact,
                        SymbolicTechnique::Sandwich,
                        core_checked,
                    )),
                    naive: naive.clone(),
                    certain: candidates,
                    worlds_enumerated: 0,
                    truncated: false,
                    exec: *exec,
                    trace: Trace::default(),
                });
            }
        }
        None
    }

    /// Decides a Boolean query with plan dispatch. Returns
    /// [`EngineError::NotBoolean`] for k-ary queries instead of panicking.
    pub fn certainly_true(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
    ) -> Result<bool, EngineError> {
        if !query.is_boolean() {
            return Err(EngineError::NotBoolean {
                arity: query.arity(),
            });
        }
        Ok(self.evaluate(d, semantics, query).is_certainly_true())
    }

    /// The naïve answers of one prepared query under **this engine's** execution
    /// options — the single certified pass, morsel-parallel when the engine
    /// carries a shared pool. Prefer this over [`PreparedQuery::naive_answers`]
    /// when an engine is at hand, so the configured pool is actually used.
    pub fn naive_answers(
        &self,
        d: &Instance,
        query: &PreparedQuery,
    ) -> (BTreeSet<Tuple>, ExecStats) {
        naive_answers(d, query, &self.exec)
    }

    /// [`CertainEngine::naive_answers`] wrapped in a [`Stage::Exec`] span on the
    /// caller's recorder, with the executor's scan / join-build / join-probe
    /// phase timings replayed as child spans. A no-op recorder (tracing
    /// disabled) records nothing and adds no timing calls.
    pub fn naive_answers_traced(
        &self,
        d: &Instance,
        query: &PreparedQuery,
        recorder: &TraceRecorder,
    ) -> (BTreeSet<Tuple>, ExecStats) {
        let span = recorder.span(Stage::Exec);
        let (naive, exec, timings) = naive_answers_timed(d, query, &self.exec);
        if recorder.is_enabled() {
            if timings.scan_us > 0 {
                recorder.leaf(Stage::Scan, timings.scan_us);
            }
            if timings.join_build_us > 0 {
                recorder.leaf(Stage::JoinBuild, timings.join_build_us);
            }
            if timings.join_probe_us > 0 {
                recorder.leaf(Stage::JoinProbe, timings.join_probe_us);
            }
        }
        drop(span);
        (naive, exec)
    }

    /// The naïve answers of the query's `nev-analyze` *normal form* — the
    /// single pass behind [`EvalPlan::NormalizedNaive`] — wrapped in a
    /// [`Stage::Exec`] span like [`CertainEngine::naive_answers_traced`].
    pub fn normalized_naive_answers_traced(
        &self,
        d: &Instance,
        query: &PreparedQuery,
        recorder: &TraceRecorder,
    ) -> (BTreeSet<Tuple>, ExecStats) {
        let span = recorder.span(Stage::Exec);
        let (naive, exec, timings) = normalized_naive_answers_timed(d, query, &self.exec);
        if recorder.is_enabled() {
            if timings.scan_us > 0 {
                recorder.leaf(Stage::Scan, timings.scan_us);
            }
            if timings.join_build_us > 0 {
                recorder.leaf(Stage::JoinBuild, timings.join_build_us);
            }
            if timings.join_probe_us > 0 {
                recorder.leaf(Stage::JoinProbe, timings.join_probe_us);
            }
        }
        drop(span);
        (naive, exec)
    }

    /// [`CertainEngine::naive_answers`] with per-operator profiling — the
    /// engine half of the wire `PROFILE` command. When the query has a
    /// compiled plan, the pass runs on `nev-exec` with an [`OpProfile`]
    /// recording inclusive wall time, output rows and the cost model's
    /// estimate for every executed operator (answers and counters are
    /// identical to the unprofiled pass). Interpreter fallbacks have no
    /// operator tree to attribute and return `None`.
    pub fn naive_answers_profiled(
        &self,
        d: &Instance,
        query: &PreparedQuery,
    ) -> (BTreeSet<Tuple>, ExecStats, Option<OpProfile>) {
        match query.compiled() {
            Some(compiled) => {
                let (out, profile) = compiled.execute_naive_profiled(d, &self.exec);
                (out.answers, out.stats, Some(profile))
            }
            None => {
                let (naive, exec) = naive_answers(d, query, &self.exec);
                (naive, exec, None)
            }
        }
    }

    /// Runs the ground-truth oracle unconditionally — naïve evaluation **and** the
    /// bounded possible-world intersection — regardless of what Figure 1 guarantees.
    ///
    /// This is the validation entry point: the Figure 1 harness uses it to *check*
    /// the theorems that [`CertainEngine::evaluate`] *assumes*.
    pub fn compare(&self, d: &Instance, semantics: Semantics, query: &PreparedQuery) -> Evaluation {
        let recorder = TraceRecorder::new();
        let (naive, mut exec) = self.naive_answers_traced(d, query, &recorder);
        let oracle_span = recorder.span(Stage::OracleWorlds);
        let (certain, worlds_enumerated, truncated) =
            self.bounded_certain(d, semantics, query, &mut exec);
        drop(oracle_span);
        Evaluation {
            semantics,
            plan: EvalPlan::BoundedEnumeration,
            naive,
            certain,
            worlds_enumerated,
            truncated,
            exec,
            trace: recorder.finish(),
        }
    }

    /// The certain answers over the bounded world enumeration (the oracle side of
    /// [`CertainEngine::compare`], without the naïve pass). For Boolean queries the
    /// singleton-empty-tuple encoding is used.
    pub fn certain_answers(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
    ) -> BTreeSet<Tuple> {
        self.bounded_certain(d, semantics, query, &mut ExecStats::new())
            .0
    }

    /// Evaluates a batch of prepared queries on one instance, enumerating the
    /// instance's possible worlds **at most once**: queries whose Figure 1 cell is
    /// guaranteed take the certified naïve path, and all remaining per-query
    /// certain-answer intersections are folded in a single shared world pass.
    ///
    /// The shared pass runs over bounds extended with the **union** of the pending
    /// queries' constants, so each such query may be intersected over a different
    /// world sample than a solo [`CertainEngine::evaluate`] with its own constants
    /// would visit. Every visited world is a genuine possible world, so the batched
    /// result — like every bounded oracle here — remains an over-approximation of
    /// the true certain answers. When [`WorldBounds::max_worlds`] does not truncate
    /// the enumeration, the shared pass visits a *superset* of each solo pass's
    /// worlds and the batched answers are therefore at least as tight; under
    /// truncation the two samples may differ in either direction. Batched and solo
    /// answers coincide whenever the batch's queries mention the same constants (in
    /// particular, no constants at all).
    ///
    /// Queries are taken by [`std::borrow::Borrow`], so `&[PreparedQuery]` and
    /// `&[Arc<PreparedQuery>]` both work — cached plans need not be cloned to be
    /// batched.
    pub fn evaluate_all<Q: std::borrow::Borrow<PreparedQuery>>(
        &self,
        d: &Instance,
        semantics: Semantics,
        queries: &[Q],
    ) -> BatchEvaluation {
        struct PendingQuery {
            index: usize,
            allowed: BTreeSet<Constant>,
            naive: BTreeSet<Tuple>,
            acc: Option<BTreeSet<Tuple>>,
            resolved: bool,
            exec: ExecStats,
        }

        let recorder = TraceRecorder::new();
        let mut results: Vec<Option<Evaluation>> = (0..queries.len()).map(|_| None).collect();
        let mut pending: Vec<PendingQuery> = Vec::new();
        let mut merged = self.bounds.clone();
        let planning_span = recorder.span(Stage::Exec);
        for (index, query) in queries.iter().map(std::borrow::Borrow::borrow).enumerate() {
            match self.plan(d, semantics, query) {
                plan @ (EvalPlan::CompiledNaive(_)
                | EvalPlan::CertifiedNaive(_)
                | EvalPlan::NormalizedNaive(_)) => {
                    let (naive, exec, _) = if plan.is_normalized() {
                        normalized_naive_answers_timed(d, query, &self.exec)
                    } else {
                        naive_answers_timed(d, query, &self.exec)
                    };
                    results[index] = Some(Evaluation {
                        semantics,
                        plan,
                        certain: naive.clone(),
                        naive,
                        worlds_enumerated: 0,
                        truncated: false,
                        exec,
                        trace: Trace::default(),
                    });
                }
                EvalPlan::Symbolic(_) | EvalPlan::BoundedEnumeration => {
                    // The naïve pass is needed either way — by the symbolic
                    // sandwich now or as the pending query's over-approximation
                    // report later — so it is computed once, here.
                    let (naive, exec) = naive_answers(d, query, &self.exec);
                    if let Some(eval) = self.symbolic_with_naive(d, semantics, query, &naive, &exec)
                    {
                        results[index] = Some(eval);
                        continue;
                    }
                    merged
                        .extra_constants
                        .extend(query.constants().iter().cloned());
                    let mut allowed = d.constants();
                    allowed.extend(query.constants().iter().cloned());
                    pending.push(PendingQuery {
                        index,
                        allowed,
                        naive,
                        acc: None,
                        resolved: false,
                        exec,
                    });
                }
            }
        }
        drop(planning_span);

        let enumeration_passes = usize::from(!pending.is_empty());
        let mut worlds_enumerated = 0usize;
        let mut batch_truncated = false;
        if !pending.is_empty() {
            let oracle_span = recorder.span(Stage::OracleWorlds);
            let mut worlds = semantics.worlds(d, &merged);
            for world in worlds.by_ref() {
                worlds_enumerated += 1;
                let mut all_resolved = true;
                for p in &mut pending {
                    if p.resolved {
                        continue;
                    }
                    let query = queries[p.index].borrow();
                    let answers = answers_in_world(&world, query, &p.allowed, &mut p.exec);
                    let next: BTreeSet<Tuple> = match p.acc.take() {
                        None => answers,
                        Some(prev) => prev.intersection(&answers).cloned().collect(),
                    };
                    p.resolved = next.is_empty();
                    p.acc = Some(next);
                    all_resolved &= p.resolved;
                }
                if all_resolved {
                    break;
                }
            }
            drop(oracle_span);
            // Queries that emptied their intersection exited definitively; the
            // rest drew on the whole stream, so a capped stream taints them.
            let stream_truncated = worlds.truncated();
            for p in pending {
                let truncated = !p.resolved && stream_truncated;
                batch_truncated |= truncated;
                results[p.index] = Some(Evaluation {
                    semantics,
                    plan: EvalPlan::BoundedEnumeration,
                    naive: p.naive,
                    certain: p.acc.unwrap_or_default(),
                    worlds_enumerated,
                    truncated,
                    exec: p.exec,
                    trace: Trace::default(),
                });
            }
        }

        BatchEvaluation {
            results: results
                .into_iter()
                .map(|r| r.expect("every query was planned"))
                .collect(),
            enumeration_passes,
            worlds_enumerated,
            truncated: batch_truncated,
            trace: recorder.finish(),
        }
    }

    /// The bounded oracle: intersect the query's answers over the streamed worlds,
    /// exiting early when a Boolean query meets a counter-world or a k-ary
    /// intersection becomes empty. Per-world evaluations run on the compiled plan
    /// when one exists; otherwise each world's evaluation is one interpreter
    /// fallback in `exec` — `fallbacks` uniformly counts interpreter-routed
    /// evaluation passes, whichever entry point triggered them. Per-world
    /// executions stay sequential even when the engine carries a pool: worlds
    /// are small and freshly interned, so the profitable parallel axis is
    /// *across* worlds (the serve layer's chunked oracle), not within one.
    ///
    /// The third component reports truncation: `true` iff the world stream was
    /// cut off by [`WorldBounds::max_worlds`] *and* the verdict depended on
    /// exhausting it. Early exits — a Boolean counter-world, an emptied k-ary
    /// intersection — are definitive, so they report `false` even when more
    /// worlds existed beyond the cap.
    fn bounded_certain(
        &self,
        d: &Instance,
        semantics: Semantics,
        query: &PreparedQuery,
        exec: &mut ExecStats,
    ) -> (BTreeSet<Tuple>, usize, bool) {
        let bounds = query.bounds(&self.bounds);
        let mut visited = 0usize;
        if query.is_boolean() {
            let mut worlds = semantics.worlds(d, &bounds);
            let mut certain = true;
            for world in worlds.by_ref() {
                visited += 1;
                let holds = match query.compiled() {
                    Some(compiled) => {
                        let out = compiled.execute(&world);
                        exec.merge(&out.stats);
                        !out.answers.is_empty()
                    }
                    None => {
                        exec.fallbacks += 1;
                        evaluate_boolean(&world, query.query().formula())
                    }
                };
                if !holds {
                    certain = false;
                    break;
                }
            }
            // A counter-world is a definitive "not certain"; a "certain" verdict
            // rests on having seen *every* world, so a capped stream taints it.
            let truncated = certain && worlds.truncated();
            (encode_boolean(certain), visited, truncated)
        } else {
            // Certain answers of a generic query can only mention constants of the
            // instance or the query; restricting to them keeps the enumeration's
            // internal fresh constants out of the result.
            let mut allowed = d.constants();
            allowed.extend(query.constants().iter().cloned());
            let mut worlds = semantics.worlds(d, &bounds);
            let mut certain: Option<BTreeSet<Tuple>> = None;
            let mut emptied = false;
            for world in worlds.by_ref() {
                visited += 1;
                let answers = answers_in_world(&world, query, &allowed, exec);
                let next: BTreeSet<Tuple> = match certain.take() {
                    None => answers,
                    Some(prev) => prev.intersection(&answers).cloned().collect(),
                };
                emptied = next.is_empty();
                certain = Some(next);
                if emptied {
                    break;
                }
            }
            // An emptied intersection can only shrink further: definitive. A
            // non-empty one is an over-approximation if worlds were suppressed.
            let truncated = !emptied && worlds.truncated();
            (certain.unwrap_or_default(), visited, truncated)
        }
    }
}

/// The naïve answers `Q^C(D)` with the Boolean `{()} / ∅` encoding, executed by the
/// compiled plan when one exists (one interpreter fallback is recorded otherwise).
/// The compiled pass runs under `options` — morsel-parallel when a pool is
/// attached, plain sequential otherwise.
fn naive_answers(
    d: &Instance,
    query: &PreparedQuery,
    options: &ExecOptions,
) -> (BTreeSet<Tuple>, ExecStats) {
    let (answers, stats, _) = naive_answers_timed(d, query, options);
    (answers, stats)
}

/// [`naive_answers`] keeping the executor's per-phase wall-clock telemetry
/// (all-zero for interpreter fallbacks and under `NEV_TRACE=0`).
fn naive_answers_timed(
    d: &Instance,
    query: &PreparedQuery,
    options: &ExecOptions,
) -> (BTreeSet<Tuple>, ExecStats, ExecTimings) {
    match query.compiled() {
        Some(compiled) => {
            let out = compiled.execute_naive_with(d, options);
            (out.answers, out.stats, out.timings)
        }
        None => (
            naive_eval_query(d, query.query()),
            ExecStats::fallback(),
            ExecTimings::default(),
        ),
    }
}

/// The naïve answers of the query's normal form (the [`EvalPlan::NormalizedNaive`]
/// pass): the normal form's own compiled plan when it has one, the interpreter on
/// the normalized AST otherwise. When normalization changed nothing this is
/// exactly [`naive_answers_timed`] on the original.
fn normalized_naive_answers_timed(
    d: &Instance,
    query: &PreparedQuery,
    options: &ExecOptions,
) -> (BTreeSet<Tuple>, ExecStats, ExecTimings) {
    if !query.normalization_changed() {
        return naive_answers_timed(d, query, options);
    }
    match query.normalized_compiled() {
        Some(compiled) => {
            let out = compiled.execute_naive_with(d, options);
            (out.answers, out.stats, out.timings)
        }
        None => (
            naive_eval_query(d, query.analysis().normalized()),
            ExecStats::fallback(),
            ExecTimings::default(),
        ),
    }
}

/// The query's answers in one complete world, restricted to the allowed constants
/// (Boolean queries use the `{()} / ∅` encoding). Runs on the compiled plan when
/// one exists, merging its counters into `exec`; an interpreter evaluation counts
/// as one fallback.
fn answers_in_world(
    world: &Instance,
    query: &PreparedQuery,
    allowed: &BTreeSet<Constant>,
    exec: &mut ExecStats,
) -> BTreeSet<Tuple> {
    let raw = match query.compiled() {
        Some(compiled) => {
            let out = compiled.execute(world);
            exec.merge(&out.stats);
            out.answers
        }
        None => {
            exec.fallbacks += 1;
            if query.is_boolean() {
                return encode_boolean(evaluate_boolean(world, query.query().formula()));
            }
            evaluate_query(world, query.query())
        }
    };
    raw.into_iter()
        .filter(|t| t.constants().all(|c| allowed.contains(c)) && t.is_complete())
        .collect()
}

/// The `{()} / ∅` Boolean answer encoding used throughout the engine: `true` is the
/// singleton empty tuple, `false` the empty set.
pub fn boolean_answers(value: bool) -> BTreeSet<Tuple> {
    encode_boolean(value)
}

fn encode_boolean(value: bool) -> BTreeSet<Tuple> {
    if value {
        [Tuple::new(Vec::new())].into_iter().collect()
    } else {
        BTreeSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::FRAGMENTS;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    fn d0() -> Instance {
        inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] }
    }

    #[test]
    fn prepare_caches_fragment_and_constants() {
        let engine = CertainEngine::new();
        let q = engine
            .prepare("exists u . R(u) & u = 5")
            .expect("valid query");
        assert_eq!(q.fragment(), Fragment::ExistentialPositive);
        assert_eq!(q.constants().len(), 1);
        assert!(q.is_boolean());
        let extended = q.bounds(&WorldBounds::default());
        assert_eq!(extended.extra_constants.len(), 1);
        assert!(q.to_string().contains("∃Pos"));
    }

    #[test]
    fn prepare_reports_parse_and_query_errors() {
        let engine = CertainEngine::new();
        let parse_err = engine.prepare("exists u . R(u").unwrap_err();
        assert!(matches!(parse_err, EngineError::Parse(_)));
        assert!(parse_err.to_string().contains("parse error"));
        // Free-variable problems surface through the parser's error path.
        let query_err = engine.prepare("Q(a) :- R(a, b)").unwrap_err();
        assert!(query_err.to_string().contains("not listed"));
        // Building directly from an ill-formed Query is reported as EngineError::Query.
        let raw = Query::new(["a"], nev_logic::parse_formula("R(a, b)").unwrap());
        assert!(matches!(
            raw.map_err(EngineError::from),
            Err(EngineError::Query(_))
        ));
    }

    #[test]
    fn plan_follows_figure_1_exactly() {
        // On a non-core instance the plan must be certified exactly on Works cells.
        let engine = CertainEngine::new();
        let d = inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] };
        assert!(!nev_hom::is_core(&d));
        for semantics in Semantics::ALL {
            for fragment in FRAGMENTS {
                let query = match fragment {
                    Fragment::ExistentialPositive => "exists u v . D(u, v)",
                    Fragment::Positive => "forall u . exists v . D(u, v)",
                    Fragment::PositiveGuarded => "forall u v . D(u, v) -> exists w . D(v, w)",
                    // An unguarded ∃ wrapping a Boolean guard is outside Pos+∀G, so
                    // classify() cannot tie-break this one away from ∃Pos+∀G_bool.
                    Fragment::ExistentialPositiveBooleanGuarded => {
                        "exists u . D(u, u) & (forall v w . D(v, w) -> D(w, v))"
                    }
                    Fragment::FullFirstOrder => "exists u . !D(u, u)",
                };
                let prepared = engine.prepare(query).expect("valid query");
                assert_eq!(prepared.fragment(), fragment, "{query}");
                let plan = engine.plan(&d, semantics, &prepared);
                let expected = expectation(semantics, fragment) == Expectation::Works;
                assert_eq!(plan.is_certified(), expected, "{semantics} × {fragment}");
                if let Some(cert) = plan.certificate() {
                    assert!(cert.check(), "{semantics} × {fragment}");
                    assert!(!cert.theorem.is_empty());
                }
            }
        }
    }

    #[test]
    fn works_over_cores_cells_certify_on_cores_only() {
        let engine = CertainEngine::new();
        let q = engine.prepare("forall u . D(u, u)").expect("valid query");
        assert_eq!(q.fragment(), Fragment::Positive);
        // Off cores: bounded enumeration.
        let d = inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] };
        assert!(!engine.plan(&d, Semantics::MinimalCwa, &q).is_certified());
        // On the core: certified with the core side condition recorded.
        let core = inst! { "D" => [[x(1), x(1)]] };
        let plan = engine.plan(&core, Semantics::MinimalCwa, &q);
        let cert = plan.certificate().expect("certified on cores");
        assert!(cert.core_checked);
        assert_eq!(cert.expectation, Expectation::WorksOverCores);
        assert!(cert.check());
        assert!(cert.to_string().contains("core"));
    }

    #[test]
    fn forged_certificates_fail_the_check() {
        let forged = Certificate {
            semantics: Semantics::Owa,
            fragment: Fragment::FullFirstOrder,
            expectation: Expectation::Works,
            core_checked: false,
            theorem: "made up",
            executor: Executor::Interpreter,
        };
        assert!(!forged.check());
        let missing_core_check = Certificate {
            semantics: Semantics::MinimalCwa,
            fragment: Fragment::PositiveGuarded,
            expectation: Expectation::WorksOverCores,
            core_checked: false,
            theorem: theorem_for(Semantics::MinimalCwa),
            executor: Executor::CompiledAlgebra,
        };
        assert!(!missing_core_check.check());
    }

    #[test]
    fn certified_path_matches_the_oracle_on_the_intro_example() {
        let engine = CertainEngine::new();
        let d = inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        };
        let q = engine
            .prepare("Q(x, y) :- exists z . R(x, z) & S(z, y)")
            .expect("valid query");
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            let fast = engine.evaluate(&d, semantics, &q);
            let oracle = engine.compare(&d, semantics, &q);
            assert!(fast.plan.is_certified(), "{semantics}");
            assert_eq!(fast.worlds_enumerated, 0, "{semantics}");
            assert!(oracle.worlds_enumerated > 0, "{semantics}");
            assert_eq!(fast.certain, oracle.certain, "{semantics}");
            assert!(oracle.agrees(), "{semantics}");
        }
    }

    #[test]
    fn certified_cells_route_through_the_compiled_pipeline() {
        let engine = CertainEngine::new();
        let d = inst! {
            "R" => [[c(1), x(1)], [x(2), x(3)]],
            "S" => [[x(1), c(4)], [x(3), c(5)]],
        };
        let q = engine
            .prepare("Q(x, y) :- exists z . R(x, z) & S(z, y)")
            .expect("valid query");
        assert!(q.compiles());
        let eval = engine.evaluate(&d, Semantics::Owa, &q);
        assert!(eval.plan.is_compiled());
        assert!(eval.plan.is_certified());
        assert_eq!(eval.exec.fallbacks, 0);
        assert!(eval.exec.hash_probes > 0, "{}", eval.exec);
        let cert = eval.plan.certificate().expect("certified");
        assert_eq!(cert.executor, Executor::CompiledAlgebra);
        assert!(cert.to_string().contains("compiled algebra"));
        assert!(cert.check());
    }

    #[test]
    fn compiler_rejected_queries_fall_back_to_the_interpreter() {
        let engine = CertainEngine::new();
        // A Pos query whose ∀ block needs a 4-column active-domain complement: the
        // compiler rejects it, but Pos × WCWA is still a Works cell — the engine
        // must answer via the interpreter, record the fallback, and stay correct.
        let q = engine
            .prepare("forall u v w t . R(u, v) & R(w, t)")
            .expect("valid query");
        assert_eq!(q.fragment(), Fragment::Positive);
        assert!(!q.compiles());
        assert!(q.compiled().is_none());
        let d = inst! { "R" => [[c(1), c(1)]] };
        let eval = engine.evaluate(&d, Semantics::Wcwa, &q);
        assert!(eval.plan.is_certified());
        assert!(!eval.plan.is_compiled());
        assert!(eval.exec.fallbacks > 0);
        let oracle = engine.compare(&d, Semantics::Wcwa, &q);
        assert_eq!(eval.certain, oracle.certain);
        assert!(
            oracle.exec.fallbacks > 0,
            "oracle world passes fell back too"
        );
        let cert = eval.plan.certificate().expect("certified");
        assert_eq!(cert.executor, Executor::Interpreter);
        assert!(cert.to_string().contains("interpreter"));
    }

    #[test]
    fn bounded_oracle_worlds_run_on_the_compiled_plan() {
        let engine = CertainEngine::new();
        // FO under OWA: no certificate, but the 1-column complement compiles, so
        // every per-world evaluation uses the executor (no fallbacks).
        let q = engine.prepare("exists u . !D(u, u)").expect("valid query");
        assert!(q.compiles());
        let eval = engine.evaluate(&d0(), Semantics::Owa, &q);
        assert_eq!(eval.plan, EvalPlan::BoundedEnumeration);
        assert!(eval.worlds_enumerated > 0);
        assert_eq!(eval.exec.fallbacks, 0);
        assert!(eval.exec.rows_scanned > 0, "{}", eval.exec);
    }

    #[test]
    fn bounded_plan_detects_the_owa_counterexample() {
        let engine = CertainEngine::new();
        let q = engine
            .prepare("forall u . exists v . D(u, v)")
            .expect("valid query");
        let eval = engine.evaluate(&d0(), Semantics::Owa, &q);
        assert_eq!(eval.plan, EvalPlan::BoundedEnumeration);
        assert!(eval.worlds_enumerated > 0);
        assert!(!eval.agrees());
        assert!(eval.naive_overshoots());
        assert!(!eval.naive_undershoots());
        assert!(!eval.is_certainly_true());
    }

    #[test]
    fn certainly_true_replaces_the_boolean_panic_with_an_error() {
        let engine = CertainEngine::new();
        let kary = engine.prepare("Q(u) :- R(u)").expect("valid query");
        let err = engine
            .certainly_true(&inst! { "R" => [[c(1)]] }, Semantics::Cwa, &kary)
            .unwrap_err();
        assert_eq!(err, EngineError::NotBoolean { arity: 1 });
        assert!(err.to_string().contains("arity 1"));
    }

    #[test]
    fn batch_evaluation_enumerates_at_most_once() {
        let engine = CertainEngine::new();
        let queries = [
            // ∃Pos: certified under OWA, answered without any enumeration.
            engine
                .prepare("exists u v . D(u, v) & D(v, u)")
                .expect("valid query"),
            // Pos and FO: both need the bounded oracle under OWA.
            engine
                .prepare("forall u . exists v . D(u, v)")
                .expect("valid query"),
            engine.prepare("exists u . !D(u, u)").expect("valid query"),
        ];
        let batch = engine.evaluate_all(&d0(), Semantics::Owa, &queries);
        assert_eq!(batch.results.len(), 3);
        assert_eq!(batch.enumeration_passes, 1);
        assert!(batch.worlds_enumerated > 0);
        assert!(batch.results[0].plan.is_certified());
        assert_eq!(batch.results[0].worlds_enumerated, 0);
        // The shared pass must reproduce the per-query oracle answers (the queries
        // mention no constants, so the merged bounds equal the per-query bounds).
        for (i, query) in queries.iter().enumerate().skip(1) {
            let solo = engine.compare(&d0(), Semantics::Owa, query);
            assert_eq!(batch.results[i].certain, solo.certain, "query {i}");
        }
        // The single shared pass visits no more worlds than the two solo oracles.
        let solo_total: usize = queries[1..]
            .iter()
            .map(|q| engine.compare(&d0(), Semantics::Owa, q).worlds_enumerated)
            .sum();
        assert!(batch.worlds_enumerated <= solo_total);
    }

    #[test]
    fn all_certified_batch_skips_enumeration_entirely() {
        let engine = CertainEngine::new();
        let queries = [
            engine.prepare("exists u v . D(u, v)").expect("valid query"),
            engine
                .prepare("exists u . D(u, u) | exists v w . D(v, w) & D(w, v)")
                .expect("valid query"),
        ];
        let batch = engine.evaluate_all(&d0(), Semantics::Cwa, &queries);
        assert_eq!(batch.enumeration_passes, 0);
        assert_eq!(batch.worlds_enumerated, 0);
        assert!(batch.all_agree());
    }

    #[test]
    fn prepared_queries_explain_both_plans() {
        let engine = CertainEngine::new();
        let q = engine
            .prepare("Q(x, y) :- exists z . R(x, z) & S(z, y)")
            .expect("valid query");
        let explain = q.explain().expect("the join chain compiles");
        assert!(explain.contains("HashJoin"), "{explain}");
        // Compiler-rejected shapes have no plan to explain.
        let rejected = engine
            .prepare("forall u v w t . R(u, v) & R(w, t)")
            .expect("valid query");
        assert_eq!(rejected.explain(), None);
        // An explicit config pins the unoptimised lowering as a baseline: same
        // answers, rules_fired == 0.
        let query = parse_query("Q(u) :- exists v . R(u, v) & (S(u) | !T(v))").expect("valid");
        let optimised = PreparedQuery::new(query.clone());
        let baseline = PreparedQuery::with_compiler_config(
            query,
            &CompilerConfig {
                optimize: false,
                ..CompilerConfig::default()
            },
        );
        let plan = optimised.compiled().expect("compiles");
        let raw = baseline.compiled().expect("compiles");
        assert!(plan.rules_fired() > 0);
        assert_eq!(raw.rules_fired(), 0);
        let d = inst! { "R" => [[c(1), c(2)]], "S" => [[c(1)]], "T" => [[c(2)]] };
        assert_eq!(
            plan.execute_naive(&d).answers,
            raw.execute_naive(&d).answers
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine = CertainEngine::new();
        let batch = engine.evaluate_all::<PreparedQuery>(&d0(), Semantics::Owa, &[]);
        assert!(batch.results.is_empty());
        assert_eq!(batch.enumeration_passes, 0);
        assert_eq!(batch.worlds_enumerated, 0);
        assert!(!batch.truncated);
    }

    #[test]
    fn cwa_conditional_tables_retire_the_oracle_on_fo_queries() {
        let engine = CertainEngine::new();
        // FO × CWA is NotGuaranteed, but the intro sentence's conditions stay
        // equality-only on d0, so conditional tables certify it exactly.
        let q = engine.prepare("exists u . D(u, u)").expect("valid query");
        assert_eq!(q.fragment(), Fragment::ExistentialPositive);
        // Force a non-guaranteed cell with a genuinely FO query instead.
        let q = engine
            .prepare("exists u v . D(u, v) & !(u = v)")
            .expect("valid query");
        assert_eq!(q.fragment(), Fragment::FullFirstOrder);
        let d = inst! { "D" => [[c(1), c(2)]] };
        let eval = engine.evaluate(&d, Semantics::Cwa, &q);
        let cert = eval.plan.symbolic_certificate().expect("symbolic");
        assert_eq!(cert.technique, SymbolicTechnique::ConditionalTables);
        assert_eq!(cert.mode, SymbolicMode::Exact);
        assert!(cert.check());
        assert_eq!(eval.worlds_enumerated, 0);
        assert!(!eval.truncated);
        assert_eq!(eval.certain, engine.compare(&d, Semantics::Cwa, &q).certain);
        assert!(cert.to_string().contains("conditional tables"));
    }

    #[test]
    fn sandwich_certifies_a_false_universal_with_zero_worlds() {
        let engine = CertainEngine::new();
        // Pos × OWA is NotGuaranteed. On a broken chain the naïve answer is
        // already false, and U = N = ∅ pins "not certain" with zero worlds.
        let q = engine
            .prepare("forall u . exists v . R(u, v)")
            .expect("valid query");
        let d = inst! { "R" => [[c(1), x(1)]] };
        let eval = engine.evaluate(&d, Semantics::Owa, &q);
        let cert = eval.plan.symbolic_certificate().expect("symbolic");
        assert_eq!(cert.technique, SymbolicTechnique::Sandwich);
        assert_eq!(cert.mode, SymbolicMode::Exact);
        assert!(cert.check());
        assert_eq!(eval.worlds_enumerated, 0);
        assert!(!eval.is_certainly_true());
        assert_eq!(
            eval.certain,
            engine.compare(&d, Semantics::Owa, &q).certain,
            "sandwich agrees with the oracle"
        );
    }

    #[test]
    fn open_sandwiches_still_fall_back_to_the_oracle() {
        let engine = CertainEngine::new();
        // On d0 the naïve answer to the §2.4 sentence is true but the OWA
        // under-approximation cannot close the ∀: the sandwich stays open and
        // the oracle refutes — the existing counterexample must survive.
        let q = engine
            .prepare("forall u . exists v . D(u, v)")
            .expect("valid query");
        let eval = engine.evaluate(&d0(), Semantics::Owa, &q);
        assert_eq!(eval.plan, EvalPlan::BoundedEnumeration);
        assert!(eval.worlds_enumerated > 0);
        assert!(!eval.is_certainly_true());
    }

    #[test]
    fn minimal_sandwich_requires_the_core_side_condition() {
        let engine = CertainEngine::new();
        let q = engine
            .prepare("forall u . exists v . D(v, u)")
            .expect("valid query");
        assert_eq!(q.fragment(), Fragment::Positive);
        // Pos × minimal-CWA is WorksOverCores; off cores the plan is the
        // oracle and the sandwich is *not allowed* to certify (the
        // fresh-injective image need not be a minimal world).
        let non_core = inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] };
        let eval = engine.evaluate(&non_core, Semantics::MinimalCwa, &q);
        assert!(!eval.plan.is_symbolic(), "no core, no sandwich");
        // A forged certificate claiming a minimal sandwich without the core
        // check must fail verification.
        let forged = SymbolicCertificate {
            semantics: Semantics::MinimalCwa,
            fragment: Fragment::Positive,
            mode: SymbolicMode::Exact,
            technique: SymbolicTechnique::Sandwich,
            core_checked: false,
        };
        assert!(!forged.check());
    }

    #[test]
    fn under_approximation_entry_point_is_sound_everywhere() {
        let engine = CertainEngine::new();
        let q = engine.prepare("exists u . !D(u, u)").expect("valid query");
        for semantics in Semantics::ALL {
            let under = engine.symbolic_under_approximation(&d0(), semantics, &q);
            let cert = under.plan.symbolic_certificate().expect("symbolic");
            assert_eq!(cert.technique, SymbolicTechnique::Kleene);
            assert_eq!(cert.mode, SymbolicMode::UnderApprox);
            assert!(cert.check());
            assert_eq!(under.worlds_enumerated, 0);
            let oracle = engine.compare(&d0(), semantics, &q);
            assert!(
                under.certain.is_subset(&oracle.certain) || oracle.truncated,
                "{semantics}: under-approximation must stay below the oracle"
            );
        }
    }

    #[test]
    fn plan_with_symbolic_upgrades_only_certifiable_cells() {
        let engine = CertainEngine::new();
        let certifiable = engine
            .prepare("forall u . exists v . R(u, v)")
            .expect("valid query");
        let d = inst! { "R" => [[c(1), x(1)]] };
        assert_eq!(
            engine.plan(&d, Semantics::Owa, &certifiable),
            EvalPlan::BoundedEnumeration,
            "the static plan never claims symbolic"
        );
        assert!(engine
            .plan_with_symbolic(&d, Semantics::Owa, &certifiable)
            .is_symbolic());
        let open = engine
            .prepare("forall u . exists v . D(u, v)")
            .expect("valid query");
        assert_eq!(
            engine.plan_with_symbolic(&d0(), Semantics::Owa, &open),
            EvalPlan::BoundedEnumeration
        );
        // Certified cells are untouched — and evaluate_symbolic declines them.
        let certified = engine.prepare("exists u v . D(u, v)").expect("valid");
        assert!(engine
            .plan_with_symbolic(&d0(), Semantics::Owa, &certified)
            .is_certified());
        assert!(engine
            .evaluate_symbolic(&d0(), Semantics::Owa, &certified)
            .is_none());
    }

    #[test]
    fn truncated_oracle_verdicts_carry_the_flag() {
        // Three nulls under OWA exceed a 4-world cap, and the sentence below
        // holds in every sampled world, so the "certain" verdict leans on the
        // cut-off stream and must be flagged.
        let engine = CertainEngine::with_bounds(WorldBounds {
            max_worlds: 4,
            ..WorldBounds::default()
        });
        let d = inst! { "R" => [[x(1)], [x(2)], [x(3)]] };
        let q = engine.prepare("exists u . R(u)").expect("valid query");
        let eval = engine.compare(&d, Semantics::Owa, &q);
        assert!(eval.is_certainly_true());
        assert!(eval.truncated, "exhausted a capped stream");
        // A definitive counter-world clears the flag even under the same cap
        // (this sentence fails in every world, so the first one refutes it).
        let refuted = engine.prepare("forall u . R(u) -> !R(u)").expect("valid");
        let eval = engine.compare(&d, Semantics::Owa, &refuted);
        assert!(!eval.is_certainly_true());
        assert!(!eval.truncated, "early exit is definitive");
        // Untruncated streams never set the flag.
        let roomy = CertainEngine::new();
        let eval = roomy.compare(&d0(), Semantics::Owa, &q);
        assert!(!eval.truncated);
    }

    #[test]
    fn batch_results_report_truncation_per_query() {
        let engine = CertainEngine::with_bounds(WorldBounds {
            max_worlds: 4,
            ..WorldBounds::default()
        });
        let d = inst! { "R" => [[x(1)], [x(2)], [x(3)]] };
        // Both queries are FO × WCWA (NotGuaranteed). The first's sandwich
        // closes (S is absent from every world, naïve and Kleene agree on
        // false); the second's stays open (naïvely true, Kleene unknown on the
        // absent S), and its "certain" verdict survives every sampled world.
        let queries = [
            engine
                .prepare("exists u . S(u) & !R(u)")
                .expect("valid query"),
            engine
                .prepare("exists u . R(u) & !S(u)")
                .expect("valid query"),
        ];
        let batch = engine.evaluate_all(&d, Semantics::Wcwa, &queries);
        assert!(batch.results[0].plan.is_symbolic());
        assert!(!batch.results[0].truncated);
        assert_eq!(batch.results[0].worlds_enumerated, 0);
        assert!(batch.results[1].truncated);
        assert!(batch.truncated);
    }

    #[test]
    fn evaluate_records_a_stage_trace_when_enabled() {
        let engine = CertainEngine::new();
        let q = engine
            .prepare("forall u . exists v . D(u, v)")
            .expect("valid query");
        // OWA × Pos is not guaranteed: exec pass, symbolic probe, then worlds.
        let eval = engine.evaluate(&d0(), Semantics::Owa, &q);
        if nev_obs::enabled() {
            let stages: Vec<Stage> = eval.trace.spans().iter().map(|s| s.stage).collect();
            assert!(stages.contains(&Stage::Exec), "stages: {stages:?}");
            assert!(stages.contains(&Stage::Symbolic), "stages: {stages:?}");
            assert!(stages.contains(&Stage::OracleWorlds), "stages: {stages:?}");
            // Depth-0 stages partition the request wall-clock from below.
            assert!(eval.trace.top_level_us() <= eval.trace.total_us());
            assert_eq!(eval.trace.dropped(), 0);
        } else {
            assert!(eval.trace.is_empty());
        }
        // The certified path records just the exec pass.
        let eval = engine.evaluate(&d0(), Semantics::Cwa, &q);
        assert_eq!(eval.worlds_enumerated, 0);
        if nev_obs::enabled() {
            assert!(eval.trace.spans().iter().any(|s| s.stage == Stage::Exec));
            assert!(!eval
                .trace
                .spans()
                .iter()
                .any(|s| s.stage == Stage::OracleWorlds));
        }
    }

    #[test]
    fn batch_trace_covers_planning_and_the_shared_world_pass() {
        let engine = CertainEngine::new();
        let queries = [
            engine
                .prepare("forall u . exists v . D(u, v)")
                .expect("valid query"),
            engine.prepare("exists u . !D(u, u)").expect("valid query"),
        ];
        let batch = engine.evaluate_all(&d0(), Semantics::Owa, &queries);
        assert_eq!(batch.enumeration_passes, 1);
        if nev_obs::enabled() {
            let stages: Vec<Stage> = batch.trace.spans().iter().map(|s| s.stage).collect();
            assert!(stages.contains(&Stage::Exec), "stages: {stages:?}");
            assert!(stages.contains(&Stage::OracleWorlds), "stages: {stages:?}");
            assert!(batch.trace.top_level_us() <= batch.trace.total_us());
        } else {
            assert!(batch.trace.is_empty());
        }
    }

    #[test]
    fn telemetry_never_perturbs_result_equality() {
        // Traces and prep timings differ run to run; equality must not see them.
        let engine = CertainEngine::new();
        let q = engine
            .prepare("forall u . exists v . D(u, v)")
            .expect("valid query");
        assert_eq!(
            q,
            PreparedQuery::parse("forall u . exists v . D(u, v)").expect("valid query")
        );
        let a = engine.evaluate(&d0(), Semantics::Owa, &q);
        let mut b = engine.evaluate(&d0(), Semantics::Owa, &q);
        b.trace = Trace::default();
        assert_eq!(a, b, "a stripped trace must not break equality");
        // Prep timings are observable but inert.
        let t = q.prep_timings();
        if nev_obs::enabled() {
            assert!(t.parse_us + t.classify_us + t.compile_us < u64::MAX);
        } else {
            assert_eq!((t.parse_us, t.classify_us, t.compile_us), (0, 0, 0));
        }
    }
}
