//! Update systems justifying the semantic orderings (paper §6–§7).
//!
//! The paper explains each ordering as the reflexive-transitive closure of a set of
//! elementary updates that *increase informativeness*:
//!
//! * **CWA updates** `D ↦ D[v/⊥]`: replace every occurrence of a null `⊥` by a value
//!   `v ∈ Const ∪ Null` (all occurrences at once, since nulls may repeat);
//! * **OWA updates** `D ↦ D ∪ {R(t̄)}`: add a tuple;
//! * **copying CWA updates** `D ↦ D[v/⊥] ∪ D_fresh`: a CWA update together with a
//!   fresh copy of the database (nulls renamed to fresh ones), the relaxation that
//!   generates the powerset ordering `⋐_CWA`.
//!
//! Theorem 6.2 states that `≼_CWA` is the closure of CWA updates and `≼_OWA` the
//! closure of CWA and OWA updates; Theorem 7.1 states that `⋐_CWA` is the closure of
//! CWA and copying CWA updates. The bounded breadth-first reachability check here lets
//! the experiment harness validate those equivalences on small instances
//! (experiment E5).

use std::collections::{BTreeSet, VecDeque};

use nev_incomplete::{Instance, NullId, Tuple, Value};

/// The kinds of elementary updates of §6–§7.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdateKind {
    /// Replace a null (everywhere) by a value: `D[v/⊥]`.
    Cwa,
    /// Add a tuple to a relation.
    Owa,
    /// Replace a null by a value and union in a fresh copy of the original database.
    CopyingCwa,
}

/// The CWA update `D[v/⊥]`: replaces every occurrence of the null by the value.
pub fn cwa_update(d: &Instance, null: NullId, value: &Value) -> Instance {
    d.map_values(|v| {
        if *v == Value::Null(null) {
            value.clone()
        } else {
            v.clone()
        }
    })
}

/// The OWA update: adds a tuple to a relation (which must exist with that arity, or
/// not exist at all).
pub fn owa_update(d: &Instance, relation: &str, tuple: Tuple) -> Instance {
    let mut out = d.clone();
    out.add_tuple(relation, tuple)
        .expect("OWA update must respect the relation arity");
    out
}

/// A fresh copy of `d`: every null renamed to a null not occurring in `avoid` (nor in
/// `d` itself).
pub fn fresh_copy(d: &Instance, avoid: &BTreeSet<NullId>) -> Instance {
    let mut used: BTreeSet<NullId> = d.nulls();
    used.extend(avoid.iter().copied());
    let base = used.iter().map(|n| n.0 + 1).max().unwrap_or(0);
    let mut renaming = std::collections::BTreeMap::new();
    for (offset, n) in d.nulls().into_iter().enumerate() {
        renaming.insert(n, NullId(base + offset as u32));
    }
    d.map_values(|v| match v {
        Value::Null(n) => Value::Null(renaming[n]),
        c => c.clone(),
    })
}

/// The copying CWA update `D ↦ D[v/⊥] ∪ D_fresh` of §7.
pub fn copying_cwa_update(d: &Instance, null: NullId, value: &Value) -> Instance {
    let substituted = cwa_update(d, null, value);
    let copy = fresh_copy(d, &substituted.nulls());
    substituted.union(&copy).expect("same schema")
}

/// The "multiple CWA update" used in the proof of Theorem 7.1:
/// `D ↦ ⋃_{v ∈ values} D[v/⊥]`.
pub fn multi_cwa_update(d: &Instance, null: NullId, values: &[Value]) -> Instance {
    assert!(
        !values.is_empty(),
        "a multiple CWA update needs at least one value"
    );
    let mut out: Option<Instance> = None;
    for v in values {
        let step = cwa_update(d, null, v);
        out = Some(match out {
            None => step,
            Some(acc) => acc.union(&step).expect("same schema"),
        });
    }
    out.expect("non-empty values")
}

/// Configuration of the bounded update-reachability search.
#[derive(Clone, Debug)]
pub struct ReachabilityBounds {
    /// Maximum number of update steps explored.
    pub max_steps: usize,
    /// Maximum number of distinct states visited before giving up.
    pub max_states: usize,
}

impl Default for ReachabilityBounds {
    fn default() -> Self {
        ReachabilityBounds {
            max_steps: 8,
            max_states: 20_000,
        }
    }
}

/// Bounded breadth-first search: can `target` be reached from `d` by a sequence of
/// updates of the given kinds?
///
/// Candidate substitution values are drawn from `adom(target) ∪ Null(d)` and candidate
/// OWA tuples from the tuples of `target`, which suffices for reaching `target` and
/// keeps the search finite. Instances are compared up to the *names* of nulls
/// (canonical form), matching the ordering characterisations which are invariant under
/// null renaming on the left.
pub fn reachable_by_updates(
    d: &Instance,
    target: &Instance,
    kinds: &[UpdateKind],
    bounds: &ReachabilityBounds,
) -> bool {
    let target_canonical = target.canonical_form();
    let mut candidate_values: Vec<Value> = target.adom().into_iter().collect();
    candidate_values.extend(d.nulls().into_iter().map(Value::Null));
    let target_facts: Vec<(String, Tuple)> = target
        .facts()
        .map(|(r, t)| (r.to_string(), t.clone()))
        .collect();

    let start = d.canonical_form();
    if start == target_canonical {
        return true;
    }
    let mut visited: BTreeSet<Instance> = [start.clone()].into_iter().collect();
    let mut queue: VecDeque<(Instance, usize)> = [(start, 0usize)].into_iter().collect();

    while let Some((current, depth)) = queue.pop_front() {
        if depth >= bounds.max_steps || visited.len() > bounds.max_states {
            continue;
        }
        let mut successors: Vec<Instance> = Vec::new();
        for kind in kinds {
            match kind {
                UpdateKind::Cwa => {
                    for null in current.nulls() {
                        for value in &candidate_values {
                            if *value == Value::Null(null) {
                                continue;
                            }
                            successors.push(cwa_update(&current, null, value));
                        }
                    }
                }
                UpdateKind::CopyingCwa => {
                    for null in current.nulls() {
                        for value in &candidate_values {
                            if *value == Value::Null(null) {
                                continue;
                            }
                            successors.push(copying_cwa_update(&current, null, value));
                        }
                    }
                }
                UpdateKind::Owa => {
                    for (rel, tuple) in &target_facts {
                        if !current.contains_tuple(rel, tuple) {
                            successors.push(owa_update(&current, rel, tuple.clone()));
                        }
                    }
                }
            }
        }
        for succ in successors {
            let canonical = succ.canonical_form();
            if canonical == target_canonical {
                return true;
            }
            // Prune states that already have more facts than the target can absorb —
            // updates never remove facts.
            if canonical.fact_count() > target_canonical.fact_count() {
                continue;
            }
            if visited.insert(canonical.clone()) {
                queue.push_back((canonical, depth + 1));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{cwa_leq, owa_leq, powerset_cwa_leq};
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;
    use nev_incomplete::tuple::tuple_of;

    #[test]
    fn cwa_update_replaces_all_occurrences() {
        // The §6 motivation: (null, 2) updated twice produces {(1,2),(2,2)} only via
        // Codd-style updates; with marked nulls a single CWA update replaces every
        // occurrence at once.
        let d = inst! { "R" => [[x(1), c(2)], [c(3), x(1)]] };
        let updated = cwa_update(&d, NullId(1), &c(7));
        assert!(updated.is_complete());
        assert!(updated.contains_tuple("R", &tuple_of([c(7), c(2)])));
        assert!(updated.contains_tuple("R", &tuple_of([c(3), c(7)])));
        // Substituting a null for a null merges them.
        let merged = cwa_update(&d, NullId(1), &x(9));
        assert_eq!(merged.nulls().len(), 1);
    }

    #[test]
    fn owa_update_adds_tuples() {
        let d = inst! { "R" => [[c(1), c(2)]] };
        let updated = owa_update(&d, "R", tuple_of([c(3), c(4)]));
        assert_eq!(updated.fact_count(), 2);
    }

    #[test]
    #[should_panic(expected = "respect the relation arity")]
    fn owa_update_rejects_bad_arity() {
        let d = inst! { "R" => [[c(1), c(2)]] };
        owa_update(&d, "R", tuple_of([c(3)]));
    }

    #[test]
    fn copying_update_duplicates_structure() {
        let d = inst! { "R" => [[x(1), x(2)]] };
        let updated = copying_cwa_update(&d, NullId(1), &c(5));
        // One tuple from the substitution, one from the fresh copy.
        assert_eq!(updated.fact_count(), 2);
        assert_eq!(updated.nulls().len(), 3); // ⊥2 survives, plus two fresh nulls
    }

    #[test]
    fn multi_cwa_update_unions_substitutions() {
        let d = inst! { "R" => [[x(1), c(2)]] };
        let updated = multi_cwa_update(&d, NullId(1), &[c(1), c(3)]);
        assert_eq!(updated.fact_count(), 2);
        assert!(updated.contains_tuple("R", &tuple_of([c(1), c(2)])));
        assert!(updated.contains_tuple("R", &tuple_of([c(3), c(2)])));
    }

    #[test]
    fn theorem_6_2_cwa_direction_on_examples() {
        // D = {(⊥,⊥′)} and D' = {(1,2)}: related by ≼_CWA and reachable by CWA updates.
        let d = inst! { "R" => [[x(1), x(2)]] };
        let d_prime = inst! { "R" => [[c(1), c(2)]] };
        assert!(cwa_leq(&d, &d_prime));
        assert!(reachable_by_updates(
            &d,
            &d_prime,
            &[UpdateKind::Cwa],
            &ReachabilityBounds::default()
        ));
        // Collapsing both nulls also works.
        let collapsed = inst! { "R" => [[c(9), c(9)]] };
        assert!(cwa_leq(&d, &collapsed));
        assert!(reachable_by_updates(
            &d,
            &collapsed,
            &[UpdateKind::Cwa],
            &ReachabilityBounds::default()
        ));
        // But a grown instance is not reachable by CWA updates alone…
        let grown = inst! { "R" => [[c(1), c(2)], [c(2), c(1)]] };
        assert!(!cwa_leq(&d, &grown));
        assert!(!reachable_by_updates(
            &d,
            &grown,
            &[UpdateKind::Cwa],
            &ReachabilityBounds::default()
        ));
        // …while it is reachable once OWA updates are allowed, matching ≼_OWA.
        assert!(owa_leq(&d, &grown));
        assert!(reachable_by_updates(
            &d,
            &grown,
            &[UpdateKind::Cwa, UpdateKind::Owa],
            &ReachabilityBounds::default()
        ));
    }

    #[test]
    fn theorem_7_1_copying_updates_reach_powerset_larger_instances() {
        // D = {(⊥1,⊥2)} ⋐_CWA {(1,2),(3,4)}: reachable with copying CWA updates,
        // unreachable with plain CWA updates.
        let d = inst! { "R" => [[x(1), x(2)]] };
        let two_copies = inst! { "R" => [[c(1), c(2)], [c(3), c(4)]] };
        assert!(powerset_cwa_leq(&d, &two_copies));
        assert!(!reachable_by_updates(
            &d,
            &two_copies,
            &[UpdateKind::Cwa],
            &ReachabilityBounds::default()
        ));
        assert!(reachable_by_updates(
            &d,
            &two_copies,
            &[UpdateKind::Cwa, UpdateKind::CopyingCwa],
            &ReachabilityBounds::default()
        ));
    }

    #[test]
    fn unreachable_targets_are_rejected() {
        let d = inst! { "R" => [[c(1), c(2)]] };
        let other = inst! { "R" => [[c(3), c(4)]] };
        assert!(!reachable_by_updates(
            &d,
            &other,
            &[UpdateKind::Cwa, UpdateKind::Owa, UpdateKind::CopyingCwa],
            &ReachabilityBounds::default()
        ));
        // Reflexivity: an instance reaches itself with zero updates.
        assert!(reachable_by_updates(
            &d,
            &d,
            &[],
            &ReachabilityBounds::default()
        ));
    }

    #[test]
    fn fresh_copy_avoids_existing_nulls() {
        let d = inst! { "R" => [[x(1), x(2)]] };
        let avoid: BTreeSet<NullId> = [NullId(1), NullId(2), NullId(3)].into_iter().collect();
        let copy = fresh_copy(&d, &avoid);
        assert_eq!(copy.fact_count(), 1);
        for n in copy.nulls() {
            assert!(!avoid.contains(&n));
        }
    }
}
