//! The concrete semantics of incompleteness and their possible worlds.
//!
//! A semantics `⟦·⟧` assigns to each incomplete database `D` a set of *complete*
//! databases, its possible worlds. The paper builds every semantics it studies in two
//! steps (§4.1): first apply valuations to nulls, then modify the result according to
//! a semantic relation `Rsem`. The six semantics implemented here are:
//!
//! | semantics | worlds |
//! |---|---|
//! | `⟦D⟧_CWA` | `v(D)` for a valuation `v` |
//! | `⟦D⟧_OWA` | complete `D' ⊇ v(D)` |
//! | `⟦D⟧_WCWA` | complete `D' ⊇ v(D)` with `adom(D') = adom(v(D))` |
//! | `⦅D⦆_CWA` | `v₁(D) ∪ … ∪ vₙ(D)`, `n ≥ 1` |
//! | `⟦D⟧ᵐⁱⁿ_CWA` | `v(D)` for a *D-minimal* valuation `v` |
//! | `⦅D⦆ᵐⁱⁿ_CWA` | unions of images of D-minimal valuations |
//!
//! Two interfaces are provided:
//!
//! * [`Semantics::contains_world`] — an **exact** membership test `D' ∈ ⟦D⟧`, using
//!   the homomorphism characterisations of Proposition 6.1 / Theorem 7.1 /
//!   Proposition 10.1;
//! * [`Semantics::enumerate_worlds`] — a **bounded** enumeration of worlds over a
//!   finite constant budget, the ground-truth oracle for certain answers. The budget
//!   and the approximation guarantees are documented in `DESIGN.md §6`: exact for the
//!   CWA family, a sound over-approximation of certain answers for OWA (and for WCWA /
//!   powerset widths beyond the configured caps).

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use nev_hom::minimal::is_minimal_image;
use nev_hom::search::{
    all_homomorphisms, has_db_homomorphism, has_onto_db_homomorphism,
    has_strong_onto_db_homomorphism, HomConfig,
};
use nev_hom::valuation::enumerate_valuations;
use nev_hom::ValueMap;
use nev_incomplete::instance::fresh_constants;
use nev_incomplete::{Constant, Instance, Tuple, Value};

/// The six semantics of incompleteness studied in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Semantics {
    /// Open-world assumption `⟦·⟧_OWA`.
    Owa,
    /// Closed-world assumption `⟦·⟧_CWA`.
    Cwa,
    /// Weak closed-world assumption `⟦·⟧_WCWA` (Reiter 1977).
    Wcwa,
    /// Powerset closed-world semantics `⦅·⦆_CWA` (§7).
    PowersetCwa,
    /// Minimal-valuation closed-world semantics `⟦·⟧ᵐⁱⁿ_CWA` (§10).
    MinimalCwa,
    /// Minimal-valuation powerset semantics `⦅·⦆ᵐⁱⁿ_CWA` (Hernich 2011; §10).
    MinimalPowersetCwa,
}

impl Semantics {
    /// All six semantics, in the order of Figure 1.
    pub const ALL: [Semantics; 6] = [
        Semantics::Owa,
        Semantics::Wcwa,
        Semantics::Cwa,
        Semantics::PowersetCwa,
        Semantics::MinimalCwa,
        Semantics::MinimalPowersetCwa,
    ];

    /// Returns `true` for the semantics based on *minimal* valuations, which are not
    /// saturated (§9–§10) — their results hold over cores.
    pub fn is_minimal(self) -> bool {
        matches!(self, Semantics::MinimalCwa | Semantics::MinimalPowersetCwa)
    }

    /// Returns `true` for the powerset-based semantics (several valuations at once).
    pub fn is_powerset(self) -> bool {
        matches!(self, Semantics::PowersetCwa | Semantics::MinimalPowersetCwa)
    }

    /// The short name used in Figure 1 and in experiment logs.
    pub fn short_name(self) -> &'static str {
        match self {
            Semantics::Owa => "OWA",
            Semantics::Cwa => "CWA",
            Semantics::Wcwa => "WCWA",
            Semantics::PowersetCwa => "⦅ ⦆_CWA",
            Semantics::MinimalCwa => "⟦ ⟧min_CWA",
            Semantics::MinimalPowersetCwa => "⦅ ⦆min_CWA",
        }
    }

    /// Exact membership test: is the complete instance `world` a possible world of the
    /// incomplete instance `d` under this semantics?
    ///
    /// # Panics
    /// Panics if `world` is not complete.
    pub fn contains_world(self, d: &Instance, world: &Instance) -> bool {
        assert!(
            world.is_complete(),
            "possible worlds must be complete instances"
        );
        match self {
            // D' ∈ ⟦D⟧_OWA iff some valuation (= database homomorphism into a complete
            // instance) maps D into D'.
            Semantics::Owa => has_db_homomorphism(d, world),
            // D' ∈ ⟦D⟧_CWA iff D' = v(D) for some valuation, i.e. a strong onto
            // database homomorphism exists.
            Semantics::Cwa => has_strong_onto_db_homomorphism(d, world),
            // D' ∈ ⟦D⟧_WCWA iff some valuation h has h(D) ⊆ D' and adom(D') = adom(h(D)),
            // i.e. an onto database homomorphism exists.
            Semantics::Wcwa => has_onto_db_homomorphism(d, world),
            Semantics::PowersetCwa => covered_by_hom_images(d, world, false),
            Semantics::MinimalCwa => {
                has_strong_onto_db_homomorphism(d, world) && is_minimal_image(d, world)
            }
            Semantics::MinimalPowersetCwa => covered_by_hom_images(d, world, true),
        }
    }

    /// Enumerates a finite set of possible worlds of `d` under this semantics, within
    /// the given bounds. See the module documentation for the exactness guarantees.
    pub fn enumerate_worlds(self, d: &Instance, bounds: &WorldBounds) -> Vec<Instance> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for w in self.worlds(d, bounds) {
            if seen.insert(w.clone()) {
                out.push(w);
            }
        }
        out
    }

    /// Returns a lazily-driven iterator over the bounded possible worlds of `d`
    /// under this semantics — the streaming primitive behind
    /// [`Semantics::for_each_world`], [`Semantics::enumerate_worlds`] and the
    /// `engine` module's evaluation paths.
    ///
    /// The valuation list (`|budget|^#nulls` entries) is still materialised up
    /// front, as it always was; what is lazy is everything downstream: world
    /// **instances** are built on demand (one valuation image, one extension batch,
    /// one union combination at a time), so early-exit consumers — a Boolean
    /// certain-answer check that found a counter-world, an intersection that became
    /// empty — skip the instance construction and query evaluation for every world
    /// after their exit point. Worlds may be repeated; use
    /// [`Semantics::enumerate_worlds`] for a deduplicated list.
    pub fn worlds<'a>(self, d: &'a Instance, bounds: &WorldBounds) -> Worlds<'a> {
        let budget = bounds.budget_for(d, self);
        let valuations = enumerate_valuations(d, &budget);
        let state = match self {
            Semantics::Cwa => WorldsState::Valuations {
                valuations: valuations.into_iter(),
                minimal: false,
                seen: BTreeSet::new(),
            },
            Semantics::MinimalCwa => WorldsState::Valuations {
                valuations: valuations.into_iter(),
                minimal: true,
                seen: BTreeSet::new(),
            },
            Semantics::Wcwa => WorldsState::Extensions {
                valuations: valuations.into_iter(),
                extension_domain: BTreeSet::new(),
                grow_domain: false,
                max_extra: bounds.wcwa_max_extra_tuples,
                pending: Vec::new().into_iter(),
            },
            Semantics::Owa => {
                let fresh: Vec<Constant> = {
                    let mut avoid = budget.clone();
                    avoid.extend(bounds.extra_constants.iter().cloned());
                    fresh_constants(bounds.owa_fresh_values, &avoid)
                };
                let mut extension_domain: BTreeSet<Value> =
                    budget.iter().cloned().map(Value::Const).collect();
                extension_domain.extend(fresh.into_iter().map(Value::Const));
                WorldsState::Extensions {
                    valuations: valuations.into_iter(),
                    extension_domain,
                    grow_domain: true,
                    max_extra: bounds.owa_max_extra_tuples,
                    pending: Vec::new().into_iter(),
                }
            }
            Semantics::PowersetCwa | Semantics::MinimalPowersetCwa => {
                // Deduplicate valuation images first, then (for the minimal variant)
                // keep only the minimal ones.
                let unique_images: Vec<Instance> = {
                    let mut seen = BTreeSet::new();
                    valuations
                        .iter()
                        .map(|v| v.apply_instance(d))
                        .filter(|w| seen.insert(w.clone()))
                        .collect()
                };
                let images: Vec<Instance> = if self == Semantics::MinimalPowersetCwa {
                    unique_images
                        .into_iter()
                        .filter(|w| is_minimal_image(d, w))
                        .collect()
                } else {
                    unique_images
                };
                // Unions of at most `union_width` images (non-empty selections).
                let width = bounds.union_width.max(1);
                let combos = combinations_up_to(images.len(), width);
                WorldsState::Unions {
                    images,
                    combos: combos.into_iter(),
                }
            }
        };
        Worlds {
            d,
            emitted: 0,
            max_worlds: bounds.max_worlds,
            overflowed: false,
            finished: false,
            state,
        }
    }

    /// Streams the bounded possible worlds of `d` to `visitor`, stopping early if the
    /// visitor breaks. A thin closure-style wrapper around [`Semantics::worlds`];
    /// worlds may be repeated. Returns `Break` iff the visitor broke or the
    /// enumeration was truncated by [`WorldBounds::max_worlds`].
    pub fn for_each_world<F>(
        self,
        d: &Instance,
        bounds: &WorldBounds,
        mut visitor: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Instance) -> ControlFlow<()>,
    {
        let mut worlds = self.worlds(d, bounds);
        for w in &mut worlds {
            visitor(&w)?;
        }
        if worlds.truncated() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// An iterator over the bounded possible worlds of an instance, created by
/// [`Semantics::worlds`].
///
/// World materialisation is incremental (the valuation list itself is prebuilt —
/// see [`Semantics::worlds`]): the CWA family applies one valuation per step, the
/// OWA/WCWA extension semantics materialise the extension subsets of one valuation
/// image at a time, and the powerset semantics prebuild the deduplicated images and
/// combination indices but construct one union instance per step. The iterator
/// stops after [`WorldBounds::max_worlds`] items (see [`Worlds::truncated`]).
pub struct Worlds<'a> {
    d: &'a Instance,
    emitted: usize,
    max_worlds: usize,
    /// A world beyond `max_worlds` was generated and suppressed.
    overflowed: bool,
    /// The underlying enumeration is exhausted (or the cap was hit).
    finished: bool,
    state: WorldsState,
}

enum WorldsState {
    /// CWA and minimal CWA: one world per valuation (deduplicated and filtered for
    /// minimality in the minimal variant).
    Valuations {
        valuations: std::vec::IntoIter<ValueMap>,
        minimal: bool,
        seen: BTreeSet<Instance>,
    },
    /// WCWA and OWA: every valuation image plus all bounded fact extensions over the
    /// image's active domain (WCWA) or the enlarged constant budget (OWA).
    Extensions {
        valuations: std::vec::IntoIter<ValueMap>,
        /// Extra values extension tuples may use beyond the image's active domain.
        extension_domain: BTreeSet<Value>,
        /// OWA grows the domain with the budget; WCWA keeps `adom(v(D))`.
        grow_domain: bool,
        max_extra: usize,
        /// Extension worlds of the current valuation image, materialised per image.
        pending: std::vec::IntoIter<Instance>,
    },
    /// Powerset semantics: unions of at most `union_width` valuation images.
    Unions {
        images: Vec<Instance>,
        combos: std::vec::IntoIter<Vec<usize>>,
    },
}

impl Worlds<'_> {
    /// Returns `true` iff the iteration was genuinely cut short by
    /// [`WorldBounds::max_worlds`]: a further world existed beyond the cap and was
    /// suppressed. An enumeration that completes at exactly the cap is not
    /// truncated.
    pub fn truncated(&self) -> bool {
        self.overflowed
    }

    fn next_world(&mut self) -> Option<Instance> {
        let d = self.d;
        match &mut self.state {
            WorldsState::Valuations {
                valuations,
                minimal,
                seen,
            } => loop {
                let v = valuations.next()?;
                let world = v.apply_instance(d);
                if !*minimal {
                    return Some(world);
                }
                // Deduplicate images before the (comparatively expensive) minimality
                // check: many valuations share an image.
                if seen.insert(world.clone()) && is_minimal_image(d, &world) {
                    return Some(world);
                }
            },
            WorldsState::Extensions {
                valuations,
                extension_domain,
                grow_domain,
                max_extra,
                pending,
            } => loop {
                if let Some(world) = pending.next() {
                    return Some(world);
                }
                let v = valuations.next()?;
                let base = v.apply_instance(d);
                let mut domain: BTreeSet<Value> = base.adom();
                if *grow_domain {
                    domain.extend(extension_domain.iter().cloned());
                }
                let candidates = missing_tuples_over(&base, &domain);
                let worlds: Vec<Instance> = subsets_up_to(&candidates, *max_extra)
                    .into_iter()
                    .map(|extra| add_facts(&base, &extra))
                    .collect();
                *pending = worlds.into_iter();
            },
            WorldsState::Unions { images, combos } => {
                let combo = combos.next()?;
                let mut world = Instance::empty_of_schema(&d.schema());
                for idx in &combo {
                    world = world.union(&images[*idx]).expect("same schema");
                }
                Some(world)
            }
        }
    }
}

impl Iterator for Worlds<'_> {
    type Item = Instance;

    fn next(&mut self) -> Option<Instance> {
        if self.finished {
            return None;
        }
        let Some(world) = self.next_world() else {
            self.finished = true;
            return None;
        };
        if self.emitted >= self.max_worlds {
            // The cap is only a genuine truncation if this further world existed.
            self.overflowed = true;
            self.finished = true;
            return None;
        }
        self.emitted += 1;
        Some(world)
    }
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

/// Error returned when parsing a [`Semantics`] from an unrecognised name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseSemanticsError(pub String);

impl std::fmt::Display for ParseSemanticsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown semantics `{}` (expected one of: owa, wcwa, cwa, powerset-cwa, \
             minimal-cwa, minimal-powerset-cwa, or a Figure 1 short name)",
            self.0
        )
    }
}

impl std::error::Error for ParseSemanticsError {}

impl std::str::FromStr for Semantics {
    type Err = ParseSemanticsError;

    /// Parses both the Figure 1 short names (as printed by `Display`, so
    /// `to_string`/`parse` round-trips) and ASCII command-line spellings such as
    /// `owa`, `powerset-cwa` or `minimal_cwa` (case-insensitive, `-`/`_`
    /// interchangeable).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        // The exact Display forms first: they contain spaces and brackets.
        for sem in Semantics::ALL {
            if trimmed == sem.short_name() {
                return Ok(sem);
            }
        }
        let normalized: String = trimmed
            .to_ascii_lowercase()
            .chars()
            .map(|ch| if ch == '_' || ch == ' ' { '-' } else { ch })
            .collect();
        match normalized.as_str() {
            "owa" => Ok(Semantics::Owa),
            "cwa" => Ok(Semantics::Cwa),
            "wcwa" => Ok(Semantics::Wcwa),
            "powerset-cwa" | "pcwa" => Ok(Semantics::PowersetCwa),
            "minimal-cwa" | "min-cwa" => Ok(Semantics::MinimalCwa),
            "minimal-powerset-cwa" | "min-powerset-cwa" | "min-pcwa" => {
                Ok(Semantics::MinimalPowersetCwa)
            }
            _ => Err(ParseSemanticsError(trimmed.to_string())),
        }
    }
}

/// Bounds controlling the possible-world enumeration (see `DESIGN.md §6`).
#[derive(Clone, Debug)]
pub struct WorldBounds {
    /// Constants mentioned by the query under consideration; they enter the valuation
    /// budget so that genericity relative to them is respected.
    pub extra_constants: BTreeSet<Constant>,
    /// Powerset semantics: maximum number of valuation images unioned together.
    pub union_width: usize,
    /// OWA: number of extra fresh constants available to extension tuples.
    pub owa_fresh_values: usize,
    /// OWA: maximum number of extension tuples added on top of a valuation image.
    pub owa_max_extra_tuples: usize,
    /// WCWA: maximum number of extension tuples (within the active domain) added on
    /// top of a valuation image. Raising it towards the number of missing tuples makes
    /// the WCWA enumeration exact at an exponential cost.
    pub wcwa_max_extra_tuples: usize,
    /// Hard cap on the number of worlds visited (a safety valve for misconfigured
    /// experiments; hitting it truncates the enumeration).
    pub max_worlds: usize,
}

impl Default for WorldBounds {
    fn default() -> Self {
        WorldBounds {
            extra_constants: BTreeSet::new(),
            union_width: 2,
            owa_fresh_values: 1,
            owa_max_extra_tuples: 1,
            wcwa_max_extra_tuples: 3,
            max_worlds: 500_000,
        }
    }
}

impl WorldBounds {
    /// Bounds that additionally account for the constants mentioned by a query.
    pub fn for_query_constants(constants: BTreeSet<Constant>) -> Self {
        WorldBounds {
            extra_constants: constants,
            ..WorldBounds::default()
        }
    }

    /// A copy of these bounds with additional query constants in the budget — the
    /// single primitive behind [`crate::certain::bounds_for_query`] and
    /// `PreparedQuery::bounds`, so the derivation cannot diverge between the legacy
    /// and engine paths.
    pub fn extended_with<I>(&self, constants: I) -> WorldBounds
    where
        I: IntoIterator<Item = Constant>,
    {
        let mut bounds = self.clone();
        bounds.extra_constants.extend(constants);
        bounds
    }

    /// The valuation budget for an instance under a given semantics: its constants,
    /// the extra (query) constants, and one fresh constant per null — per unioned
    /// valuation for the powerset semantics, so that unions of `union_width`
    /// independent valuations are representable.
    pub fn budget_for(&self, d: &Instance, semantics: Semantics) -> BTreeSet<Constant> {
        let mut budget = d.constants();
        budget.extend(self.extra_constants.iter().cloned());
        let multiplier = if semantics.is_powerset() {
            self.union_width.max(1)
        } else {
            1
        };
        let fresh = fresh_constants(d.nulls().len() * multiplier, &budget);
        budget.extend(fresh);
        budget
    }
}

/// Is every tuple of `world` covered by the image of some database homomorphism
/// `d → world` (minimal ones only when `minimal` is set), with at least one such
/// homomorphism existing? This characterises membership in the powerset semantics and
/// (over arbitrary, possibly incomplete targets) the powerset ordering `⋐_CWA` of
/// Theorem 7.1.
pub(crate) fn covered_by_hom_images(d: &Instance, world: &Instance, minimal: bool) -> bool {
    let homs: Vec<ValueMap> = all_homomorphisms(d, world, &HomConfig::database());
    let unique_images: BTreeSet<Instance> = homs.iter().map(|h| h.apply_instance(d)).collect();
    let images: Vec<Instance> = unique_images
        .into_iter()
        .filter(|img| !minimal || is_minimal_image(d, img))
        .collect();
    if images.is_empty() {
        // With no nulls and d = world = empty this should still succeed via the empty
        // homomorphism; `all_homomorphisms` returns it, so images is non-empty unless
        // no homomorphism exists at all.
        return false;
    }
    let mut union = Instance::empty_of_schema(&d.schema());
    for img in &images {
        union = union.union(img).expect("same schema");
    }
    union.same_facts(world)
}

/// All tuples of the given arity over the listed domain values.
fn all_tuples_over(domain: &[Value], arity: usize) -> Vec<Tuple> {
    let mut partials: Vec<Vec<Value>> = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(partials.len() * domain.len());
        for partial in &partials {
            for v in domain {
                let mut extended = partial.clone();
                extended.push(v.clone());
                next.push(extended);
            }
        }
        partials = next;
    }
    partials.into_iter().map(Tuple::new).collect()
}

/// All facts over `domain` (per relation of `base`'s schema) that are not already in
/// `base`.
fn missing_tuples_over(base: &Instance, domain: &BTreeSet<Value>) -> Vec<(String, Tuple)> {
    let domain: Vec<Value> = domain.iter().cloned().collect();
    let mut out = Vec::new();
    for rel in base.relations() {
        let arity = rel.arity();
        if domain.is_empty() && arity > 0 {
            continue;
        }
        for tuple in all_tuples_over(&domain, arity) {
            if !rel.contains(&tuple) {
                out.push((rel.name().to_string(), tuple));
            }
        }
    }
    out
}

fn add_facts(base: &Instance, extra: &[(String, Tuple)]) -> Instance {
    let mut out = base.clone();
    for (rel, tuple) in extra {
        out.add_tuple(rel, tuple.clone())
            .expect("arity-consistent extension");
    }
    out
}

/// All subsets of `items` of size at most `max_size` (including the empty subset),
/// materialised as vectors of clones.
fn subsets_up_to<T: Clone>(items: &[T], max_size: usize) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new()];
    for item in items {
        let mut extended = Vec::new();
        for subset in &out {
            if subset.len() < max_size {
                let mut bigger = subset.clone();
                bigger.push(item.clone());
                extended.push(bigger);
            }
        }
        out.extend(extended);
    }
    out
}

/// All non-empty index combinations of `{0, …, n-1}` of size at most `max_size`.
fn combinations_up_to(n: usize, max_size: usize) -> Vec<Vec<usize>> {
    let indices: Vec<usize> = (0..n).collect();
    subsets_up_to(&indices, max_size)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nev_incomplete::builder::{c, x};
    use nev_incomplete::inst;

    fn d0() -> Instance {
        inst! { "D" => [[x(1), x(2)], [x(2), x(1)]] }
    }

    #[test]
    fn membership_examples_from_section_2_3() {
        // ⟦D0⟧_CWA consists of all {(c,c'),(c',c)}; ⟦D0⟧_OWA of all complete instances
        // containing such a pair.
        let d0 = d0();
        let w1 = inst! { "D" => [[c(1), c(2)], [c(2), c(1)]] };
        let w2 = inst! { "D" => [[c(1), c(1)]] };
        let w3 = inst! { "D" => [[c(1), c(2)], [c(2), c(1)], [c(3), c(3)]] };
        assert!(Semantics::Cwa.contains_world(&d0, &w1));
        assert!(Semantics::Cwa.contains_world(&d0, &w2));
        assert!(!Semantics::Cwa.contains_world(&d0, &w3));
        assert!(Semantics::Owa.contains_world(&d0, &w3));
        assert!(Semantics::Owa.contains_world(&d0, &w1));
        // (3,3) uses a value outside adom of the valuation image {1,2}, so WCWA rejects it…
        assert!(!Semantics::Wcwa.contains_world(&d0, &w3));
        // …but adding (1,1) (within the active domain) is allowed under WCWA, not CWA.
        let w4 = inst! { "D" => [[c(1), c(2)], [c(2), c(1)], [c(1), c(1)]] };
        assert!(Semantics::Wcwa.contains_world(&d0, &w4));
        assert!(!Semantics::Cwa.contains_world(&d0, &w4));
    }

    #[test]
    fn wcwa_example_from_section_4_3() {
        // D = {(⊥,⊥′)}: {(1,2)} ∈ CWA; {(1,2),(2,1)} ∉ CWA but ∈ WCWA.
        let d = inst! { "R" => [[x(1), x(2)]] };
        let w_cwa = inst! { "R" => [[c(1), c(2)]] };
        let w_wcwa = inst! { "R" => [[c(1), c(2)], [c(2), c(1)]] };
        assert!(Semantics::Cwa.contains_world(&d, &w_cwa));
        assert!(!Semantics::Cwa.contains_world(&d, &w_wcwa));
        assert!(Semantics::Wcwa.contains_world(&d, &w_wcwa));
        assert!(Semantics::Owa.contains_world(&d, &w_wcwa));
    }

    #[test]
    fn powerset_membership() {
        // D = {(⊥1, ⊥2)}: {(1,2),(3,4)} is a union of two valuation images, hence in
        // ⦅D⦆_CWA, but is in neither CWA (single valuation) nor WCWA (adom grows).
        let d = inst! { "R" => [[x(1), x(2)]] };
        let w = inst! { "R" => [[c(1), c(2)], [c(3), c(4)]] };
        assert!(Semantics::PowersetCwa.contains_world(&d, &w));
        assert!(!Semantics::Cwa.contains_world(&d, &w));
        assert!(!Semantics::Wcwa.contains_world(&d, &w));
        // A world with a tuple no valuation image can produce is rejected.
        let bad = inst! { "R" => [[c(1), c(2)]], "S" => [[c(9)]] };
        assert!(!Semantics::PowersetCwa.contains_world(&d, &bad));
    }

    #[test]
    fn minimal_cwa_membership() {
        // D = {(⊥,⊥),(⊥,⊥′)} (§10): minimal valuations collapse ⊥′ into ⊥, so {(1,1)}
        // is a minimal world but {(1,1),(1,2)} is not.
        let d = inst! { "D" => [[x(1), x(1)], [x(1), x(2)]] };
        let collapsed = inst! { "D" => [[c(1), c(1)]] };
        let spread = inst! { "D" => [[c(1), c(1)], [c(1), c(2)]] };
        assert!(Semantics::MinimalCwa.contains_world(&d, &collapsed));
        assert!(!Semantics::MinimalCwa.contains_world(&d, &spread));
        assert!(Semantics::Cwa.contains_world(&d, &spread));
        assert!(Semantics::MinimalPowersetCwa.contains_world(&d, &collapsed));
        // A union of two distinct minimal images is in the minimal powerset semantics.
        let two_loops = inst! { "D" => [[c(1), c(1)], [c(2), c(2)]] };
        assert!(Semantics::MinimalPowersetCwa.contains_world(&d, &two_loops));
        assert!(!Semantics::MinimalCwa.contains_world(&d, &two_loops));
    }

    #[test]
    fn semantics_inclusions_on_enumerated_worlds() {
        // ⟦D⟧_CWA ⊆ ⟦D⟧_WCWA ⊆ ⟦D⟧_OWA (§4.3); minimal CWA ⊆ CWA; CWA ⊆ powerset CWA.
        let d = inst! { "R" => [[c(1), x(1)], [x(2), x(2)]] };
        let bounds = WorldBounds::default();
        let cwa = Semantics::Cwa.enumerate_worlds(&d, &bounds);
        for w in &cwa {
            assert!(Semantics::Wcwa.contains_world(&d, w));
            assert!(Semantics::Owa.contains_world(&d, w));
            assert!(Semantics::PowersetCwa.contains_world(&d, w));
        }
        let min_cwa = Semantics::MinimalCwa.enumerate_worlds(&d, &bounds);
        for w in &min_cwa {
            assert!(Semantics::Cwa.contains_world(&d, w));
        }
        assert!(min_cwa.len() <= cwa.len());
    }

    #[test]
    fn enumerated_worlds_are_members() {
        let d = inst! { "R" => [[c(1), x(1)]], "S" => [[x(1)]] };
        let bounds = WorldBounds {
            owa_max_extra_tuples: 1,
            ..WorldBounds::default()
        };
        for sem in Semantics::ALL {
            let worlds = sem.enumerate_worlds(&d, &bounds);
            assert!(!worlds.is_empty(), "{sem} produced no worlds");
            for w in &worlds {
                assert!(w.is_complete());
                assert!(
                    sem.contains_world(&d, w),
                    "{sem}: enumerated world not a member\n{w}"
                );
            }
        }
    }

    #[test]
    fn complete_instances_have_themselves_as_cwa_world() {
        let d = inst! { "R" => [[c(1), c(2)]] };
        let worlds = Semantics::Cwa.enumerate_worlds(&d, &WorldBounds::default());
        assert_eq!(worlds.len(), 1);
        assert!(worlds[0].same_facts(&d));
        for sem in Semantics::ALL {
            assert!(
                sem.contains_world(&d, &d),
                "{sem} must contain the complete instance itself"
            );
        }
    }

    #[test]
    fn owa_enumeration_contains_proper_extensions() {
        let d = inst! { "R" => [[x(1), x(1)]] };
        let bounds = WorldBounds {
            owa_max_extra_tuples: 1,
            ..WorldBounds::default()
        };
        let worlds = Semantics::Owa.enumerate_worlds(&d, &bounds);
        assert!(worlds.iter().any(|w| w.fact_count() == 1));
        assert!(worlds.iter().any(|w| w.fact_count() == 2));
    }

    #[test]
    fn world_count_of_d0_under_cwa() {
        // Two nulls, no constants: budget = 2 fresh constants (union width 1 would give 2,
        // default width 2 gives up to 4); either way every world has the symmetric shape.
        let d0 = d0();
        let bounds = WorldBounds {
            union_width: 1,
            ..WorldBounds::default()
        };
        let worlds = Semantics::Cwa.enumerate_worlds(&d0, &bounds);
        // Valuations over {f0, f1}: 4 of them; worlds collapse to 3 distinct instances
        // ({(f0,f0)}, {(f1,f1)}, {(f0,f1),(f1,f0)}).
        assert_eq!(worlds.len(), 3);
    }

    #[test]
    fn max_worlds_truncates() {
        let d = inst! { "R" => [[x(1), x(2), x(3)]] };
        let bounds = WorldBounds {
            max_worlds: 5,
            ..WorldBounds::default()
        };
        let worlds = Semantics::Cwa.enumerate_worlds(&d, &bounds);
        assert!(worlds.len() <= 5);
    }

    #[test]
    fn display_and_flags() {
        assert_eq!(Semantics::Owa.to_string(), "OWA");
        assert!(Semantics::MinimalCwa.is_minimal());
        assert!(!Semantics::Cwa.is_minimal());
        assert!(Semantics::PowersetCwa.is_powerset());
        assert!(Semantics::MinimalPowersetCwa.is_powerset());
        assert!(!Semantics::Wcwa.is_powerset());
        assert_eq!(Semantics::ALL.len(), 6);
    }

    #[test]
    #[should_panic(expected = "must be complete")]
    fn membership_requires_complete_world() {
        let d = d0();
        let incomplete = inst! { "D" => [[x(5), c(1)]] };
        Semantics::Cwa.contains_world(&d, &incomplete);
    }

    #[test]
    fn worlds_iterator_matches_for_each_world() {
        // The lazy iterator and the closure wrapper must stream identical worlds in
        // identical order, for every semantics.
        let d = inst! { "R" => [[c(1), x(1)]], "S" => [[x(1)]] };
        let bounds = WorldBounds {
            owa_max_extra_tuples: 1,
            ..WorldBounds::default()
        };
        for sem in Semantics::ALL {
            let via_iterator: Vec<Instance> = sem.worlds(&d, &bounds).collect();
            let mut via_closure = Vec::new();
            let _ = sem.for_each_world(&d, &bounds, |w| {
                via_closure.push(w.clone());
                ControlFlow::Continue(())
            });
            assert_eq!(via_iterator, via_closure, "{sem}");
            assert!(!via_iterator.is_empty(), "{sem}");
        }
    }

    #[test]
    fn worlds_iterator_respects_max_worlds_and_reports_truncation() {
        let d = inst! { "R" => [[x(1), x(2), x(3)]] };
        let bounds = WorldBounds {
            max_worlds: 5,
            ..WorldBounds::default()
        };
        let mut worlds = Semantics::Cwa.worlds(&d, &bounds);
        assert_eq!(worlds.by_ref().count(), 5);
        assert!(worlds.truncated());
        // An untruncated enumeration is not flagged.
        let small = inst! { "R" => [[c(1)]] };
        let mut all = Semantics::Cwa.worlds(&small, &WorldBounds::default());
        assert_eq!(all.by_ref().count(), 1);
        assert!(!all.truncated());
        // Completing at *exactly* the cap is not a truncation either: the single
        // CWA world of a complete instance under max_worlds = 1.
        let exact_bounds = WorldBounds {
            max_worlds: 1,
            ..WorldBounds::default()
        };
        let mut exact = Semantics::Cwa.worlds(&small, &exact_bounds);
        assert_eq!(exact.by_ref().count(), 1);
        assert!(!exact.truncated());
        let _ = exact.next();
        assert!(!exact.truncated(), "re-polling must not flip the flag");
    }

    #[test]
    fn semantics_from_str_round_trips() {
        for sem in Semantics::ALL {
            let rendered = sem.to_string();
            assert_eq!(rendered.parse::<Semantics>(), Ok(sem), "{rendered}");
        }
        assert_eq!("owa".parse::<Semantics>(), Ok(Semantics::Owa));
        assert_eq!(
            "Powerset_CWA".parse::<Semantics>(),
            Ok(Semantics::PowersetCwa)
        );
        assert_eq!(
            "minimal-cwa".parse::<Semantics>(),
            Ok(Semantics::MinimalCwa)
        );
        assert_eq!(
            "min-powerset-cwa".parse::<Semantics>(),
            Ok(Semantics::MinimalPowersetCwa)
        );
        let err = "nope".parse::<Semantics>().unwrap_err();
        assert!(err.to_string().contains("unknown semantics"));
    }
}
